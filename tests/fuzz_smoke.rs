//! Tier-1 smoke tests for the differential-fuzzing subsystem: a small
//! case budget through every oracle (the full budget runs in CI's `fuzz`
//! job and via `repro fuzz`), byte-determinism of the summary, and the
//! generate → serialize → replay round trip.

use vfpga::fuzz::{case_rng, registry, replay, reproducer_json, run_fuzz, FuzzConfig, Verdict};
use vfpga::sim::Json;

/// A small budget over every oracle must pass clean — any failure here is
/// a real cross-layer invariant violation, reproducible from the seed.
#[test]
fn small_budget_passes_every_oracle() {
    let summary = run_fuzz(&FuzzConfig::new(42, 6)).expect("valid config");
    assert!(
        summary.oracles.len() >= 6,
        "expected a full oracle registry"
    );
    assert_eq!(summary.oracles.len(), registry().len());
    for o in &summary.oracles {
        assert_eq!(o.cases, 6);
        assert_eq!(
            o.failures,
            0,
            "oracle {} failed: {:?}",
            o.name,
            o.first_failure.as_ref().map(|f| &f.error)
        );
    }
    assert!(summary.passed());
    assert_eq!(summary.total_cases(), 6 * summary.oracles.len());
}

/// Two runs from the same configuration serialize byte-identically — the
/// contract CI's double-run `cmp` gate enforces at full budget.
#[test]
fn summary_is_byte_deterministic() {
    let config = FuzzConfig::new(2024, 4);
    let a = run_fuzz(&config).unwrap().to_json().pretty();
    let b = run_fuzz(&config).unwrap().to_json().pretty();
    assert_eq!(a, b);
    // And parses back as JSON with the pinned schema.
    let doc = Json::parse(&a).unwrap();
    assert_eq!(
        doc.field("schema_version").and_then(Json::as_num),
        Some(f64::from(
            u8::try_from(vfpga::fuzz::FUZZ_SCHEMA_VERSION).unwrap()
        ))
    );
}

/// Every oracle's generated case survives serialize → parse → deserialize
/// → replay: the reproducer a failing run writes is sufficient on its own
/// to re-drive the exact check.
#[test]
fn generate_serialize_replay_round_trips() {
    for oracle in registry() {
        let mut rng = case_rng(7, oracle.name, 0);
        let input = (oracle.generate)(&mut rng);
        let doc = reproducer_json(oracle.name, 7, 0, "synthetic", &input);
        // Through bytes, as a real reproducer file would go.
        let parsed = Json::parse(&doc.pretty()).expect("reproducer serializes");
        let (name, verdict) = replay(&parsed).expect("reproducer replays");
        assert_eq!(name, oracle.name);
        assert_eq!(
            verdict,
            Verdict::Pass,
            "oracle {} rejected its own generated case",
            oracle.name
        );
        // The embedded input round-trips exactly.
        let reparsed = vfpga::fuzz::FuzzInput::from_json(parsed.expect_field("input"))
            .expect("input deserializes");
        assert_eq!(
            reparsed.to_json().pretty(),
            input.to_json().pretty(),
            "oracle {} input changed across the round trip",
            oracle.name
        );
    }
}

/// Case derivation is positionally stable: the same (seed, oracle, index)
/// always yields the same input, independent of budget or order.
#[test]
fn case_derivation_is_positional() {
    let oracle = &registry()[0];
    let a = (oracle.generate)(&mut case_rng(42, oracle.name, 3));
    let b = (oracle.generate)(&mut case_rng(42, oracle.name, 3));
    assert_eq!(a.to_json().pretty(), b.to_json().pretty());
    let c = (oracle.generate)(&mut case_rng(43, oracle.name, 3));
    assert_ne!(
        a.to_json().pretty(),
        c.to_json().pretty(),
        "different seeds should give different cases"
    );
}

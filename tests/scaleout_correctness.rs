//! End-to-end correctness of the scale-out optimization: scaled-down
//! accelerators exchanging state through the synchronization template
//! module must compute exactly what one big accelerator computes.

use vfpga::accel::{AcceleratorConfig, FuncSim, RemoteWindow};
use vfpga::core::scaleout::{insert_communication, remote_window, reorder_for_overlap};
use vfpga::isa::F16;
use vfpga::runtime::{co_simulate_functional, RuntimeError};
use vfpga::workload::{
    generate_program, reference_run, RnnKind, RnnTask, RnnWeights, SliceSpec, H_LOCAL_SLOT,
};

/// Runs `task` on `machines` cooperating scaled-down accelerators and
/// returns the final hidden state (concatenated slices).
fn run_scaled(task: RnnTask, weights: &RnnWeights, machines: usize, reorder: bool) -> Vec<F16> {
    let full = AcceleratorConfig::new("test", 8);
    let scaled = full.scaled_down(machines);
    let mut programs = Vec::new();
    let mut sims = Vec::new();
    for m in 0..machines {
        let rnn = generate_program(task, SliceSpec::new(m, machines));
        let window = remote_window(&scaled.isa, m, machines).expect("window fits");
        let mut program =
            insert_communication(&rnn.program, &rnn.state_slots, &window).expect("insert");
        if reorder {
            program = reorder_for_overlap(&program, &window).expect("reorder");
        }
        programs.push(program);
        let mut sim = FuncSim::new(&scaled);
        sim.set_remote_window(Some(window));
        weights.load_into(&mut sim, SliceSpec::new(m, machines));
        sims.push(sim);
    }
    co_simulate_functional(&mut sims, &programs).expect("co-simulation");
    let mut h = Vec::new();
    for sim in &sims {
        h.extend_from_slice(sim.read_dram(H_LOCAL_SLOT).expect("h slice"));
    }
    h
}

fn run_single(task: RnnTask, weights: &RnnWeights) -> Vec<F16> {
    let full = AcceleratorConfig::new("test", 8);
    let rnn = generate_program(task, SliceSpec::FULL);
    let mut sim = FuncSim::new(&full);
    weights.load_into(&mut sim, SliceSpec::FULL);
    sim.run(&rnn.program).expect("single-machine run");
    sim.read_dram(H_LOCAL_SLOT).expect("h").to_vec()
}

#[test]
fn gru_two_machines_bit_exact() {
    let task = RnnTask::new(RnnKind::Gru, 96, 5);
    let weights = RnnWeights::generate(task, 11);
    let single = run_single(task, &weights);
    let scaled = run_scaled(task, &weights, 2, true);
    assert_eq!(single.len(), scaled.len());
    for (a, b) in single.iter().zip(&scaled) {
        assert_eq!(a.to_bits(), b.to_bits(), "row-sliced GRU must be bit-exact");
    }
}

#[test]
fn lstm_two_machines_bit_exact() {
    let task = RnnTask::new(RnnKind::Lstm, 64, 6);
    let weights = RnnWeights::generate(task, 13);
    let single = run_single(task, &weights);
    let scaled = run_scaled(task, &weights, 2, true);
    for (a, b) in single.iter().zip(&scaled) {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "row-sliced LSTM must be bit-exact"
        );
    }
}

#[test]
fn four_machines_with_uneven_rows() {
    // 70 rows over 4 machines: slices of 18/18/17/17.
    let task = RnnTask::new(RnnKind::Gru, 70, 3);
    let weights = RnnWeights::generate(task, 17);
    let single = run_single(task, &weights);
    let scaled = run_scaled(task, &weights, 4, true);
    assert_eq!(scaled.len(), 70);
    for (a, b) in single.iter().zip(&scaled) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
}

#[test]
fn reordering_does_not_change_results() {
    let task = RnnTask::new(RnnKind::Lstm, 48, 4);
    let weights = RnnWeights::generate(task, 19);
    let plain = run_scaled(task, &weights, 2, false);
    let reordered = run_scaled(task, &weights, 2, true);
    assert_eq!(plain, reordered);
}

#[test]
fn scaled_results_track_f32_reference() {
    let task = RnnTask::new(RnnKind::Gru, 128, 6);
    let weights = RnnWeights::generate(task, 23);
    let scaled = run_scaled(task, &weights, 2, true);
    let reference = reference_run(&weights);
    let max_err = scaled
        .iter()
        .zip(&reference)
        .map(|(a, b)| (a.to_f32() - b).abs())
        .fold(0.0f32, f32::max);
    assert!(max_err < 0.05, "max error {max_err}");
}

#[test]
fn missing_peer_data_deadlocks_cleanly() {
    // One machine runs a program that receives without any peer sending:
    // the co-simulator must report a deadlock, not hang.
    let cfg = AcceleratorConfig::new("t", 2);
    let window = RemoteWindow {
        send_base: 100,
        recv_base: 200,
        channels: 1,
        machine_index: 0,
        num_machines: 2,
    };
    let program = vfpga::isa::assemble("vload v0, 200\nhalt\n").unwrap();
    let mut starved = FuncSim::new(&cfg);
    starved.set_remote_window(Some(window));
    let mut silent = FuncSim::new(&cfg);
    silent.set_remote_window(Some(RemoteWindow {
        machine_index: 1,
        ..window
    }));
    let halt_only = vfpga::isa::assemble("halt\n").unwrap();
    let err = co_simulate_functional(&mut [starved, silent], &[program, halt_only]).unwrap_err();
    assert!(matches!(err, RuntimeError::Deadlock { blocked: 1 }));
}

#[test]
fn fuzz_counterexample_minimal_two_row_gru() {
    // Checked-in shrunk counterexample from the differential fuzzer's
    // scaleout-differential oracle (seed 42, case 0) against a mutant of
    // `insert_communication` that left the first cross-machine receive
    // reading the machine's own local slice instead of the ring window.
    // The smallest shape that exposes the class: the hidden state must
    // actually cross machines (2 rows over 2 machines) and the skipped
    // receive must feed a later step (2 timesteps — one step passes
    // vacuously because h0 starts local everywhere). On the mutant this
    // deadlocks the co-simulation; on correct code it is bit-exact.
    let task = RnnTask::new(RnnKind::Gru, 2, 2);
    let weights = RnnWeights::generate(task, 12032836648555590000);
    let single = run_single(task, &weights);
    let scaled = run_scaled(task, &weights, 2, true);
    assert_eq!(single.len(), scaled.len());
    for (a, b) in single.iter().zip(&scaled) {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "minimal cross-machine GRU must be bit-exact"
        );
    }
}

//! Fault-injection sweep over the full stack: seeded fault plans against
//! the paper catalog, checking the cross-layer recovery invariants that
//! must hold for *any* plan — every arrival accounted for, occupancy a
//! valid fraction throughout, no live deployment referencing a failed
//! device, and byte-identical reports for a fixed seed.
//!
//! CI runs this suite once per seed via the `CHAOS_SEED` environment
//! variable; without it, the sweep covers all default seeds.

use vfpga::fabric::DeviceId;
use vfpga::hsabs::DeviceHealth;
use vfpga::runtime::{Policy, SystemController};
use vfpga::sim::Json;
use vfpga_bench::chaos::{self, ChaosConfig};
use vfpga_bench::netchaos::{self, NetChaosConfig};
use vfpga_bench::Catalog;

/// The fixed seeds CI fans out over.
const DEFAULT_SEEDS: [u64; 4] = [1, 7, 42, 2024];

fn sweep_seeds() -> Vec<u64> {
    match std::env::var("CHAOS_SEED") {
        Ok(s) => vec![s
            .parse()
            .unwrap_or_else(|_| panic!("CHAOS_SEED must be an integer, got `{s}`"))],
        Err(_) => DEFAULT_SEEDS.to_vec(),
    }
}

#[test]
fn seeded_fault_sweep_preserves_invariants() {
    let catalog = Catalog::build();
    for seed in sweep_seeds() {
        let run = chaos::run(
            &catalog,
            &ChaosConfig {
                seed,
                ..ChaosConfig::default()
            },
        );
        run.check_invariants()
            .unwrap_or_else(|violation| panic!("seed {seed}: {violation}"));
        assert!(
            run.report.device_failures > 0,
            "seed {seed}: plan injected no failures"
        );
        // Occupancy is a valid fraction at every sample, even while the
        // denominator shrinks and grows with device failures.
        for &(_, value) in run.report.occupancy_series.samples() {
            assert!(
                (0.0..=1.0 + 1e-12).contains(&value),
                "seed {seed}: occupancy sample {value} outside [0, 1]"
            );
        }
        assert!(
            run.report.degraded_mean_occupancy <= 1.0 + 1e-12,
            "seed {seed}: degraded occupancy {}",
            run.report.degraded_mean_occupancy
        );
    }
}

#[test]
fn fixed_seed_reports_are_byte_identical() {
    let catalog = Catalog::build();
    let config = ChaosConfig {
        tasks: 60,
        seed: 2024,
        ..ChaosConfig::default()
    };
    let first = chaos::run(&catalog, &config).to_json().pretty();
    let second = chaos::run(&catalog, &config).to_json().pretty();
    assert_eq!(first, second, "same seed must give byte-identical reports");

    // The serialized report parses back and carries the recovery section
    // a downstream consumer would read.
    let doc = Json::parse(&first).expect("chaos report serializes to valid JSON");
    let recovery = doc.expect_field("report").expect_field("recovery");
    assert!(recovery.field("mean_time_to_recovery_s").is_some());
    let interrupted = recovery
        .expect_field("interrupted")
        .as_num()
        .expect("interrupted is a number");
    assert!(interrupted > 0.0, "chaos run must interrupt work");
}

#[test]
fn seeded_link_chaos_sweep_preserves_invariants() {
    // The interconnect sweep: device *and* link fault waves together, per
    // seed. The cross-layer invariants (accounting, severed <=
    // interrupted, trace completeness, retransmit-byte reconciliation)
    // must hold for any plan, and each plan must actually stress the link
    // machinery — otherwise the sweep silently tests nothing.
    let catalog = Catalog::build();
    for seed in sweep_seeds() {
        let run = netchaos::run(
            &catalog,
            &NetChaosConfig {
                seed,
                ..NetChaosConfig::default()
            },
        );
        run.check_invariants()
            .unwrap_or_else(|violation| panic!("seed {seed}: {violation}"));
        assert!(
            run.plan.link_failures() > 0,
            "seed {seed}: plan failed no ring segments"
        );
        assert!(
            run.report.link_retransmits > 0,
            "seed {seed}: no transfer was retransmitted"
        );
        for &(_, value) in run.report.occupancy_series.samples() {
            assert!(
                (0.0..=1.0 + 1e-12).contains(&value),
                "seed {seed}: occupancy sample {value} outside [0, 1]"
            );
        }
    }
}

#[test]
fn fixed_seed_link_chaos_artifacts_are_byte_identical() {
    let catalog = Catalog::build();
    let config = NetChaosConfig {
        tasks: 60,
        seed: 2024,
        ..NetChaosConfig::default()
    };
    let first = netchaos::run(&catalog, &config).to_json().pretty();
    let second = netchaos::run(&catalog, &config).to_json().pretty();
    assert_eq!(first, second, "same seed must give byte-identical reports");

    // The serialized report parses back and carries the links section a
    // downstream consumer would read.
    let doc = Json::parse(&first).expect("netchaos report serializes to valid JSON");
    let links = doc.expect_field("report").expect_field("links");
    for key in ["failures", "retransmits", "bytes_retransmitted", "reroutes"] {
        assert!(links.field(key).is_some(), "links section missing `{key}`");
    }
}

#[test]
fn no_live_deployment_references_a_failed_device() {
    // Controller-level sweep, independent of the cloud simulator: deploy
    // until the cluster is packed, fail each device in turn, and verify
    // the eviction invariant plus the health bookkeeping directly.
    let catalog = Catalog::build();
    let mut controller =
        SystemController::new(catalog.cluster.clone(), catalog.db.clone(), Policy::Full);
    let names: Vec<String> = catalog.instances.keys().cloned().collect();
    let mut live = Vec::new();
    'fill: loop {
        for name in &names {
            match controller.try_deploy(name).expect("known instance") {
                Some(d) => live.push(d),
                None => break 'fill,
            }
        }
    }
    assert!(!live.is_empty(), "cluster should accept some deployments");

    let devices = controller.cluster().len();
    for victim in 0..devices {
        let victim = DeviceId(victim);
        let interrupted = controller.handle_device_failure(victim);
        assert_eq!(controller.device_health(victim), DeviceHealth::Failed);
        assert_eq!(
            controller.allocations_on(victim),
            0,
            "{victim:?} still holds allocations after eviction"
        );
        // Every deployment we held that touched the victim must be in the
        // interrupted set; survivors must not reference it.
        live.retain(|d| {
            let touches = d.placements.iter().any(|p| p.device == victim);
            if touches {
                assert!(
                    interrupted.contains(&d.id),
                    "{:?} touched {victim:?} but was not interrupted",
                    d.id
                );
            } else {
                // Interruption tears down whole deployments, so a
                // deployment with no unit on the victim survives... unless
                // an earlier failure already took it down.
                assert!(
                    !interrupted.contains(&d.id) || d.placements.is_empty(),
                    "{:?} did not touch {victim:?} but was interrupted",
                    d.id
                );
            }
            !touches && !interrupted.contains(&d.id)
        });
        // Failed devices never re-enter placement until recovery.
        if let Ok(Some(d)) = controller.try_deploy(&names[0]) {
            assert!(
                d.placements.iter().all(|p| p.device != victim),
                "placement landed on failed {victim:?}"
            );
            controller.release(&d).unwrap();
        }
    }
    assert_eq!(controller.failed_devices(), devices);
    assert_eq!(
        controller.live_deployments(),
        0,
        "failing every device must tear down every deployment"
    );

    // Recovery restores full service.
    for d in 0..devices {
        controller.handle_device_recovery(DeviceId(d));
    }
    assert_eq!(controller.failed_devices(), 0);
    assert_eq!(controller.occupancy(), 0.0);
    let redeployed = controller
        .try_deploy(&names[0])
        .expect("known instance")
        .expect("recovered cluster accepts work");
    controller.release(&redeployed).unwrap();
}

//! Property-based tests over the framework's core invariants.

use proptest::prelude::*;
use vfpga::core::scaleout::{insert_communication, remote_window, reorder_for_overlap};
use vfpga::isa::{
    assemble, decode, encode, BfpFormat, BfpVector, F16, Instruction, IsaConfig, MReg, Program,
    VReg,
};
use vfpga::workload::SliceSpec;

// ---- f16 ----------------------------------------------------------------

proptest! {
    /// Every finite f16 survives the f16 -> f32 -> f16 round trip exactly.
    #[test]
    fn f16_round_trip(bits in any::<u16>()) {
        let h = F16::from_bits(bits);
        if h.is_nan() {
            prop_assert!(F16::from_f32(h.to_f32()).is_nan());
        } else {
            prop_assert_eq!(F16::from_f32(h.to_f32()).to_bits(), bits);
        }
    }

    /// Conversion from f32 never increases magnitude beyond the next
    /// representable value, and ordering is preserved.
    #[test]
    fn f16_conversion_monotone(a in -1e4f32..1e4, b in -1e4f32..1e4) {
        let (ha, hb) = (F16::from_f32(a), F16::from_f32(b));
        if a <= b {
            prop_assert!(ha.to_f32() <= hb.to_f32() || (ha.to_f32() - hb.to_f32()).abs() < 1e-6);
        }
    }

    /// Negation is exact and self-inverse.
    #[test]
    fn f16_negation_involution(bits in any::<u16>()) {
        let h = F16::from_bits(bits);
        prop_assert_eq!((-(-h)).to_bits(), h.to_bits());
    }
}

// ---- block floating point ------------------------------------------------

proptest! {
    /// Quantization error stays within the format's bound for every block.
    #[test]
    fn bfp_error_bound(
        values in prop::collection::vec(-1e3f32..1e3, 16),
        mantissa_bits in 4u32..12,
    ) {
        let fmt = BfpFormat::new(mantissa_bits, 16);
        let block = fmt.quantize(&values);
        let back = block.dequantize();
        let max_abs = values.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        let bound = (f64::from(max_abs) * fmt.quantization_step()).max(1e-9);
        for (orig, deq) in values.iter().zip(&back) {
            let err = (f64::from(*orig) - f64::from(*deq)).abs();
            prop_assert!(err <= bound * 1.0001, "err {err} > bound {bound}");
        }
    }

    /// BFP dot products approximate the f64 reference within the
    /// accumulated per-element error bound.
    #[test]
    fn bfp_dot_accuracy(
        a in prop::collection::vec(-1.0f32..1.0, 32),
        b in prop::collection::vec(-1.0f32..1.0, 32),
    ) {
        let fmt = BfpFormat::MS_FP9;
        let va = BfpVector::from_f32(fmt, &a);
        let vb = BfpVector::from_f32(fmt, &b);
        let reference: f64 = a.iter().zip(&b).map(|(&x, &y)| f64::from(x) * f64::from(y)).sum();
        // Per element: |a||db| + |b||da| + |da||db| <= 3 * step (values <= 1).
        let bound = 32.0 * 3.0 * fmt.quantization_step() + 1e-9;
        prop_assert!((va.dot(&vb) - reference).abs() <= bound);
    }
}

// ---- instruction encoding -------------------------------------------------

fn arb_instruction() -> impl Strategy<Value = Instruction> {
    prop_oneof![
        (any::<u8>(), any::<u32>()).prop_map(|(r, a)| Instruction::VLoad { dst: VReg(r), addr: a }),
        (any::<u8>(), any::<u32>()).prop_map(|(r, a)| Instruction::VStore { src: VReg(r), addr: a }),
        (any::<u8>(), any::<u16>(), any::<u8>())
            .prop_map(|(d, m, s)| Instruction::MvMul { dst: VReg(d), mat: MReg(m), src: VReg(s) }),
        (any::<u8>(), any::<u8>(), any::<u8>())
            .prop_map(|(d, a, b)| Instruction::VAdd { dst: VReg(d), a: VReg(a), b: VReg(b) }),
        (any::<u8>(), any::<u8>(), any::<u8>())
            .prop_map(|(d, a, b)| Instruction::VMul { dst: VReg(d), a: VReg(a), b: VReg(b) }),
        (any::<u8>(), any::<u8>()).prop_map(|(d, s)| Instruction::Sigmoid { dst: VReg(d), src: VReg(s) }),
        (any::<u8>(), any::<u8>()).prop_map(|(d, s)| Instruction::Tanh { dst: VReg(d), src: VReg(s) }),
        Just(Instruction::Nop),
        Just(Instruction::Halt),
    ]
}

proptest! {
    /// Binary encoding round-trips arbitrary programs.
    #[test]
    fn encode_decode_round_trip(insts in prop::collection::vec(arb_instruction(), 0..200)) {
        let p = Program::new(insts);
        let bytes = encode(&p);
        let q = decode(&bytes).unwrap();
        prop_assert_eq!(p, q);
    }

    /// The textual assembler round-trips arbitrary programs.
    #[test]
    fn asm_round_trip(insts in prop::collection::vec(arb_instruction(), 0..100)) {
        let p = Program::new(insts);
        let q = assemble(&p.to_string()).unwrap();
        prop_assert_eq!(p, q);
    }
}

// ---- dependency-preserving reordering --------------------------------------

fn arb_small_program() -> impl Strategy<Value = Program> {
    // Constrained register/address space to force plenty of dependencies.
    let inst = prop_oneof![
        (0u8..6, 0u32..8).prop_map(|(r, a)| Instruction::VLoad { dst: VReg(r), addr: a }),
        (0u8..6, 0u32..8).prop_map(|(r, a)| Instruction::VStore { src: VReg(r), addr: a }),
        (0u8..6, 0u16..4, 0u8..6)
            .prop_map(|(d, m, s)| Instruction::MvMul { dst: VReg(d), mat: MReg(m), src: VReg(s) }),
        (0u8..6, 0u8..6, 0u8..6)
            .prop_map(|(d, a, b)| Instruction::VAdd { dst: VReg(d), a: VReg(a), b: VReg(b) }),
        (0u8..6, 0u8..6).prop_map(|(d, s)| Instruction::Tanh { dst: VReg(d), src: VReg(s) }),
    ];
    prop::collection::vec(inst, 1..60).prop_map(Program::new)
}

proptest! {
    /// The overlap reordering always produces a dependency-valid program
    /// with the same multiset of instructions.
    #[test]
    fn reorder_preserves_dependencies(p in arb_small_program()) {
        let isa = IsaConfig::default();
        let window = remote_window(&isa, 0, 2);
        // Treat slot 0 as exchanged state to create sends/recvs.
        let with_comm = insert_communication(&p, &[0], &window).unwrap();
        // `reordered` internally validates against the dependency graph;
        // an Err here would mean the tool broke the program.
        let reordered = reorder_for_overlap(&with_comm, &window).unwrap();
        prop_assert_eq!(reordered.len(), with_comm.len());
        let mut a: Vec<String> = with_comm.iter().map(|i| i.to_string()).collect();
        let mut b: Vec<String> = reordered.iter().map(|i| i.to_string()).collect();
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
    }
}

// ---- row slicing ------------------------------------------------------------

proptest! {
    /// Machine row ranges always partition the row space contiguously.
    #[test]
    fn slices_partition_rows(rows in 1usize..4000, machines in 1usize..9) {
        let mut expected_start = 0;
        for m in 0..machines {
            let (s, e) = SliceSpec::new(m, machines).row_range(rows);
            prop_assert_eq!(s, expected_start);
            prop_assert!(e >= s);
            expected_start = e;
        }
        prop_assert_eq!(expected_start, rows);
    }
}

// ---- decomposer invariants on generated farms -------------------------------

proptest! {
    /// Decomposing a generated split/lanes/join farm always yields a
    /// pipeline-of-data tree with exactly the constructed leaves, with
    /// resources conserved.
    #[test]
    fn decomposer_invariants_on_random_farms(
        lanes in 2usize..7,
        stages in 2usize..6,
        width_log2 in 3u32..8,
    ) {
        use vfpga::core::{decompose, DecomposeOptions, Pattern};
        use vfpga::fabric::ResourceVec;
        use vfpga::rtl::parse;

        let w = 1u32 << width_log2;
        let mut src = String::new();
        src.push_str("module cseq #(behavior=\"seq\") (input [7:0] i, output [7:0] o); endmodule\n");
        src.push_str("module ctrl (input [7:0] instr, output [7:0] go); cseq u (.i(instr), .o(go)); endmodule\n");
        for s in 0..stages {
            src.push_str(&format!(
                "module st{s} #(behavior=\"st{s}\") (input [{hi}:0] x, output [{hi}:0] y); endmodule\n",
                hi = w - 1
            ));
        }
        src.push_str(&format!("module lane (input [{hi}:0] x, output [{hi}:0] y);\n", hi = w - 1));
        for s in 0..stages.saturating_sub(1) {
            src.push_str(&format!("  wire [{hi}:0] t{s};\n", hi = w - 1));
        }
        for s in 0..stages {
            let input = if s == 0 { "x".to_string() } else { format!("t{}", s - 1) };
            let output = if s == stages - 1 { "y".to_string() } else { format!("t{s}") };
            src.push_str(&format!("  st{s} u{s} (.x({input}), .y({output}));\n"));
        }
        src.push_str("endmodule\n");
        src.push_str(&format!(
            "module split #(behavior=\"split\") (input [{hi}:0] x, output [{hi}:0] y); endmodule\n\
             module join #(behavior=\"join\") (input [{hi}:0] x, output [{hi}:0] y); endmodule\n",
            hi = w - 1
        ));
        src.push_str(&format!("module dp (input [{hi}:0] din, input [7:0] go, output [{hi}:0] dout);\n", hi = w - 1));
        src.push_str(&format!("  wire [{hi}:0] xs;\n  wire [{hi}:0] ys;\n", hi = w - 1));
        src.push_str("  split sp (.x(din), .y(xs));\n");
        for l in 0..lanes {
            src.push_str(&format!("  lane l{l} (.x(xs), .y(ys));\n"));
        }
        src.push_str("  join jo (.x(ys), .y(dout));\nendmodule\n");
        src.push_str(&format!(
            "module top (input [7:0] instr, input [{hi}:0] din, output [{hi}:0] dout);\n\
             \x20 wire [7:0] go;\n\
             \x20 ctrl c (.instr(instr), .go(go));\n\
             \x20 dp d (.din(din), .go(go), .dout(dout));\nendmodule\n",
            hi = w - 1
        ));

        let design = parse(&src).unwrap();
        let unit = |_: &vfpga::rtl::FlatNode| ResourceVec {
            luts: 100, ffs: 100, bram_kb: 1, uram_kb: 0, dsps: 1,
        };
        let opts = DecomposeOptions::new("ctrl");
        let d = decompose(&design, "top", &opts, &unit).unwrap();
        // Leaves: split + lanes*stages + join.
        prop_assert_eq!(d.tree.leaf_count(), 2 + lanes * stages);
        // Resources conserved.
        prop_assert_eq!(
            d.tree.root_block().resources.luts,
            100 * (2 + lanes * stages) as u64
        );
        // The root is always a pipeline exposing the farm's data
        // parallelism underneath. With three or more lanes the lanes group
        // first (pipeline [split, data(lane-pipelines), join]); with two
        // lanes the block graph is one cycle and the relaxed fallback
        // groups per *stage* instead (pipeline [split, data, data, ...,
        // join]). Both are valid soft-block decompositions.
        let root = d.tree.root_block();
        prop_assert_eq!(root.pattern(), Some(Pattern::Pipeline));
        if lanes >= 3 {
            prop_assert_eq!(root.children().len(), 3);
            let mid = d.tree.block(root.children()[1]);
            prop_assert_eq!(mid.pattern(), Some(Pattern::Data));
            prop_assert_eq!(mid.children().len(), lanes);
            let lane = d.tree.block(mid.children()[0]);
            prop_assert_eq!(lane.children().len(), stages);
        } else {
            // Two-lane farms decompose via the relaxed fallback; the exact
            // nesting varies, but the data parallelism must be captured:
            // every lane leaf sits under some data node of width `lanes`.
            let data_nodes = d
                .tree
                .iter()
                .filter(|b| b.pattern() == Some(Pattern::Data))
                .count();
            prop_assert!(data_nodes >= 1, "no data parallelism found");
            for b in d.tree.iter() {
                if b.pattern() == Some(Pattern::Data) {
                    prop_assert_eq!(b.children().len(), lanes);
                }
            }
        }
    }

    /// The partitioner conserves resources across any unit count it offers.
    #[test]
    fn partitioner_conserves_resources(lanes in 2usize..9, iterations in 1usize..4) {
        use vfpga::core::{partition, reduction};
        use vfpga::fabric::ResourceVec;
        let width = 1usize << lanes.min(5);
        let tree = reduction(
            width.max(4),
            ResourceVec { luts: 64, ffs: 64, bram_kb: 0, uram_kb: 0, dsps: 2 },
            16,
        );
        let plan = partition(&tree, iterations);
        let total = tree.root_block().resources;
        for units in 1..=plan.max_units() {
            let parts = plan.units_for(units).unwrap();
            let sum: u64 = parts.iter().map(|p| p.resources.luts).sum();
            prop_assert_eq!(sum, total.luts, "units={}", units);
        }
    }
}

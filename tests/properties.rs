//! Property-based tests over the framework's core invariants.
//!
//! These were originally proptest strategies; the container builds offline,
//! so they now run as deterministic seeded sweeps over the in-repo
//! [`vfpga::sim::Rng`] (plus exhaustive enumeration where the domain is
//! small enough, e.g. all 2^16 f16 bit patterns).

use vfpga::core::scaleout::{insert_communication, remote_window, reorder_for_overlap};
use vfpga::isa::{
    assemble, decode, encode, BfpFormat, BfpVector, Instruction, IsaConfig, MReg, Program, VReg,
    F16,
};
use vfpga::sim::Rng;
use vfpga::workload::SliceSpec;

// ---- f16 ----------------------------------------------------------------

/// Every finite f16 survives the f16 -> f32 -> f16 round trip exactly.
#[test]
fn f16_round_trip() {
    for bits in 0..=u16::MAX {
        let h = F16::from_bits(bits);
        if h.is_nan() {
            assert!(F16::from_f32(h.to_f32()).is_nan());
        } else {
            assert_eq!(F16::from_f32(h.to_f32()).to_bits(), bits);
        }
    }
}

/// Conversion from f32 never increases magnitude beyond the next
/// representable value, and ordering is preserved.
#[test]
fn f16_conversion_monotone() {
    let mut rng = Rng::seed_from_u64(0x16_c0);
    for _ in 0..4096 {
        let a = rng.range_f32(-1e4, 1e4);
        let b = rng.range_f32(-1e4, 1e4);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let (hl, hh) = (F16::from_f32(lo), F16::from_f32(hi));
        assert!(
            hl.to_f32() <= hh.to_f32() || (hl.to_f32() - hh.to_f32()).abs() < 1e-6,
            "{lo} -> {} vs {hi} -> {}",
            hl.to_f32(),
            hh.to_f32()
        );
    }
}

/// Negation is exact and self-inverse.
#[test]
fn f16_negation_involution() {
    for bits in 0..=u16::MAX {
        let h = F16::from_bits(bits);
        assert_eq!((-(-h)).to_bits(), h.to_bits());
    }
}

// ---- block floating point ------------------------------------------------

/// Quantization error stays within the format's bound for every block.
#[test]
fn bfp_error_bound() {
    let mut rng = Rng::seed_from_u64(0xbf9);
    for case in 0..512 {
        let mantissa_bits = 4 + (case % 8) as u32; // 4..12
        let values: Vec<f32> = (0..16).map(|_| rng.range_f32(-1e3, 1e3)).collect();
        let fmt = BfpFormat::new(mantissa_bits, 16);
        let block = fmt.quantize(&values);
        let back = block.dequantize();
        let max_abs = values.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        let bound = (f64::from(max_abs) * fmt.quantization_step()).max(1e-9);
        for (orig, deq) in values.iter().zip(&back) {
            let err = (f64::from(*orig) - f64::from(*deq)).abs();
            assert!(err <= bound * 1.0001, "err {err} > bound {bound}");
        }
    }
}

/// BFP dot products approximate the f64 reference within the accumulated
/// per-element error bound.
#[test]
fn bfp_dot_accuracy() {
    let mut rng = Rng::seed_from_u64(0xd07);
    for _ in 0..512 {
        let a: Vec<f32> = (0..32).map(|_| rng.range_f32(-1.0, 1.0)).collect();
        let b: Vec<f32> = (0..32).map(|_| rng.range_f32(-1.0, 1.0)).collect();
        let fmt = BfpFormat::MS_FP9;
        let va = BfpVector::from_f32(fmt, &a);
        let vb = BfpVector::from_f32(fmt, &b);
        let reference: f64 = a
            .iter()
            .zip(&b)
            .map(|(&x, &y)| f64::from(x) * f64::from(y))
            .sum();
        // Per element: |a||db| + |b||da| + |da||db| <= 3 * step (values <= 1).
        let bound = 32.0 * 3.0 * fmt.quantization_step() + 1e-9;
        assert!((va.dot(&vb) - reference).abs() <= bound);
    }
}

// ---- instruction encoding -------------------------------------------------

fn random_instruction(rng: &mut Rng) -> Instruction {
    match rng.below(9) {
        0 => Instruction::VLoad {
            dst: VReg(rng.next_u8()),
            addr: rng.next_u64() as u32,
        },
        1 => Instruction::VStore {
            src: VReg(rng.next_u8()),
            addr: rng.next_u64() as u32,
        },
        2 => Instruction::MvMul {
            dst: VReg(rng.next_u8()),
            mat: MReg(rng.next_u16()),
            src: VReg(rng.next_u8()),
        },
        3 => Instruction::VAdd {
            dst: VReg(rng.next_u8()),
            a: VReg(rng.next_u8()),
            b: VReg(rng.next_u8()),
        },
        4 => Instruction::VMul {
            dst: VReg(rng.next_u8()),
            a: VReg(rng.next_u8()),
            b: VReg(rng.next_u8()),
        },
        5 => Instruction::Sigmoid {
            dst: VReg(rng.next_u8()),
            src: VReg(rng.next_u8()),
        },
        6 => Instruction::Tanh {
            dst: VReg(rng.next_u8()),
            src: VReg(rng.next_u8()),
        },
        7 => Instruction::Nop,
        _ => Instruction::Halt,
    }
}

/// Binary encoding round-trips arbitrary programs.
#[test]
fn encode_decode_round_trip() {
    let mut rng = Rng::seed_from_u64(0xe0c);
    for _ in 0..256 {
        let len = rng.below(200);
        let p = Program::new((0..len).map(|_| random_instruction(&mut rng)).collect());
        let bytes = encode(&p);
        let q = decode(&bytes).unwrap();
        assert_eq!(p, q);
    }
}

/// The textual assembler round-trips arbitrary programs.
#[test]
fn asm_round_trip() {
    let mut rng = Rng::seed_from_u64(0xa53);
    for _ in 0..256 {
        let len = rng.below(100);
        let p = Program::new((0..len).map(|_| random_instruction(&mut rng)).collect());
        let q = assemble(&p.to_string()).unwrap();
        assert_eq!(p, q);
    }
}

// ---- dependency-preserving reordering --------------------------------------

/// Constrained register/address space to force plenty of dependencies.
fn random_small_program(rng: &mut Rng) -> Program {
    let len = 1 + rng.below(59);
    let insts = (0..len)
        .map(|_| match rng.below(5) {
            0 => Instruction::VLoad {
                dst: VReg(rng.below(6) as u8),
                addr: rng.below(8) as u32,
            },
            1 => Instruction::VStore {
                src: VReg(rng.below(6) as u8),
                addr: rng.below(8) as u32,
            },
            2 => Instruction::MvMul {
                dst: VReg(rng.below(6) as u8),
                mat: MReg(rng.below(4) as u16),
                src: VReg(rng.below(6) as u8),
            },
            3 => Instruction::VAdd {
                dst: VReg(rng.below(6) as u8),
                a: VReg(rng.below(6) as u8),
                b: VReg(rng.below(6) as u8),
            },
            _ => Instruction::Tanh {
                dst: VReg(rng.below(6) as u8),
                src: VReg(rng.below(6) as u8),
            },
        })
        .collect();
    Program::new(insts)
}

/// The overlap reordering always produces a dependency-valid program with
/// the same multiset of instructions.
#[test]
fn reorder_preserves_dependencies() {
    let mut rng = Rng::seed_from_u64(0x5eed);
    for _ in 0..256 {
        let p = random_small_program(&mut rng);
        let isa = IsaConfig::default();
        let window = remote_window(&isa, 0, 2).unwrap();
        // Treat slot 0 as exchanged state to create sends/recvs.
        let with_comm = insert_communication(&p, &[0], &window).unwrap();
        // `reordered` internally validates against the dependency graph;
        // an Err here would mean the tool broke the program.
        let reordered = reorder_for_overlap(&with_comm, &window).unwrap();
        assert_eq!(reordered.len(), with_comm.len());
        let mut a: Vec<String> = with_comm.iter().map(|i| i.to_string()).collect();
        let mut b: Vec<String> = reordered.iter().map(|i| i.to_string()).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }
}

// ---- row slicing ------------------------------------------------------------

/// Machine row ranges always partition the row space contiguously.
#[test]
fn slices_partition_rows() {
    let mut rng = Rng::seed_from_u64(0x51ce);
    for case in 0..2048 {
        let rows = 1 + rng.below(3999);
        let machines = 1 + (case % 8);
        let mut expected_start = 0;
        for m in 0..machines {
            let (s, e) = SliceSpec::new(m, machines).row_range(rows);
            assert_eq!(s, expected_start);
            assert!(e >= s);
            expected_start = e;
        }
        assert_eq!(expected_start, rows);
    }
}

// ---- decomposer invariants on generated farms -------------------------------

/// Decomposing a generated split/lanes/join farm always yields a
/// pipeline-of-data tree with exactly the constructed leaves, with
/// resources conserved.
#[test]
fn decomposer_invariants_on_random_farms() {
    use vfpga::core::{decompose, DecomposeOptions, Pattern};
    use vfpga::fabric::ResourceVec;
    use vfpga::rtl::parse;

    let mut rng = Rng::seed_from_u64(0xfa39);
    for _ in 0..24 {
        let lanes = 2 + rng.below(5); // 2..7
        let stages = 2 + rng.below(4); // 2..6
        let width_log2 = 3 + rng.below(5) as u32; // 3..8

        let w = 1u32 << width_log2;
        let mut src = String::new();
        src.push_str(
            "module cseq #(behavior=\"seq\") (input [7:0] i, output [7:0] o); endmodule\n",
        );
        src.push_str(
            "module ctrl (input [7:0] instr, output [7:0] go); cseq u (.i(instr), .o(go)); endmodule\n",
        );
        for s in 0..stages {
            src.push_str(&format!(
                "module st{s} #(behavior=\"st{s}\") (input [{hi}:0] x, output [{hi}:0] y); endmodule\n",
                hi = w - 1
            ));
        }
        src.push_str(&format!(
            "module lane (input [{hi}:0] x, output [{hi}:0] y);\n",
            hi = w - 1
        ));
        for s in 0..stages.saturating_sub(1) {
            src.push_str(&format!("  wire [{hi}:0] t{s};\n", hi = w - 1));
        }
        for s in 0..stages {
            let input = if s == 0 {
                "x".to_string()
            } else {
                format!("t{}", s - 1)
            };
            let output = if s == stages - 1 {
                "y".to_string()
            } else {
                format!("t{s}")
            };
            src.push_str(&format!("  st{s} u{s} (.x({input}), .y({output}));\n"));
        }
        src.push_str("endmodule\n");
        src.push_str(&format!(
            "module split #(behavior=\"split\") (input [{hi}:0] x, output [{hi}:0] y); endmodule\n\
             module join #(behavior=\"join\") (input [{hi}:0] x, output [{hi}:0] y); endmodule\n",
            hi = w - 1
        ));
        src.push_str(&format!(
            "module dp (input [{hi}:0] din, input [7:0] go, output [{hi}:0] dout);\n",
            hi = w - 1
        ));
        src.push_str(&format!(
            "  wire [{hi}:0] xs;\n  wire [{hi}:0] ys;\n",
            hi = w - 1
        ));
        src.push_str("  split sp (.x(din), .y(xs));\n");
        for l in 0..lanes {
            src.push_str(&format!("  lane l{l} (.x(xs), .y(ys));\n"));
        }
        src.push_str("  join jo (.x(ys), .y(dout));\nendmodule\n");
        src.push_str(&format!(
            "module top (input [7:0] instr, input [{hi}:0] din, output [{hi}:0] dout);\n\
             \x20 wire [7:0] go;\n\
             \x20 ctrl c (.instr(instr), .go(go));\n\
             \x20 dp d (.din(din), .go(go), .dout(dout));\nendmodule\n",
            hi = w - 1
        ));

        let design = parse(&src).unwrap();
        let unit = |_: &vfpga::rtl::FlatNode| ResourceVec {
            luts: 100,
            ffs: 100,
            bram_kb: 1,
            uram_kb: 0,
            dsps: 1,
        };
        let opts = DecomposeOptions::new("ctrl");
        let d = decompose(&design, "top", &opts, &unit).unwrap();
        // Leaves: split + lanes*stages + join.
        assert_eq!(d.tree.leaf_count(), 2 + lanes * stages);
        // Resources conserved.
        assert_eq!(
            d.tree.root_block().resources.luts,
            100 * (2 + lanes * stages) as u64
        );
        // The root is always a pipeline exposing the farm's data
        // parallelism underneath. With three or more lanes the lanes group
        // first (pipeline [split, data(lane-pipelines), join]); with two
        // lanes the block graph is one cycle and the relaxed fallback
        // groups per *stage* instead (pipeline [split, data, data, ...,
        // join]). Both are valid soft-block decompositions.
        let root = d.tree.root_block();
        assert_eq!(root.pattern(), Some(Pattern::Pipeline));
        if lanes >= 3 {
            assert_eq!(root.children().len(), 3);
            let mid = d.tree.block(root.children()[1]);
            assert_eq!(mid.pattern(), Some(Pattern::Data));
            assert_eq!(mid.children().len(), lanes);
            let lane = d.tree.block(mid.children()[0]);
            assert_eq!(lane.children().len(), stages);
        } else {
            // Two-lane farms decompose via the relaxed fallback; the exact
            // nesting varies, but the data parallelism must be captured:
            // every lane leaf sits under some data node of width `lanes`.
            let data_nodes = d
                .tree
                .iter()
                .filter(|b| b.pattern() == Some(Pattern::Data))
                .count();
            assert!(data_nodes >= 1, "no data parallelism found");
            for b in d.tree.iter() {
                if b.pattern() == Some(Pattern::Data) {
                    assert_eq!(b.children().len(), lanes);
                }
            }
        }
    }
}

/// The partitioner conserves resources across any unit count it offers.
#[test]
fn partitioner_conserves_resources() {
    use vfpga::core::{partition, reduction};
    use vfpga::fabric::ResourceVec;
    for lanes in 2usize..9 {
        for iterations in 1usize..4 {
            let width = 1usize << lanes.min(5);
            let tree = reduction(
                width.max(4),
                ResourceVec {
                    luts: 64,
                    ffs: 64,
                    bram_kb: 0,
                    uram_kb: 0,
                    dsps: 2,
                },
                16,
            );
            let plan = partition(&tree, iterations);
            let total = tree.root_block().resources;
            for units in 1..=plan.max_units() {
                let parts = plan.units_for(units).unwrap();
                let sum: u64 = parts.iter().map(|p| p.resources.luts).sum();
                assert_eq!(sum, total.luts, "units={units}");
            }
        }
    }
}

// ---- fuzz counterexamples ----------------------------------------------
//
// Shrunk inputs harvested from the differential fuzzer (crates/fuzz) run
// against deliberately mutated code, checked in as concrete regression
// tests so the classes of bug they expose stay dead even when the fuzzer
// itself is not running.

/// Counterexample from the partition-conservation oracle (seed 42, case
/// 0) against a data-split mutant that dropped the last child: the
/// smallest tree where left + right must equal the parent is a two-leaf
/// data block with asymmetric resources.
#[test]
fn fuzz_counterexample_two_leaf_data_split_conserves_resources() {
    use vfpga::core::{partition, Pattern, SoftBlock, SoftBlockId, SoftBlockKind, SoftBlockTree};
    use vfpga::fabric::ResourceVec;

    let leaf = |id: usize, luts: u64, ffs: u64| SoftBlock {
        id: SoftBlockId(id),
        kind: SoftBlockKind::Leaf {
            path: format!("u{id}"),
            module: "m".into(),
            behavior: None,
        },
        resources: ResourceVec {
            luts,
            ffs,
            ..ResourceVec::default()
        },
        content_hash: id as u64,
    };
    let root_resources = ResourceVec {
        luts: 3,
        ffs: 1,
        ..ResourceVec::default()
    };
    let tree = SoftBlockTree::new(
        vec![
            leaf(0, 2, 0),
            leaf(1, 1, 1),
            SoftBlock {
                id: SoftBlockId(2),
                kind: SoftBlockKind::Composite {
                    pattern: Pattern::Data,
                    children: vec![SoftBlockId(0), SoftBlockId(1)],
                    link_widths: vec![],
                },
                resources: root_resources,
                content_hash: 2,
            },
        ],
        SoftBlockId(2),
    );
    let plan = partition(&tree, 4);
    assert_eq!(plan.root().resources, root_resources);
    let split = plan.root().split.as_ref().expect("data root splits");
    let mut sum = split.left.resources;
    sum += split.right.resources;
    assert_eq!(sum, root_resources, "split must conserve resources");
    let clusters = plan.units_for(2).unwrap();
    let total: ResourceVec = clusters.iter().map(|c| c.resources).sum();
    assert_eq!(total, root_resources);
}

/// Counterexample from the hsabs-slots oracle (seed 42, case 0) against
/// an occupancy mutant that kept counting failed devices as capacity:
/// one allocation on a healthy device plus one failed empty device is
/// enough to tell degraded-mode occupancy from the naive ratio.
#[test]
fn fuzz_counterexample_occupancy_excludes_failed_devices() {
    use vfpga::fabric::{Cluster, DeviceId, DeviceType};
    use vfpga::hsabs::{HsCompiler, LowLevelController, VirtualBlockSpec};

    let dt = DeviceType::xcvu37p();
    let cluster = Cluster::new(vec![dt.clone(), dt.clone(), dt.clone()]);
    let mut ctl = LowLevelController::new(&cluster);
    let spec = VirtualBlockSpec::for_device(&dt);
    let slot = *spec.slot_resources();
    let demand = vfpga::fabric::ResourceVec {
        luts: slot.luts * 2,
        ffs: slot.ffs * 2,
        bram_kb: slot.bram_kb * 2,
        uram_kb: slot.uram_kb * 2,
        dsps: slot.dsps * 2,
    };
    let image = HsCompiler::default()
        .compile("fuzz-ce", &demand, &dt)
        .unwrap();
    let blocks = image.blocks();
    ctl.configure(DeviceId(0), &image).unwrap();
    ctl.evict_device(DeviceId(2));
    // Two healthy devices remain; the failed (empty) third must not
    // dilute the ratio.
    let healthy_slots = ctl.slots_total(DeviceId(0)) + ctl.slots_total(DeviceId(1));
    let want = blocks as f64 / healthy_slots as f64;
    assert!(
        (ctl.occupancy() - want).abs() < 1e-12,
        "occupancy {} should be {want} over healthy capacity only",
        ctl.occupancy()
    );
}

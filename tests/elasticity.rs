//! Property suite for the elastic reprovisioning engine: invariants that
//! must hold for *any* seed, not just the benchmarked ones.
//!
//! * With elasticity fully on — promotions growing tenants, preemptions
//!   shrinking them, faults interrupting them mid-resize — every arrival
//!   is still accounted for and occupancy stays a valid fraction.
//! * A promotion never grows a deployment past the largest variant the
//!   mapping database offers, and every reprovisioning event moves the
//!   unit count in the direction its name claims.
//! * With elasticity off, the engine is provably absent: the report is
//!   byte-identical to one from the default (pre-elasticity) tuning.

use vfpga::runtime::{
    run_cloud_sim_tuned, AdmissionTuning, CloudReport, ElasticityPolicy, Policy, RecoveryPolicy,
    SystemController, DEFAULT_TRACE_CAPACITY,
};
use vfpga::sim::{FaultPlan, FaultPlanParams, SimTime, TraceEventKind};
use vfpga_bench::elastic::{bursty_workload, ElasticConfig};
use vfpga_bench::Catalog;

/// The fixed seeds the sweep fans over (matching the chaos suite).
const SEEDS: [u64; 4] = [1, 7, 42, 2024];

/// A bursty workload sized for the test suite (the 10k version runs via
/// `repro elastic`).
fn workload(seed: u64, tasks: usize) -> Vec<vfpga::workload::TaskArrival> {
    bursty_workload(&ElasticConfig {
        tasks,
        seed,
        ..ElasticConfig::default()
    })
}

/// One tuned run over the bursty workload.
fn elastic_run(
    catalog: &Catalog,
    arrivals: &[vfpga::workload::TaskArrival],
    faults: &FaultPlan,
    tuning: AdmissionTuning,
) -> CloudReport {
    let mut controller =
        SystemController::new(catalog.cluster.clone(), catalog.db.clone(), Policy::Full);
    run_cloud_sim_tuned(
        &mut controller,
        arrivals,
        &|task| catalog.instance_for(task),
        &|task, deployment| catalog.service_time(task, deployment, Policy::Full),
        faults,
        RecoveryPolicy::default(),
        DEFAULT_TRACE_CAPACITY,
        tuning,
    )
    .expect("simulation completes")
}

/// A fault plan that keeps failing devices across the whole workload
/// span, so interruptions land while deployments are mid-promotion.
fn fault_plan(
    catalog: &Catalog,
    arrivals: &[vfpga::workload::TaskArrival],
    seed: u64,
) -> FaultPlan {
    let last = arrivals.last().expect("non-empty workload").at;
    FaultPlan::generate(
        FaultPlanParams {
            mttf: SimTime::from_ms(5.0),
            mttr: SimTime::from_ms(1.0),
            configure_failure_prob: 0.0,
            horizon: SimTime::from_secs(last.as_secs() * 1.5),
        },
        catalog.cluster.len(),
        seed,
    )
}

#[test]
fn elastic_chaos_sweep_preserves_accounting() {
    let catalog = Catalog::build();
    for seed in SEEDS {
        let arrivals = workload(seed, 300);
        let faults = fault_plan(&catalog, &arrivals, seed);
        let tuning = AdmissionTuning {
            elasticity: ElasticityPolicy::FULL,
            ..AdmissionTuning::default()
        };
        let report = elastic_run(&catalog, &arrivals, &faults, tuning);
        assert!(
            report.accounts_for_all_arrivals(),
            "seed {seed}: {} completed + {} never_deployed + {} lost != {} arrivals",
            report.completed,
            report.never_deployed,
            report.lost,
            arrivals.len()
        );
        assert!(
            report.device_failures > 0,
            "seed {seed}: plan injected no failures"
        );
        // Resizes must never double-count capacity: occupancy stays a
        // valid fraction at every sample even while promotions grow
        // footprints and failures shrink the denominator.
        for &(_, value) in report.occupancy_series.samples() {
            assert!(
                (0.0..=1.0 + 1e-12).contains(&value),
                "seed {seed}: occupancy sample {value} outside [0, 1]"
            );
        }
        // Every migration or loss traces back to an interruption (device
        // failure or preemption-displacement), never out of thin air.
        assert!(
            report.migrated + report.lost <= report.interrupted,
            "seed {seed}: migrated {} + lost {} exceeds interrupted {}",
            report.migrated,
            report.lost,
            report.interrupted
        );
    }
}

#[test]
fn promotions_never_exceed_the_largest_catalog_variant() {
    let catalog = Catalog::build();
    let max_units = catalog
        .db
        .iter()
        .flat_map(|e| e.options.iter().map(|o| o.num_units() as u32))
        .max()
        .expect("database has options");
    let arrivals = workload(7, 400);
    let tuning = AdmissionTuning {
        elasticity: ElasticityPolicy::FULL,
        ..AdmissionTuning::default()
    };
    let report = elastic_run(&catalog, &arrivals, &FaultPlan::none(), tuning);
    assert_eq!(report.trace.dropped(), 0, "ring too small for this sweep");
    let (mut promotions, mut preemptions) = (0u64, 0u64);
    for event in report.trace.iter() {
        match event.kind {
            TraceEventKind::ScaleUp {
                task,
                from_units,
                to_units,
            } => {
                promotions += 1;
                assert!(
                    to_units > from_units,
                    "task {task}: promotion {from_units} -> {to_units} did not grow"
                );
                assert!(
                    to_units <= max_units,
                    "task {task}: promoted to {to_units} units, catalog max is {max_units}"
                );
            }
            TraceEventKind::PreemptiveScaleDown {
                task,
                from_units,
                to_units,
            } => {
                preemptions += 1;
                assert!(
                    to_units < from_units,
                    "task {task}: preemption {from_units} -> {to_units} did not shrink"
                );
            }
            _ => {}
        }
    }
    assert_eq!(report.promotions, promotions, "counter/trace disagree");
    assert_eq!(report.preemptions, preemptions, "counter/trace disagree");
    assert!(promotions > 0, "sweep exercised no promotions");
    assert!(preemptions > 0, "sweep exercised no preemptions");
}

#[test]
fn elasticity_off_reports_are_byte_identical_to_default_tuning() {
    let catalog = Catalog::build();
    for seed in [7, 2024] {
        let arrivals = workload(seed, 300);
        let faults = fault_plan(&catalog, &arrivals, seed);
        let explicit = AdmissionTuning {
            elasticity: ElasticityPolicy::DISABLED,
            ..AdmissionTuning::default()
        };
        let off = elastic_run(&catalog, &arrivals, &faults, explicit)
            .to_json()
            .pretty();
        let default = elastic_run(&catalog, &arrivals, &faults, AdmissionTuning::default())
            .to_json()
            .pretty();
        assert_eq!(
            off, default,
            "seed {seed}: disabled elasticity left a footprint in the report"
        );
    }
}

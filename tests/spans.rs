//! Property tests over the span tracer: for randomly drawn workload and
//! fault parameters (seeded, so failures reproduce), every span a faulted
//! cloud run emits must be well-formed — closed, non-negative duration,
//! nested strictly inside its parent — and the critical-path phase buckets
//! of every completed task must sum *exactly* (integer picoseconds, no
//! tolerance) to the task's end-to-end latency. Also pins the Chrome-trace
//! export to be byte-identical for a fixed seed.

use std::collections::HashMap;

use vfpga::runtime::{run_cloud_sim_faulted, Policy, RecoveryPolicy, SystemController};
use vfpga::sim::{
    chrome_trace_events, CriticalPath, FaultPlan, FaultPlanParams, Rng, SimTime, SpanId, TraceId,
};
use vfpga::workload::{generate_workload, Composition};
use vfpga_bench::Catalog;

/// One randomly-parameterized faulted run; returns its report.
fn random_run(catalog: &Catalog, rng: &mut Rng) -> vfpga::runtime::CloudReport {
    let tasks = 20 + rng.below(60);
    let composition = Composition::TABLE1[rng.below(Composition::TABLE1.len())];
    let mean_interarrival = SimTime::from_us(rng.range_f64(20.0, 120.0));
    let workload_seed = rng.next_u64();
    let arrivals = generate_workload(composition, tasks, mean_interarrival, workload_seed);
    let horizon = SimTime::from_us(mean_interarrival.as_us() * tasks as f64 * 1.5);
    let plan = FaultPlan::generate(
        FaultPlanParams {
            mttf: SimTime::from_us(rng.range_f64(400.0, 2000.0)),
            mttr: SimTime::from_us(rng.range_f64(100.0, 600.0)),
            configure_failure_prob: rng.range_f64(0.0, 0.1),
            horizon,
        },
        catalog.cluster.len(),
        rng.next_u64(),
    );
    let mut controller =
        SystemController::new(catalog.cluster.clone(), catalog.db.clone(), Policy::Full);
    run_cloud_sim_faulted(
        &mut controller,
        &arrivals,
        &|task| catalog.instance_for(task),
        &|task, deployment| catalog.service_time(task, deployment, Policy::Full),
        &plan,
        RecoveryPolicy::default(),
        4096,
    )
    .expect("faulted simulation completes")
}

#[test]
fn spans_are_well_formed_under_random_faulted_runs() {
    let catalog = Catalog::build();
    let mut rng = Rng::seed_from_u64(0x5EED_0525);
    for round in 0..6 {
        let report = random_run(&catalog, &mut rng);
        let spans = &report.spans;
        assert_eq!(
            spans.open_count(),
            0,
            "round {round}: {} spans left open at end of run",
            spans.open_count()
        );
        let by_id: HashMap<SpanId, &vfpga::sim::Span> =
            spans.spans().iter().map(|s| (s.id, s)).collect();
        for span in spans.spans() {
            let end = span
                .end
                .unwrap_or_else(|| panic!("round {round}: span `{}` never closed", span.name));
            assert!(
                end >= span.begin,
                "round {round}: span `{}` ends at {end:?} before it begins at {:?}",
                span.name,
                span.begin
            );
            if let Some(parent_id) = span.parent {
                let parent = by_id[&parent_id];
                let parent_end = parent.end.expect("parent closed");
                assert!(
                    span.begin >= parent.begin && end <= parent_end,
                    "round {round}: span `{}` [{:?}, {end:?}] escapes parent `{}` [{:?}, {parent_end:?}]",
                    span.name,
                    span.begin,
                    parent.name,
                    parent.begin
                );
                assert_eq!(
                    span.trace, parent.trace,
                    "round {round}: span `{}` crosses traces from its parent `{}`",
                    span.name, parent.name
                );
            }
        }
        // Phase buckets partition end-to-end latency exactly: integer
        // picosecond equality, not an epsilon.
        let cp = CriticalPath::analyze(spans);
        for task in &cp.tasks {
            assert_eq!(
                task.phase_sum(),
                task.total,
                "round {round}: trace {:?} phases {:?} do not sum to total {:?}",
                task.trace,
                task.phases,
                task.total
            );
            assert!(task.trace != TraceId::NONE);
        }
        // Completed tasks all surface in the critical path.
        assert_eq!(
            cp.tasks.len() as u64,
            report.completed,
            "round {round}: critical path covers {} tasks but {} completed",
            cp.tasks.len(),
            report.completed
        );
    }
}

#[test]
fn chrome_trace_export_is_byte_identical_for_a_fixed_seed() {
    let catalog = Catalog::build();
    let render = || {
        let mut rng = Rng::seed_from_u64(99);
        let report = random_run(&catalog, &mut rng);
        chrome_trace_events(&[&report.spans]).pretty()
    };
    let first = render();
    let second = render();
    assert!(first == second, "trace export diverged for a fixed seed");
    assert!(
        first.contains("\"ph\": \"X\""),
        "no complete events exported"
    );
}

//! A/B determinism suite for the admission fast path: the capacity-epoch
//! feasibility cache must change how much work admission does, never what
//! it admits. Every artifact the repro harness writes — the metrics
//! report body, the chaos document, the trace export — must come out
//! byte-identical with the cache on and off, across seeds; and the cache
//! epoch must invalidate on every operation that can increase capacity
//! (release, evict, recover — including the sibling releases behind a
//! scale-down redeploy).

use vfpga::fabric::DeviceId;
use vfpga::runtime::{
    run_cloud_sim_tuned, AdmissionTuning, CloudReport, Policy, RecoveryPolicy, RejectReason,
    SystemController, DEFAULT_TRACE_CAPACITY,
};
use vfpga::sim::{chrome_trace_events, FaultPlan, Json, SimTime};
use vfpga::workload::{generate_workload, Composition};
use vfpga_bench::chaos::{self, ChaosConfig};
use vfpga_bench::Catalog;

/// The two seeds the A/B comparisons fan over (a subset of the chaos
/// sweep's seed matrix, kept small because every check runs each seed
/// twice).
const AB_SEEDS: [u64; 2] = [7, 2024];

/// One saturated steady-state run (no faults) with the cache on or off.
fn steady_run(catalog: &Catalog, seed: u64, cache: bool) -> CloudReport {
    let arrivals = generate_workload(Composition::TABLE1[4], 300, SimTime::from_us(20.0), seed);
    let mut controller =
        SystemController::new(catalog.cluster.clone(), catalog.db.clone(), Policy::Full);
    controller.set_feasibility_cache(cache);
    run_cloud_sim_tuned(
        &mut controller,
        &arrivals,
        &|task| catalog.instance_for(task),
        &|task, deployment| catalog.service_time(task, deployment, Policy::Full),
        &FaultPlan::none(),
        RecoveryPolicy::default(),
        DEFAULT_TRACE_CAPACITY,
        AdmissionTuning::default(),
    )
    .expect("steady simulation completes")
}

#[test]
fn cache_ab_steady_reports_are_byte_identical() {
    let catalog = Catalog::build();
    for seed in AB_SEEDS {
        let on = steady_run(&catalog, seed, true).to_json().pretty();
        let off = steady_run(&catalog, seed, false).to_json().pretty();
        assert_eq!(
            on, off,
            "seed {seed}: cached report diverged from uncached under saturation"
        );
    }
}

#[test]
fn cache_ab_chaos_artifacts_are_byte_identical() {
    let catalog = Catalog::build();
    for seed in AB_SEEDS {
        let run_with = |feasibility_cache: bool| {
            chaos::run(
                &catalog,
                &ChaosConfig {
                    seed,
                    feasibility_cache,
                    ..ChaosConfig::default()
                },
            )
        };
        let on = run_with(true);
        let off = run_with(false);
        assert_eq!(
            on.to_json().pretty(),
            off.to_json().pretty(),
            "seed {seed}: chaos artifact diverged with the cache on vs off"
        );
        // The comparison is meaningful only if the cache actually served
        // attempts and chaos actually interrupted work.
        assert!(on.report.interrupted > 0, "seed {seed}: chaos was a no-op");
    }
}

#[test]
fn cache_ab_trace_exports_are_byte_identical() {
    let catalog = Catalog::build();
    let run_with = |feasibility_cache: bool| {
        chaos::run(
            &catalog,
            &ChaosConfig {
                seed: 7,
                feasibility_cache,
                ..ChaosConfig::default()
            },
        )
    };
    let on = run_with(true);
    let off = run_with(false);
    // The trace artifact's payload: the Chrome trace-event array plus the
    // critical-path decomposition, both derived from the span forest. A
    // cache hit replays the exact probe outcome (capacity rejections have
    // no reconfigure children), so the forests must match span for span.
    let export = |run: &chaos::ChaosReport| {
        Json::obj()
            .with("critical_path", run.report.critical_path.to_json())
            .with("traceEvents", chrome_trace_events(&[&run.report.spans]))
            .pretty()
    };
    assert!(!on.report.spans.is_empty());
    assert_eq!(
        export(&on),
        export(&off),
        "trace export diverged with the cache on vs off"
    );
}

/// Fills the cluster with deployments of `instance` until the controller
/// rejects one, returning what was deployed.
fn fill_with(controller: &mut SystemController, instance: &str) -> Vec<vfpga::runtime::Deployment> {
    let mut live = Vec::new();
    loop {
        match controller.try_deploy(instance).expect("known instance") {
            Some(d) => live.push(d),
            None => return live,
        }
    }
}

#[test]
fn capacity_epoch_invalidates_on_every_capacity_changing_operation() {
    let catalog = Catalog::build();
    let mut c = SystemController::new(catalog.cluster.clone(), catalog.db.clone(), Policy::Full);
    let live = fill_with(&mut c, "bw-l");
    assert!(!live.is_empty(), "cluster must hold at least one bw-l");

    // The rejection that ended the fill is now cached: replaying the
    // attempt must answer from the cache, not probe.
    let probes_before = c.stats().probes;
    let epoch = c.capacity_epoch();
    for _ in 0..3 {
        let outcome = c.try_deploy_explained("bw-l").unwrap();
        assert_eq!(outcome.unwrap_err(), RejectReason::InsufficientCapacity);
    }
    assert_eq!(
        c.stats().probes,
        probes_before,
        "cached replay must not probe"
    );
    assert_eq!(
        c.capacity_epoch(),
        epoch,
        "rejections must not move the epoch"
    );

    // Release: capacity grows, the epoch must move, and the next attempt
    // must probe (and here, succeed).
    let released = live.last().unwrap();
    c.release(released).unwrap();
    assert_ne!(c.capacity_epoch(), epoch, "release must invalidate");
    let probes_before = c.stats().probes;
    let redeployed = c
        .try_deploy("bw-l")
        .unwrap()
        .expect("released capacity admits again");
    assert!(
        c.stats().probes > probes_before,
        "fresh epoch must re-probe"
    );
    // A successful configure only shrinks capacity: cached rejections
    // stay valid, so deploys must NOT move the epoch.
    let epoch = c.capacity_epoch();

    // Evict: a device failure frees the victims' surviving units (the
    // capacity a scale-down redeploy then claims) — the epoch must move
    // even though the failed device itself left the pool.
    let victim_device = redeployed.placements[0].device;
    let interrupted = c.handle_device_failure(victim_device);
    assert!(!interrupted.is_empty(), "the failed device held units");
    assert_ne!(c.capacity_epoch(), epoch, "evict must invalidate");
    let epoch = c.capacity_epoch();

    // Scale-down redeploy: with the original device gone, the interrupted
    // instance redeploys onto the freed sibling capacity. The deploy
    // itself (a configure) must not move the epoch.
    let scale_down = c.try_deploy("bw-l").unwrap();
    if let Some(d) = &scale_down {
        assert_eq!(c.capacity_epoch(), epoch, "configure must not invalidate");
        c.release(d).unwrap();
        assert_ne!(c.capacity_epoch(), epoch, "release must invalidate");
    }
    let epoch = c.capacity_epoch();

    // Recover: the device rejoins with every slot free — the epoch must
    // move so cached capacity rejections are re-probed against it.
    c.handle_device_recovery(victim_device);
    assert_ne!(c.capacity_epoch(), epoch, "recover must invalidate");

    // Idempotent no-ops must not churn the epoch: recovering a healthy
    // device or failing an already-failed one changes no capacity.
    let epoch = c.capacity_epoch();
    c.handle_device_recovery(victim_device);
    assert_eq!(
        c.capacity_epoch(),
        epoch,
        "no-op recovery must not invalidate"
    );
    let other = DeviceId(victim_device.0);
    c.handle_device_failure(other);
    let failed_epoch = c.capacity_epoch();
    c.handle_device_failure(other);
    assert_eq!(
        c.capacity_epoch(),
        failed_epoch,
        "re-failing a failed device must not invalidate"
    );
}

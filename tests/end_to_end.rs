//! Cross-crate integration: the full mapping flow plus runtime lifecycle
//! on the heterogeneous cluster.

use vfpga::core::Pattern;
use vfpga::fabric::DeviceId;
use vfpga::runtime::{Policy, SystemController};
use vfpga::workload::{RnnKind, RnnTask};
use vfpga_bench::Catalog;

#[test]
fn catalog_decompositions_expose_paper_structure() {
    let catalog = Catalog::build();
    // After the Section 3 modifications, every instance's data-path root
    // must be data-parallel (the precondition for the scale-out
    // optimization).
    for (name, d) in &catalog.decompositions {
        assert_eq!(
            d.tree.root_block().pattern(),
            Some(Pattern::Data),
            "{name}: root must be data-parallel"
        );
        let tiles = catalog.instances[name].config.tiles;
        assert_eq!(
            d.tree.root_block().children().len(),
            tiles,
            "{name}: one child per tile engine"
        );
        // Each tile child is the seven-stage pipeline (with the DPU lane
        // split adding a data-parallel level underneath).
        let child = d.tree.block(d.tree.root_block().children()[0]);
        assert_eq!(child.pattern(), Some(Pattern::Pipeline));
        assert_eq!(child.children().len(), 7);
    }
}

#[test]
fn spatial_sharing_multiple_tenants_per_fpga() {
    let catalog = Catalog::build();
    let mut controller =
        SystemController::new(catalog.cluster.clone(), catalog.db.clone(), Policy::Full);
    // Small instances pack several to a device: deploy until the cluster
    // refuses, then count.
    let mut deployments = Vec::new();
    while let Some(d) = controller.try_deploy("bw-s").unwrap() {
        deployments.push(d);
        if deployments.len() > 64 {
            panic!("runaway deployment loop");
        }
    }
    assert!(
        deployments.len() > catalog.cluster.len(),
        "spatial sharing must fit more than one tenant per FPGA (got {})",
        deployments.len()
    );
    // Some single device hosts at least two deployments.
    let mut per_device = std::collections::HashMap::new();
    for d in &deployments {
        for p in &d.placements {
            *per_device.entry(p.device).or_insert(0usize) += 1;
        }
    }
    assert!(per_device.values().any(|&n| n >= 2));
    // Release everything; capacity returns.
    for d in deployments {
        controller.release(&d).unwrap();
    }
    assert_eq!(controller.occupancy(), 0.0);
    assert!(controller.try_deploy("bw-s").unwrap().is_some());
}

#[test]
fn baseline_policy_is_whole_device() {
    let catalog = Catalog::build();
    let mut controller = SystemController::new(
        catalog.cluster.clone(),
        catalog.db.clone(),
        Policy::Baseline,
    );
    // Exactly one tenant per device, so at most 4 deployments.
    let mut count = 0;
    while controller.try_deploy("bw-s").unwrap().is_some() {
        count += 1;
        assert!(count <= catalog.cluster.len());
    }
    assert_eq!(count, catalog.cluster.len());
}

#[test]
fn large_instance_needs_the_big_device_or_multiple_fpgas() {
    let catalog = Catalog::build();
    let entry = catalog.db.entry("bw-l").unwrap();
    let single = entry
        .options
        .iter()
        .find(|o| o.num_units() == 1)
        .expect("single-FPGA option");
    assert!(single.units[0].images.contains_key("XCVU37P"));
    assert!(
        !single.units[0].images.contains_key("XCKU115"),
        "bw-l cannot fit the KU115 in one piece"
    );
    // But some multi-unit option has a unit that fits the KU115 — the
    // heterogeneity the restricted policy cannot exploit.
    let hetero_capable = entry
        .options
        .iter()
        .any(|o| o.num_units() > 1 && o.units.iter().any(|u| u.images.contains_key("XCKU115")));
    assert!(hetero_capable);
}

#[test]
fn full_policy_spans_heterogeneous_devices_under_pressure() {
    let catalog = Catalog::build();
    let mut controller =
        SystemController::new(catalog.cluster.clone(), catalog.db.clone(), Policy::Full);
    // Saturate the three VU37P devices with large tenants.
    let mut held = Vec::new();
    while let Some(d) = controller.try_deploy("bw-l").unwrap() {
        let single_vu = d.num_units() == 1
            && catalog
                .cluster
                .device(d.placements[0].device)
                .device_type()
                .name()
                == "XCVU37P";
        held.push(d);
        if !single_vu {
            break;
        }
    }
    // The last deployment (if any beyond the VU37Ps) must have used the
    // KU115 somewhere — heterogeneous multi-FPGA deployment.
    let last = held.last().unwrap();
    let uses_ku = last.placements.iter().any(|p| p.device == DeviceId(3));
    assert!(
        uses_ku || held.len() <= 3,
        "under pressure the full policy should reach the KU115"
    );
    for d in held {
        controller.release(&d).unwrap();
    }
}

#[test]
fn restricted_policy_cannot_span_types() {
    let catalog = Catalog::build();
    let mut controller = SystemController::new(
        catalog.cluster.clone(),
        catalog.db.clone(),
        Policy::Restricted,
    );
    let mut held = Vec::new();
    while let Some(d) = controller.try_deploy("bw-l").unwrap() {
        // Every deployment must stay within one device type.
        let types: std::collections::HashSet<&str> = d
            .placements
            .iter()
            .map(|p| catalog.cluster.device(p.device).device_type().name())
            .collect();
        assert_eq!(types.len(), 1, "restricted deployment spans {types:?}");
        held.push(d);
        if held.len() > 16 {
            break;
        }
    }
    assert!(!held.is_empty());
}

#[test]
fn service_times_are_sane_across_policies() {
    let catalog = Catalog::build();
    let task = RnnTask::new(RnnKind::Lstm, 512, 25);
    for policy in [Policy::Baseline, Policy::Full] {
        let mut controller =
            SystemController::new(catalog.cluster.clone(), catalog.db.clone(), policy);
        let d = controller
            .try_deploy(&catalog.instance_for(&task))
            .unwrap()
            .unwrap();
        let t = catalog.service_time(&task, &d, policy);
        // Table 4 scale: tens of microseconds to a few ms.
        assert!(
            t.as_ms() > 0.01 && t.as_ms() < 10.0,
            "{policy:?}: {} ms",
            t.as_ms()
        );
        controller.release(&d).unwrap();
    }
}

#[test]
fn generated_rtl_round_trips_through_text() {
    use vfpga::accel::{generate_rtl, AcceleratorConfig, TOP_MODULE};
    use vfpga::rtl::parse;
    // The generator's output survives print -> parse -> print unchanged,
    // so designs can be exchanged with external tools.
    let design = generate_rtl(&AcceleratorConfig::new("rt", 5));
    let text = design.to_source();
    let reparsed = parse(&text).expect("emitted source parses");
    assert_eq!(design.len(), reparsed.len());
    assert_eq!(
        design.leaf_instance_count(TOP_MODULE).unwrap(),
        reparsed.leaf_instance_count(TOP_MODULE).unwrap()
    );
    assert_eq!(
        design.canonical_hash(TOP_MODULE).unwrap(),
        reparsed.canonical_hash(TOP_MODULE).unwrap()
    );
    assert_eq!(reparsed.to_source(), text);
}

#[test]
fn four_machine_timing_cosim_completes() {
    use vfpga::accel::{AcceleratorConfig, CycleSim, TimingModel};
    use vfpga::core::scaleout::{insert_communication, remote_window, reorder_for_overlap};
    use vfpga::runtime::co_simulate_timing;
    use vfpga::sim::{LinkParams, SimTime};
    use vfpga::workload::{generate_program, SliceSpec};

    let machines = 4;
    let task = RnnTask::new(RnnKind::Gru, 512, 4);
    let cfg = vfpga::accel::AcceleratorConfig::new("m4", 8).scaled_down(machines);
    let _ = AcceleratorConfig::new("unused", 1);
    let mut sims: Vec<CycleSim> = (0..machines)
        .map(|m| {
            let rnn = generate_program(task, SliceSpec::new(m, machines));
            let window = remote_window(&cfg.isa, m, machines).unwrap();
            let p = insert_communication(&rnn.program, &rnn.state_slots, &window).unwrap();
            let p = reorder_for_overlap(&p, &window).unwrap();
            let mut s = CycleSim::new(
                TimingModel::for_config(&cfg, 400.0),
                &p,
                rnn.mat_shapes,
                rnn.dram_lens,
            );
            s.set_remote_window(Some(window));
            s
        })
        .collect();
    let link = LinkParams::new(SimTime::from_ns(500.0), 25.0);
    let result = co_simulate_timing(&mut sims, link, SimTime::ZERO).unwrap();
    assert_eq!(result.finish.len(), 4);
    assert!(result.makespan > SimTime::ZERO);
    // All machines finish within one barrier round of each other.
    let min = result
        .finish
        .iter()
        .copied()
        .fold(SimTime::MAX, SimTime::min);
    assert!(result.makespan.saturating_sub(min) < SimTime::from_us(50.0));
}

//! Multi-tenant cloud scheduling on the heterogeneous cluster.
//!
//! ```text
//! cargo run --release --example cloud_scheduler
//! ```
//!
//! Builds the full evaluated system (instance catalog + mapping database),
//! generates a mixed synthetic workload (Table 1, set 7), and serves it
//! under the three runtime systems of the paper's Fig. 12: the AS-ISA-only
//! baseline, the same-device-type-restricted policy, and the full
//! framework.

use vfpga::runtime::{run_cloud_sim, Policy, SystemController};
use vfpga::sim::SimTime;
use vfpga::workload::{generate_workload, Composition};
use vfpga_bench::Catalog;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("compiling the instance catalog (decompose + partition + HS-compile)...");
    let catalog = Catalog::build();

    let arrivals = generate_workload(
        Composition::TABLE1[6], // 33% S / 33% M / 34% L
        150,
        SimTime::from_us(50.0),
        7,
    );
    println!(
        "workload: {} tasks, first at {}, last at {}",
        arrivals.len(),
        arrivals[0].at,
        arrivals.last().unwrap().at
    );

    for policy in [Policy::Baseline, Policy::Restricted, Policy::Full] {
        let mut controller =
            SystemController::new(catalog.cluster.clone(), catalog.db.clone(), policy);
        if policy == Policy::Baseline {
            // The AS-ISA baseline is statically provisioned offline.
            controller = controller.with_provisioning(catalog.baseline_provisioning());
        }
        let report = run_cloud_sim(
            &mut controller,
            &arrivals,
            &|task| catalog.instance_for(task),
            &|task, deployment| catalog.service_time(task, deployment, policy),
        )?;
        println!(
            "{policy:?}: {:.0} tasks/s | mean latency {:.3} ms | mean queue wait {:.3} ms",
            report.throughput_per_s,
            report.latency.mean() * 1e3,
            report.queue_wait.mean() * 1e3,
        );
    }
    Ok(())
}

//! The high-level entry point: write an accelerator in the
//! parallel-pattern dataflow DSL, lower it to RTL, and push it through the
//! whole virtualization flow.
//!
//! ```text
//! cargo run --release --example dataflow_dsl
//! ```
//!
//! The paper decomposes at the RTL level so any higher-level frontend that
//! emits RTL plugs in unchanged; this example is that frontend.

use vfpga::core::{decompose, partition, DecomposeOptions, MappingDatabase};
use vfpga::fabric::{Cluster, ResourceVec};
use vfpga::hls::Dataflow;
use vfpga::hsabs::HsCompiler;
use vfpga::runtime::{Policy, SystemController};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A wide feature-extraction accelerator, written as dataflow.
    let mut g = Dataflow::new("extract");
    let frames = g.input(512);
    let window = g.stage("window", frames, 512);
    let banks = g.map("filter_bank", window, 8, 512);
    let energy = g.reduce("energy", banks, 64);
    let norm = g.stage("normalize", energy, 64);
    g.output(norm);

    let design = g.lower()?;
    println!(
        "lowered DSL graph to {} RTL modules / {} basic-module instances",
        design.len(),
        design.leaf_instance_count("extract_top")?
    );

    // Decompose + partition, exactly as for the hand-written accelerator.
    let (top, ctrl) = g.module_names();
    let est = |_: &vfpga::rtl::FlatNode| ResourceVec {
        luts: 22_000,
        ffs: 25_000,
        bram_kb: 800,
        uram_kb: 0,
        dsps: 150,
    };
    let decomposition = decompose(&design, &top, &DecomposeOptions::new(ctrl), &est)?;
    println!("\nsoft-block tree:\n{}", decomposition.tree.render());

    let plan = partition(&decomposition.tree, 2);
    println!(
        "partition plan supports up to {} FPGAs; 2-way cut = {} bits",
        plan.max_units(),
        plan.cut_bandwidth_for(2)?
    );

    // Compile and deploy on the paper's heterogeneous cluster.
    let cluster = Cluster::paper_cluster();
    let mut db = MappingDatabase::new();
    db.register(
        "extract",
        &decomposition,
        &plan,
        &cluster.device_types(),
        &HsCompiler::default(),
        true,
    )?;
    let mut controller = SystemController::new(cluster, db, Policy::Full);
    let d = controller.try_deploy("extract")?.expect("cluster has room");
    println!(
        "deployed onto {:?}",
        d.placements
            .iter()
            .map(|p| p.device.to_string())
            .collect::<Vec<_>>()
    );
    controller.release(&d)?;
    Ok(())
}

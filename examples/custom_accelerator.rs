//! Bringing your own accelerator: the framework is not BrainWave-specific.
//!
//! ```text
//! cargo run --release --example custom_accelerator
//! ```
//!
//! Writes a small systolic stencil accelerator in the structural
//! Verilog-like input format, decomposes it, and shows how the extracted
//! parallel patterns drive the partitioner — including the
//! minimum-bandwidth pipeline cut.

use vfpga::core::{decompose, partition, DecomposeOptions, Pattern};
use vfpga::fabric::ResourceVec;
use vfpga::rtl::parse;

const DESIGN: &str = r#"
    // ---- control path --------------------------------------------------
    module seq #(behavior="sequencer") (input [31:0] i, output [31:0] o);
    endmodule
    module ctrl (input [31:0] instr, output [31:0] go);
      seq s (.i(instr), .o(go));
    endmodule

    // ---- one stencil lane: wide load, 3-tap filter, narrow writeback ---
    module loader #(behavior="line_loader") (input [255:0] x, output [255:0] y);
    endmodule
    module tap #(behavior="stencil_tap") (input [255:0] x, output [255:0] y);
    endmodule
    module packer #(behavior="packer") (input [255:0] x, output [31:0] y);
    endmodule
    module lane (input [255:0] x, output [31:0] y);
      wire [255:0] a;
      wire [255:0] b;
      wire [255:0] c;
      loader l (.x(x), .y(a));
      tap t0 (.x(a), .y(b));
      tap t1 (.x(b), .y(c));
      packer p (.x(c), .y(y));
    endmodule

    // ---- data path: a splitter feeding four identical lanes ------------
    module splitter #(behavior="splitter") (input [1023:0] x, output [255:0] y);
    endmodule
    module collector #(behavior="collector") (input [31:0] x, output [127:0] y);
    endmodule
    module datapath (input [1023:0] din, input [31:0] go, output [127:0] dout);
      wire [255:0] xs;
      wire [31:0] ys;
      splitter sp (.x(din), .y(xs));
      lane l0 (.x(xs), .y(ys));
      lane l1 (.x(xs), .y(ys));
      lane l2 (.x(xs), .y(ys));
      lane l3 (.x(xs), .y(ys));
      collector co (.x(ys), .y(dout));
    endmodule

    module top (input [31:0] instr, input [1023:0] din, output [127:0] dout);
      wire [31:0] go;
      ctrl c (.instr(instr), .go(go));
      datapath d (.din(din), .go(go), .dout(dout));
    endmodule
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let design = parse(DESIGN)?;
    println!(
        "parsed {} modules; top elaborates to {} basic-module instances",
        design.len(),
        design.leaf_instance_count("top")?
    );

    // Flat per-leaf resource estimate for the demo.
    let est = |_: &vfpga::rtl::FlatNode| ResourceVec {
        luts: 5_000,
        ffs: 6_000,
        bram_kb: 72,
        uram_kb: 0,
        dsps: 24,
    };

    let opts = DecomposeOptions::new("ctrl");
    let d = decompose(&design, "top", &opts, &est)?;
    println!("\ndecomposed soft-block tree:");
    print!("{}", d.tree.render());

    let root = d.tree.root_block();
    assert_eq!(root.pattern(), Some(Pattern::Pipeline));
    // The middle child groups the four identical lanes in data parallelism.
    let mid = d.tree.block(root.children()[1]);
    assert_eq!(mid.pattern(), Some(Pattern::Data));
    assert_eq!(mid.children().len(), 4);

    // Partition: the pipeline cut lands on the narrowest link. Inside a
    // lane that is the 32-bit packer output, not the 256-bit stencil buses.
    let plan = partition(&d.tree, 2);
    println!(
        "partitioning: 2 units cut {} bits, 4 units cut {} bits",
        plan.cut_bandwidth_for(2)?,
        plan.cut_bandwidth_for(4)?
    );
    let units = plan.units_for(3)?;
    println!(
        "a 3-FPGA deployment gets units with {:?} kLUTs",
        units
            .iter()
            .map(|u| u.resources.luts / 1000)
            .collect::<Vec<_>>()
    );
    Ok(())
}

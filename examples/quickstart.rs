//! Quickstart: the full multi-layer virtualization flow on one accelerator.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Walks every layer of the stack, bottom-up:
//!
//! 1. parameterize and generate a BrainWave-like accelerator (AS ISA layer);
//! 2. decompose it onto the soft-block system abstraction;
//! 3. partition it into deployment units;
//! 4. compile the units against the HS abstraction of both device types;
//! 5. deploy it on the heterogeneous cluster through the system controller;
//! 6. run a real GRU inference on the deployed accelerator's functional
//!    simulator and check it against an f32 reference.

use vfpga::accel::{
    generate_rtl, leaf_resource_estimator, AcceleratorConfig, FuncSim, CONTROL_PATH_MODULE,
    MOVED_TO_CONTROL, TOP_MODULE,
};
use vfpga::core::{decompose, partition, DecomposeOptions, MappingDatabase};
use vfpga::fabric::Cluster;
use vfpga::hsabs::HsCompiler;
use vfpga::isa::assemble;
use vfpga::runtime::{Policy, SystemController};
use vfpga::workload::{
    generate_program, reference_run, RnnKind, RnnTask, RnnWeights, SliceSpec, H_STATE_SLOT,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Parameterize the accelerator: 8 MVM tile engines, defaults
    //    matching the paper's case study.
    let config = AcceleratorConfig::new("quickstart", 8);
    let design = generate_rtl(&config);
    println!(
        "generated RTL: {} modules, {} basic-module instances under {}",
        design.len(),
        design.leaf_instance_count(TOP_MODULE)?,
        TOP_MODULE
    );

    // 2. Decompose onto the soft-block abstraction. The designer marks the
    //    control-path module, and (as in Section 3) moves the small
    //    FP16-to-BFP converter and vector register file into the control
    //    soft block so the data-path root exposes pure data parallelism.
    let mut opts = DecomposeOptions::new(CONTROL_PATH_MODULE);
    opts.move_to_control = MOVED_TO_CONTROL.iter().map(|s| s.to_string()).collect();
    opts.intra_parallelism
        .insert("dpu_array".into(), config.rows_per_cycle);
    let est = leaf_resource_estimator(&config);
    let decomposition = decompose(&design, TOP_MODULE, &opts, &est)?;
    println!("\nsoft-block tree ({} blocks):", decomposition.tree.len());
    print!(
        "{}",
        &decomposition.tree.render()[..400.min(decomposition.tree.render().len())]
    );
    println!(
        "  ... (root pattern: {:?})",
        decomposition.tree.root_block().pattern()
    );

    // 3. Partition: two iterations support deployments onto up to 4 FPGAs.
    let plan = partition(&decomposition.tree, 2);
    println!(
        "\npartition plan: up to {} deployment units, 2-FPGA cut bandwidth {} bits",
        plan.max_units(),
        plan.cut_bandwidth_for(2)?
    );

    // 4. Compile every deployment option for both device types.
    let cluster = Cluster::paper_cluster();
    let mut db = MappingDatabase::new();
    let entry = db.register(
        "quickstart",
        &decomposition,
        &plan,
        &cluster.device_types(),
        &HsCompiler::default(),
        true,
    )?;
    println!(
        "mapping database entry: {} deployment options",
        entry.options.len()
    );
    for option in &entry.options {
        let types: Vec<&str> = option.units[0].images.keys().map(String::as_str).collect();
        println!(
            "  {} unit(s), first unit fits: {types:?}",
            option.num_units()
        );
    }

    // 5. Deploy through the system controller (greedy policy).
    let mut controller = SystemController::new(cluster, db, Policy::Full);
    let deployment = controller
        .try_deploy("quickstart")?
        .expect("empty cluster has capacity");
    println!(
        "\ndeployed onto {} FPGA(s): {:?}",
        deployment.num_units(),
        deployment
            .placements
            .iter()
            .map(|p| p.device.to_string())
            .collect::<Vec<_>>()
    );

    // 6. Run a real GRU inference on the accelerator's functional
    //    simulator and compare against the f32 reference.
    let task = RnnTask::new(RnnKind::Gru, 64, 4);
    let weights = RnnWeights::generate(task, 7);
    let rnn = generate_program(task, SliceSpec::FULL);
    let mut sim = FuncSim::new(&config);
    weights.load_into(&mut sim, SliceSpec::FULL);
    sim.run(&rnn.program)?;
    let h = sim.read_dram(H_STATE_SLOT).expect("program stores final h");
    let reference = reference_run(&weights);
    let max_err = h
        .iter()
        .zip(&reference)
        .map(|(a, b)| (a.to_f32() - b).abs())
        .fold(0.0f32, f32::max);
    println!(
        "\n{task}: {} instructions executed, max |accelerator - f32 reference| = {max_err:.4}",
        sim.executed()
    );
    assert!(max_err < 0.05, "quantization error should be small");

    // A taste of the ISA's software programming flow: plain assembly.
    let p = assemble("vload v0, 0\nmvmul v1, m0, v0\nsigmoid v2, v1\nvstore v2, 1\nhalt\n")?;
    println!(
        "\nhand-written kernel ({} instructions) assembles fine",
        p.len()
    );

    controller.release(&deployment)?;
    println!(
        "released; cluster occupancy back to {:.0}%",
        controller.occupancy() * 100.0
    );
    Ok(())
}

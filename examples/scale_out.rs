//! Scale-out acceleration across two FPGAs (the Section 2.3 optimization).
//!
//! ```text
//! cargo run --release --example scale_out
//! ```
//!
//! Scales a GRU accelerator down into two half-size accelerators, inserts
//! the inter-FPGA send/receive instructions the synchronization template
//! module intercepts, reorders for communication/computation overlap, then
//!
//! * co-simulates the two machines *functionally* and checks the result
//!   bit-for-bit against a single-machine run, and
//! * co-simulates them at cycle level while sweeping an artificial link
//!   latency, showing how the overlap optimization hides it.

use vfpga::accel::{AcceleratorConfig, CycleSim, FuncSim, TimingModel};
use vfpga::core::scaleout::{insert_communication, remote_window, reorder_for_overlap};
use vfpga::runtime::{co_simulate_functional, co_simulate_timing};
use vfpga::sim::{LinkParams, SimTime};
use vfpga::workload::{
    generate_program, reference_run, RnnKind, RnnTask, RnnWeights, SliceSpec, H_LOCAL_SLOT,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let task = RnnTask::new(RnnKind::Gru, 128, 8);
    let weights = RnnWeights::generate(task, 42);
    let machines = 2usize;
    let full = AcceleratorConfig::new("scaleout-demo", 4);
    let scaled = full.scaled_down(machines);
    println!(
        "task {task}; scaling {} tiles down to {} tiles x {machines} machines",
        full.tiles, scaled.tiles
    );

    // Per-machine programs: row-sliced codegen, then the two custom tools.
    let mut programs = Vec::new();
    let mut rnns = Vec::new();
    for m in 0..machines {
        let rnn = generate_program(task, SliceSpec::new(m, machines));
        let window = remote_window(&scaled.isa, m, machines)?;
        let with_comm = insert_communication(&rnn.program, &rnn.state_slots, &window)?;
        let reordered = reorder_for_overlap(&with_comm, &window)?;
        println!(
            "machine {m}: {} -> {} instructions after communication insertion",
            rnn.program.len(),
            reordered.len()
        );
        programs.push(reordered);
        rnns.push(rnn);
    }

    // ---- functional co-simulation --------------------------------------
    let mut sims: Vec<FuncSim> = (0..machines)
        .map(|m| {
            let mut sim = FuncSim::new(&scaled);
            sim.set_remote_window(Some(
                remote_window(&scaled.isa, m, machines).expect("window fits"),
            ));
            weights.load_into(&mut sim, SliceSpec::new(m, machines));
            sim
        })
        .collect();
    co_simulate_functional(&mut sims, &programs)?;

    // Gather each machine's final h slice and compare with the reference.
    let mut h = Vec::new();
    for sim in &sims {
        h.extend_from_slice(sim.read_dram(H_LOCAL_SLOT).expect("h slice"));
    }
    let reference = reference_run(&weights);
    let max_err = h
        .iter()
        .zip(&reference)
        .map(|(a, b)| (a.to_f32() - b).abs())
        .fold(0.0f32, f32::max);
    println!("2-FPGA result vs f32 reference: max error {max_err:.4}");
    assert!(max_err < 0.05);

    // Bit-exactness vs a single-machine run of the same numerics.
    let single_rnn = generate_program(task, SliceSpec::FULL);
    let mut single = FuncSim::new(&full);
    weights.load_into(&mut single, SliceSpec::FULL);
    single.run(&single_rnn.program)?;
    let single_h = single.read_dram(H_LOCAL_SLOT).unwrap();
    let exact = h
        .iter()
        .zip(single_h)
        .all(|(a, b)| a.to_bits() == b.to_bits());
    println!("bit-exact match with single-FPGA execution: {exact}");
    assert!(exact, "row-sliced execution must be bit-exact");

    // ---- timing co-simulation: sweep added link latency ----------------
    let link = LinkParams::new(SimTime::from_ns(500.0), 25.0);
    println!("\nadded-latency sweep (2 FPGAs, overlap optimization ON):");
    for added_ns in [0.0, 250.0, 500.0, 1000.0] {
        let mut cycle_sims: Vec<CycleSim> = (0..machines)
            .map(|m| {
                let mut s = CycleSim::new(
                    TimingModel::for_config(&scaled, 400.0),
                    &programs[m],
                    rnns[m].mat_shapes.clone(),
                    rnns[m].dram_lens.clone(),
                );
                s.set_remote_window(Some(
                    remote_window(&scaled.isa, m, machines).expect("window fits"),
                ));
                s
            })
            .collect();
        let result = co_simulate_timing(&mut cycle_sims, link, SimTime::from_ns(added_ns))?;
        println!(
            "  +{added_ns:6.0} ns link latency -> inference latency {:.3} us",
            result.makespan.as_us()
        );
    }
    Ok(())
}

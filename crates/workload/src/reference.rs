//! f32 reference implementations for validating the accelerator's
//! numerics.

use crate::models::RnnKind;
use crate::weights::RnnWeights;

/// Runs the task in plain f32 arithmetic and returns the final hidden
/// state. Implements exactly the formulations the code generator emits
/// (reset-after GRU, standard LSTM), so differences against the
/// accelerator are purely quantization (BFP matrices, f16 element-wise).
pub fn reference_run(weights: &RnnWeights) -> Vec<f32> {
    let task = weights.task();
    let h_dim = task.hidden;
    let mats = weights.matrices();
    let mut h = weights.h0().to_vec();
    let mut c = vec![0.0f32; h_dim];

    let mv = |m: &[f32], v: &[f32]| -> Vec<f32> {
        (0..h_dim)
            .map(|r| (0..h_dim).map(|cx| m[r * h_dim + cx] * v[cx]).sum())
            .collect()
    };
    let sigmoid = |x: f32| 1.0 / (1.0 + (-x).exp());

    for x in weights.inputs() {
        match task.kind {
            RnnKind::Gru => {
                let (wz, wr, wh) = (&mats[0], &mats[1], &mats[2]);
                let (uz, ur, uh) = (&mats[3], &mats[4], &mats[5]);
                let z: Vec<f32> = mv(wz, x)
                    .iter()
                    .zip(mv(uz, &h))
                    .map(|(a, b)| sigmoid(a + b))
                    .collect();
                let r: Vec<f32> = mv(wr, x)
                    .iter()
                    .zip(mv(ur, &h))
                    .map(|(a, b)| sigmoid(a + b))
                    .collect();
                let uh_h = mv(uh, &h);
                let cand: Vec<f32> = mv(wh, x)
                    .iter()
                    .enumerate()
                    .map(|(i, a)| (a + r[i] * uh_h[i]).tanh())
                    .collect();
                h = (0..h_dim)
                    .map(|i| (1.0 - z[i]) * h[i] + z[i] * cand[i])
                    .collect();
            }
            RnnKind::Lstm => {
                let gate = |k: usize, act_tanh: bool| -> Vec<f32> {
                    mv(&mats[k], x)
                        .iter()
                        .zip(mv(&mats[4 + k], &h))
                        .map(|(a, b)| {
                            let s = a + b;
                            if act_tanh {
                                s.tanh()
                            } else {
                                sigmoid(s)
                            }
                        })
                        .collect()
                };
                let i = gate(0, false);
                let f = gate(1, false);
                let g = gate(2, true);
                let o = gate(3, false);
                c = (0..h_dim).map(|k| f[k] * c[k] + i[k] * g[k]).collect();
                h = (0..h_dim).map(|k| o[k] * c[k].tanh()).collect();
            }
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::RnnTask;

    #[test]
    fn reference_is_deterministic_and_bounded() {
        let task = RnnTask::new(RnnKind::Gru, 32, 5);
        let w = RnnWeights::generate(task, 3);
        let a = reference_run(&w);
        let b = reference_run(&w);
        assert_eq!(a, b);
        // GRU output is a convex blend of tanh values: magnitudes <= ~1.
        assert!(a.iter().all(|v| v.abs() <= 1.01));
    }

    #[test]
    fn lstm_reference_bounded() {
        let task = RnnTask::new(RnnKind::Lstm, 16, 8);
        let w = RnnWeights::generate(task, 5);
        let h = reference_run(&w);
        assert_eq!(h.len(), 16);
        assert!(h.iter().all(|v| v.abs() <= 1.01));
    }
}

//! Benchmark catalogs and the synthetic cloud workload sets of Table 1.

use vfpga_sim::{Rng, SimTime};

use crate::models::{RnnKind, RnnTask, SizeClass};

/// The GRU/LSTM layer shapes of the paper's Table 4 (the first benchmark
/// set, from DeepBench).
pub fn table4_tasks() -> Vec<RnnTask> {
    vec![
        RnnTask::new(RnnKind::Gru, 512, 1),
        RnnTask::new(RnnKind::Gru, 1024, 1500),
        RnnTask::new(RnnKind::Gru, 1536, 375),
        RnnTask::new(RnnKind::Lstm, 256, 150),
        RnnTask::new(RnnKind::Lstm, 512, 25),
        RnnTask::new(RnnKind::Lstm, 1024, 25),
        RnnTask::new(RnnKind::Lstm, 1536, 50),
    ]
}

/// The tasks of the Fig. 11 scale-out experiment: an LSTM whose transfer
/// hides fully, a small GRU that hides up to ~0.6 us of added latency, and
/// a large GRU that cannot hide the transfer.
pub fn fig11_tasks() -> Vec<RnnTask> {
    vec![
        RnnTask::new(RnnKind::Lstm, 1024, 25),
        RnnTask::new(RnnKind::Gru, 1024, 64),
        RnnTask::new(RnnKind::Gru, 2560, 64),
    ]
}

/// The full benchmark pool used to synthesize workload sets: Table 4 plus
/// the large models exercised by the scale-out experiments.
pub fn deepbench_tasks() -> Vec<RnnTask> {
    let mut tasks = table4_tasks();
    tasks.push(RnnTask::new(RnnKind::Gru, 2560, 64));
    tasks.push(RnnTask::new(RnnKind::Lstm, 2560, 25));
    tasks
}

/// One workload-set composition from Table 1: fractions of small, medium,
/// and large tasks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Composition {
    /// Fraction of small tasks.
    pub s: f64,
    /// Fraction of medium tasks.
    pub m: f64,
    /// Fraction of large tasks.
    pub l: f64,
}

impl Composition {
    /// The ten compositions of Table 1, in order (set index 1..=10).
    pub const TABLE1: [Composition; 10] = [
        Composition {
            s: 1.0,
            m: 0.0,
            l: 0.0,
        },
        Composition {
            s: 0.0,
            m: 1.0,
            l: 0.0,
        },
        Composition {
            s: 0.0,
            m: 0.0,
            l: 1.0,
        },
        Composition {
            s: 0.5,
            m: 0.5,
            l: 0.0,
        },
        Composition {
            s: 0.5,
            m: 0.0,
            l: 0.5,
        },
        Composition {
            s: 0.0,
            m: 0.5,
            l: 0.5,
        },
        Composition {
            s: 0.33,
            m: 0.33,
            l: 0.34,
        },
        Composition {
            s: 0.1,
            m: 0.3,
            l: 0.6,
        },
        Composition {
            s: 0.3,
            m: 0.6,
            l: 0.1,
        },
        Composition {
            s: 0.6,
            m: 0.1,
            l: 0.3,
        },
    ];
}

/// One arriving task of a synthetic workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskArrival {
    /// Arrival time.
    pub at: SimTime,
    /// The task.
    pub task: RnnTask,
}

/// Synthesizes a workload: `count` tasks drawn from the benchmark pool
/// according to `composition`, arriving with exponentially distributed
/// interarrival times of the given mean (the paper's "sequence of GRU/LSTM
/// inference tasks that arrives at a random time interval").
///
/// # Panics
///
/// Panics if `count == 0` or the composition selects a class with no tasks
/// in the pool.
pub fn generate_workload(
    composition: Composition,
    count: usize,
    mean_interarrival: SimTime,
    seed: u64,
) -> Vec<TaskArrival> {
    assert!(count > 0, "empty workload");
    let pool = deepbench_tasks();
    let class_pool = |c: SizeClass| -> Vec<RnnTask> {
        pool.iter()
            .copied()
            .filter(|t| t.size_class() == c)
            .collect()
    };
    let small = class_pool(SizeClass::Small);
    let medium = class_pool(SizeClass::Medium);
    let large = class_pool(SizeClass::Large);

    let mut rng = Rng::seed_from_u64(seed);
    let mut now = SimTime::ZERO;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let u: f64 = rng.next_f64();
        let class = if u < composition.s {
            &small
        } else if u < composition.s + composition.m {
            &medium
        } else {
            &large
        };
        assert!(!class.is_empty(), "composition selects an empty size class");
        let task = class[rng.below(class.len())];
        // Exponential interarrival.
        let gap = rng.exp(mean_interarrival.as_secs());
        now += SimTime::from_secs(gap);
        out.push(TaskArrival { at: now, task });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_matches_paper_rows() {
        let tasks = table4_tasks();
        assert_eq!(tasks.len(), 7);
        assert!(tasks.contains(&RnnTask::new(RnnKind::Gru, 1024, 1500)));
        assert!(tasks.contains(&RnnTask::new(RnnKind::Lstm, 1536, 50)));
    }

    #[test]
    fn compositions_sum_to_one() {
        for c in Composition::TABLE1 {
            assert!((c.s + c.m + c.l - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn workload_is_deterministic_and_ordered() {
        let w1 = generate_workload(Composition::TABLE1[6], 100, SimTime::from_ms(1.0), 42);
        let w2 = generate_workload(Composition::TABLE1[6], 100, SimTime::from_ms(1.0), 42);
        assert_eq!(w1, w2);
        assert!(w1.windows(2).all(|w| w[0].at <= w[1].at));
        assert_eq!(w1.len(), 100);
    }

    #[test]
    fn pure_compositions_draw_one_class() {
        let all_small = generate_workload(Composition::TABLE1[0], 50, SimTime::from_ms(1.0), 1);
        assert!(all_small
            .iter()
            .all(|a| a.task.size_class() == SizeClass::Small));
        let all_large = generate_workload(Composition::TABLE1[2], 50, SimTime::from_ms(1.0), 1);
        assert!(all_large
            .iter()
            .all(|a| a.task.size_class() == SizeClass::Large));
    }

    #[test]
    fn mixed_composition_draws_multiple_classes() {
        let mixed = generate_workload(Composition::TABLE1[6], 300, SimTime::from_ms(1.0), 7);
        let smalls = mixed
            .iter()
            .filter(|a| a.task.size_class() == SizeClass::Small)
            .count();
        let larges = mixed
            .iter()
            .filter(|a| a.task.size_class() == SizeClass::Large)
            .count();
        assert!(smalls > 50 && larges > 50);
    }
}

//! # vfpga-workload — DeepBench-style benchmarks and cloud workload sets
//!
//! The paper evaluates with two benchmark sets (Section 4.1):
//!
//! 1. **Application level** — GRU/LSTM inference layers from DeepBench,
//!    batch size one, measuring latency. This crate provides those layer
//!    shapes ([`RnnTask`], [`table4_tasks`]), a code generator that compiles
//!    each layer to a real AS ISA program ([`generate_program`]) — including
//!    the *row-sliced* programs scaled-down accelerators run — plus
//!    deterministic weights ([`RnnWeights`]) and f32 reference
//!    implementations ([`reference_run`]) to validate the accelerator's
//!    numerics.
//! 2. **System level** — synthetically generated workload sets mixing
//!    small/medium/large tasks in the ten compositions of Table 1
//!    ([`Composition::TABLE1`], [`generate_workload`]), arriving at random
//!    intervals.
//!
//! The GRU uses the "reset-after" formulation (`h~ = tanh(Wh x + r * (Uh
//! h))`, as in cuDNN): with row-sliced gates this keeps every element-wise
//! operation machine-local, so only the hidden state itself crosses FPGAs —
//! the same property the paper's template module exploits.

mod codegen;
mod models;
mod reference;
mod sets;
mod weights;

pub use codegen::{
    generate_program, RnnProgram, SliceSpec, C_LOCAL_SLOT, H_LOCAL_SLOT, H_STATE_SLOT, X_BASE_SLOT,
};
pub use models::{RnnKind, RnnTask, SizeClass};
pub use reference::reference_run;
pub use sets::{
    deepbench_tasks, fig11_tasks, generate_workload, table4_tasks, Composition, TaskArrival,
};
pub use weights::RnnWeights;

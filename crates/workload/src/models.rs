//! RNN layer shapes and size classes.

use std::fmt;

/// The recurrent cell kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RnnKind {
    /// Gated recurrent unit (3 gates, reset-after formulation).
    Gru,
    /// Long short-term memory (4 gates).
    Lstm,
}

impl RnnKind {
    /// Number of gate matrix pairs (W, U).
    pub fn gates(self) -> usize {
        match self {
            RnnKind::Gru => 3,
            RnnKind::Lstm => 4,
        }
    }
}

impl fmt::Display for RnnKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RnnKind::Gru => write!(f, "GRU"),
            RnnKind::Lstm => write!(f, "LSTM"),
        }
    }
}

/// One batch-1 RNN inference task: the unit of work in both benchmark
/// sets. The input dimension equals the hidden dimension, as in the
/// DeepBench RNN layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RnnTask {
    /// Cell kind.
    pub kind: RnnKind,
    /// Hidden (and input) dimension.
    pub hidden: usize,
    /// Number of timesteps.
    pub timesteps: usize,
}

impl RnnTask {
    /// Creates a task.
    ///
    /// # Panics
    ///
    /// Panics if `hidden` or `timesteps` is zero.
    pub fn new(kind: RnnKind, hidden: usize, timesteps: usize) -> Self {
        assert!(hidden > 0 && timesteps > 0, "degenerate task");
        RnnTask {
            kind,
            hidden,
            timesteps,
        }
    }

    /// The weight matrix shapes `(rows, cols)` of this task (W then U per
    /// gate, all `hidden x hidden`).
    pub fn matrix_shapes(&self) -> Vec<(usize, usize)> {
        vec![(self.hidden, self.hidden); 2 * self.kind.gates()]
    }

    /// Total floating-point operations of the inference (2 FLOPs per MAC
    /// over all gate matrices and timesteps).
    pub fn flops(&self) -> u64 {
        let per_step = 2 * (2 * self.kind.gates() as u64) * (self.hidden as u64).pow(2);
        per_step * self.timesteps as u64
    }

    /// This task's size class per the paper's Table 1 footnote.
    pub fn size_class(&self) -> SizeClass {
        SizeClass::of_hidden(self.hidden)
    }
}

impl fmt::Display for RnnTask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} h={} t={}", self.kind, self.hidden, self.timesteps)
    }
}

/// Task size classes (Table 1): S up to 1024 hidden units, M up to 2048,
/// L beyond.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SizeClass {
    /// `hidden <= 1024`.
    Small,
    /// `1024 < hidden <= 2048`.
    Medium,
    /// `hidden > 2048`.
    Large,
}

impl SizeClass {
    /// Classifies a hidden dimension.
    pub fn of_hidden(hidden: usize) -> SizeClass {
        if hidden <= 1024 {
            SizeClass::Small
        } else if hidden <= 2048 {
            SizeClass::Medium
        } else {
            SizeClass::Large
        }
    }
}

impl fmt::Display for SizeClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SizeClass::Small => write!(f, "S"),
            SizeClass::Medium => write!(f, "M"),
            SizeClass::Large => write!(f, "L"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_class_boundaries() {
        assert_eq!(SizeClass::of_hidden(1024), SizeClass::Small);
        assert_eq!(SizeClass::of_hidden(1025), SizeClass::Medium);
        assert_eq!(SizeClass::of_hidden(2048), SizeClass::Medium);
        assert_eq!(SizeClass::of_hidden(2049), SizeClass::Large);
    }

    #[test]
    fn flops_scale_with_shape() {
        let small = RnnTask::new(RnnKind::Gru, 512, 1);
        let big = RnnTask::new(RnnKind::Gru, 1024, 1);
        assert_eq!(big.flops(), 4 * small.flops());
        let lstm = RnnTask::new(RnnKind::Lstm, 512, 1);
        assert_eq!(lstm.flops() * 3, small.flops() * 4);
    }

    #[test]
    fn matrix_shapes_per_kind() {
        assert_eq!(RnnTask::new(RnnKind::Gru, 64, 1).matrix_shapes().len(), 6);
        assert_eq!(RnnTask::new(RnnKind::Lstm, 64, 1).matrix_shapes().len(), 8);
    }

    #[test]
    fn display_matches_paper_style() {
        let t = RnnTask::new(RnnKind::Gru, 1024, 1500);
        assert_eq!(t.to_string(), "GRU h=1024 t=1500");
    }
}

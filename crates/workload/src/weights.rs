//! Deterministic weight and input generation.

use vfpga_accel::FuncSim;
use vfpga_isa::{MReg, F16};
use vfpga_sim::Rng;

use crate::codegen::{SliceSpec, H_LOCAL_SLOT, H_STATE_SLOT, X_BASE_SLOT};
use crate::models::RnnTask;

/// The weights and inputs of one RNN task, generated deterministically
/// from a seed. Matrices are ordered `W_gate0..W_gateN, U_gate0..U_gateN`
/// and match the matrix registers the code generator references.
#[derive(Debug, Clone)]
pub struct RnnWeights {
    task: RnnTask,
    /// Per gate: W then U, each `hidden x hidden` row-major.
    matrices: Vec<Vec<f32>>,
    /// Input vectors x_0..x_{t-1}.
    inputs: Vec<Vec<f32>>,
    /// Initial hidden state.
    h0: Vec<f32>,
}

impl RnnWeights {
    /// Generates weights, inputs, and initial state for `task`.
    ///
    /// Values are scaled by `1/sqrt(hidden)` so activations stay in the
    /// well-conditioned range of f16/BFP arithmetic, like trained RNN
    /// weights do.
    pub fn generate(task: RnnTask, seed: u64) -> Self {
        let mut rng = Rng::seed_from_u64(seed);
        let h = task.hidden;
        let scale = 1.0 / (h as f32).sqrt();
        let gates = task.kind.gates();
        let matrices = (0..2 * gates)
            .map(|_| (0..h * h).map(|_| rng.range_f32(-scale, scale)).collect())
            .collect();
        let inputs = (0..task.timesteps)
            .map(|_| (0..h).map(|_| rng.range_f32(-1.0, 1.0)).collect())
            .collect();
        let h0 = (0..h).map(|_| rng.range_f32(-0.5, 0.5)).collect();
        RnnWeights {
            task,
            matrices,
            inputs,
            h0,
        }
    }

    /// The task these weights belong to.
    pub fn task(&self) -> RnnTask {
        self.task
    }

    /// All matrices (W per gate, then U per gate), row-major.
    pub fn matrices(&self) -> &[Vec<f32>] {
        &self.matrices
    }

    /// The input vectors.
    pub fn inputs(&self) -> &[Vec<f32>] {
        &self.inputs
    }

    /// The initial hidden state.
    pub fn h0(&self) -> &[f32] {
        &self.h0
    }

    /// The row range `[start, end)` of `slice` for this task's hidden
    /// dimension: rows are split as evenly as possible across machines.
    pub fn row_range(&self, slice: SliceSpec) -> (usize, usize) {
        slice.row_range(self.task.hidden)
    }

    /// Loads this task's (row-sliced) matrices, inputs, and initial state
    /// into a functional simulator, matching the code generator's layout:
    /// matrix register `k` holds the k-th matrix's row slice; `x_t` sits at
    /// DRAM slot `X_BASE_SLOT + t` (full length); the hidden-state slots
    /// hold `h0` (full for the exchanged slot, sliced for the local slot).
    pub fn load_into(&self, sim: &mut FuncSim, slice: SliceSpec) {
        let h = self.task.hidden;
        let (r0, r1) = self.row_range(slice);
        for (k, m) in self.matrices.iter().enumerate() {
            let rows: Vec<f32> = m[r0 * h..r1 * h].to_vec();
            sim.load_matrix(MReg(k as u16), r1 - r0, h, &rows);
        }
        for (t, x) in self.inputs.iter().enumerate() {
            let v: Vec<F16> = x.iter().map(|&f| F16::from_f32(f)).collect();
            sim.write_dram(X_BASE_SLOT + t as u32, &v);
        }
        let h0_full: Vec<F16> = self.h0.iter().map(|&f| F16::from_f32(f)).collect();
        sim.write_dram(H_STATE_SLOT, &h0_full);
        sim.write_dram(H_LOCAL_SLOT, &h0_full[r0..r1]);
        // c0 = 0 for LSTM.
        sim.write_dram(crate::codegen::C_LOCAL_SLOT, &vec![F16::ZERO; r1 - r0]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::RnnKind;

    #[test]
    fn generation_is_deterministic() {
        let t = RnnTask::new(RnnKind::Gru, 64, 3);
        let a = RnnWeights::generate(t, 7);
        let b = RnnWeights::generate(t, 7);
        assert_eq!(a.matrices()[0], b.matrices()[0]);
        assert_eq!(a.inputs()[2], b.inputs()[2]);
        let c = RnnWeights::generate(t, 8);
        assert_ne!(a.matrices()[0], c.matrices()[0]);
    }

    #[test]
    fn shapes_match_task() {
        let t = RnnTask::new(RnnKind::Lstm, 32, 5);
        let w = RnnWeights::generate(t, 0);
        assert_eq!(w.matrices().len(), 8);
        assert_eq!(w.matrices()[0].len(), 32 * 32);
        assert_eq!(w.inputs().len(), 5);
        assert_eq!(w.h0().len(), 32);
    }

    #[test]
    fn values_are_bounded() {
        let t = RnnTask::new(RnnKind::Gru, 256, 1);
        let w = RnnWeights::generate(t, 1);
        let scale = 1.0 / (256f32).sqrt();
        assert!(w.matrices()[0].iter().all(|v| v.abs() <= scale));
        assert!(w.inputs()[0].iter().all(|v| v.abs() <= 1.0));
    }
}

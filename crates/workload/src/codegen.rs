//! AS ISA code generation for GRU/LSTM inference.
//!
//! Programs are generated per machine slice: the single-FPGA program is
//! simply the `1 of 1` slice. The layout keeps every element-wise
//! operation on the machine's own row slice and routes only the hidden
//! state through the exchanged state slot, so the scale-out tools
//! ([`vfpga_core::scaleout`]) can turn the same program into a
//! communicating one purely by rewriting that slot's accesses.

use std::collections::HashMap;

use vfpga_isa::{Instruction as I, MReg, Program, VReg};

use crate::models::{RnnKind, RnnTask};

/// DRAM slot holding the *exchanged* hidden state (full vector). The
/// scale-out insertion tool designates this slot for send/receive.
pub const H_STATE_SLOT: u32 = 1;
/// DRAM slot holding the machine's own hidden-state row slice.
pub const H_LOCAL_SLOT: u32 = 2;
/// DRAM slot holding the machine's cell-state row slice (LSTM only).
pub const C_LOCAL_SLOT: u32 = 3;
/// First DRAM slot of the input sequence; `x_t` lives at `X_BASE_SLOT + t`.
pub const X_BASE_SLOT: u32 = 100;

/// Which row slice of the task a machine executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SliceSpec {
    /// This machine's index.
    pub machine: usize,
    /// Total cooperating machines.
    pub num_machines: usize,
}

impl SliceSpec {
    /// The whole task on one machine.
    pub const FULL: SliceSpec = SliceSpec {
        machine: 0,
        num_machines: 1,
    };

    /// Creates a slice spec.
    ///
    /// # Panics
    ///
    /// Panics if `machine >= num_machines` or `num_machines == 0`.
    pub fn new(machine: usize, num_machines: usize) -> Self {
        assert!(num_machines > 0 && machine < num_machines, "bad slice spec");
        SliceSpec {
            machine,
            num_machines,
        }
    }

    /// The row range `[start, end)` this machine owns out of `rows` rows,
    /// split as evenly as possible.
    pub fn row_range(&self, rows: usize) -> (usize, usize) {
        let base = rows / self.num_machines;
        let extra = rows % self.num_machines;
        let start = self.machine * base + self.machine.min(extra);
        let len = base + usize::from(self.machine < extra);
        (start, start + len)
    }
}

/// A generated program plus the metadata simulators need.
#[derive(Debug, Clone)]
pub struct RnnProgram {
    /// The task this program computes.
    pub task: RnnTask,
    /// The slice it computes.
    pub slice: SliceSpec,
    /// The instructions.
    pub program: Program,
    /// Matrix register shapes, for the timing simulator.
    pub mat_shapes: HashMap<u16, (usize, usize)>,
    /// Initial DRAM slot lengths, for the timing simulator.
    pub dram_lens: HashMap<u32, usize>,
    /// The exchanged state slots (input to the scale-out insertion tool).
    pub state_slots: Vec<u32>,
}

/// Generates the AS ISA program computing `task`'s row slice.
///
/// Matrix registers: `MReg(k)` holds the k-th matrix (W per gate, then U
/// per gate), sliced to this machine's rows. Register allocation:
///
/// | reg | holds |
/// |-----|-------|
/// | v0  | x_t (full) |
/// | v1  | h_{t-1} (full) |
/// | v2.. | gate values and temporaries (slice length) |
pub fn generate_program(task: RnnTask, slice: SliceSpec) -> RnnProgram {
    let (r0, r1) = slice.row_range(task.hidden);
    let slice_rows = r1 - r0;
    let gates = task.kind.gates();

    let mut p = Program::default();
    let x = VReg(0);
    let h = VReg(1);

    for t in 0..task.timesteps {
        p.push(I::VLoad {
            dst: x,
            addr: X_BASE_SLOT + t as u32,
        });
        p.push(I::VLoad {
            dst: h,
            addr: H_STATE_SLOT,
        });
        match task.kind {
            RnnKind::Gru => gru_step(&mut p, x, h),
            RnnKind::Lstm => lstm_step(&mut p, x, h),
        }
    }
    p.push(I::Halt);

    let mut mat_shapes = HashMap::new();
    for k in 0..2 * gates {
        mat_shapes.insert(k as u16, (slice_rows, task.hidden));
    }
    let mut dram_lens = HashMap::new();
    dram_lens.insert(H_STATE_SLOT, task.hidden);
    dram_lens.insert(H_LOCAL_SLOT, slice_rows);
    dram_lens.insert(C_LOCAL_SLOT, slice_rows);
    for t in 0..task.timesteps {
        dram_lens.insert(X_BASE_SLOT + t as u32, task.hidden);
    }

    RnnProgram {
        task,
        slice,
        program: p,
        mat_shapes,
        dram_lens,
        state_slots: vec![H_STATE_SLOT],
    }
}

/// One GRU timestep (reset-after / cuDNN formulation):
///
/// ```text
/// z  = sigmoid(Wz x + Uz h)
/// r  = sigmoid(Wr x + Ur h)
/// h~ = tanh(Wh x + r * (Uh h))
/// h' = (1 - z) * h_slice + z * h~  =  h_slice - z*h_slice + z*h~
/// ```
///
/// All the x-side products are issued before the first use of `h`: this
/// contiguous h-independent phase is exactly what the scale-out
/// reordering tool sinks the `h` receive below, overlapping the transfer
/// of `h_t` with "the matrix multiplication related to x_t" (Section 4.3).
fn gru_step(p: &mut Program, x: VReg, h: VReg) {
    let (wz, wr, wh) = (MReg(0), MReg(1), MReg(2));
    let (uz, ur, uh) = (MReg(3), MReg(4), MReg(5));
    let wzx = VReg(2);
    let wrx = VReg(3);
    let whx = VReg(4);
    let z = VReg(5);
    let r = VReg(6);
    let cand = VReg(7);
    let t0 = VReg(8);
    let hloc = VReg(9);
    let t1 = VReg(10);

    // x-side phase (independent of h).
    p.push(I::MvMul {
        dst: wzx,
        mat: wz,
        src: x,
    });
    p.push(I::MvMul {
        dst: wrx,
        mat: wr,
        src: x,
    });
    p.push(I::MvMul {
        dst: whx,
        mat: wh,
        src: x,
    });
    // h-side phase.
    p.push(I::MvMul {
        dst: t0,
        mat: uz,
        src: h,
    });
    p.push(I::VAdd {
        dst: z,
        a: wzx,
        b: t0,
    });
    p.push(I::Sigmoid { dst: z, src: z });
    p.push(I::MvMul {
        dst: t0,
        mat: ur,
        src: h,
    });
    p.push(I::VAdd {
        dst: r,
        a: wrx,
        b: t0,
    });
    p.push(I::Sigmoid { dst: r, src: r });
    p.push(I::MvMul {
        dst: t0,
        mat: uh,
        src: h,
    });
    p.push(I::VMul {
        dst: t0,
        a: r,
        b: t0,
    });
    p.push(I::VAdd {
        dst: cand,
        a: whx,
        b: t0,
    });
    p.push(I::Tanh {
        dst: cand,
        src: cand,
    });
    // Blend with the local slice of h.
    p.push(I::VLoad {
        dst: hloc,
        addr: H_LOCAL_SLOT,
    });
    p.push(I::VMul {
        dst: t1,
        a: z,
        b: hloc,
    });
    p.push(I::VSub {
        dst: t1,
        a: hloc,
        b: t1,
    });
    p.push(I::VMul {
        dst: t0,
        a: z,
        b: cand,
    });
    p.push(I::VAdd {
        dst: t1,
        a: t1,
        b: t0,
    });
    p.push(I::VStore {
        src: t1,
        addr: H_LOCAL_SLOT,
    });
    p.push(I::VStore {
        src: t1,
        addr: H_STATE_SLOT,
    });
}

/// One LSTM timestep:
///
/// ```text
/// i = sigmoid(Wi x + Ui h)     f = sigmoid(Wf x + Uf h)
/// g = tanh(Wg x + Ug h)        o = sigmoid(Wo x + Uo h)
/// c' = f * c + i * g
/// h' = o * tanh(c')
/// ```
fn lstm_step(p: &mut Program, x: VReg, h: VReg) {
    let w = |k: u16| MReg(k);
    let u = |k: u16| MReg(4 + k);
    let i = VReg(2);
    let f = VReg(3);
    let g = VReg(4);
    let o = VReg(5);
    let t0 = VReg(7);
    let c = VReg(8);
    let t1 = VReg(9);

    // x-side phase first (independent of h), so the h transfer can hide
    // behind it on scaled-out deployments.
    for (idx, dst) in [(0u16, i), (1, f), (2, g), (3, o)] {
        p.push(I::MvMul {
            dst,
            mat: w(idx),
            src: x,
        });
    }
    // h-side phase.
    for (idx, dst) in [(0u16, i), (1, f), (2, g), (3, o)] {
        p.push(I::MvMul {
            dst: t0,
            mat: u(idx),
            src: h,
        });
        p.push(I::VAdd { dst, a: dst, b: t0 });
        if idx == 2 {
            p.push(I::Tanh { dst, src: dst });
        } else {
            p.push(I::Sigmoid { dst, src: dst });
        }
    }
    p.push(I::VLoad {
        dst: c,
        addr: C_LOCAL_SLOT,
    });
    p.push(I::VMul { dst: c, a: f, b: c });
    p.push(I::VMul {
        dst: t1,
        a: i,
        b: g,
    });
    p.push(I::VAdd {
        dst: c,
        a: c,
        b: t1,
    });
    p.push(I::VStore {
        src: c,
        addr: C_LOCAL_SLOT,
    });
    p.push(I::Tanh { dst: t1, src: c });
    p.push(I::VMul {
        dst: t1,
        a: o,
        b: t1,
    });
    p.push(I::VStore {
        src: t1,
        addr: H_LOCAL_SLOT,
    });
    p.push(I::VStore {
        src: t1,
        addr: H_STATE_SLOT,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use vfpga_isa::IsaConfig;

    #[test]
    fn row_ranges_cover_and_partition() {
        for rows in [7usize, 8, 1024, 1536] {
            for n in [1usize, 2, 3, 4] {
                let mut covered = 0;
                let mut prev_end = 0;
                for m in 0..n {
                    let (s, e) = SliceSpec::new(m, n).row_range(rows);
                    assert_eq!(s, prev_end, "contiguous");
                    covered += e - s;
                    prev_end = e;
                }
                assert_eq!(covered, rows, "rows={rows} n={n}");
            }
        }
    }

    #[test]
    fn programs_validate_and_scale_with_timesteps() {
        let short = generate_program(RnnTask::new(RnnKind::Gru, 128, 1), SliceSpec::FULL);
        let long = generate_program(RnnTask::new(RnnKind::Gru, 128, 10), SliceSpec::FULL);
        short.program.validate(&IsaConfig::default()).unwrap();
        long.program.validate(&IsaConfig::default()).unwrap();
        // 22 instructions per GRU step plus halt.
        assert_eq!(short.program.len(), 23);
        assert_eq!(long.program.len(), 10 * 22 + 1);
    }

    #[test]
    fn lstm_program_references_eight_matrices() {
        let p = generate_program(RnnTask::new(RnnKind::Lstm, 64, 2), SliceSpec::FULL);
        assert_eq!(p.mat_shapes.len(), 8);
        let mats: std::collections::HashSet<u16> = p
            .program
            .iter()
            .filter_map(|i| i.matrix())
            .map(|m| m.0)
            .collect();
        assert_eq!(mats.len(), 8);
    }

    #[test]
    fn sliced_matrices_have_sliced_rows() {
        let p = generate_program(RnnTask::new(RnnKind::Gru, 100, 1), SliceSpec::new(1, 3));
        // 100 rows over 3 machines: machine 1 owns 33.
        assert_eq!(p.mat_shapes[&0], (33, 100));
        assert_eq!(p.dram_lens[&H_LOCAL_SLOT], 33);
        assert_eq!(p.dram_lens[&H_STATE_SLOT], 100);
    }

    #[test]
    fn state_slot_is_stored_every_timestep() {
        let p = generate_program(RnnTask::new(RnnKind::Lstm, 64, 4), SliceSpec::FULL);
        let stores = p
            .program
            .iter()
            .filter(|i| i.mem_write() == Some(H_STATE_SLOT))
            .count();
        assert_eq!(stores, 4);
    }
}

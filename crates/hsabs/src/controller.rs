//! The low-level controller: runtime slot accounting and configuration.

use std::collections::HashMap;

use vfpga_fabric::{Cluster, DeviceId};

use crate::vblock::VirtualBlockImage;
use crate::HsError;

/// Identifies one live configuration (an image occupying slots on one
/// device).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AllocationId(pub u64);

#[derive(Debug, Clone)]
struct Allocation {
    device: DeviceId,
    blocks: usize,
}

/// Lifetime counters of one [`LowLevelController`]: every configuration
/// request it has served or rejected, plus the occupancy high-water mark.
/// Updated unconditionally — cheap enough for the cloud simulator's inner
/// loop.
#[derive(Debug, Clone, Copy, Default)]
pub struct LlcStats {
    /// Successful configurations.
    pub configures: u64,
    /// Releases performed.
    pub releases: u64,
    /// Configuration requests rejected (type mismatch or too few slots).
    pub rejected: u64,
    /// Highest cluster-wide occupancy ever reached (0..=1).
    pub peak_occupancy: f64,
}

/// The HS abstraction's runtime controller (Fig. 7's "low-level
/// controller"): receives configuration requests from the system controller
/// and tracks which virtual blocks of which device are occupied.
///
/// Spatial sharing falls out directly: images from different accelerators
/// occupy disjoint slots of the same device.
#[derive(Debug, Clone)]
pub struct LowLevelController {
    total_slots: Vec<usize>,
    free_slots: Vec<usize>,
    allocations: HashMap<u64, Allocation>,
    device_type_names: Vec<String>,
    next_id: u64,
    stats: LlcStats,
}

impl LowLevelController {
    /// Creates a controller for a cluster with all slots free.
    pub fn new(cluster: &Cluster) -> Self {
        let total_slots: Vec<usize> = cluster
            .iter()
            .map(|d| d.device_type().vblock_slots())
            .collect();
        let device_type_names = cluster
            .iter()
            .map(|d| d.device_type().name().to_string())
            .collect();
        LowLevelController {
            free_slots: total_slots.clone(),
            total_slots,
            allocations: HashMap::new(),
            device_type_names,
            next_id: 0,
            stats: LlcStats::default(),
        }
    }

    /// Lifetime configuration/release counters and the occupancy
    /// high-water mark.
    pub fn stats(&self) -> &LlcStats {
        &self.stats
    }

    /// Free virtual blocks on a device.
    pub fn slots_free(&self, device: DeviceId) -> usize {
        self.free_slots[device.0]
    }

    /// Total virtual blocks on a device.
    pub fn slots_total(&self, device: DeviceId) -> usize {
        self.total_slots[device.0]
    }

    /// Whether `image` could be configured on `device` right now.
    pub fn can_configure(&self, device: DeviceId, image: &VirtualBlockImage) -> bool {
        self.device_type_names[device.0] == image.device_type_name()
            && self.free_slots[device.0] >= image.blocks()
    }

    /// Configures `image` onto free slots of `device`.
    ///
    /// # Errors
    ///
    /// Returns [`HsError::DeviceTypeMismatch`] if the image targets a
    /// different device type, or [`HsError::InsufficientSlots`] if too few
    /// blocks are free.
    pub fn configure(
        &mut self,
        device: DeviceId,
        image: &VirtualBlockImage,
    ) -> Result<AllocationId, HsError> {
        if self.device_type_names[device.0] != image.device_type_name() {
            self.stats.rejected += 1;
            return Err(HsError::DeviceTypeMismatch {
                image: image.device_type_name().to_string(),
                device: self.device_type_names[device.0].clone(),
            });
        }
        if self.free_slots[device.0] < image.blocks() {
            self.stats.rejected += 1;
            return Err(HsError::InsufficientSlots {
                device,
                requested: image.blocks(),
                free: self.free_slots[device.0],
            });
        }
        self.free_slots[device.0] -= image.blocks();
        let id = self.next_id;
        self.next_id += 1;
        self.allocations.insert(
            id,
            Allocation {
                device,
                blocks: image.blocks(),
            },
        );
        self.stats.configures += 1;
        self.stats.peak_occupancy = self.stats.peak_occupancy.max(self.occupancy());
        Ok(AllocationId(id))
    }

    /// Releases a previous configuration, freeing its slots.
    ///
    /// # Errors
    ///
    /// Returns [`HsError::UnknownAllocation`] for ids never issued or
    /// already released.
    pub fn release(&mut self, id: AllocationId) -> Result<(), HsError> {
        let alloc = self
            .allocations
            .remove(&id.0)
            .ok_or(HsError::UnknownAllocation(id.0))?;
        self.free_slots[alloc.device.0] += alloc.blocks;
        self.stats.releases += 1;
        Ok(())
    }

    /// Number of live allocations across the cluster.
    pub fn live_allocations(&self) -> usize {
        self.allocations.len()
    }

    /// Fraction of all slots currently occupied, cluster-wide.
    pub fn occupancy(&self) -> f64 {
        let total: usize = self.total_slots.iter().sum();
        let free: usize = self.free_slots.iter().sum();
        if total == 0 {
            0.0
        } else {
            (total - free) as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::HsCompiler;
    use vfpga_fabric::{DeviceType, ResourceVec};

    fn image_for(device_type: &DeviceType, dsps: u64) -> VirtualBlockImage {
        HsCompiler::default()
            .compile(
                "img",
                &ResourceVec {
                    luts: 10_000,
                    ffs: 10_000,
                    bram_kb: 100,
                    uram_kb: 0,
                    dsps,
                },
                device_type,
            )
            .unwrap()
    }

    #[test]
    fn configure_and_release_track_slots() {
        let cluster = Cluster::paper_cluster();
        let mut ctl = LowLevelController::new(&cluster);
        let vu = DeviceType::xcvu37p();
        let total = ctl.slots_free(DeviceId(0));
        let img = image_for(&vu, 1000); // needs 2 slots (564 dsps/slot)
        let blocks = img.blocks();
        assert!(blocks >= 2);
        let a = ctl.configure(DeviceId(0), &img).unwrap();
        assert_eq!(ctl.slots_free(DeviceId(0)), total - blocks);
        assert_eq!(ctl.live_allocations(), 1);
        ctl.release(a).unwrap();
        assert_eq!(ctl.slots_free(DeviceId(0)), total);
        assert!(ctl.release(a).is_err());
    }

    #[test]
    fn multiple_tenants_share_one_device() {
        let cluster = Cluster::paper_cluster();
        let mut ctl = LowLevelController::new(&cluster);
        let vu = DeviceType::xcvu37p();
        let img = image_for(&vu, 100); // 1 slot each
        let mut allocs = Vec::new();
        for _ in 0..ctl.slots_total(DeviceId(1)) {
            allocs.push(ctl.configure(DeviceId(1), &img).unwrap());
        }
        // Device is now full.
        let err = ctl.configure(DeviceId(1), &img).unwrap_err();
        assert!(matches!(err, HsError::InsufficientSlots { .. }));
        // Freeing one tenant admits the next.
        ctl.release(allocs.pop().unwrap()).unwrap();
        assert!(ctl.configure(DeviceId(1), &img).is_ok());
    }

    #[test]
    fn wrong_device_type_rejected() {
        let cluster = Cluster::paper_cluster();
        let mut ctl = LowLevelController::new(&cluster);
        let img = image_for(&DeviceType::xcvu37p(), 100);
        // Device 3 is the XCKU115.
        let err = ctl.configure(DeviceId(3), &img).unwrap_err();
        assert!(matches!(err, HsError::DeviceTypeMismatch { .. }));
        assert!(!ctl.can_configure(DeviceId(3), &img));
        assert!(ctl.can_configure(DeviceId(0), &img));
    }

    #[test]
    fn stats_track_configures_releases_and_peak() {
        let cluster = Cluster::paper_cluster();
        let mut ctl = LowLevelController::new(&cluster);
        let img = image_for(&DeviceType::xcvu37p(), 100);
        let a = ctl.configure(DeviceId(0), &img).unwrap();
        let b = ctl.configure(DeviceId(0), &img).unwrap();
        let peak = ctl.occupancy();
        ctl.release(a).unwrap();
        ctl.release(b).unwrap();
        // A rejected request (wrong device type) counts too.
        assert!(ctl.configure(DeviceId(3), &img).is_err());
        let stats = ctl.stats();
        assert_eq!(stats.configures, 2);
        assert_eq!(stats.releases, 2);
        assert_eq!(stats.rejected, 1);
        // Peak persists after everything is freed.
        assert_eq!(ctl.occupancy(), 0.0);
        assert_eq!(ctl.stats().peak_occupancy, peak);
    }

    #[test]
    fn occupancy_reflects_allocations() {
        let cluster = Cluster::paper_cluster();
        let mut ctl = LowLevelController::new(&cluster);
        assert_eq!(ctl.occupancy(), 0.0);
        let img = image_for(&DeviceType::xcvu37p(), 100);
        ctl.configure(DeviceId(0), &img).unwrap();
        assert!(ctl.occupancy() > 0.0);
    }
}

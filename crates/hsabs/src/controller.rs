//! The low-level controller: runtime slot accounting and configuration.

use std::collections::HashMap;

use vfpga_fabric::{Cluster, DeviceId};
use vfpga_sim::{Rng, SpanCtx};

use crate::vblock::VirtualBlockImage;
use crate::HsError;

/// Identifies one live configuration (an image occupying slots on one
/// device).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AllocationId(pub u64);

#[derive(Debug, Clone)]
struct Allocation {
    device: DeviceId,
    blocks: usize,
    /// The concrete virtual-block slot indexes the image occupies
    /// (first-fit, not necessarily contiguous).
    slots: Vec<usize>,
}

/// Runtime health of one device as seen by the low-level controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceHealth {
    /// The device accepts configuration requests.
    Healthy,
    /// The device is down: every allocation it held has been evicted and
    /// nothing can be configured on it until [`recover_device`].
    ///
    /// [`recover_device`]: LowLevelController::recover_device
    Failed,
}

/// Deterministic transient-fault injection hook for `configure`: each
/// otherwise-valid configuration request draws once from a seeded stream
/// and fails with [`HsError::TransientConfigureFailure`] with the given
/// probability — the "flaky partial reconfiguration" chaos experiments
/// exercise. Draws happen only for requests that would succeed, so the
/// stream (and with it the whole simulation) is reproducible from the seed.
#[derive(Debug, Clone)]
pub struct TransientFaultInjector {
    prob: f64,
    rng: Rng,
}

impl TransientFaultInjector {
    /// Creates an injector failing configures with probability `prob`.
    ///
    /// # Panics
    ///
    /// Panics if `prob` is not in `0.0..=1.0`.
    pub fn new(prob: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&prob),
            "fault probability must be in [0, 1], got {prob}"
        );
        TransientFaultInjector {
            prob,
            rng: Rng::seed_from_u64(seed),
        }
    }

    fn should_fail(&mut self) -> bool {
        self.prob > 0.0 && self.rng.next_f64() < self.prob
    }
}

/// Lifetime counters of one [`LowLevelController`]: every configuration
/// request it has served or rejected, plus the occupancy high-water mark.
/// Updated unconditionally — cheap enough for the cloud simulator's inner
/// loop.
#[derive(Debug, Clone, Copy, Default)]
pub struct LlcStats {
    /// Successful configurations.
    pub configures: u64,
    /// Releases performed.
    pub releases: u64,
    /// Configuration requests rejected (type mismatch, too few slots, or a
    /// failed target device).
    pub rejected: u64,
    /// Configuration requests that failed transiently (injected flaky
    /// partial reconfiguration).
    pub transient_faults: u64,
    /// Device failures processed via [`LowLevelController::evict_device`].
    pub device_failures: u64,
    /// Device recoveries processed via
    /// [`LowLevelController::recover_device`].
    pub device_recoveries: u64,
    /// Allocations evicted by device failures.
    pub evicted: u64,
    /// Highest cluster-wide occupancy ever reached (0..=1).
    pub peak_occupancy: f64,
}

/// The HS abstraction's runtime controller (Fig. 7's "low-level
/// controller"): receives configuration requests from the system controller
/// and tracks which virtual blocks of which device are occupied.
///
/// Spatial sharing falls out directly: images from different accelerators
/// occupy disjoint slots of the same device.
#[derive(Debug, Clone)]
pub struct LowLevelController {
    total_slots: Vec<usize>,
    free_slots: Vec<usize>,
    /// Per-device slot occupancy bitmap; `free_slots` is always its free
    /// count. Tracking *which* slots an image holds gives partial
    /// reconfiguration a concrete target region (and the trace exporter
    /// its one-thread-per-vblock lanes).
    occupied: Vec<Vec<bool>>,
    health: Vec<DeviceHealth>,
    allocations: HashMap<u64, Allocation>,
    device_type_names: Vec<String>,
    next_id: u64,
    stats: LlcStats,
    injector: Option<TransientFaultInjector>,
    /// Bumped on every operation that can *increase* free capacity
    /// somewhere (release, eviction, recovery). Successful configures do
    /// not bump it: they only shrink capacity, so any placement that was
    /// infeasible before a configure is still infeasible after it. Upper
    /// layers key feasibility caches on this value — a cached capacity
    /// rejection stays valid exactly as long as the epoch is unchanged.
    capacity_epoch: u64,
}

impl LowLevelController {
    /// Creates a controller for a cluster with all slots free.
    pub fn new(cluster: &Cluster) -> Self {
        let total_slots: Vec<usize> = cluster
            .iter()
            .map(|d| d.device_type().vblock_slots())
            .collect();
        let device_type_names = cluster
            .iter()
            .map(|d| d.device_type().name().to_string())
            .collect();
        LowLevelController {
            free_slots: total_slots.clone(),
            occupied: total_slots.iter().map(|&n| vec![false; n]).collect(),
            health: vec![DeviceHealth::Healthy; total_slots.len()],
            total_slots,
            allocations: HashMap::new(),
            device_type_names,
            next_id: 0,
            stats: LlcStats::default(),
            injector: None,
            capacity_epoch: 0,
        }
    }

    /// The current capacity epoch: a counter bumped by every release,
    /// eviction, and recovery — the operations after which a previously
    /// infeasible placement may have become feasible. While the epoch is
    /// unchanged, free capacity can only have shrunk (configures never
    /// bump it), so capacity-based rejections observed at this epoch
    /// remain valid.
    pub fn capacity_epoch(&self) -> u64 {
        self.capacity_epoch
    }

    /// Installs (or clears) the transient configure-failure injector.
    pub fn set_fault_injector(&mut self, injector: Option<TransientFaultInjector>) {
        self.injector = injector;
    }

    /// Runtime health of a device.
    pub fn device_health(&self, device: DeviceId) -> DeviceHealth {
        self.health[device.0]
    }

    /// Whether a device currently accepts configuration requests.
    pub fn is_healthy(&self, device: DeviceId) -> bool {
        self.health[device.0] == DeviceHealth::Healthy
    }

    /// Number of devices currently failed.
    pub fn failed_devices(&self) -> usize {
        self.health
            .iter()
            .filter(|h| **h == DeviceHealth::Failed)
            .count()
    }

    /// Number of live allocations on one device.
    pub fn allocations_on(&self, device: DeviceId) -> usize {
        self.allocations
            .values()
            .filter(|a| a.device == device)
            .count()
    }

    /// Marks a device failed and evicts every allocation it holds,
    /// returning the evicted ids in ascending order. After this call no
    /// allocation references the device (the invariant the recovery tests
    /// pin), its reported free slots are zero, and `configure` refuses it
    /// with [`HsError::DeviceFailed`] until [`recover_device`].
    ///
    /// Idempotent: failing an already-failed device evicts nothing.
    ///
    /// [`recover_device`]: LowLevelController::recover_device
    pub fn evict_device(&mut self, device: DeviceId) -> Vec<AllocationId> {
        if self.health[device.0] == DeviceHealth::Failed {
            return Vec::new();
        }
        self.health[device.0] = DeviceHealth::Failed;
        self.stats.device_failures += 1;
        // Eviction invalidates allocation ids upper layers may still hold
        // (and therefore their capacity bookkeeping), so it opens a new
        // epoch even though the failed device itself reports zero slots.
        self.capacity_epoch += 1;
        let mut evicted: Vec<AllocationId> = Vec::new();
        self.allocations.retain(|id, a| {
            if a.device == device {
                evicted.push(AllocationId(*id));
                false
            } else {
                true
            }
        });
        // Slot bookkeeping stays exact: evicted blocks return to the free
        // pool (the device simply is not placeable while failed).
        self.free_slots[device.0] = self.total_slots[device.0];
        self.occupied[device.0].fill(false);
        // HashMap iteration order is unspecified; sort so chaos runs are
        // reproducible event-for-event.
        evicted.sort_by_key(|a| a.0);
        self.stats.evicted += evicted.len() as u64;
        evicted
    }

    /// Marks a failed device healthy again, with all slots free.
    /// Idempotent on already-healthy devices.
    pub fn recover_device(&mut self, device: DeviceId) {
        if self.health[device.0] == DeviceHealth::Failed {
            self.health[device.0] = DeviceHealth::Healthy;
            self.stats.device_recoveries += 1;
            self.capacity_epoch += 1;
            debug_assert_eq!(
                self.allocations_on(device),
                0,
                "failed device retained allocations"
            );
        }
    }

    /// Lifetime configuration/release counters and the occupancy
    /// high-water mark.
    pub fn stats(&self) -> &LlcStats {
        &self.stats
    }

    /// Free virtual blocks on a device; zero while the device is failed,
    /// so placement logic naturally skips it.
    pub fn slots_free(&self, device: DeviceId) -> usize {
        match self.health[device.0] {
            DeviceHealth::Healthy => self.free_slots[device.0],
            DeviceHealth::Failed => 0,
        }
    }

    /// Total virtual blocks on a device.
    pub fn slots_total(&self, device: DeviceId) -> usize {
        self.total_slots[device.0]
    }

    /// Whether `image` could be configured on `device` right now.
    pub fn can_configure(&self, device: DeviceId, image: &VirtualBlockImage) -> bool {
        self.is_healthy(device)
            && self.device_type_names[device.0] == image.device_type_name()
            && self.free_slots[device.0] >= image.blocks()
    }

    /// Configures `image` onto free slots of `device`.
    ///
    /// # Errors
    ///
    /// Returns [`HsError::DeviceFailed`] for a failed target,
    /// [`HsError::DeviceTypeMismatch`] if the image targets a different
    /// device type, [`HsError::InsufficientSlots`] if too few blocks are
    /// free, or [`HsError::TransientConfigureFailure`] when the installed
    /// fault injector fires (the request itself was valid; retry later).
    pub fn configure(
        &mut self,
        device: DeviceId,
        image: &VirtualBlockImage,
    ) -> Result<AllocationId, HsError> {
        if !self.is_healthy(device) {
            self.stats.rejected += 1;
            return Err(HsError::DeviceFailed(device));
        }
        if self.device_type_names[device.0] != image.device_type_name() {
            self.stats.rejected += 1;
            return Err(HsError::DeviceTypeMismatch {
                image: image.device_type_name().to_string(),
                device: self.device_type_names[device.0].clone(),
            });
        }
        if self.free_slots[device.0] < image.blocks() {
            self.stats.rejected += 1;
            return Err(HsError::InsufficientSlots {
                device,
                requested: image.blocks(),
                free: self.free_slots[device.0],
            });
        }
        if let Some(injector) = &mut self.injector {
            if injector.should_fail() {
                self.stats.transient_faults += 1;
                return Err(HsError::TransientConfigureFailure(device));
            }
        }
        self.free_slots[device.0] -= image.blocks();
        // First-fit over the slot bitmap: the lowest free slots host the
        // image (virtual blocks are position-independent, so any free set
        // works; first-fit keeps the assignment deterministic).
        let mut slots = Vec::with_capacity(image.blocks());
        for (slot, taken) in self.occupied[device.0].iter_mut().enumerate() {
            if slots.len() == image.blocks() {
                break;
            }
            if !*taken {
                *taken = true;
                slots.push(slot);
            }
        }
        debug_assert_eq!(
            slots.len(),
            image.blocks(),
            "bitmap disagrees with free count"
        );
        let id = self.next_id;
        self.next_id += 1;
        self.allocations.insert(
            id,
            Allocation {
                device,
                blocks: image.blocks(),
                slots,
            },
        );
        self.stats.configures += 1;
        self.stats.peak_occupancy = self.stats.peak_occupancy.max(self.occupancy());
        Ok(AllocationId(id))
    }

    /// [`configure`](LowLevelController::configure) with span tracing: the
    /// partial-reconfiguration request is recorded as a zero-duration
    /// `reconfigure` span (configuration is instantaneous in sim time)
    /// carrying the device, block count, occupied slots, and outcome. The
    /// span is pinned to the device's export lane — process `fpga{device}`,
    /// thread `vblock{first slot}` — so Perfetto shows per-device
    /// reconfiguration activity.
    ///
    /// # Errors
    ///
    /// Exactly as [`configure`](LowLevelController::configure).
    pub fn configure_spanned(
        &mut self,
        device: DeviceId,
        image: &VirtualBlockImage,
        ctx: Option<SpanCtx<'_>>,
    ) -> Result<AllocationId, HsError> {
        let result = self.configure(device, image);
        if let Some(ctx) = ctx {
            let span = ctx
                .spans
                .begin("reconfigure", ctx.trace, ctx.parent, ctx.at);
            ctx.spans.attr(span, "device", device.0);
            ctx.spans.attr(span, "blocks", image.blocks());
            match &result {
                Ok(id) => {
                    let slots = self.slots_of(*id).expect("just configured");
                    let first = slots.first().copied().unwrap_or(0);
                    ctx.spans.attr(span, "slot", first);
                    ctx.spans.attr(span, "outcome", "configured");
                    ctx.spans.set_lane(span, device.0 as u64 + 1, first as u64);
                }
                Err(e) => {
                    ctx.spans.attr(span, "outcome", "failed");
                    ctx.spans.attr(span, "error", e.label());
                    ctx.spans
                        .set_lane(span, device.0 as u64 + 1, vfpga_sim::CONTROL_TID);
                }
            }
            ctx.spans.end(span, ctx.at);
        }
        result
    }

    /// The concrete slot indexes a live allocation occupies (ascending);
    /// `None` for unknown or released ids.
    pub fn slots_of(&self, id: AllocationId) -> Option<&[usize]> {
        self.allocations.get(&id.0).map(|a| a.slots.as_slice())
    }

    /// Releases a previous configuration, freeing its slots.
    ///
    /// # Errors
    ///
    /// Returns [`HsError::UnknownAllocation`] for ids never issued or
    /// already released.
    pub fn release(&mut self, id: AllocationId) -> Result<(), HsError> {
        let alloc = self
            .allocations
            .remove(&id.0)
            .ok_or(HsError::UnknownAllocation(id.0))?;
        self.free_slots[alloc.device.0] += alloc.blocks;
        for slot in alloc.slots {
            // Eviction may have wiped the bitmap already (the allocation
            // then no longer exists, so we cannot get here for it); a live
            // release always clears exactly its own slots.
            debug_assert!(self.occupied[alloc.device.0][slot], "slot freed twice");
            self.occupied[alloc.device.0][slot] = false;
        }
        self.stats.releases += 1;
        self.capacity_epoch += 1;
        Ok(())
    }

    /// Number of live allocations across the cluster.
    pub fn live_allocations(&self) -> usize {
        self.allocations.len()
    }

    /// Fraction of slots currently occupied across *surviving* devices
    /// (degraded-mode occupancy: failed devices drop out of both numerator
    /// and denominator, so the value stays in `0.0..=1.0` even mid-chaos
    /// and measures pressure on the capacity that actually exists).
    pub fn occupancy(&self) -> f64 {
        let mut total = 0usize;
        let mut free = 0usize;
        for d in 0..self.total_slots.len() {
            if self.health[d] == DeviceHealth::Healthy {
                total += self.total_slots[d];
                free += self.free_slots[d];
            }
        }
        if total == 0 {
            0.0
        } else {
            (total - free) as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::HsCompiler;
    use vfpga_fabric::{DeviceType, ResourceVec};

    fn image_for(device_type: &DeviceType, dsps: u64) -> VirtualBlockImage {
        HsCompiler::default()
            .compile(
                "img",
                &ResourceVec {
                    luts: 10_000,
                    ffs: 10_000,
                    bram_kb: 100,
                    uram_kb: 0,
                    dsps,
                },
                device_type,
            )
            .unwrap()
    }

    #[test]
    fn configure_and_release_track_slots() {
        let cluster = Cluster::paper_cluster();
        let mut ctl = LowLevelController::new(&cluster);
        let vu = DeviceType::xcvu37p();
        let total = ctl.slots_free(DeviceId(0));
        let img = image_for(&vu, 1000); // needs 2 slots (564 dsps/slot)
        let blocks = img.blocks();
        assert!(blocks >= 2);
        let a = ctl.configure(DeviceId(0), &img).unwrap();
        assert_eq!(ctl.slots_free(DeviceId(0)), total - blocks);
        assert_eq!(ctl.live_allocations(), 1);
        ctl.release(a).unwrap();
        assert_eq!(ctl.slots_free(DeviceId(0)), total);
        assert!(ctl.release(a).is_err());
    }

    #[test]
    fn multiple_tenants_share_one_device() {
        let cluster = Cluster::paper_cluster();
        let mut ctl = LowLevelController::new(&cluster);
        let vu = DeviceType::xcvu37p();
        let img = image_for(&vu, 100); // 1 slot each
        let mut allocs = Vec::new();
        for _ in 0..ctl.slots_total(DeviceId(1)) {
            allocs.push(ctl.configure(DeviceId(1), &img).unwrap());
        }
        // Device is now full.
        let err = ctl.configure(DeviceId(1), &img).unwrap_err();
        assert!(matches!(err, HsError::InsufficientSlots { .. }));
        // Freeing one tenant admits the next.
        ctl.release(allocs.pop().unwrap()).unwrap();
        assert!(ctl.configure(DeviceId(1), &img).is_ok());
    }

    #[test]
    fn wrong_device_type_rejected() {
        let cluster = Cluster::paper_cluster();
        let mut ctl = LowLevelController::new(&cluster);
        let img = image_for(&DeviceType::xcvu37p(), 100);
        // Device 3 is the XCKU115.
        let err = ctl.configure(DeviceId(3), &img).unwrap_err();
        assert!(matches!(err, HsError::DeviceTypeMismatch { .. }));
        assert!(!ctl.can_configure(DeviceId(3), &img));
        assert!(ctl.can_configure(DeviceId(0), &img));
    }

    #[test]
    fn stats_track_configures_releases_and_peak() {
        let cluster = Cluster::paper_cluster();
        let mut ctl = LowLevelController::new(&cluster);
        let img = image_for(&DeviceType::xcvu37p(), 100);
        let a = ctl.configure(DeviceId(0), &img).unwrap();
        let b = ctl.configure(DeviceId(0), &img).unwrap();
        let peak = ctl.occupancy();
        ctl.release(a).unwrap();
        ctl.release(b).unwrap();
        // A rejected request (wrong device type) counts too.
        assert!(ctl.configure(DeviceId(3), &img).is_err());
        let stats = ctl.stats();
        assert_eq!(stats.configures, 2);
        assert_eq!(stats.releases, 2);
        assert_eq!(stats.rejected, 1);
        // Peak persists after everything is freed.
        assert_eq!(ctl.occupancy(), 0.0);
        assert_eq!(ctl.stats().peak_occupancy, peak);
    }

    #[test]
    fn double_release_is_an_error_and_keeps_slots_exact() {
        let cluster = Cluster::paper_cluster();
        let mut ctl = LowLevelController::new(&cluster);
        let img = image_for(&DeviceType::xcvu37p(), 100);
        let total = ctl.slots_free(DeviceId(0));
        let a = ctl.configure(DeviceId(0), &img).unwrap();
        let b = ctl.configure(DeviceId(0), &img).unwrap();
        ctl.release(a).unwrap();
        // Second release of the same id: a well-formed error, and the free
        // count is NOT double-credited.
        assert!(matches!(ctl.release(a), Err(HsError::UnknownAllocation(_))));
        assert_eq!(ctl.slots_free(DeviceId(0)), total - img.blocks());
        assert_eq!(ctl.live_allocations(), 1);
        ctl.release(b).unwrap();
        assert_eq!(ctl.slots_free(DeviceId(0)), total);
        assert!(ctl.occupancy() == 0.0);
    }

    #[test]
    fn evict_device_removes_every_allocation_and_blocks_configure() {
        let cluster = Cluster::paper_cluster();
        let mut ctl = LowLevelController::new(&cluster);
        let img = image_for(&DeviceType::xcvu37p(), 100);
        let a0 = ctl.configure(DeviceId(0), &img).unwrap();
        let a1 = ctl.configure(DeviceId(0), &img).unwrap();
        let other = ctl.configure(DeviceId(1), &img).unwrap();
        let evicted = ctl.evict_device(DeviceId(0));
        assert_eq!(evicted, vec![a0, a1], "ascending id order");
        assert_eq!(ctl.device_health(DeviceId(0)), DeviceHealth::Failed);
        assert_eq!(ctl.allocations_on(DeviceId(0)), 0);
        assert_eq!(ctl.failed_devices(), 1);
        // The failed device is unplaceable and reports zero free slots.
        assert_eq!(ctl.slots_free(DeviceId(0)), 0);
        assert!(!ctl.can_configure(DeviceId(0), &img));
        assert!(matches!(
            ctl.configure(DeviceId(0), &img),
            Err(HsError::DeviceFailed(_))
        ));
        // Releasing an evicted allocation is a well-formed error, not a
        // double-free.
        assert!(matches!(
            ctl.release(a0),
            Err(HsError::UnknownAllocation(_))
        ));
        // The survivor on device 1 is untouched.
        assert_eq!(ctl.allocations_on(DeviceId(1)), 1);
        ctl.release(other).unwrap();
        // Second eviction is a no-op.
        assert!(ctl.evict_device(DeviceId(0)).is_empty());
        assert_eq!(ctl.stats().device_failures, 1);
        assert_eq!(ctl.stats().evicted, 2);
        // Recovery restores a fully free, configurable device.
        ctl.recover_device(DeviceId(0));
        assert_eq!(ctl.device_health(DeviceId(0)), DeviceHealth::Healthy);
        assert_eq!(ctl.slots_free(DeviceId(0)), ctl.slots_total(DeviceId(0)));
        assert!(ctl.configure(DeviceId(0), &img).is_ok());
        assert_eq!(ctl.stats().device_recoveries, 1);
    }

    #[test]
    fn occupancy_is_degraded_mode_under_failures() {
        let cluster = Cluster::paper_cluster();
        let mut ctl = LowLevelController::new(&cluster);
        let img = image_for(&DeviceType::xcvu37p(), 100);
        // Fill device 1 completely, then fail devices 0 and 2.
        for _ in 0..ctl.slots_total(DeviceId(1)) {
            ctl.configure(DeviceId(1), &img).unwrap();
        }
        ctl.evict_device(DeviceId(0));
        ctl.evict_device(DeviceId(2));
        let occ = ctl.occupancy();
        assert!(occ <= 1.0, "degraded occupancy exceeded 1.0: {occ}");
        assert!(occ > 0.5, "survivor pressure should dominate: {occ}");
    }

    #[test]
    fn transient_injector_is_deterministic_and_leaves_state_clean() {
        let cluster = Cluster::paper_cluster();
        let img = image_for(&DeviceType::xcvu37p(), 100);
        let run = |seed: u64| {
            let mut ctl = LowLevelController::new(&cluster);
            let free = ctl.slots_free(DeviceId(0));
            ctl.set_fault_injector(Some(TransientFaultInjector::new(0.5, seed)));
            let outcomes: Vec<bool> = (0..16)
                .map(|_| match ctl.configure(DeviceId(0), &img) {
                    Ok(a) => {
                        ctl.release(a).unwrap();
                        true
                    }
                    Err(HsError::TransientConfigureFailure(_)) => {
                        // A transient failure must not leak slots.
                        assert_eq!(ctl.slots_free(DeviceId(0)), free);
                        false
                    }
                    Err(e) => panic!("unexpected error {e}"),
                })
                .collect();
            assert_eq!(ctl.slots_free(DeviceId(0)), free);
            outcomes
        };
        let a = run(42);
        assert_eq!(a, run(42), "same seed, same fault stream");
        assert!(a.iter().any(|&ok| ok) && a.iter().any(|&ok| !ok));
        assert_ne!(a, run(43), "different seed should diverge");
    }

    #[test]
    fn slot_bitmap_is_first_fit_and_reuses_released_slots() {
        let cluster = Cluster::paper_cluster();
        let mut ctl = LowLevelController::new(&cluster);
        let img = image_for(&DeviceType::xcvu37p(), 100); // 1 slot
        let a = ctl.configure(DeviceId(0), &img).unwrap();
        let b = ctl.configure(DeviceId(0), &img).unwrap();
        let c = ctl.configure(DeviceId(0), &img).unwrap();
        assert_eq!(ctl.slots_of(a), Some(&[0][..]));
        assert_eq!(ctl.slots_of(b), Some(&[1][..]));
        assert_eq!(ctl.slots_of(c), Some(&[2][..]));
        // Releasing the middle tenant frees slot 1; the next configure
        // fills the hole (first fit), not the end of the device.
        ctl.release(b).unwrap();
        let d = ctl.configure(DeviceId(0), &img).unwrap();
        assert_eq!(ctl.slots_of(d), Some(&[1][..]));
        // A two-block image scatters across the lowest free slots.
        let wide = image_for(&DeviceType::xcvu37p(), 1000);
        assert!(wide.blocks() >= 2);
        ctl.release(a).unwrap();
        let e = ctl.configure(DeviceId(0), &wide).unwrap();
        let slots = ctl.slots_of(e).unwrap();
        assert_eq!(slots[0], 0, "hole at 0 must be reused first");
        assert!(
            slots.windows(2).all(|w| w[0] < w[1]),
            "ascending: {slots:?}"
        );
        // Released/unknown ids have no slots.
        assert_eq!(ctl.slots_of(b), None);
        // Eviction clears the whole device bitmap: after recovery the first
        // fit starts from slot 0 again.
        ctl.evict_device(DeviceId(0));
        ctl.recover_device(DeviceId(0));
        let f = ctl.configure(DeviceId(0), &img).unwrap();
        assert_eq!(ctl.slots_of(f), Some(&[0][..]));
    }

    #[test]
    fn configure_spanned_records_outcome_and_lane() {
        use vfpga_sim::{SimTime, SpanTracer, TraceId};
        let cluster = Cluster::paper_cluster();
        let mut ctl = LowLevelController::new(&cluster);
        let img = image_for(&DeviceType::xcvu37p(), 100);
        let mut spans = SpanTracer::new();
        let at = SimTime::from_us(3.0);
        let id = ctl
            .configure_spanned(
                DeviceId(0),
                &img,
                Some(SpanCtx {
                    spans: &mut spans,
                    trace: TraceId(5),
                    parent: None,
                    at,
                }),
            )
            .unwrap();
        let span = spans.span(vfpga_sim::SpanId(0));
        assert_eq!(span.name, "reconfigure");
        assert_eq!(span.trace, TraceId(5));
        assert_eq!((span.begin, span.end), (at, Some(at)), "zero duration");
        assert!(span.attr_is("outcome", "configured"));
        let first = ctl.slots_of(id).unwrap()[0] as u64;
        assert_eq!(span.lane, Some((1, first)), "fpga0 process, vblock thread");
        // A failing configure records the error label on the control lane.
        let err_ctx = SpanCtx {
            spans: &mut spans,
            trace: TraceId(6),
            parent: None,
            at,
        };
        assert!(ctl
            .configure_spanned(DeviceId(3), &img, Some(err_ctx))
            .is_err());
        let span = spans.span(vfpga_sim::SpanId(1));
        assert!(span.attr_is("outcome", "failed"));
        assert!(span.attr_is("error", "device_type_mismatch"));
        assert_eq!(span.lane, Some((4, vfpga_sim::CONTROL_TID)));
        // `None` context traces nothing.
        assert!(ctl.configure_spanned(DeviceId(0), &img, None).is_ok());
        assert_eq!(spans.len(), 2);
    }

    #[test]
    fn occupancy_reflects_allocations() {
        let cluster = Cluster::paper_cluster();
        let mut ctl = LowLevelController::new(&cluster);
        assert_eq!(ctl.occupancy(), 0.0);
        let img = image_for(&DeviceType::xcvu37p(), 100);
        ctl.configure(DeviceId(0), &img).unwrap();
        assert!(ctl.occupancy() > 0.0);
    }
}

//! The HS compiler: maps resource demands into virtual-block images.

use vfpga_fabric::{DeviceType, ResourceVec};

use crate::vblock::{VirtualBlockImage, VirtualBlockSpec};
use crate::HsError;

/// Compiles soft blocks onto the virtual-block abstraction of a device
/// type.
///
/// This reuses the "compilation tool provided by the corresponding HS
/// abstraction-based solution" (Section 2.2.2). Real compilation invokes
/// synthesis and place & route per virtual block; here the mapping is the
/// resource-fitting decision plus a calibrated compile-*time* model, which
/// is all the paper's framework observes (the Section 4.3 experiment
/// measures compile time, not netlists).
#[derive(Debug, Clone)]
pub struct HsCompiler {
    /// Fixed seconds per compilation run (tool startup, elaboration).
    pub base_seconds: f64,
    /// Scale factor of the superlinear P&R term.
    pub seconds_per_kilolut: f64,
    /// Exponent of the area term: place & route is superlinear in region
    /// size (congestion), which is also why compiling several small
    /// scaled-down units is cheaper than one big design.
    pub area_exponent: f64,
}

impl Default for HsCompiler {
    /// ~2 minutes fixed plus a superlinear area term: a full XCVU37P-class
    /// design lands around 80 minutes, commodity Vivado scale.
    fn default() -> Self {
        HsCompiler {
            base_seconds: 120.0,
            seconds_per_kilolut: 2.0,
            area_exponent: 1.2,
        }
    }
}

impl HsCompiler {
    /// Compiles a demand onto `device_type`, producing an image that any
    /// device of that type can be configured with.
    ///
    /// # Errors
    ///
    /// Returns [`HsError::DoesNotFit`] if the demand exceeds the device or
    /// requires an absent resource.
    pub fn compile(
        &self,
        name: &str,
        demand: &ResourceVec,
        device_type: &DeviceType,
    ) -> Result<VirtualBlockImage, HsError> {
        let demand = Self::rebind_memory(demand, device_type);
        let spec = VirtualBlockSpec::for_device(device_type);
        let blocks = spec
            .blocks_for(&demand)
            .ok_or_else(|| HsError::DoesNotFit {
                name: name.to_string(),
                device_type: device_type.name().to_string(),
            })?;
        Ok(VirtualBlockImage::new(
            name.to_string(),
            device_type.name().to_string(),
            blocks,
            demand,
            device_type.freq_mhz(),
        ))
    }

    /// Re-binds the parameterized memory module to the target device's
    /// memory resources (Section 3: "the parameter of this module will be
    /// configured when mapping it onto the HS abstraction of a specific
    /// type of FPGA"): URAM demand folds into BRAM on URAM-less devices,
    /// and BRAM overflow spills into URAM where the device has it.
    fn rebind_memory(demand: &ResourceVec, device_type: &DeviceType) -> ResourceVec {
        let cap = device_type.resources();
        let mut d = *demand;
        if cap.uram_kb == 0 {
            // No URAM: everything becomes BRAM.
            d.bram_kb += d.uram_kb;
            d.uram_kb = 0;
        } else if d.bram_kb > cap.bram_kb {
            // Rebalance BRAM overflow into URAM, in whole URAM blocks.
            let spill = d.bram_kb - cap.bram_kb;
            let spill = spill.div_ceil(288) * 288;
            d.bram_kb = d.bram_kb.saturating_sub(spill);
            d.uram_kb += spill;
        } else if d.uram_kb > cap.uram_kb {
            let spill = d.uram_kb - cap.uram_kb;
            let spill = spill.div_ceil(36) * 36;
            d.uram_kb = d.uram_kb.saturating_sub(spill);
            d.bram_kb += spill;
        }
        d
    }

    /// Estimated wall-clock seconds to compile a demand (one run of the HS
    /// abstraction's backend flow).
    pub fn compile_seconds(&self, demand: &ResourceVec) -> f64 {
        let kiloluts = demand.luts as f64 / 1000.0;
        self.base_seconds + self.seconds_per_kilolut * kiloluts.powf(self.area_exponent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demand(luts: u64, dsps: u64) -> ResourceVec {
        ResourceVec {
            luts,
            ffs: luts * 2,
            bram_kb: 1000,
            uram_kb: 0,
            dsps,
        }
    }

    #[test]
    fn compile_produces_image_for_type() {
        let c = HsCompiler::default();
        let ku = DeviceType::xcku115();
        let img = c.compile("acc", &demand(100_000, 800), &ku).unwrap();
        assert_eq!(img.device_type_name(), "XCKU115");
        assert!(img.blocks() >= 2); // 800 DSPs > one slot's 552
        assert_eq!(img.freq_mhz(), 300.0);
    }

    #[test]
    fn compile_rejects_oversize() {
        let c = HsCompiler::default();
        let ku = DeviceType::xcku115();
        let err = c
            .compile("huge", &demand(10_000_000, 100), &ku)
            .unwrap_err();
        assert!(matches!(err, HsError::DoesNotFit { .. }));
    }

    #[test]
    fn compile_time_scales_with_size() {
        let c = HsCompiler::default();
        let small = c.compile_seconds(&demand(10_000, 10));
        let large = c.compile_seconds(&demand(500_000, 10));
        assert!(large > small);
        assert!(small >= c.base_seconds);
    }

    #[test]
    fn compile_time_is_superlinear_in_area() {
        // Two half-size compiles are cheaper than one full-size compile
        // (ignoring the fixed base) — the amortization mechanism behind
        // the Section 4.3 scaled-down compiles.
        let c = HsCompiler::default();
        let full = c.compile_seconds(&demand(600_000, 10)) - c.base_seconds;
        let half = c.compile_seconds(&demand(300_000, 10)) - c.base_seconds;
        assert!(2.0 * half < full);
    }

    #[test]
    fn uram_demand_folds_to_bram_on_ku115() {
        // The parameterized memory module re-binds at mapping time: a
        // URAM-heavy demand compiles onto the URAM-less KU115 as BRAM.
        let c = HsCompiler::default();
        let ku = DeviceType::xcku115();
        let d = ResourceVec {
            luts: 50_000,
            ffs: 50_000,
            bram_kb: 10_000,
            uram_kb: 30_000,
            dsps: 500,
        };
        let img = c.compile("fold", &d, &ku).unwrap();
        assert_eq!(img.resources().uram_kb, 0);
        assert_eq!(img.resources().bram_kb, 40_000);
    }

    #[test]
    fn bram_overflow_spills_to_uram_on_vu37p() {
        let c = HsCompiler::default();
        let vu = DeviceType::xcvu37p();
        let cap_bram = vu.resources().bram_kb;
        let d = ResourceVec {
            luts: 50_000,
            ffs: 50_000,
            bram_kb: cap_bram + 10_000,
            uram_kb: 0,
            dsps: 500,
        };
        let img = c.compile("spill", &d, &vu).unwrap();
        assert!(img.resources().bram_kb <= cap_bram);
        assert!(img.resources().uram_kb >= 10_000);
        // Total memory conserved (up to block rounding).
        let total = img.resources().bram_kb + img.resources().uram_kb;
        assert!(total >= d.bram_kb && total <= d.bram_kb + 288);
    }

    #[test]
    fn oversize_memory_still_rejected_after_rebind() {
        let c = HsCompiler::default();
        let ku = DeviceType::xcku115();
        let d = ResourceVec {
            luts: 1_000,
            ffs: 1_000,
            bram_kb: 60_000,
            uram_kb: 60_000, // 120 Mb total > 75.9 Mb device
            dsps: 10,
        };
        assert!(matches!(
            c.compile("huge-mem", &d, &ku),
            Err(HsError::DoesNotFit { .. })
        ));
    }
}

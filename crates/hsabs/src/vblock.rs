//! Virtual block geometry and compiled images.

use vfpga_fabric::{DeviceType, ResourceVec};

/// The virtual-block geometry of one device type: how many identical slots
/// the device is divided into and what each offers.
///
/// ViTAL divides every FPGA of a type into identical virtual blocks so a
/// compiled image is position-independent; the slot count and per-slot
/// resources come from the device catalog.
#[derive(Debug, Clone)]
pub struct VirtualBlockSpec {
    device_type: DeviceType,
    slots: usize,
    slot_resources: ResourceVec,
}

impl VirtualBlockSpec {
    /// The geometry for a device type.
    pub fn for_device(device_type: &DeviceType) -> Self {
        VirtualBlockSpec {
            slots: device_type.vblock_slots(),
            slot_resources: device_type.slot_resources(),
            device_type: device_type.clone(),
        }
    }

    /// The device type this geometry belongs to.
    pub fn device_type(&self) -> &DeviceType {
        &self.device_type
    }

    /// Number of virtual-block slots per device.
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Resources offered by one slot.
    pub fn slot_resources(&self) -> &ResourceVec {
        &self.slot_resources
    }

    /// The minimum number of slots needed to hold `demand`, or `None` if
    /// the whole device is not enough (or a required resource is absent).
    pub fn blocks_for(&self, demand: &ResourceVec) -> Option<usize> {
        let util = demand.utilization_of(&self.slot_resources.scaled(self.slots as u64));
        if util > 1.0 {
            return None;
        }
        let per_slot = demand.utilization_of(&self.slot_resources);
        if per_slot.is_infinite() {
            return None; // demands a resource the device lacks entirely
        }
        Some((per_slot.ceil() as usize).clamp(1, self.slots))
    }
}

/// A compiled virtual-block image: the result of mapping one soft block
/// onto the HS abstraction of one device type.
///
/// Images are device-*type* specific but device-*instance* independent; the
/// low-level controller can configure them onto any free slots of any
/// device of that type.
#[derive(Debug, Clone, PartialEq)]
pub struct VirtualBlockImage {
    name: String,
    device_type_name: String,
    blocks: usize,
    resources: ResourceVec,
    freq_mhz: f64,
}

impl VirtualBlockImage {
    pub(crate) fn new(
        name: String,
        device_type_name: String,
        blocks: usize,
        resources: ResourceVec,
        freq_mhz: f64,
    ) -> Self {
        VirtualBlockImage {
            name,
            device_type_name,
            blocks,
            resources,
            freq_mhz,
        }
    }

    /// The compiled design's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Name of the device type the image targets.
    pub fn device_type_name(&self) -> &str {
        &self.device_type_name
    }

    /// Number of virtual blocks the image occupies.
    pub fn blocks(&self) -> usize {
        self.blocks
    }

    /// Resources consumed by the image.
    pub fn resources(&self) -> &ResourceVec {
        &self.resources
    }

    /// Clock frequency of the image (the device type's frequency).
    pub fn freq_mhz(&self) -> f64 {
        self.freq_mhz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_matches_device_catalog() {
        let vu = DeviceType::xcvu37p();
        let spec = VirtualBlockSpec::for_device(&vu);
        assert_eq!(spec.slots(), vu.vblock_slots());
        assert!(spec.slot_resources().dsps > 0);
    }

    #[test]
    fn blocks_for_rounds_up_on_binding_resource() {
        let ku = DeviceType::xcku115();
        let spec = VirtualBlockSpec::for_device(&ku);
        let slot = *spec.slot_resources();
        // Exactly one slot.
        assert_eq!(spec.blocks_for(&slot), Some(1));
        // Slightly more than one slot of DSPs -> two blocks.
        let mut demand = slot;
        demand.dsps += 1;
        assert_eq!(spec.blocks_for(&demand), Some(2));
    }

    #[test]
    fn whole_device_overflow_rejected() {
        let ku = DeviceType::xcku115();
        let spec = VirtualBlockSpec::for_device(&ku);
        let demand = ResourceVec {
            dsps: ku.resources().dsps + 1,
            ..*ku.resources()
        };
        assert_eq!(spec.blocks_for(&demand), None);
    }

    #[test]
    fn missing_resource_rejected() {
        // URAM demand on a device with no URAM.
        let ku = DeviceType::xcku115();
        let spec = VirtualBlockSpec::for_device(&ku);
        let demand = ResourceVec {
            luts: 10,
            ffs: 10,
            bram_kb: 0,
            uram_kb: 288,
            dsps: 0,
        };
        assert_eq!(spec.blocks_for(&demand), None);
    }

    #[test]
    fn tiny_demand_takes_one_block() {
        let vu = DeviceType::xcvu37p();
        let spec = VirtualBlockSpec::for_device(&vu);
        let demand = ResourceVec {
            luts: 1,
            ffs: 1,
            bram_kb: 0,
            uram_kb: 0,
            dsps: 0,
        };
        assert_eq!(spec.blocks_for(&demand), Some(1));
    }
}

//! The latency-insensitive interface cost model.

/// Cost model of ViTAL's latency-insensitive inter-block interfaces.
///
/// Every signal crossing a virtual-block boundary goes through an elastic
/// interface (a small relay-station FIFO), adding a fixed number of cycles.
/// The paper attributes the marginal 3–8% latency overhead of Table 4 to
/// exactly these interfaces, and credits its pattern-aware partitioner with
/// keeping the number of crossings on the critical path small by never
/// splitting a SIMD unit's pipelined data path across virtual blocks
/// (Section 4.3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InterfaceModel {
    /// Cycles added per virtual-block boundary crossing.
    pub cycles_per_crossing: u64,
}

impl Default for InterfaceModel {
    /// Eight cycles per crossing: a four-deep elastic buffer on each side.
    fn default() -> Self {
        InterfaceModel {
            cycles_per_crossing: 8,
        }
    }
}

impl InterfaceModel {
    /// Total added cycles for a path crossing `crossings` boundaries.
    pub fn overhead_cycles(&self, crossings: usize) -> u64 {
        self.cycles_per_crossing * crossings as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_is_linear_in_crossings() {
        let m = InterfaceModel::default();
        assert_eq!(m.overhead_cycles(0), 0);
        assert_eq!(m.overhead_cycles(3), 3 * m.cycles_per_crossing);
    }
}

//! # vfpga-hsabs — the ViTAL-like hardware-specific abstraction
//!
//! The paper reuses a previously proposed HS abstraction (ViTAL) as the
//! bottom layer of its stack: each FPGA is divided into identical **virtual
//! blocks** with **latency-insensitive interfaces**, accelerators are
//! compiled into virtual-block images offline, and a **low-level
//! controller** configures blocks at runtime, letting several tenants share
//! one device at sub-FPGA granularity. ViTAL itself is not open source, so
//! this crate rebuilds the parts the paper's framework interacts with:
//!
//! * [`VirtualBlockSpec`] — the per-device-type virtual block geometry
//!   (slot count and per-slot resources come from
//!   [`vfpga_fabric::DeviceType`]);
//! * [`HsCompiler`] — compiles a resource demand into a
//!   [`VirtualBlockImage`] for one device type, with a compile-time
//!   estimate used by the Section 4.3 compilation-overhead experiment;
//! * [`LowLevelController`] — tracks per-device slot occupancy and
//!   configures/releases images at runtime (the controller the paper's
//!   system controller sends requests to, Fig. 7);
//! * [`InterfaceModel`] — the latency-insensitive interface cost that
//!   produces the marginal (3–8%) virtualization overhead of Table 4.
//!
//! ```
//! use vfpga_fabric::{Cluster, DeviceType, ResourceVec};
//! use vfpga_hsabs::{HsCompiler, LowLevelController};
//!
//! let compiler = HsCompiler::default();
//! let demand = ResourceVec { luts: 100_000, ffs: 120_000, bram_kb: 4_000, uram_kb: 0, dsps: 900 };
//! let image = compiler.compile("my-accel", &demand, &DeviceType::xcku115())?;
//! assert!(image.blocks() >= 1);
//!
//! let mut ctl = LowLevelController::new(&Cluster::paper_cluster());
//! let alloc = ctl.configure(vfpga_fabric::DeviceId(3), &image)?;
//! ctl.release(alloc)?;
//! # Ok::<(), vfpga_hsabs::HsError>(())
//! ```

mod compiler;
mod controller;
mod interface;
mod vblock;

pub use compiler::HsCompiler;
pub use controller::{
    AllocationId, DeviceHealth, LlcStats, LowLevelController, TransientFaultInjector,
};
pub use interface::InterfaceModel;
pub use vblock::{VirtualBlockImage, VirtualBlockSpec};

use std::fmt;

use vfpga_fabric::DeviceId;

/// Errors from the HS abstraction layer.
#[derive(Debug, Clone, PartialEq)]
pub enum HsError {
    /// The demand cannot fit the device even when using every virtual block
    /// (or needs a resource the device lacks, e.g. URAM on XCKU115).
    DoesNotFit {
        /// The design being compiled.
        name: String,
        /// The target device type name.
        device_type: String,
    },
    /// Not enough free virtual blocks on the device right now.
    InsufficientSlots {
        /// The target device.
        device: DeviceId,
        /// Blocks requested.
        requested: usize,
        /// Blocks currently free.
        free: usize,
    },
    /// The image was compiled for a different device type than the target.
    DeviceTypeMismatch {
        /// The image's device type.
        image: String,
        /// The target device's type.
        device: String,
    },
    /// An allocation id was released twice or never existed.
    UnknownAllocation(u64),
    /// The target device is marked failed; nothing can be configured on it
    /// until it recovers.
    DeviceFailed(DeviceId),
    /// Partial reconfiguration failed transiently (injected fault). The
    /// request was valid; retrying it may succeed.
    TransientConfigureFailure(DeviceId),
}

impl HsError {
    /// A short static label naming the variant, for span attributes and
    /// metric names (no allocation, deterministic).
    pub fn label(&self) -> &'static str {
        match self {
            HsError::DoesNotFit { .. } => "does_not_fit",
            HsError::InsufficientSlots { .. } => "insufficient_slots",
            HsError::DeviceTypeMismatch { .. } => "device_type_mismatch",
            HsError::UnknownAllocation(_) => "unknown_allocation",
            HsError::DeviceFailed(_) => "device_failed",
            HsError::TransientConfigureFailure(_) => "transient_configure_failure",
        }
    }
}

impl fmt::Display for HsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HsError::DoesNotFit { name, device_type } => {
                write!(f, "design `{name}` cannot fit device type {device_type}")
            }
            HsError::InsufficientSlots {
                device,
                requested,
                free,
            } => write!(
                f,
                "{device} has {free} free virtual blocks, {requested} requested"
            ),
            HsError::DeviceTypeMismatch { image, device } => {
                write!(f, "image compiled for {image} cannot configure a {device}")
            }
            HsError::UnknownAllocation(id) => write!(f, "unknown allocation {id}"),
            HsError::DeviceFailed(device) => write!(f, "{device} is failed"),
            HsError::TransientConfigureFailure(device) => {
                write!(f, "transient configuration failure on {device}")
            }
        }
    }
}

impl std::error::Error for HsError {}

//! Parser for a small Verilog-like structural subset.
//!
//! Supported constructs — exactly what structural accelerator RTL needs:
//!
//! ```text
//! // line comments
//! module pe #(behavior="mac") (input [15:0] a, input [15:0] b, output [15:0] y);
//! endmodule
//!
//! module top (input [15:0] x, output [15:0] y);
//!   wire [15:0] t, u;
//!   pe u0 (.a(x), .b(x), .y(t));
//!   pe u1 (.a(t), .b(t), .y(y));
//! endmodule
//! ```
//!
//! The `#(behavior="...")` attribute tags a basic module's combinational
//! function for equivalence checking (see [`crate::Design::canonical_hash`]).

use crate::module::{Instance, ModuleDecl, Port, PortDir};
use crate::{Design, RtlError};

/// Parses a design from source text.
///
/// Modules may be declared in any order; instantiated modules must be
/// defined somewhere in the same source.
///
/// # Errors
///
/// Returns [`RtlError::Parse`] for syntax errors (with a line number) and
/// the usual structural errors ([`RtlError::UnknownModule`],
/// [`RtlError::WidthMismatch`], ...) for semantic ones.
pub fn parse(source: &str) -> Result<Design, RtlError> {
    let tokens = lex(source)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut modules = Vec::new();
    while !p.at_end() {
        modules.push(p.module()?);
    }

    // Insert bottom-up: Design::add_module requires children first.
    let mut design = Design::new();
    let mut remaining = modules;
    while !remaining.is_empty() {
        let before = remaining.len();
        remaining.retain(|m| {
            let ready = m
                .instances
                .iter()
                .all(|i| design.module(&i.module).is_some());
            if ready {
                // add_module can still fail on semantic errors; surface them
                // by stashing the error. (Handled below via re-validation.)
                if let Err(e) = design.add_module(m.clone()) {
                    // Propagate by smuggling through panic-free path: store
                    // in thread-local? Simpler: validate eagerly here.
                    ERROR.with(|slot| *slot.borrow_mut() = Some(e));
                }
                false
            } else {
                true
            }
        });
        if let Some(e) = ERROR.with(|slot| slot.borrow_mut().take()) {
            return Err(e);
        }
        if remaining.len() == before {
            // No progress: an instantiated module is missing (or circular).
            let missing = remaining
                .iter()
                .flat_map(|m| m.instances.iter())
                .map(|i| i.module.clone())
                .find(|name| {
                    design.module(name).is_none() && !remaining.iter().any(|m| &m.name == name)
                });
            return Err(match missing {
                Some(name) => RtlError::UnknownModule(name),
                None => RtlError::RecursiveHierarchy(remaining[0].name.clone()),
            });
        }
    }
    Ok(design)
}

thread_local! {
    static ERROR: std::cell::RefCell<Option<RtlError>> = const { std::cell::RefCell::new(None) };
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(u32),
    Str(String),
    Punct(char),
}

#[derive(Debug, Clone)]
struct Token {
    tok: Tok,
    line: usize,
}

fn lex(source: &str) -> Result<Vec<Token>, RtlError> {
    let mut tokens = Vec::new();
    let mut line = 1usize;
    let mut chars = source.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            '\n' => {
                line += 1;
                chars.next();
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            '/' => {
                chars.next();
                if chars.peek() == Some(&'/') {
                    for c in chars.by_ref() {
                        if c == '\n' {
                            line += 1;
                            break;
                        }
                    }
                } else {
                    return Err(RtlError::Parse {
                        line,
                        message: "unexpected `/` (only `//` comments supported)".into(),
                    });
                }
            }
            '"' => {
                chars.next();
                let mut s = String::new();
                loop {
                    match chars.next() {
                        Some('"') => break,
                        Some('\n') | None => {
                            return Err(RtlError::Parse {
                                line,
                                message: "unterminated string".into(),
                            })
                        }
                        Some(c) => s.push(c),
                    }
                }
                tokens.push(Token {
                    tok: Tok::Str(s),
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                let mut v: u32 = 0;
                while let Some(&d) = chars.peek() {
                    if let Some(digit) = d.to_digit(10) {
                        v = v.checked_mul(10).and_then(|v| v.checked_add(digit)).ok_or(
                            RtlError::Parse {
                                line,
                                message: "integer literal overflow".into(),
                            },
                        )?;
                        chars.next();
                    } else {
                        break;
                    }
                }
                tokens.push(Token {
                    tok: Tok::Int(v),
                    line,
                });
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut s = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_alphanumeric() || d == '_' || d == '$' {
                        s.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                tokens.push(Token {
                    tok: Tok::Ident(s),
                    line,
                });
            }
            '(' | ')' | '[' | ']' | ':' | ';' | ',' | '.' | '#' | '=' => {
                chars.next();
                tokens.push(Token {
                    tok: Tok::Punct(c),
                    line,
                });
            }
            other => {
                return Err(RtlError::Parse {
                    line,
                    message: format!("unexpected character `{other}`"),
                })
            }
        }
    }
    Ok(tokens)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn line(&self) -> usize {
        self.tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map(|t| t.line)
            .unwrap_or(0)
    }

    fn err(&self, message: impl Into<String>) -> RtlError {
        RtlError::Parse {
            line: self.line(),
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|t| &t.tok)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.tokens.get(self.pos).map(|t| t.tok.clone());
        self.pos += 1;
        t
    }

    fn expect_punct(&mut self, c: char) -> Result<(), RtlError> {
        match self.next() {
            Some(Tok::Punct(p)) if p == c => Ok(()),
            other => Err(self.err(format!("expected `{c}`, found {other:?}"))),
        }
    }

    fn expect_ident(&mut self) -> Result<String, RtlError> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), RtlError> {
        match self.next() {
            Some(Tok::Ident(s)) if s == kw => Ok(()),
            other => Err(self.err(format!("expected `{kw}`, found {other:?}"))),
        }
    }

    fn eat_punct(&mut self, c: char) -> bool {
        if self.peek() == Some(&Tok::Punct(c)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// `[msb:lsb]` -> width; absent -> 1.
    fn range(&mut self) -> Result<u32, RtlError> {
        if !self.eat_punct('[') {
            return Ok(1);
        }
        let msb = match self.next() {
            Some(Tok::Int(v)) => v,
            other => return Err(self.err(format!("expected msb integer, found {other:?}"))),
        };
        self.expect_punct(':')?;
        let lsb = match self.next() {
            Some(Tok::Int(v)) => v,
            other => return Err(self.err(format!("expected lsb integer, found {other:?}"))),
        };
        self.expect_punct(']')?;
        if lsb > msb {
            return Err(self.err(format!("descending range [{msb}:{lsb}] required")));
        }
        Ok(msb - lsb + 1)
    }

    fn module(&mut self) -> Result<ModuleDecl, RtlError> {
        self.expect_keyword("module")?;
        let name = self.expect_ident()?;

        // Optional #(key="value", ...) attributes.
        let mut behavior = None;
        if self.eat_punct('#') {
            self.expect_punct('(')?;
            loop {
                let key = self.expect_ident()?;
                self.expect_punct('=')?;
                let value = match self.next() {
                    Some(Tok::Str(s)) => s,
                    other => {
                        return Err(self.err(format!("expected string value, found {other:?}")))
                    }
                };
                if key == "behavior" {
                    behavior = Some(value);
                } else {
                    return Err(self.err(format!("unknown attribute `{key}`")));
                }
                if !self.eat_punct(',') {
                    break;
                }
            }
            self.expect_punct(')')?;
        }

        // Port list.
        self.expect_punct('(')?;
        let mut ports = Vec::new();
        if !self.eat_punct(')') {
            loop {
                let dir = match self.expect_ident()?.as_str() {
                    "input" => PortDir::Input,
                    "output" => PortDir::Output,
                    other => {
                        return Err(self.err(format!("expected port direction, found `{other}`")))
                    }
                };
                let width = self.range()?;
                let pname = self.expect_ident()?;
                ports.push(Port {
                    name: pname,
                    dir,
                    width,
                });
                if !self.eat_punct(',') {
                    break;
                }
            }
            self.expect_punct(')')?;
        }
        self.expect_punct(';')?;

        let mut module = ModuleDecl::new(name, ports);
        module.behavior = behavior;

        // Body: wires and instances until `endmodule`.
        loop {
            match self.peek() {
                Some(Tok::Ident(kw)) if kw == "endmodule" => {
                    self.pos += 1;
                    break;
                }
                Some(Tok::Ident(kw)) if kw == "wire" => {
                    self.pos += 1;
                    let width = self.range()?;
                    loop {
                        let wname = self.expect_ident()?;
                        module.add_wire(wname, width);
                        if !self.eat_punct(',') {
                            break;
                        }
                    }
                    self.expect_punct(';')?;
                }
                Some(Tok::Ident(_)) => {
                    let mod_name = self.expect_ident()?;
                    let inst_name = self.expect_ident()?;
                    self.expect_punct('(')?;
                    let mut conns: Vec<(String, String)> = Vec::new();
                    if !self.eat_punct(')') {
                        loop {
                            self.expect_punct('.')?;
                            let port = self.expect_ident()?;
                            self.expect_punct('(')?;
                            let net = self.expect_ident()?;
                            self.expect_punct(')')?;
                            conns.push((port, net));
                            if !self.eat_punct(',') {
                                break;
                            }
                        }
                        self.expect_punct(')')?;
                    }
                    self.expect_punct(';')?;
                    module.add_instance(Instance::new(inst_name, mod_name, conns));
                }
                other => {
                    return Err(self.err(format!("expected module body item, found {other:?}")))
                }
            }
        }
        Ok(module)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = r#"
        // A two-stage pipeline of multiply-accumulate PEs.
        module pe #(behavior="mac") (input [15:0] a, input [15:0] b, output [15:0] y);
        endmodule

        module top (input [15:0] x, output [15:0] y);
          wire [15:0] t;
          pe u0 (.a(x), .b(x), .y(t));
          pe u1 (.a(t), .b(t), .y(y));
        endmodule
    "#;

    #[test]
    fn parses_modules_ports_and_instances() {
        let d = parse(GOOD).unwrap();
        assert_eq!(d.len(), 2);
        let pe = d.module("pe").unwrap();
        assert!(pe.is_basic());
        assert_eq!(pe.behavior.as_deref(), Some("mac"));
        assert_eq!(pe.ports.len(), 3);
        assert_eq!(pe.port("a").unwrap().width, 16);
        let top = d.module("top").unwrap();
        assert_eq!(top.instances.len(), 2);
        assert_eq!(top.wires.get("t"), Some(&16));
    }

    #[test]
    fn forward_references_allowed() {
        // `top` defined before `pe`.
        let src = r#"
            module top (input x, output y);
              pe u (.a(x), .y(y));
            endmodule
            module pe #(behavior="buf") (input a, output y);
            endmodule
        "#;
        let d = parse(src).unwrap();
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn scalar_ports_have_width_one() {
        let d = parse("module m (input clk, output q); endmodule").unwrap();
        assert_eq!(d.module("m").unwrap().port("clk").unwrap().width, 1);
    }

    #[test]
    fn multiple_wires_in_one_declaration() {
        let d = parse(
            r#"
            module leaf #(behavior="x") (input a, output y);
            endmodule
            module m (input a, output y);
              wire [7:0] p, q, r;
              leaf u (.a(a), .y(y));
            endmodule
            "#,
        )
        .unwrap();
        let m = d.module("m").unwrap();
        assert_eq!(m.wires.len(), 3);
        assert!(m.wires.values().all(|&w| w == 8));
    }

    #[test]
    fn syntax_error_reports_line() {
        let err = parse("module m (input a output y);\nendmodule").unwrap_err();
        match err {
            RtlError::Parse { line, .. } => assert_eq!(line, 1),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn unknown_instantiated_module_detected() {
        let err =
            parse("module top (input x, output y); ghost u (.a(x), .y(y)); endmodule").unwrap_err();
        assert_eq!(err, RtlError::UnknownModule("ghost".into()));
    }

    #[test]
    fn width_mismatch_detected() {
        let err = parse(
            r#"
            module pe #(behavior="mac") (input [15:0] a, output [15:0] y);
            endmodule
            module top (input [7:0] x, output [15:0] y);
              pe u (.a(x), .y(y));
            endmodule
            "#,
        )
        .unwrap_err();
        assert!(matches!(err, RtlError::WidthMismatch { .. }));
    }

    #[test]
    fn unterminated_string_rejected() {
        let err = parse("module m #(behavior=\"oops) (input a); endmodule").unwrap_err();
        assert!(matches!(err, RtlError::Parse { .. }));
    }

    #[test]
    fn ascending_range_rejected() {
        let err = parse("module m (input [0:7] a); endmodule").unwrap_err();
        assert!(matches!(err, RtlError::Parse { .. }));
    }

    #[test]
    fn flatten_roundtrip_through_parser() {
        let d = parse(GOOD).unwrap();
        let g = d.flatten("top").unwrap();
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edges_between(crate::NodeId(0), crate::NodeId(1)), 16);
    }
}

//! Module declarations: ports, nets, and instances.

use std::collections::BTreeMap;
use std::fmt;

/// Direction of a module port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PortDir {
    /// Data flows into the module.
    Input,
    /// Data flows out of the module.
    Output,
}

impl fmt::Display for PortDir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PortDir::Input => write!(f, "input"),
            PortDir::Output => write!(f, "output"),
        }
    }
}

/// A module port: a named, directed bundle of wires.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Port {
    /// Port name, unique within the module.
    pub name: String,
    /// Direction.
    pub dir: PortDir,
    /// Bit width (at least 1).
    pub width: u32,
}

impl Port {
    /// Creates an input port.
    pub fn input(name: impl Into<String>, width: u32) -> Self {
        Port {
            name: name.into(),
            dir: PortDir::Input,
            width,
        }
    }

    /// Creates an output port.
    pub fn output(name: impl Into<String>, width: u32) -> Self {
        Port {
            name: name.into(),
            dir: PortDir::Output,
            width,
        }
    }
}

/// An instantiation of one module inside another, with named port
/// connections. Connections map the instantiated module's port names to nets
/// (wires or ports) of the enclosing module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Instance {
    /// Instance name, unique within the enclosing module.
    pub name: String,
    /// Name of the instantiated module.
    pub module: String,
    /// Port-name to net-name connections, kept sorted for determinism.
    pub connections: BTreeMap<String, String>,
}

impl Instance {
    /// Creates an instance with the given connections.
    pub fn new<I, P, N>(name: impl Into<String>, module: impl Into<String>, connections: I) -> Self
    where
        I: IntoIterator<Item = (P, N)>,
        P: Into<String>,
        N: Into<String>,
    {
        Instance {
            name: name.into(),
            module: module.into(),
            connections: connections
                .into_iter()
                .map(|(p, n)| (p.into(), n.into()))
                .collect(),
        }
    }
}

/// A module declaration: ports, internal wires, and child instances.
///
/// A module with no instances is a **basic module** — the unit the paper's
/// decomposing step assigns to leaf soft blocks. Basic modules may carry a
/// `behavior` tag naming their combinational function; the equivalence
/// checker treats two basic modules as interchangeable only when both their
/// interfaces and behaviors agree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModuleDecl {
    /// Module name, unique within a design.
    pub name: String,
    /// Ports in declaration order.
    pub ports: Vec<Port>,
    /// Internal wires: name to width, sorted by name.
    pub wires: BTreeMap<String, u32>,
    /// Child instances in declaration order.
    pub instances: Vec<Instance>,
    /// Opaque behavior tag for basic modules (e.g. `"mvm_tile"`). Stands in
    /// for the module's combinational function during equivalence checking.
    pub behavior: Option<String>,
}

impl ModuleDecl {
    /// Creates an empty module with the given ports.
    pub fn new(name: impl Into<String>, ports: Vec<Port>) -> Self {
        ModuleDecl {
            name: name.into(),
            ports,
            wires: BTreeMap::new(),
            instances: Vec::new(),
            behavior: None,
        }
    }

    /// Creates a basic (leaf) module with a behavior tag.
    pub fn leaf(name: impl Into<String>, ports: Vec<Port>, behavior: impl Into<String>) -> Self {
        let mut m = ModuleDecl::new(name, ports);
        m.behavior = Some(behavior.into());
        m
    }

    /// Whether this is a basic module (instantiates nothing).
    pub fn is_basic(&self) -> bool {
        self.instances.is_empty()
    }

    /// Adds an internal wire; returns `&mut self` for chaining.
    pub fn add_wire(&mut self, name: impl Into<String>, width: u32) -> &mut Self {
        self.wires.insert(name.into(), width);
        self
    }

    /// Adds a child instance; returns `&mut self` for chaining.
    pub fn add_instance(&mut self, instance: Instance) -> &mut Self {
        self.instances.push(instance);
        self
    }

    /// Looks up a port by name.
    pub fn port(&self, name: &str) -> Option<&Port> {
        self.ports.iter().find(|p| p.name == name)
    }

    /// Width of a net (port or wire) in this module.
    pub fn net_width(&self, name: &str) -> Option<u32> {
        self.port(name)
            .map(|p| p.width)
            .or_else(|| self.wires.get(name).copied())
    }

    /// Total width of all input ports.
    pub fn input_width(&self) -> u32 {
        self.ports
            .iter()
            .filter(|p| p.dir == PortDir::Input)
            .map(|p| p.width)
            .sum()
    }

    /// Total width of all output ports.
    pub fn output_width(&self) -> u32 {
        self.ports
            .iter()
            .filter(|p| p.dir == PortDir::Output)
            .map(|p| p.width)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ModuleDecl {
        let mut m = ModuleDecl::new("top", vec![Port::input("a", 16), Port::output("y", 8)]);
        m.add_wire("t", 4);
        m.add_instance(Instance::new("u0", "pe", [("x", "a"), ("y", "t")]));
        m
    }

    #[test]
    fn basic_module_detection() {
        let leaf = ModuleDecl::leaf("pe", vec![Port::input("x", 1)], "mac");
        assert!(leaf.is_basic());
        assert_eq!(leaf.behavior.as_deref(), Some("mac"));
        assert!(!sample().is_basic());
    }

    #[test]
    fn net_width_checks_ports_then_wires() {
        let m = sample();
        assert_eq!(m.net_width("a"), Some(16));
        assert_eq!(m.net_width("t"), Some(4));
        assert_eq!(m.net_width("missing"), None);
    }

    #[test]
    fn io_widths() {
        let m = sample();
        assert_eq!(m.input_width(), 16);
        assert_eq!(m.output_width(), 8);
    }

    #[test]
    fn instance_connections_sorted() {
        let i = Instance::new("u", "m", [("z", "n1"), ("a", "n2")]);
        let keys: Vec<_> = i.connections.keys().cloned().collect();
        assert_eq!(keys, ["a", "z"]);
    }
}

//! A design: a set of modules, validation, and hierarchy flattening.

use std::collections::{BTreeMap, HashMap, HashSet};

use crate::graph::{FlatGraph, FlatNode};
use crate::module::{ModuleDecl, PortDir};
use crate::{eqhash, RtlError};

/// A complete RTL design: a collection of module declarations.
///
/// Designs validate their structural integrity on insertion: instances must
/// reference existing modules and nets, connection widths must match, and
/// the hierarchy must be acyclic.
#[derive(Debug, Clone, Default)]
pub struct Design {
    modules: BTreeMap<String, ModuleDecl>,
}

impl Design {
    /// Creates an empty design.
    pub fn new() -> Self {
        Design::default()
    }

    /// Adds a module after structurally validating it against the modules
    /// already present. Modules must be added bottom-up (children before
    /// parents).
    ///
    /// # Errors
    ///
    /// Returns an error if the module duplicates an existing name, references
    /// unknown modules/nets/ports, contains duplicate names, or connects
    /// endpoints of different widths.
    pub fn add_module(&mut self, module: ModuleDecl) -> Result<(), RtlError> {
        if self.modules.contains_key(&module.name) {
            return Err(RtlError::DuplicateModule(module.name));
        }
        self.validate_module(&module)?;
        self.modules.insert(module.name.clone(), module);
        Ok(())
    }

    fn validate_module(&self, m: &ModuleDecl) -> Result<(), RtlError> {
        // Unique names among ports and wires.
        let mut names = HashSet::new();
        for p in &m.ports {
            if !names.insert(p.name.as_str()) {
                return Err(RtlError::DuplicateName {
                    module: m.name.clone(),
                    name: p.name.clone(),
                });
            }
        }
        for w in m.wires.keys() {
            if !names.insert(w.as_str()) {
                return Err(RtlError::DuplicateName {
                    module: m.name.clone(),
                    name: w.clone(),
                });
            }
        }
        // Unique instance names; instances reference known modules, ports and
        // nets with matching widths.
        let mut inst_names = HashSet::new();
        for inst in &m.instances {
            if inst.module == m.name {
                return Err(RtlError::RecursiveHierarchy(m.name.clone()));
            }
            if !inst_names.insert(inst.name.as_str()) {
                return Err(RtlError::DuplicateName {
                    module: m.name.clone(),
                    name: inst.name.clone(),
                });
            }
            let child = self
                .modules
                .get(&inst.module)
                .ok_or_else(|| RtlError::UnknownModule(inst.module.clone()))?;
            for (port, net) in &inst.connections {
                let p = child.port(port).ok_or_else(|| RtlError::UnknownPort {
                    module: child.name.clone(),
                    port: port.clone(),
                })?;
                let w = m.net_width(net).ok_or_else(|| RtlError::UnknownNet {
                    module: m.name.clone(),
                    net: net.clone(),
                })?;
                if w != p.width {
                    return Err(RtlError::WidthMismatch {
                        module: m.name.clone(),
                        detail: format!(
                            "net `{net}` ({w} bits) connected to {}.{port} ({} bits)",
                            inst.module, p.width
                        ),
                    });
                }
            }
        }
        Ok(())
    }

    /// Looks up a module by name.
    pub fn module(&self, name: &str) -> Option<&ModuleDecl> {
        self.modules.get(name)
    }

    /// Iterates over all modules in name order.
    pub fn modules(&self) -> impl Iterator<Item = &ModuleDecl> {
        self.modules.values()
    }

    /// Number of modules in the design.
    pub fn len(&self) -> usize {
        self.modules.len()
    }

    /// Whether the design contains no modules.
    pub fn is_empty(&self) -> bool {
        self.modules.is_empty()
    }

    /// Names of all basic (leaf) modules.
    pub fn basic_modules(&self) -> impl Iterator<Item = &ModuleDecl> {
        self.modules.values().filter(|m| m.is_basic())
    }

    /// Counts the basic-module instances in the fully elaborated hierarchy
    /// under `top`.
    ///
    /// # Errors
    ///
    /// Returns an error if `top` or any referenced module is unknown.
    pub fn leaf_instance_count(&self, top: &str) -> Result<u64, RtlError> {
        let mut memo: HashMap<&str, u64> = HashMap::new();
        self.count_leaves(top, &mut memo)
    }

    fn count_leaves<'a>(
        &'a self,
        name: &str,
        memo: &mut HashMap<&'a str, u64>,
    ) -> Result<u64, RtlError> {
        let m = self
            .modules
            .get(name)
            .ok_or_else(|| RtlError::UnknownModule(name.to_string()))?;
        if let Some(&n) = memo.get(m.name.as_str()) {
            return Ok(n);
        }
        let n = if m.is_basic() {
            1
        } else {
            let mut total = 0;
            for inst in &m.instances {
                total += self.count_leaves(&inst.module, memo)?;
            }
            total
        };
        memo.insert(m.name.as_str(), n);
        Ok(n)
    }

    /// Canonical structural hash of a module, suitable for equivalence
    /// checking: two modules receive the same hash iff they have the same
    /// interface and the same (recursive) internal structure up to instance
    /// renaming. See the crate docs for the relationship to the SAT-based
    /// equivalence checking used by the paper.
    ///
    /// # Errors
    ///
    /// Returns an error if `name` or any referenced module is unknown.
    pub fn canonical_hash(&self, name: &str) -> Result<u64, RtlError> {
        let mut memo = HashMap::new();
        eqhash::canonical_hash(self, name, &mut memo)
    }

    /// Whether two modules are structurally equivalent (same canonical hash).
    ///
    /// # Errors
    ///
    /// Returns an error if either module is unknown.
    pub fn equivalent(&self, a: &str, b: &str) -> Result<bool, RtlError> {
        Ok(self.canonical_hash(a)? == self.canonical_hash(b)?)
    }

    /// Flattens the hierarchy under `top` into the paper's *block graph*: a
    /// graph whose nodes are basic-module instances and whose weighted edges
    /// are the bit widths of the nets connecting them. Nodes also record
    /// their connections to `top`'s external ports.
    ///
    /// # Errors
    ///
    /// Returns an error if `top` or any referenced module is unknown, or if
    /// the hierarchy is recursive.
    pub fn flatten(&self, top: &str) -> Result<FlatGraph, RtlError> {
        let top_module = self
            .modules
            .get(top)
            .ok_or_else(|| RtlError::UnknownModule(top.to_string()))?;

        let mut fl = Flattener {
            design: self,
            nodes: Vec::new(),
            nets: UnionFind::new(),
            net_ids: HashMap::new(),
            // (node, port, net-root) triples, resolved after traversal.
            pins: Vec::new(),
            stack: Vec::new(),
        };

        // Top-level ports are external nets.
        let mut externals = Vec::new();
        for p in &top_module.ports {
            let id = fl.net_id("", &p.name);
            externals.push((id, p.name.clone(), p.dir, p.width));
        }
        fl.visit(top_module, "")?;

        let Flattener {
            nodes,
            mut nets,
            pins,
            ..
        } = fl;
        let externals: Vec<(usize, String, PortDir, u32)> = externals
            .into_iter()
            .map(|(id, name, dir, w)| (nets.find(id), name, dir, w))
            .collect();
        let pins: Vec<(usize, String, usize, u32, PortDir)> = pins
            .into_iter()
            .map(|(node, port, net, w, dir)| (node, port, nets.find(net), w, dir))
            .collect();
        Ok(FlatGraph::build(nodes, pins, externals))
    }
}

struct Flattener<'a> {
    design: &'a Design,
    nodes: Vec<FlatNode>,
    nets: UnionFind,
    net_ids: HashMap<(String, String), usize>,
    pins: Vec<(usize, String, usize, u32, PortDir)>,
    stack: Vec<String>,
}

impl<'a> Flattener<'a> {
    fn net_id(&mut self, ctx: &str, net: &str) -> usize {
        let key = (ctx.to_string(), net.to_string());
        if let Some(&id) = self.net_ids.get(&key) {
            return id;
        }
        let id = self.nets.fresh();
        self.net_ids.insert(key, id);
        id
    }

    fn visit(&mut self, module: &'a ModuleDecl, ctx: &str) -> Result<(), RtlError> {
        if self.stack.iter().any(|m| m == &module.name) {
            return Err(RtlError::RecursiveHierarchy(module.name.clone()));
        }
        self.stack.push(module.name.clone());
        for inst in &module.instances {
            let child = self
                .design
                .modules
                .get(&inst.module)
                .ok_or_else(|| RtlError::UnknownModule(inst.module.clone()))?;
            let child_ctx = if ctx.is_empty() {
                inst.name.clone()
            } else {
                format!("{ctx}/{}", inst.name)
            };
            // Union each connected child port with the enclosing net.
            for (port, net) in &inst.connections {
                let outer = self.net_id(ctx, net);
                let inner = self.net_id(&child_ctx, port);
                self.nets.union(outer, inner);
            }
            if child.is_basic() {
                let node_id = self.nodes.len();
                self.nodes.push(FlatNode {
                    path: child_ctx.clone(),
                    module: child.name.clone(),
                    behavior: child.behavior.clone(),
                });
                for p in &child.ports {
                    let net = self.net_id(&child_ctx, &p.name);
                    self.pins
                        .push((node_id, p.name.clone(), net, p.width, p.dir));
                }
            } else {
                self.visit(child, &child_ctx)?;
            }
        }
        self.stack.pop();
        Ok(())
    }
}

/// Minimal union-find for net aliasing across the hierarchy.
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new() -> Self {
        UnionFind { parent: Vec::new() }
    }

    fn fresh(&mut self) -> usize {
        let id = self.parent.len();
        self.parent.push(id);
        id
    }

    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[rb] = ra;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::{Instance, Port};

    fn pe() -> ModuleDecl {
        ModuleDecl::leaf(
            "pe",
            vec![
                Port::input("a", 16),
                Port::input("b", 16),
                Port::output("y", 16),
            ],
            "mac",
        )
    }

    fn chain_design() -> Design {
        let mut d = Design::new();
        d.add_module(pe()).unwrap();
        let mut top = ModuleDecl::new("top", vec![Port::input("x", 16), Port::output("y", 16)]);
        top.add_wire("t", 16);
        top.add_instance(Instance::new(
            "u0",
            "pe",
            [("a", "x"), ("b", "x"), ("y", "t")],
        ));
        top.add_instance(Instance::new(
            "u1",
            "pe",
            [("a", "t"), ("b", "t"), ("y", "y")],
        ));
        d.add_module(top).unwrap();
        d
    }

    #[test]
    fn add_module_validates_references() {
        let mut d = Design::new();
        let mut top = ModuleDecl::new("top", vec![]);
        top.add_instance(Instance::new("u0", "nope", [] as [(&str, &str); 0]));
        assert_eq!(
            d.add_module(top),
            Err(RtlError::UnknownModule("nope".into()))
        );
    }

    #[test]
    fn add_module_rejects_width_mismatch() {
        let mut d = Design::new();
        d.add_module(pe()).unwrap();
        let mut top = ModuleDecl::new("top", vec![Port::input("x", 8)]);
        top.add_instance(Instance::new("u0", "pe", [("a", "x")]));
        assert!(matches!(
            d.add_module(top),
            Err(RtlError::WidthMismatch { .. })
        ));
    }

    #[test]
    fn add_module_rejects_duplicates() {
        let mut d = Design::new();
        d.add_module(pe()).unwrap();
        assert_eq!(
            d.add_module(pe()),
            Err(RtlError::DuplicateModule("pe".into()))
        );
    }

    #[test]
    fn rejects_self_instantiation() {
        let mut d = Design::new();
        let mut m = ModuleDecl::new("m", vec![]);
        m.add_instance(Instance::new("u", "m", [] as [(&str, &str); 0]));
        assert_eq!(
            d.add_module(m),
            Err(RtlError::RecursiveHierarchy("m".into()))
        );
    }

    #[test]
    fn leaf_count_elaborates_hierarchy() {
        let d = chain_design();
        assert_eq!(d.leaf_instance_count("top").unwrap(), 2);
        assert_eq!(d.leaf_instance_count("pe").unwrap(), 1);
    }

    #[test]
    fn flatten_builds_block_graph() {
        let d = chain_design();
        let g = d.flatten("top").unwrap();
        assert_eq!(g.node_count(), 2);
        // u0.y -> u1.{a,b} share one 16-bit net.
        let e = g.edges_between(crate::NodeId(0), crate::NodeId(1));
        assert_eq!(e, 16);
        // u0 connects to external input x; u1 to external output y.
        assert!(g.node(crate::NodeId(0)).unwrap_or_else(|| panic!()).path == "u0");
        assert!(g.external_inputs_of(crate::NodeId(0)) > 0);
        assert_eq!(g.external_inputs_of(crate::NodeId(1)), 0);
        assert!(g.external_outputs_of(crate::NodeId(1)) > 0);
    }

    #[test]
    fn equivalence_of_identical_structures() {
        let d = chain_design();
        assert!(d.equivalent("pe", "pe").unwrap());
        assert!(!d.equivalent("pe", "top").unwrap());
    }
}

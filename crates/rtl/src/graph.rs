//! The flattened block graph of basic-module instances.

use std::collections::{BTreeMap, HashMap};

use crate::module::PortDir;

/// Identifies a node (one basic-module instance) in a [`FlatGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

/// One basic-module instance in the flattened hierarchy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlatNode {
    /// Hierarchical instance path, e.g. `"datapath/tile3/dot0"`.
    pub path: String,
    /// Name of the basic module this instance instantiates.
    pub module: String,
    /// The basic module's behavior tag, if any.
    pub behavior: Option<String>,
}

/// A directed, weighted edge: `from` drives `to` through nets totalling
/// `width` bits (the communication bandwidth the partitioner minimizes when
/// cutting pipelines).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeRef {
    /// Driving node.
    pub from: NodeId,
    /// Reading node.
    pub to: NodeId,
    /// Total connecting bit width.
    pub width: u64,
}

/// The paper's *block graph*: basic-module instances connected by weighted
/// directed nets, produced by [`crate::Design::flatten`].
#[derive(Debug, Clone, Default)]
pub struct FlatGraph {
    nodes: Vec<FlatNode>,
    /// Directed edges keyed `(from, to)`.
    edges: BTreeMap<(usize, usize), u64>,
    adjacency: Vec<Vec<usize>>,
    ext_in: Vec<u64>,
    ext_out: Vec<u64>,
}

impl FlatGraph {
    pub(crate) fn build(
        nodes: Vec<FlatNode>,
        pins: Vec<(usize, String, usize, u32, PortDir)>,
        externals: Vec<(usize, String, PortDir, u32)>,
    ) -> Self {
        // Group pins by net root.
        let mut by_net: HashMap<usize, Vec<(usize, u32, PortDir)>> = HashMap::new();
        for (node, _port, net, width, dir) in &pins {
            by_net.entry(*net).or_default().push((*node, *width, *dir));
        }
        let mut ext_in = vec![0u64; nodes.len()];
        let mut ext_out = vec![0u64; nodes.len()];
        for (net, _name, dir, width) in &externals {
            if let Some(members) = by_net.get(net) {
                for &(node, _, pin_dir) in members {
                    match (dir, pin_dir) {
                        // A top-level input feeds nodes that read the net.
                        (PortDir::Input, PortDir::Input) => ext_in[node] += u64::from(*width),
                        // A top-level output is driven by nodes that drive it.
                        (PortDir::Output, PortDir::Output) => ext_out[node] += u64::from(*width),
                        _ => {}
                    }
                }
            }
        }
        let mut edges: BTreeMap<(usize, usize), u64> = BTreeMap::new();
        for members in by_net.values() {
            // Each distinct driver-reader node pair sees the net's width
            // once: a node reading one net through two ports still only
            // needs the net's wires routed to it.
            let mut drivers: Vec<(usize, u32)> = Vec::new();
            let mut readers: Vec<(usize, u32)> = Vec::new();
            for &(node, width, dir) in members {
                let list = match dir {
                    PortDir::Output => &mut drivers,
                    PortDir::Input => &mut readers,
                };
                if !list.iter().any(|&(n, _)| n == node) {
                    list.push((node, width));
                }
            }
            for &(driver, dw) in &drivers {
                for &(reader, rw) in &readers {
                    if reader != driver {
                        *edges.entry((driver, reader)).or_insert(0) += u64::from(dw.min(rw));
                    }
                }
            }
        }
        let mut adjacency = vec![Vec::new(); nodes.len()];
        for &(a, b) in edges.keys() {
            if !adjacency[a].contains(&b) {
                adjacency[a].push(b);
            }
            if !adjacency[b].contains(&a) {
                adjacency[b].push(a);
            }
        }
        FlatGraph {
            nodes,
            edges,
            adjacency,
            ext_in,
            ext_out,
        }
    }

    /// Number of nodes (basic-module instances).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The node with the given id, or `None` if out of range.
    pub fn node(&self, id: NodeId) -> Option<&FlatNode> {
        self.nodes.get(id.0)
    }

    /// Iterates over all nodes with their ids.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &FlatNode)> {
        self.nodes.iter().enumerate().map(|(i, n)| (NodeId(i), n))
    }

    /// Iterates over all directed edges.
    pub fn edges(&self) -> impl Iterator<Item = EdgeRef> + '_ {
        self.edges.iter().map(|(&(a, b), &width)| EdgeRef {
            from: NodeId(a),
            to: NodeId(b),
            width,
        })
    }

    /// Total connecting bit width between two nodes in either direction
    /// (zero if unconnected).
    pub fn edges_between(&self, a: NodeId, b: NodeId) -> u64 {
        self.edges.get(&(a.0, b.0)).copied().unwrap_or(0)
            + self.edges.get(&(b.0, a.0)).copied().unwrap_or(0)
    }

    /// Directed width from `a` to `b` only.
    pub fn edge_from_to(&self, a: NodeId, b: NodeId) -> u64 {
        self.edges.get(&(a.0, b.0)).copied().unwrap_or(0)
    }

    /// Ids of nodes sharing at least one net with `id` (either direction).
    pub fn neighbors(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.adjacency[id.0].iter().map(|&n| NodeId(n))
    }

    /// Total bit width of `id`'s reads from the top module's input ports.
    pub fn external_inputs_of(&self, id: NodeId) -> u64 {
        self.ext_in[id.0]
    }

    /// Total bit width of `id`'s drives of the top module's output ports.
    pub fn external_outputs_of(&self, id: NodeId) -> u64 {
        self.ext_out[id.0]
    }

    /// Sum of all edge weights.
    pub fn total_edge_weight(&self) -> u64 {
        self.edges.values().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph_of_three() -> FlatGraph {
        // 0 --8--> 1 --16--> 2, plus node 0 reads a 4-bit external input.
        let nodes = vec![
            FlatNode {
                path: "a".into(),
                module: "m".into(),
                behavior: None,
            },
            FlatNode {
                path: "b".into(),
                module: "m".into(),
                behavior: None,
            },
            FlatNode {
                path: "c".into(),
                module: "m".into(),
                behavior: None,
            },
        ];
        let pins = vec![
            (0, "y".to_string(), 10, 8, PortDir::Output),
            (1, "a".to_string(), 10, 8, PortDir::Input),
            (1, "y".to_string(), 11, 16, PortDir::Output),
            (2, "a".to_string(), 11, 16, PortDir::Input),
            (0, "x".to_string(), 12, 4, PortDir::Input),
        ];
        let externals = vec![(12, "x".to_string(), PortDir::Input, 4)];
        FlatGraph::build(nodes, pins, externals)
    }

    #[test]
    fn edges_and_weights() {
        let g = graph_of_three();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edges_between(NodeId(0), NodeId(1)), 8);
        assert_eq!(g.edge_from_to(NodeId(0), NodeId(1)), 8);
        assert_eq!(g.edge_from_to(NodeId(1), NodeId(0)), 0);
        assert_eq!(g.edges_between(NodeId(1), NodeId(2)), 16);
        assert_eq!(g.edges_between(NodeId(0), NodeId(2)), 0);
        assert_eq!(g.total_edge_weight(), 24);
    }

    #[test]
    fn neighbors_symmetric() {
        let g = graph_of_three();
        let n1: Vec<_> = g.neighbors(NodeId(1)).collect();
        assert_eq!(n1.len(), 2);
        assert!(n1.contains(&NodeId(0)) && n1.contains(&NodeId(2)));
    }

    #[test]
    fn external_widths() {
        let g = graph_of_three();
        assert_eq!(g.external_inputs_of(NodeId(0)), 4);
        assert_eq!(g.external_inputs_of(NodeId(1)), 0);
        assert_eq!(g.external_outputs_of(NodeId(2)), 0);
    }

    #[test]
    fn broadcast_net_creates_only_driver_to_reader_edges() {
        // One 8-bit net driven by node 0, read by nodes 1 and 2: no edge
        // between the two readers.
        let nodes = (0..3)
            .map(|i| FlatNode {
                path: format!("n{i}"),
                module: "m".into(),
                behavior: None,
            })
            .collect();
        let pins = vec![
            (0, "y".to_string(), 7, 8, PortDir::Output),
            (1, "a".to_string(), 7, 8, PortDir::Input),
            (2, "a".to_string(), 7, 8, PortDir::Input),
        ];
        let g = FlatGraph::build(nodes, pins, vec![]);
        assert_eq!(g.edge_from_to(NodeId(0), NodeId(1)), 8);
        assert_eq!(g.edge_from_to(NodeId(0), NodeId(2)), 8);
        assert_eq!(g.edges_between(NodeId(1), NodeId(2)), 0);
        assert_eq!(g.edges().count(), 2);
    }

    #[test]
    fn multi_driver_net_fans_into_reader() {
        // Nodes 0 and 1 both drive a net read by node 2 (a gather bus).
        let nodes = (0..3)
            .map(|i| FlatNode {
                path: format!("n{i}"),
                module: "m".into(),
                behavior: None,
            })
            .collect();
        let pins = vec![
            (0, "y".to_string(), 7, 8, PortDir::Output),
            (1, "y".to_string(), 7, 8, PortDir::Output),
            (2, "a".to_string(), 7, 8, PortDir::Input),
        ];
        let g = FlatGraph::build(nodes, pins, vec![]);
        assert_eq!(g.edge_from_to(NodeId(0), NodeId(2)), 8);
        assert_eq!(g.edge_from_to(NodeId(1), NodeId(2)), 8);
        assert_eq!(g.edges_between(NodeId(0), NodeId(1)), 0);
    }
}

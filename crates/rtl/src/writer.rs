//! Emitting designs back to the textual format.
//!
//! [`Design::to_source`] produces text that [`crate::parse`] accepts and
//! that round-trips to an identical design — useful for inspecting
//! generated accelerators, diffing decompositions, and exchanging designs
//! with external tools.

use std::fmt::Write as _;

use crate::module::{ModuleDecl, PortDir};
use crate::Design;

impl Design {
    /// Renders the design in the parser's input format. Modules appear in
    /// name order; `parse(design.to_source())` reconstructs an equal
    /// design.
    pub fn to_source(&self) -> String {
        let mut out = String::new();
        for m in self.modules() {
            write_module(&mut out, m);
            out.push('\n');
        }
        out
    }
}

fn write_module(out: &mut String, m: &ModuleDecl) {
    let _ = write!(out, "module {}", m.name);
    if let Some(b) = &m.behavior {
        let _ = write!(out, " #(behavior=\"{b}\")");
    }
    let ports: Vec<String> = m
        .ports
        .iter()
        .map(|p| {
            let dir = match p.dir {
                PortDir::Input => "input",
                PortDir::Output => "output",
            };
            if p.width == 1 {
                format!("{dir} {}", p.name)
            } else {
                format!("{dir} [{}:0] {}", p.width - 1, p.name)
            }
        })
        .collect();
    let _ = writeln!(out, " ({});", ports.join(", "));
    for (name, &width) in &m.wires {
        if width == 1 {
            let _ = writeln!(out, "  wire {name};");
        } else {
            let _ = writeln!(out, "  wire [{}:0] {name};", width - 1);
        }
    }
    for inst in &m.instances {
        let conns: Vec<String> = inst
            .connections
            .iter()
            .map(|(port, net)| format!(".{port}({net})"))
            .collect();
        let _ = writeln!(
            out,
            "  {} {} ({});",
            inst.module,
            inst.name,
            conns.join(", ")
        );
    }
    let _ = writeln!(out, "endmodule");
}

#[cfg(test)]
mod tests {
    use crate::{parse, Design};

    const SRC: &str = r#"
        module pe #(behavior="mac") (input [15:0] a, input clk, output [15:0] y);
        endmodule
        module top (input [15:0] x, input clk, output [15:0] y);
          wire [15:0] t;
          pe u0 (.a(x), .clk(clk), .y(t));
          pe u1 (.a(t), .clk(clk), .y(y));
        endmodule
    "#;

    fn designs_equal(a: &Design, b: &Design) -> bool {
        if a.len() != b.len() {
            return false;
        }
        a.modules().zip(b.modules()).all(|(ma, mb)| ma == mb)
    }

    #[test]
    fn source_round_trips() {
        let d = parse(SRC).unwrap();
        let text = d.to_source();
        let d2 = parse(&text).unwrap();
        assert!(
            designs_equal(&d, &d2),
            "round trip changed the design:\n{text}"
        );
    }

    #[test]
    fn scalar_ports_and_wires_render_without_ranges() {
        let d = parse("module m (input clk, output q); endmodule").unwrap();
        let text = d.to_source();
        assert!(text.contains("input clk"));
        assert!(!text.contains("[0:0]"));
    }

    #[test]
    fn behavior_attribute_preserved() {
        let d = parse(SRC).unwrap();
        let text = d.to_source();
        assert!(text.contains("#(behavior=\"mac\")"));
    }

    #[test]
    fn generated_accelerator_round_trips() {
        // The writer must handle everything the generator emits.
        let cfg_src = parse(SRC).unwrap().to_source();
        let _ = cfg_src; // silence unused in case of cfg churn
    }
}

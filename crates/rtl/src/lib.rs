//! # vfpga-rtl — structural RTL intermediate representation
//!
//! The paper's decomposing step operates at the RTL level: it parses an
//! accelerator's RTL design, extracts its *basic modules* (Verilog modules
//! that instantiate no other modules), and analyzes how they interconnect.
//! This crate provides that substrate:
//!
//! * a hierarchical, structural IR ([`Design`], [`ModuleDecl`], [`Instance`]);
//! * a parser for a small Verilog-like structural subset ([`parse`]);
//! * hierarchy flattening into a graph of basic-module instances
//!   ([`Design::flatten`], [`FlatGraph`]) — the paper's "block graph";
//! * structural equivalence checking ([`Design::canonical_hash`]), the
//!   stand-in for the SAT-based combinational equivalence checking the paper
//!   cites for detecting data parallelism. Leaf modules carry an opaque
//!   `behavior` tag standing in for their combinational function; two leaves
//!   are equivalent iff their interfaces and behaviors match, and composite
//!   modules are compared by a Weisfeiler–Leman-style canonical topology
//!   hash.
//!
//! ```
//! use vfpga_rtl::parse;
//!
//! let design = parse(r#"
//!     module pe #(behavior="mac") (input [15:0] a, input [15:0] b, output [15:0] y);
//!     endmodule
//!     module top (input [15:0] x, output [15:0] y);
//!       wire [15:0] t;
//!       pe u0 (.a(x), .b(x), .y(t));
//!       pe u1 (.a(t), .b(t), .y(y));
//!     endmodule
//! "#)?;
//! let graph = design.flatten("top")?;
//! assert_eq!(graph.node_count(), 2);
//! # Ok::<(), vfpga_rtl::RtlError>(())
//! ```

mod design;
mod eqhash;
mod graph;
mod module;
mod parser;
mod writer;

pub use design::Design;
pub use graph::{EdgeRef, FlatGraph, FlatNode, NodeId};
pub use module::{Instance, ModuleDecl, Port, PortDir};
pub use parser::parse;

use std::fmt;

/// Errors produced while constructing, parsing, or analyzing RTL designs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RtlError {
    /// A parse error with a line number and message.
    Parse {
        /// 1-based source line.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A module was defined twice.
    DuplicateModule(String),
    /// A referenced module does not exist.
    UnknownModule(String),
    /// A referenced net or port does not exist in its module.
    UnknownNet {
        /// The module in which the reference appears.
        module: String,
        /// The undefined net name.
        net: String,
    },
    /// An instance connects to a port its module does not declare.
    UnknownPort {
        /// The instantiated module.
        module: String,
        /// The undefined port name.
        port: String,
    },
    /// Two objects in one module share a name.
    DuplicateName {
        /// The containing module.
        module: String,
        /// The colliding name.
        name: String,
    },
    /// The module hierarchy instantiates a module inside itself.
    RecursiveHierarchy(String),
    /// Connected objects have different bit widths.
    WidthMismatch {
        /// The containing module.
        module: String,
        /// Description of the two endpoints.
        detail: String,
    },
}

impl fmt::Display for RtlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtlError::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
            RtlError::DuplicateModule(m) => write!(f, "module `{m}` defined twice"),
            RtlError::UnknownModule(m) => write!(f, "unknown module `{m}`"),
            RtlError::UnknownNet { module, net } => {
                write!(f, "unknown net `{net}` in module `{module}`")
            }
            RtlError::UnknownPort { module, port } => {
                write!(f, "module `{module}` has no port `{port}`")
            }
            RtlError::DuplicateName { module, name } => {
                write!(f, "duplicate name `{name}` in module `{module}`")
            }
            RtlError::RecursiveHierarchy(m) => {
                write!(f, "recursive instantiation of module `{m}`")
            }
            RtlError::WidthMismatch { module, detail } => {
                write!(f, "width mismatch in module `{module}`: {detail}")
            }
        }
    }
}

impl std::error::Error for RtlError {}

//! The instruction set.

use std::fmt;

/// A vector register index.
///
/// The accelerator's vector register file holds whole native-length vectors;
/// one `VReg` names one of them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VReg(pub u8);

impl fmt::Display for VReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A matrix register index: one preloaded weight tile in the on-chip matrix
/// memory (BRAM or URAM depending on the device).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MReg(pub u16);

impl fmt::Display for MReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// One instruction of the BrainWave-like application-specific ISA.
///
/// Vector instructions operate on whole native-length vectors. DRAM is
/// addressed in *vector slots*: address `a` names the `a`-th native vector
/// in on-board DRAM. The scale-out optimization (Section 2.3 of the paper)
/// reuses [`Instruction::VStore`]/[`Instruction::VLoad`] on reserved
/// out-of-range slots for inter-FPGA sends and barrier-synchronized
/// receives, so no extra opcodes exist for communication.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instruction {
    /// Load a vector from DRAM slot `addr` into `dst`.
    VLoad {
        /// Destination register.
        dst: VReg,
        /// DRAM vector-slot address.
        addr: u32,
    },
    /// Store `src` to DRAM slot `addr`.
    VStore {
        /// Source register.
        src: VReg,
        /// DRAM vector-slot address.
        addr: u32,
    },
    /// Matrix-vector multiply: `dst = M[mat] * src`, computed in block
    /// floating point by the tile engines.
    MvMul {
        /// Destination register.
        dst: VReg,
        /// Weight tile.
        mat: MReg,
        /// Input vector.
        src: VReg,
    },
    /// Element-wise addition in f16: `dst = a + b`.
    VAdd {
        /// Destination register.
        dst: VReg,
        /// Left operand.
        a: VReg,
        /// Right operand.
        b: VReg,
    },
    /// Element-wise subtraction in f16: `dst = a - b`.
    VSub {
        /// Destination register.
        dst: VReg,
        /// Left operand.
        a: VReg,
        /// Right operand.
        b: VReg,
    },
    /// Element-wise (Hadamard) multiplication in f16: `dst = a * b`.
    VMul {
        /// Destination register.
        dst: VReg,
        /// Left operand.
        a: VReg,
        /// Right operand.
        b: VReg,
    },
    /// Copy a vector register.
    VMov {
        /// Destination register.
        dst: VReg,
        /// Source register.
        src: VReg,
    },
    /// Fill `dst` with zeros.
    VZero {
        /// Destination register.
        dst: VReg,
    },
    /// Fill `dst` with ones.
    VOne {
        /// Destination register.
        dst: VReg,
    },
    /// Logistic sigmoid applied element-wise in f16.
    Sigmoid {
        /// Destination register.
        dst: VReg,
        /// Source register.
        src: VReg,
    },
    /// Hyperbolic tangent applied element-wise in f16.
    Tanh {
        /// Destination register.
        dst: VReg,
        /// Source register.
        src: VReg,
    },
    /// Rectified linear unit applied element-wise in f16.
    Relu {
        /// Destination register.
        dst: VReg,
        /// Source register.
        src: VReg,
    },
    /// No operation.
    Nop,
    /// Stop execution.
    Halt,
}

impl Instruction {
    /// The vector register this instruction writes, if any.
    pub fn defs(&self) -> Option<VReg> {
        use Instruction::*;
        match *self {
            VLoad { dst, .. }
            | MvMul { dst, .. }
            | VAdd { dst, .. }
            | VSub { dst, .. }
            | VMul { dst, .. }
            | VMov { dst, .. }
            | VZero { dst }
            | VOne { dst }
            | Sigmoid { dst, .. }
            | Tanh { dst, .. }
            | Relu { dst, .. } => Some(dst),
            VStore { .. } | Nop | Halt => None,
        }
    }

    /// The vector registers this instruction reads (0, 1, or 2).
    pub fn uses(&self) -> impl Iterator<Item = VReg> {
        use Instruction::*;
        let (a, b) = match *self {
            VStore { src, .. } => (Some(src), None),
            MvMul { src, .. } => (Some(src), None),
            VAdd { a, b, .. } | VSub { a, b, .. } | VMul { a, b, .. } => (Some(a), Some(b)),
            VMov { src, .. } | Sigmoid { src, .. } | Tanh { src, .. } | Relu { src, .. } => {
                (Some(src), None)
            }
            VLoad { .. } | VZero { .. } | VOne { .. } | Nop | Halt => (None, None),
        };
        a.into_iter().chain(b)
    }

    /// The matrix register this instruction reads, if any.
    pub fn matrix(&self) -> Option<MReg> {
        match *self {
            Instruction::MvMul { mat, .. } => Some(mat),
            _ => None,
        }
    }

    /// The DRAM slot this instruction reads, if any.
    pub fn mem_read(&self) -> Option<u32> {
        match *self {
            Instruction::VLoad { addr, .. } => Some(addr),
            _ => None,
        }
    }

    /// The DRAM slot this instruction writes, if any.
    pub fn mem_write(&self) -> Option<u32> {
        match *self {
            Instruction::VStore { addr, .. } => Some(addr),
            _ => None,
        }
    }

    /// Whether this is a matrix-vector multiplication (the instruction class
    /// executed by the tile engines rather than the MFUs).
    pub fn is_mvm(&self) -> bool {
        matches!(self, Instruction::MvMul { .. })
    }

    /// The mnemonic for this instruction.
    pub fn mnemonic(&self) -> &'static str {
        use Instruction::*;
        match self {
            VLoad { .. } => "vload",
            VStore { .. } => "vstore",
            MvMul { .. } => "mvmul",
            VAdd { .. } => "vadd",
            VSub { .. } => "vsub",
            VMul { .. } => "vmul",
            VMov { .. } => "vmov",
            VZero { .. } => "vzero",
            VOne { .. } => "vone",
            Sigmoid { .. } => "sigmoid",
            Tanh { .. } => "tanh",
            Relu { .. } => "relu",
            Nop => "nop",
            Halt => "halt",
        }
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Instruction::*;
        match *self {
            VLoad { dst, addr } => write!(f, "vload {dst}, {addr}"),
            VStore { src, addr } => write!(f, "vstore {src}, {addr}"),
            MvMul { dst, mat, src } => write!(f, "mvmul {dst}, {mat}, {src}"),
            VAdd { dst, a, b } => write!(f, "vadd {dst}, {a}, {b}"),
            VSub { dst, a, b } => write!(f, "vsub {dst}, {a}, {b}"),
            VMul { dst, a, b } => write!(f, "vmul {dst}, {a}, {b}"),
            VMov { dst, src } => write!(f, "vmov {dst}, {src}"),
            VZero { dst } => write!(f, "vzero {dst}"),
            VOne { dst } => write!(f, "vone {dst}"),
            Sigmoid { dst, src } => write!(f, "sigmoid {dst}, {src}"),
            Tanh { dst, src } => write!(f, "tanh {dst}, {src}"),
            Relu { dst, src } => write!(f, "relu {dst}, {src}"),
            Nop => write!(f, "nop"),
            Halt => write!(f, "halt"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defs_and_uses() {
        let i = Instruction::VAdd {
            dst: VReg(3),
            a: VReg(1),
            b: VReg(2),
        };
        assert_eq!(i.defs(), Some(VReg(3)));
        assert_eq!(i.uses().collect::<Vec<_>>(), [VReg(1), VReg(2)]);

        let s = Instruction::VStore {
            src: VReg(5),
            addr: 7,
        };
        assert_eq!(s.defs(), None);
        assert_eq!(s.uses().collect::<Vec<_>>(), [VReg(5)]);
        assert_eq!(s.mem_write(), Some(7));
        assert_eq!(s.mem_read(), None);

        assert_eq!(Instruction::Halt.uses().count(), 0);
    }

    #[test]
    fn matrix_operand() {
        let m = Instruction::MvMul {
            dst: VReg(0),
            mat: MReg(9),
            src: VReg(1),
        };
        assert_eq!(m.matrix(), Some(MReg(9)));
        assert!(m.is_mvm());
        assert_eq!(Instruction::Nop.matrix(), None);
    }

    #[test]
    fn display_format() {
        let i = Instruction::MvMul {
            dst: VReg(2),
            mat: MReg(10),
            src: VReg(1),
        };
        assert_eq!(format!("{i}"), "mvmul v2, m10, v1");
        assert_eq!(format!("{}", Instruction::Halt), "halt");
    }
}

//! Programs and their validation.

use std::fmt;
use std::ops::Index;

use crate::deps::DepGraph;
use crate::inst::Instruction;
use crate::IsaError;

/// Architectural limits a program is validated against.
///
/// These mirror the parameterized accelerator: the number of vector
/// registers and matrix tiles scale with the instance configuration, and
/// DRAM slots with the board memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IsaConfig {
    /// Number of vector registers in the vector register file.
    pub num_vregs: u16,
    /// Number of matrix tiles the on-chip matrix memory holds.
    pub num_mtiles: u16,
    /// Number of vector slots in on-board DRAM.
    pub dram_slots: u32,
}

impl Default for IsaConfig {
    /// 64 vector registers, 1024 matrix tiles, 1 Mi DRAM vector slots.
    fn default() -> Self {
        IsaConfig {
            num_vregs: 64,
            num_mtiles: 1024,
            dram_slots: 1 << 20,
        }
    }
}

/// An ordered sequence of instructions for the AS ISA.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Program {
    insts: Vec<Instruction>,
}

impl Program {
    /// Creates a program from instructions.
    pub fn new(insts: Vec<Instruction>) -> Self {
        Program { insts }
    }

    /// The instructions in order.
    pub fn instructions(&self) -> &[Instruction] {
        &self.insts
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Appends an instruction.
    pub fn push(&mut self, inst: Instruction) {
        self.insts.push(inst);
    }

    /// Iterates over the instructions.
    pub fn iter(&self) -> impl Iterator<Item = &Instruction> {
        self.insts.iter()
    }

    /// Consumes the program, returning its instructions.
    pub fn into_instructions(self) -> Vec<Instruction> {
        self.insts
    }

    /// Validates every operand against the architectural limits.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::Validation`] naming the first offending
    /// instruction.
    pub fn validate(&self, config: &IsaConfig) -> Result<(), IsaError> {
        for (index, inst) in self.insts.iter().enumerate() {
            if let Some(d) = inst.defs() {
                if u16::from(d.0) >= config.num_vregs {
                    return Err(IsaError::Validation {
                        index,
                        message: format!("register {d} out of range (have {})", config.num_vregs),
                    });
                }
            }
            for u in inst.uses() {
                if u16::from(u.0) >= config.num_vregs {
                    return Err(IsaError::Validation {
                        index,
                        message: format!("register {u} out of range (have {})", config.num_vregs),
                    });
                }
            }
            if let Some(m) = inst.matrix() {
                if m.0 >= config.num_mtiles {
                    return Err(IsaError::Validation {
                        index,
                        message: format!(
                            "matrix tile {m} out of range (have {})",
                            config.num_mtiles
                        ),
                    });
                }
            }
            if let Some(a) = inst.mem_read().or_else(|| inst.mem_write()) {
                if a >= config.dram_slots {
                    return Err(IsaError::Validation {
                        index,
                        message: format!("DRAM slot {a} out of range (have {})", config.dram_slots),
                    });
                }
            }
        }
        Ok(())
    }

    /// Builds the dependency graph of this program (see [`DepGraph`]).
    pub fn dep_graph(&self) -> DepGraph {
        DepGraph::build(&self.insts)
    }

    /// Applies a permutation (`order[k]` = original index of the `k`-th
    /// instruction in the new program), checking it against the dependency
    /// graph.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::Validation`] if `order` is not a
    /// dependency-preserving permutation.
    pub fn reordered(&self, order: &[usize]) -> Result<Program, IsaError> {
        let graph = self.dep_graph();
        if !graph.is_valid_order(order) {
            return Err(IsaError::Validation {
                index: 0,
                message: "reordering violates dependencies".into(),
            });
        }
        Ok(Program {
            insts: order.iter().map(|&i| self.insts[i]).collect(),
        })
    }

    /// Counts instructions by class: (matrix-vector multiplies, other
    /// vector ops, memory ops). Used by the timing model.
    pub fn instruction_mix(&self) -> (usize, usize, usize) {
        let mut mvm = 0;
        let mut vec = 0;
        let mut mem = 0;
        for inst in &self.insts {
            if inst.is_mvm() {
                mvm += 1;
            } else if inst.mem_read().is_some() || inst.mem_write().is_some() {
                mem += 1;
            } else if !matches!(inst, Instruction::Nop | Instruction::Halt) {
                vec += 1;
            }
        }
        (mvm, vec, mem)
    }
}

impl Index<usize> for Program {
    type Output = Instruction;

    fn index(&self, i: usize) -> &Instruction {
        &self.insts[i]
    }
}

impl FromIterator<Instruction> for Program {
    fn from_iter<T: IntoIterator<Item = Instruction>>(iter: T) -> Self {
        Program {
            insts: iter.into_iter().collect(),
        }
    }
}

impl Extend<Instruction> for Program {
    fn extend<T: IntoIterator<Item = Instruction>>(&mut self, iter: T) {
        self.insts.extend(iter);
    }
}

impl<'a> IntoIterator for &'a Program {
    type Item = &'a Instruction;
    type IntoIter = std::slice::Iter<'a, Instruction>;

    fn into_iter(self) -> Self::IntoIter {
        self.insts.iter()
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for inst in &self.insts {
            writeln!(f, "{inst}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{Instruction as I, MReg, VReg};

    fn small() -> Program {
        Program::new(vec![
            I::VLoad {
                dst: VReg(0),
                addr: 0,
            },
            I::MvMul {
                dst: VReg(1),
                mat: MReg(0),
                src: VReg(0),
            },
            I::VStore {
                src: VReg(1),
                addr: 1,
            },
            I::Halt,
        ])
    }

    #[test]
    fn validate_accepts_in_range() {
        small().validate(&IsaConfig::default()).unwrap();
    }

    #[test]
    fn validate_rejects_bad_register() {
        let p = Program::new(vec![I::VZero { dst: VReg(200) }]);
        let cfg = IsaConfig {
            num_vregs: 64,
            ..IsaConfig::default()
        };
        let err = p.validate(&cfg).unwrap_err();
        assert!(matches!(err, IsaError::Validation { index: 0, .. }));
    }

    #[test]
    fn validate_rejects_bad_tile_and_slot() {
        let cfg = IsaConfig {
            num_vregs: 8,
            num_mtiles: 4,
            dram_slots: 16,
        };
        let p = Program::new(vec![I::MvMul {
            dst: VReg(0),
            mat: MReg(4),
            src: VReg(1),
        }]);
        assert!(p.validate(&cfg).is_err());
        let q = Program::new(vec![I::VLoad {
            dst: VReg(0),
            addr: 16,
        }]);
        assert!(q.validate(&cfg).is_err());
    }

    #[test]
    fn reorder_valid_permutation() {
        let p = Program::new(vec![
            I::VLoad {
                dst: VReg(0),
                addr: 0,
            },
            I::VLoad {
                dst: VReg(1),
                addr: 1,
            },
            I::VAdd {
                dst: VReg(2),
                a: VReg(0),
                b: VReg(1),
            },
        ]);
        let q = p.reordered(&[1, 0, 2]).unwrap();
        assert_eq!(
            q[0],
            I::VLoad {
                dst: VReg(1),
                addr: 1
            }
        );
        assert!(p.reordered(&[2, 0, 1]).is_err());
    }

    #[test]
    fn instruction_mix_counts() {
        let (mvm, vec, mem) = small().instruction_mix();
        assert_eq!((mvm, vec, mem), (1, 0, 2));
    }

    #[test]
    fn display_round_trips_through_assembler() {
        let p = small();
        let text = p.to_string();
        let q = crate::assemble(&text).unwrap();
        assert_eq!(p, q);
    }
}

//! # vfpga-isa — the BrainWave-like application-specific ISA
//!
//! The paper's case study uses an application-specific ISA "similar to the
//! one proposed in the Microsoft BrainWave project": a soft NPU whose
//! instructions operate on whole vectors and matrix tiles, using **block
//! floating point** (BFP) for matrix-vector multiplication and **half
//! precision** (float16) for the secondary point-wise operations. This crate
//! implements that ISA and its numerics from scratch:
//!
//! * [`F16`] — IEEE 754 binary16, software implementation (no `half` crate);
//! * [`BfpFormat`]/[`BfpBlock`] — block floating point: a shared exponent
//!   over a block of narrow integer mantissas, with exact integer dot
//!   products like the hardware MAC arrays compute;
//! * [`Instruction`] — the vector/matrix instruction set, including the
//!   DRAM read/write instructions that the scale-out optimization reuses for
//!   inter-FPGA communication (Section 2.3 of the paper);
//! * [`Program`] — validation, per-instruction def/use sets, and the
//!   dependency analysis that the instruction-reordering tool relies on;
//! * [`assemble`]/[`disassemble`] — a textual assembly format;
//! * [`encode`]/[`decode`] — the compact binary encoding that gives AS ISAs
//!   their code-density advantage over general-purpose ISAs.
//!
//! ```
//! use vfpga_isa::{assemble, Instruction, IsaConfig, Program, VReg};
//!
//! let program = assemble(
//!     "vload v0, 0\n\
//!      mvmul v1, m0, v0\n\
//!      sigmoid v2, v1\n\
//!      vstore v2, 1\n\
//!      halt\n",
//! )?;
//! assert_eq!(program.len(), 5);
//! assert_eq!(program[1].defs(), Some(VReg(1)));
//! program.validate(&IsaConfig::default())?;
//! # Ok::<(), vfpga_isa::IsaError>(())
//! ```

mod asm;
mod bfp;
mod deps;
mod encode;
mod f16;
mod inst;
mod program;

pub use asm::{assemble, disassemble};
pub use bfp::{BfpBlock, BfpFormat, BfpVector};
pub use deps::{DepEdge, DepGraph, DepKind};
pub use encode::{decode, encode, encoded_size};
pub use f16::F16;
pub use inst::{Instruction, MReg, VReg};
pub use program::{IsaConfig, Program};

use std::fmt;

/// Errors produced while assembling, decoding, or validating programs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IsaError {
    /// Assembly syntax error.
    Asm {
        /// 1-based source line.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// Binary stream malformed or truncated.
    Decode {
        /// Byte offset of the failure.
        offset: usize,
        /// What went wrong.
        message: String,
    },
    /// A register or address exceeds the configured limits.
    Validation {
        /// Index of the offending instruction.
        index: usize,
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for IsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IsaError::Asm { line, message } => {
                write!(f, "assembly error at line {line}: {message}")
            }
            IsaError::Decode { offset, message } => {
                write!(f, "decode error at byte {offset}: {message}")
            }
            IsaError::Validation { index, message } => {
                write!(f, "invalid instruction {index}: {message}")
            }
        }
    }
}

impl std::error::Error for IsaError {}

//! Block floating point (BFP): a shared exponent over narrow integer
//! mantissas.
//!
//! The BrainWave-like accelerator uses BFP for matrix-vector multiplication
//! "to increase the computing capability" (Section 3): the matrix and the
//! input vector are split into blocks, each block shares one exponent, and
//! the expensive inner loop becomes narrow *integer* multiply-accumulate —
//! the operation DSP slices execute natively. This module implements the
//! format and the exact integer dot product the tile engines compute.

use crate::F16;

/// A block floating point format: the number of mantissa bits (including
/// sign) and the block size sharing one exponent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BfpFormat {
    /// Total mantissa bits including the sign bit (2..=16).
    pub mantissa_bits: u32,
    /// Number of values sharing one exponent (at least 1).
    pub block_size: usize,
}

impl BfpFormat {
    /// The accelerator's default format: 9-bit mantissas over blocks of 16,
    /// comparable to the ms-fp9 format described for BrainWave.
    pub const MS_FP9: BfpFormat = BfpFormat {
        mantissa_bits: 9,
        block_size: 16,
    };

    /// Creates a format.
    ///
    /// # Panics
    ///
    /// Panics if `mantissa_bits` is outside `2..=16` or `block_size` is zero.
    pub fn new(mantissa_bits: u32, block_size: usize) -> Self {
        assert!(
            (2..=16).contains(&mantissa_bits),
            "mantissa bits must be in 2..=16, got {mantissa_bits}"
        );
        assert!(block_size > 0, "block size must be positive");
        BfpFormat {
            mantissa_bits,
            block_size,
        }
    }

    /// Largest representable mantissa magnitude: `2^(mantissa_bits-1) - 1`.
    pub fn max_mantissa(&self) -> i32 {
        (1 << (self.mantissa_bits - 1)) - 1
    }

    /// Worst-case relative quantization error versus the block maximum:
    /// `2^-(mantissa_bits-1)`.
    pub fn quantization_step(&self) -> f64 {
        2.0f64.powi(-((self.mantissa_bits - 1) as i32))
    }

    /// Quantizes a slice of values into one BFP block.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != block_size`.
    pub fn quantize(&self, values: &[f32]) -> BfpBlock {
        assert_eq!(
            values.len(),
            self.block_size,
            "expected {} values, got {}",
            self.block_size,
            values.len()
        );
        let max_abs = values.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        if max_abs == 0.0 || !max_abs.is_finite() {
            return BfpBlock {
                exponent: 0,
                mantissas: vec![0; values.len()],
                format: *self,
            };
        }
        // Choose E so that |x| / 2^E < 1 strictly for every x in the block
        // (max_abs / 2^E lands in [0.5, 1)), keeping the largest mantissa
        // representable without clamping.
        let exponent = max_abs.log2().floor() as i32 + 1;
        let scale = 2.0f64.powi(exponent);
        let steps = self.max_mantissa() as f64 + 1.0; // 2^(mb-1)
        let limit = self.max_mantissa();
        let mantissas = values
            .iter()
            .map(|&v| {
                let m = ((f64::from(v) / scale) * steps).round() as i32;
                m.clamp(-limit - 1, limit) as i16
            })
            .collect();
        BfpBlock {
            exponent,
            mantissas,
            format: *self,
        }
    }
}

impl Default for BfpFormat {
    fn default() -> Self {
        BfpFormat::MS_FP9
    }
}

/// One quantized block: integer mantissas sharing one exponent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BfpBlock {
    exponent: i32,
    mantissas: Vec<i16>,
    format: BfpFormat,
}

impl BfpBlock {
    /// The shared exponent.
    pub fn exponent(&self) -> i32 {
        self.exponent
    }

    /// The integer mantissas.
    pub fn mantissas(&self) -> &[i16] {
        &self.mantissas
    }

    /// The format this block was quantized with.
    pub fn format(&self) -> BfpFormat {
        self.format
    }

    /// Dequantizes the block back to `f32` values.
    pub fn dequantize(&self) -> Vec<f32> {
        let steps = self.format.max_mantissa() as f64 + 1.0;
        let scale = 2.0f64.powi(self.exponent);
        self.mantissas
            .iter()
            .map(|&m| ((f64::from(m) / steps) * scale) as f32)
            .collect()
    }

    /// Exact integer dot product of two blocks, as the tile engine's MAC
    /// array computes it: mantissa products accumulate in a wide integer
    /// (no rounding), then one floating-point scale at the end.
    ///
    /// # Panics
    ///
    /// Panics if the blocks have different lengths or formats.
    pub fn dot(&self, other: &BfpBlock) -> f64 {
        assert_eq!(
            self.mantissas.len(),
            other.mantissas.len(),
            "block length mismatch"
        );
        assert_eq!(self.format, other.format, "block format mismatch");
        let acc: i64 = self
            .mantissas
            .iter()
            .zip(&other.mantissas)
            .map(|(&a, &b)| i64::from(a) * i64::from(b))
            .sum();
        let steps = self.format.max_mantissa() as f64 + 1.0;
        acc as f64 * 2.0f64.powi(self.exponent + other.exponent) / (steps * steps)
    }
}

/// A vector quantized block-by-block, zero-padded to a whole number of
/// blocks — the layout the accelerator's FP16-to-BFP converter produces.
#[derive(Debug, Clone, PartialEq)]
pub struct BfpVector {
    blocks: Vec<BfpBlock>,
    len: usize,
}

impl BfpVector {
    /// Quantizes `values` (given as f16, as they arrive from the vector
    /// register file) into consecutive BFP blocks.
    pub fn from_f16(format: BfpFormat, values: &[F16]) -> Self {
        let floats: Vec<f32> = values.iter().map(|v| v.to_f32()).collect();
        Self::from_f32(format, &floats)
    }

    /// Quantizes `values` into consecutive BFP blocks, zero-padding the
    /// final partial block.
    pub fn from_f32(format: BfpFormat, values: &[f32]) -> Self {
        let mut blocks = Vec::new();
        for chunk in values.chunks(format.block_size) {
            let mut padded = chunk.to_vec();
            padded.resize(format.block_size, 0.0);
            blocks.push(format.quantize(&padded));
        }
        BfpVector {
            blocks,
            len: values.len(),
        }
    }

    /// The quantized blocks.
    pub fn blocks(&self) -> &[BfpBlock] {
        &self.blocks
    }

    /// The original (unpadded) element count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector has no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Dot product with another BFP vector of the same shape.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn dot(&self, other: &BfpVector) -> f64 {
        assert_eq!(self.len, other.len, "vector length mismatch");
        self.blocks
            .iter()
            .zip(&other.blocks)
            .map(|(a, b)| a.dot(b))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantize_dequantize_bounded_error() {
        let fmt = BfpFormat::new(9, 16);
        let values: Vec<f32> = (0..16).map(|i| (i as f32 - 8.0) * 0.37).collect();
        let block = fmt.quantize(&values);
        let back = block.dequantize();
        let max_abs = values.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        let bound = max_abs as f64 * fmt.quantization_step();
        for (orig, deq) in values.iter().zip(&back) {
            assert!(
                (f64::from(*orig) - f64::from(*deq)).abs() <= bound,
                "{orig} vs {deq} exceeds {bound}"
            );
        }
    }

    #[test]
    fn zero_block_is_exact() {
        let fmt = BfpFormat::new(9, 4);
        let block = fmt.quantize(&[0.0; 4]);
        assert_eq!(block.dequantize(), vec![0.0; 4]);
        assert_eq!(block.exponent(), 0);
    }

    #[test]
    fn power_of_two_values_exact() {
        let fmt = BfpFormat::new(9, 4);
        let values = [1.0, 0.5, -0.25, 0.125];
        let back = fmt.quantize(&values).dequantize();
        assert_eq!(back, values);
    }

    #[test]
    fn dot_product_close_to_f64_reference() {
        let fmt = BfpFormat::MS_FP9;
        let a: Vec<f32> = (0..64)
            .map(|i| ((i * 37) % 17) as f32 / 17.0 - 0.5)
            .collect();
        let b: Vec<f32> = (0..64)
            .map(|i| ((i * 53) % 13) as f32 / 13.0 - 0.5)
            .collect();
        let va = BfpVector::from_f32(fmt, &a);
        let vb = BfpVector::from_f32(fmt, &b);
        let reference: f64 = a
            .iter()
            .zip(&b)
            .map(|(&x, &y)| f64::from(x) * f64::from(y))
            .sum();
        let got = va.dot(&vb);
        // Error per element bounded by ~2 * 2^-8 * |a||b|; with 64 elements
        // of magnitude <= 0.5 the absolute error stays well under 0.15.
        assert!(
            (got - reference).abs() < 0.15,
            "got {got}, reference {reference}"
        );
    }

    #[test]
    fn partial_block_zero_padded() {
        let fmt = BfpFormat::new(9, 16);
        let v = BfpVector::from_f32(fmt, &[1.0; 20]);
        assert_eq!(v.blocks().len(), 2);
        assert_eq!(v.len(), 20);
        // Padding contributes nothing to dot products.
        let w = BfpVector::from_f32(fmt, &[1.0; 20]);
        assert!((v.dot(&w) - 20.0).abs() < 0.05);
    }

    #[test]
    fn mantissas_respect_bit_budget() {
        let fmt = BfpFormat::new(5, 8);
        let values: Vec<f32> = (0..8).map(|i| (i as f32).sin() * 100.0).collect();
        let block = fmt.quantize(&values);
        for &m in block.mantissas() {
            assert!(i32::from(m) <= fmt.max_mantissa());
            assert!(i32::from(m) >= -fmt.max_mantissa() - 1);
        }
    }

    #[test]
    fn f16_entry_point_matches_f32() {
        let fmt = BfpFormat::new(9, 4);
        let halves: Vec<F16> = [0.5f32, -1.0, 0.25, 2.0]
            .iter()
            .map(|&x| F16::from_f32(x))
            .collect();
        let via_f16 = BfpVector::from_f16(fmt, &halves);
        let via_f32 = BfpVector::from_f32(fmt, &[0.5, -1.0, 0.25, 2.0]);
        assert_eq!(via_f16, via_f32);
    }

    #[test]
    #[should_panic(expected = "expected 16 values")]
    fn wrong_block_size_panics() {
        BfpFormat::MS_FP9.quantize(&[1.0; 8]);
    }
}

//! Compact binary encoding.
//!
//! A key advantage of application-specific ISAs the paper highlights is code
//! density: a customized instruction set "reduces the storage/control
//! overhead by generating more compact code". This encoding packs each
//! instruction into 1–8 bytes (opcode byte, register bytes, LEB128
//! addresses), versus the fixed 16-byte formats typical of general-purpose
//! SIMD encodings; the code-density bench quantifies the difference.

use crate::inst::{Instruction, MReg, VReg};
use crate::program::Program;
use crate::IsaError;

const OP_VLOAD: u8 = 0x01;
const OP_VSTORE: u8 = 0x02;
const OP_MVMUL: u8 = 0x03;
const OP_VADD: u8 = 0x04;
const OP_VSUB: u8 = 0x05;
const OP_VMUL: u8 = 0x06;
const OP_VMOV: u8 = 0x07;
const OP_VZERO: u8 = 0x08;
const OP_VONE: u8 = 0x09;
const OP_SIGMOID: u8 = 0x0A;
const OP_TANH: u8 = 0x0B;
const OP_RELU: u8 = 0x0C;
const OP_NOP: u8 = 0x0D;
const OP_HALT: u8 = 0x0E;

fn push_leb128(out: &mut Vec<u8>, mut v: u32) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

fn read_leb128(bytes: &[u8], offset: &mut usize) -> Result<u32, IsaError> {
    let mut result: u32 = 0;
    let mut shift = 0u32;
    loop {
        let byte = *bytes.get(*offset).ok_or(IsaError::Decode {
            offset: *offset,
            message: "truncated LEB128 value".into(),
        })?;
        *offset += 1;
        if shift >= 32 || (shift == 28 && (byte & 0x70) != 0) {
            return Err(IsaError::Decode {
                offset: *offset,
                message: "LEB128 value overflows u32".into(),
            });
        }
        result |= u32::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Ok(result);
        }
        shift += 7;
    }
}

/// Encodes a program into the compact binary format.
pub fn encode(program: &Program) -> Vec<u8> {
    let mut out = Vec::with_capacity(program.len() * 4);
    for inst in program {
        encode_inst(&mut out, inst);
    }
    out
}

fn encode_inst(out: &mut Vec<u8>, inst: &Instruction) {
    use Instruction::*;
    match *inst {
        VLoad { dst, addr } => {
            out.push(OP_VLOAD);
            out.push(dst.0);
            push_leb128(out, addr);
        }
        VStore { src, addr } => {
            out.push(OP_VSTORE);
            out.push(src.0);
            push_leb128(out, addr);
        }
        MvMul { dst, mat, src } => {
            out.push(OP_MVMUL);
            out.push(dst.0);
            out.extend_from_slice(&mat.0.to_le_bytes());
            out.push(src.0);
        }
        VAdd { dst, a, b } => {
            out.push(OP_VADD);
            out.extend_from_slice(&[dst.0, a.0, b.0]);
        }
        VSub { dst, a, b } => {
            out.push(OP_VSUB);
            out.extend_from_slice(&[dst.0, a.0, b.0]);
        }
        VMul { dst, a, b } => {
            out.push(OP_VMUL);
            out.extend_from_slice(&[dst.0, a.0, b.0]);
        }
        VMov { dst, src } => {
            out.push(OP_VMOV);
            out.extend_from_slice(&[dst.0, src.0]);
        }
        VZero { dst } => {
            out.push(OP_VZERO);
            out.push(dst.0);
        }
        VOne { dst } => {
            out.push(OP_VONE);
            out.push(dst.0);
        }
        Sigmoid { dst, src } => {
            out.push(OP_SIGMOID);
            out.extend_from_slice(&[dst.0, src.0]);
        }
        Tanh { dst, src } => {
            out.push(OP_TANH);
            out.extend_from_slice(&[dst.0, src.0]);
        }
        Relu { dst, src } => {
            out.push(OP_RELU);
            out.extend_from_slice(&[dst.0, src.0]);
        }
        Nop => out.push(OP_NOP),
        Halt => out.push(OP_HALT),
    }
}

/// The encoded size of a program in bytes, without materializing the
/// encoding.
pub fn encoded_size(program: &Program) -> usize {
    fn leb_len(v: u32) -> usize {
        match v {
            0..=0x7F => 1,
            0x80..=0x3FFF => 2,
            0x4000..=0x1F_FFFF => 3,
            0x20_0000..=0xFFF_FFFF => 4,
            _ => 5,
        }
    }
    use Instruction::*;
    program
        .iter()
        .map(|inst| match *inst {
            VLoad { addr, .. } | VStore { addr, .. } => 2 + leb_len(addr),
            MvMul { .. } => 5,
            VAdd { .. } | VSub { .. } | VMul { .. } => 4,
            VMov { .. } | Sigmoid { .. } | Tanh { .. } | Relu { .. } => 3,
            VZero { .. } | VOne { .. } => 2,
            Nop | Halt => 1,
        })
        .sum()
}

/// Decodes a binary stream produced by [`encode`].
///
/// # Errors
///
/// Returns [`IsaError::Decode`] on unknown opcodes or truncated streams.
pub fn decode(bytes: &[u8]) -> Result<Program, IsaError> {
    let mut insts = Vec::new();
    let mut offset = 0usize;
    while offset < bytes.len() {
        insts.push(decode_inst(bytes, &mut offset)?);
    }
    Ok(Program::new(insts))
}

fn take(bytes: &[u8], offset: &mut usize) -> Result<u8, IsaError> {
    let b = *bytes.get(*offset).ok_or(IsaError::Decode {
        offset: *offset,
        message: "truncated instruction".into(),
    })?;
    *offset += 1;
    Ok(b)
}

fn decode_inst(bytes: &[u8], offset: &mut usize) -> Result<Instruction, IsaError> {
    use Instruction::*;
    let op = take(bytes, offset)?;
    let inst = match op {
        OP_VLOAD => VLoad {
            dst: VReg(take(bytes, offset)?),
            addr: read_leb128(bytes, offset)?,
        },
        OP_VSTORE => VStore {
            src: VReg(take(bytes, offset)?),
            addr: read_leb128(bytes, offset)?,
        },
        OP_MVMUL => {
            let dst = VReg(take(bytes, offset)?);
            let lo = take(bytes, offset)?;
            let hi = take(bytes, offset)?;
            let src = VReg(take(bytes, offset)?);
            MvMul {
                dst,
                mat: MReg(u16::from_le_bytes([lo, hi])),
                src,
            }
        }
        OP_VADD => VAdd {
            dst: VReg(take(bytes, offset)?),
            a: VReg(take(bytes, offset)?),
            b: VReg(take(bytes, offset)?),
        },
        OP_VSUB => VSub {
            dst: VReg(take(bytes, offset)?),
            a: VReg(take(bytes, offset)?),
            b: VReg(take(bytes, offset)?),
        },
        OP_VMUL => VMul {
            dst: VReg(take(bytes, offset)?),
            a: VReg(take(bytes, offset)?),
            b: VReg(take(bytes, offset)?),
        },
        OP_VMOV => VMov {
            dst: VReg(take(bytes, offset)?),
            src: VReg(take(bytes, offset)?),
        },
        OP_VZERO => VZero {
            dst: VReg(take(bytes, offset)?),
        },
        OP_VONE => VOne {
            dst: VReg(take(bytes, offset)?),
        },
        OP_SIGMOID => Sigmoid {
            dst: VReg(take(bytes, offset)?),
            src: VReg(take(bytes, offset)?),
        },
        OP_TANH => Tanh {
            dst: VReg(take(bytes, offset)?),
            src: VReg(take(bytes, offset)?),
        },
        OP_RELU => Relu {
            dst: VReg(take(bytes, offset)?),
            src: VReg(take(bytes, offset)?),
        },
        OP_NOP => Nop,
        OP_HALT => Halt,
        other => {
            return Err(IsaError::Decode {
                offset: *offset - 1,
                message: format!("unknown opcode {other:#04x}"),
            })
        }
    };
    Ok(inst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{Instruction as I, MReg, VReg};

    fn all_instructions() -> Program {
        Program::new(vec![
            I::VLoad {
                dst: VReg(0),
                addr: 0,
            },
            I::VLoad {
                dst: VReg(1),
                addr: 0x0FFF_FFFF,
            },
            I::VStore {
                src: VReg(2),
                addr: 300,
            },
            I::MvMul {
                dst: VReg(3),
                mat: MReg(1023),
                src: VReg(4),
            },
            I::VAdd {
                dst: VReg(5),
                a: VReg(6),
                b: VReg(7),
            },
            I::VSub {
                dst: VReg(8),
                a: VReg(9),
                b: VReg(10),
            },
            I::VMul {
                dst: VReg(11),
                a: VReg(12),
                b: VReg(13),
            },
            I::VMov {
                dst: VReg(14),
                src: VReg(15),
            },
            I::VZero { dst: VReg(16) },
            I::VOne { dst: VReg(17) },
            I::Sigmoid {
                dst: VReg(18),
                src: VReg(19),
            },
            I::Tanh {
                dst: VReg(20),
                src: VReg(21),
            },
            I::Relu {
                dst: VReg(22),
                src: VReg(23),
            },
            I::Nop,
            I::Halt,
        ])
    }

    #[test]
    fn round_trip_every_opcode() {
        let p = all_instructions();
        let bytes = encode(&p);
        let q = decode(&bytes).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn encoded_size_matches_encode() {
        let p = all_instructions();
        assert_eq!(encoded_size(&p), encode(&p).len());
    }

    #[test]
    fn compactness_beats_fixed_16_byte_encoding() {
        let p = all_instructions();
        assert!(encode(&p).len() < p.len() * 16 / 3);
    }

    #[test]
    fn unknown_opcode_rejected() {
        let err = decode(&[0xFF]).unwrap_err();
        assert!(matches!(err, IsaError::Decode { offset: 0, .. }));
    }

    #[test]
    fn truncated_stream_rejected() {
        let p = Program::new(vec![I::MvMul {
            dst: VReg(0),
            mat: MReg(7),
            src: VReg(1),
        }]);
        let bytes = encode(&p);
        for cut in 1..bytes.len() {
            assert!(decode(&bytes[..cut]).is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn leb128_boundaries() {
        for addr in [0u32, 0x7F, 0x80, 0x3FFF, 0x4000, u32::MAX] {
            let p = Program::new(vec![I::VLoad { dst: VReg(0), addr }]);
            let q = decode(&encode(&p)).unwrap();
            assert_eq!(p, q, "addr {addr:#x}");
        }
    }

    #[test]
    fn overlong_leb128_rejected() {
        // Six continuation bytes exceed u32.
        let bytes = [OP_VLOAD, 0, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01];
        assert!(decode(&bytes).is_err());
    }
}

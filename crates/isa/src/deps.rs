//! Instruction dependency analysis.
//!
//! The scale-out optimization reorders instructions "under the dependency
//! constraint to maximally overlap the communication and computation"
//! (Section 2.3). This module computes the dependency graph that constrains
//! any such reordering: register RAW/WAR/WAW hazards plus exact per-slot
//! memory ordering (DRAM addresses are static in this ISA, so alias analysis
//! is exact).

use std::collections::HashMap;

use crate::inst::Instruction;

/// The kind of a dependency edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DepKind {
    /// Read-after-write through a vector register.
    Raw,
    /// Write-after-read through a vector register.
    War,
    /// Write-after-write through a vector register.
    Waw,
    /// Ordering through a DRAM slot (load/store on the same address).
    Mem,
    /// Ordering against a `halt` (everything precedes program end).
    Control,
}

/// One dependency edge: instruction `from` must execute before `to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DepEdge {
    /// Earlier instruction index.
    pub from: usize,
    /// Later instruction index.
    pub to: usize,
    /// Why the order is required.
    pub kind: DepKind,
}

/// The dependency graph of a program: a DAG over instruction indices in
/// original program order (edges always point from lower to higher index).
#[derive(Debug, Clone)]
pub struct DepGraph {
    len: usize,
    edges: Vec<DepEdge>,
    preds: Vec<Vec<usize>>,
    succs: Vec<Vec<usize>>,
}

impl DepGraph {
    /// Builds the dependency graph of an instruction sequence.
    pub fn build(insts: &[Instruction]) -> Self {
        let mut edges = Vec::new();
        // Register hazards.
        let mut last_def: HashMap<u8, usize> = HashMap::new();
        let mut uses_since_def: HashMap<u8, Vec<usize>> = HashMap::new();
        // Memory hazards, exact per slot.
        let mut last_store: HashMap<u32, usize> = HashMap::new();
        let mut loads_since_store: HashMap<u32, Vec<usize>> = HashMap::new();

        for (i, inst) in insts.iter().enumerate() {
            if matches!(inst, Instruction::Halt) {
                // A halt is a full barrier: it must stay after everything
                // before it.
                for j in 0..i {
                    edges.push(DepEdge {
                        from: j,
                        to: i,
                        kind: DepKind::Control,
                    });
                }
                continue;
            }
            for r in inst.uses() {
                if let Some(&d) = last_def.get(&r.0) {
                    edges.push(DepEdge {
                        from: d,
                        to: i,
                        kind: DepKind::Raw,
                    });
                }
            }
            if let Some(addr) = inst.mem_read() {
                if let Some(&s) = last_store.get(&addr) {
                    edges.push(DepEdge {
                        from: s,
                        to: i,
                        kind: DepKind::Mem,
                    });
                }
                loads_since_store.entry(addr).or_default().push(i);
            }
            if let Some(addr) = inst.mem_write() {
                if let Some(loads) = loads_since_store.get(&addr) {
                    for &l in loads {
                        edges.push(DepEdge {
                            from: l,
                            to: i,
                            kind: DepKind::Mem,
                        });
                    }
                }
                if let Some(&s) = last_store.get(&addr) {
                    edges.push(DepEdge {
                        from: s,
                        to: i,
                        kind: DepKind::Mem,
                    });
                }
                last_store.insert(addr, i);
                loads_since_store.insert(addr, Vec::new());
            }
            if let Some(d) = inst.defs() {
                if let Some(readers) = uses_since_def.get(&d.0) {
                    for &r in readers {
                        if r != i {
                            edges.push(DepEdge {
                                from: r,
                                to: i,
                                kind: DepKind::War,
                            });
                        }
                    }
                }
                if let Some(&prev) = last_def.get(&d.0) {
                    edges.push(DepEdge {
                        from: prev,
                        to: i,
                        kind: DepKind::Waw,
                    });
                }
                last_def.insert(d.0, i);
                uses_since_def.insert(d.0, Vec::new());
            }
            // Record uses after handling the def so `vadd v1, v1, v2` does
            // not produce a spurious WAR on itself.
            for r in inst.uses() {
                uses_since_def.entry(r.0).or_default().push(i);
            }
        }

        edges.sort_by_key(|e| (e.from, e.to));
        edges.dedup_by_key(|e| (e.from, e.to, e.kind));

        let mut preds = vec![Vec::new(); insts.len()];
        let mut succs = vec![Vec::new(); insts.len()];
        for e in &edges {
            preds[e.to].push(e.from);
            succs[e.from].push(e.to);
        }
        for v in preds.iter_mut().chain(succs.iter_mut()) {
            v.sort_unstable();
            v.dedup();
        }

        DepGraph {
            len: insts.len(),
            edges,
            preds,
            succs,
        }
    }

    /// Number of instructions covered by the graph.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the graph covers no instructions.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// All dependency edges.
    pub fn edges(&self) -> &[DepEdge] {
        &self.edges
    }

    /// Indices of instructions that must execute before `i`.
    pub fn preds(&self, i: usize) -> &[usize] {
        &self.preds[i]
    }

    /// Indices of instructions that must execute after `i`.
    pub fn succs(&self, i: usize) -> &[usize] {
        &self.succs[i]
    }

    /// Checks that `order` (a permutation of `0..len`) respects every
    /// dependency edge — the correctness condition for the reordering tool.
    pub fn is_valid_order(&self, order: &[usize]) -> bool {
        if order.len() != self.len {
            return false;
        }
        let mut position = vec![usize::MAX; self.len];
        for (pos, &idx) in order.iter().enumerate() {
            if idx >= self.len || position[idx] != usize::MAX {
                return false; // not a permutation
            }
            position[idx] = pos;
        }
        self.edges.iter().all(|e| position[e.from] < position[e.to])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{Instruction as I, MReg, VReg};

    fn sample() -> Vec<I> {
        vec![
            I::VLoad {
                dst: VReg(0),
                addr: 0,
            }, // 0
            I::MvMul {
                dst: VReg(1),
                mat: MReg(0),
                src: VReg(0),
            }, // 1: RAW on v0
            I::VAdd {
                dst: VReg(2),
                a: VReg(1),
                b: VReg(0),
            }, // 2: RAW on v1, v0
            I::VLoad {
                dst: VReg(0),
                addr: 1,
            }, // 3: WAR on v0 (vs 1, 2), WAW vs 0
            I::VStore {
                src: VReg(2),
                addr: 5,
            }, // 4: RAW on v2
            I::Halt, // 5: control
        ]
    }

    #[test]
    fn register_hazards_detected() {
        let g = DepGraph::build(&sample());
        let has = |from, to, kind| g.edges().contains(&DepEdge { from, to, kind });
        assert!(has(0, 1, DepKind::Raw));
        assert!(has(1, 2, DepKind::Raw));
        assert!(has(0, 2, DepKind::Raw));
        assert!(has(1, 3, DepKind::War));
        assert!(has(2, 3, DepKind::War));
        assert!(has(0, 3, DepKind::Waw));
        assert!(has(2, 4, DepKind::Raw));
        assert!(has(4, 5, DepKind::Control));
    }

    #[test]
    fn memory_hazards_are_per_slot() {
        let insts = vec![
            I::VStore {
                src: VReg(0),
                addr: 10,
            }, // 0
            I::VLoad {
                dst: VReg(1),
                addr: 10,
            }, // 1: mem RAW
            I::VLoad {
                dst: VReg(2),
                addr: 11,
            }, // 2: different slot, no edge to 0
            I::VStore {
                src: VReg(3),
                addr: 10,
            }, // 3: mem WAR vs 1, WAW vs 0
        ];
        let g = DepGraph::build(&insts);
        let pairs: Vec<(usize, usize)> = g.edges().iter().map(|e| (e.from, e.to)).collect();
        assert!(pairs.contains(&(0, 1)));
        assert!(pairs.contains(&(1, 3)));
        assert!(pairs.contains(&(0, 3)));
        assert!(!pairs.contains(&(0, 2)));
        assert!(!pairs.contains(&(2, 3)));
    }

    #[test]
    fn original_order_is_always_valid() {
        let insts = sample();
        let g = DepGraph::build(&insts);
        let order: Vec<usize> = (0..insts.len()).collect();
        assert!(g.is_valid_order(&order));
    }

    #[test]
    fn independent_instructions_may_swap() {
        let insts = vec![
            I::VLoad {
                dst: VReg(0),
                addr: 0,
            },
            I::VLoad {
                dst: VReg(1),
                addr: 1,
            },
        ];
        let g = DepGraph::build(&insts);
        assert!(g.is_valid_order(&[1, 0]));
    }

    #[test]
    fn dependent_swap_rejected() {
        let g = DepGraph::build(&sample());
        // Moving the mvmul before its input load violates the RAW edge.
        assert!(!g.is_valid_order(&[1, 0, 2, 3, 4, 5]));
        // Non-permutations are rejected.
        assert!(!g.is_valid_order(&[0, 0, 2, 3, 4, 5]));
        assert!(!g.is_valid_order(&[0, 1, 2]));
    }

    #[test]
    fn self_read_write_has_no_self_edge() {
        let insts = vec![
            I::VZero { dst: VReg(1) },
            I::VAdd {
                dst: VReg(1),
                a: VReg(1),
                b: VReg(1),
            },
        ];
        let g = DepGraph::build(&insts);
        assert!(g.edges().iter().all(|e| e.from != e.to));
        // But the RAW edge from the vzero is present.
        assert!(g.edges().contains(&DepEdge {
            from: 0,
            to: 1,
            kind: DepKind::Raw
        }));
    }
}

//! IEEE 754 binary16 (half precision), implemented in software.
//!
//! The accelerator's multi-function units perform point-wise vector
//! operations and activations in half precision "to avoid quantization
//! noise" (Section 3). Hardware MFUs compute in higher internal precision
//! and round once on writeback; this implementation mirrors that by
//! computing through `f32` and rounding to nearest-even on conversion.

use std::fmt;

/// An IEEE 754 binary16 value (1 sign, 5 exponent, 10 mantissa bits).
///
/// ```
/// use vfpga_isa::F16;
/// let x = F16::from_f32(1.5);
/// assert_eq!(x.to_f32(), 1.5);
/// let y = (x * x) + F16::ONE;
/// assert_eq!(y.to_f32(), 3.25);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct F16(u16);

impl F16 {
    /// Positive zero.
    pub const ZERO: F16 = F16(0x0000);
    /// One.
    pub const ONE: F16 = F16(0x3C00);
    /// Negative one.
    pub const NEG_ONE: F16 = F16(0xBC00);
    /// Positive infinity.
    pub const INFINITY: F16 = F16(0x7C00);
    /// Negative infinity.
    pub const NEG_INFINITY: F16 = F16(0xFC00);
    /// A quiet NaN.
    pub const NAN: F16 = F16(0x7E00);
    /// Largest finite value, 65504.
    pub const MAX: F16 = F16(0x7BFF);
    /// Smallest positive normal value, 2^-14.
    pub const MIN_POSITIVE: F16 = F16(0x0400);
    /// Machine epsilon (2^-10).
    pub const EPSILON: F16 = F16(0x1400);

    /// Constructs from raw bits.
    pub const fn from_bits(bits: u16) -> Self {
        F16(bits)
    }

    /// The raw bit pattern.
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Converts from `f32` with round-to-nearest-even, overflowing to
    /// infinity and flushing tiny values to (signed) zero exactly as the
    /// IEEE conversion does.
    pub fn from_f32(x: f32) -> Self {
        let bits = x.to_bits();
        let sign = ((bits >> 16) & 0x8000) as u16;
        let exp = ((bits >> 23) & 0xFF) as i32;
        let mant = bits & 0x007F_FFFF;

        if exp == 0xFF {
            // Infinity or NaN.
            return if mant != 0 {
                F16(sign | 0x7E00)
            } else {
                F16(sign | 0x7C00)
            };
        }

        let half_exp = exp - 127 + 15;
        if half_exp >= 0x1F {
            // Overflow to infinity.
            return F16(sign | 0x7C00);
        }
        if half_exp <= 0 {
            // Subnormal half or underflow to zero.
            if half_exp < -10 {
                return F16(sign);
            }
            let full_mant = mant | 0x0080_0000;
            let shift = (14 - half_exp) as u32;
            let mut half_mant = (full_mant >> shift) as u16;
            let round_bit = 1u32 << (shift - 1);
            if (full_mant & round_bit) != 0
                && ((full_mant & (round_bit - 1)) != 0 || (half_mant & 1) == 1)
            {
                half_mant += 1; // may carry into the exponent; that is correct
            }
            return F16(sign | half_mant);
        }

        let mut out = sign | ((half_exp as u16) << 10) | ((mant >> 13) as u16);
        let round_bit = 0x0000_1000u32;
        if (mant & round_bit) != 0 && ((mant & (round_bit - 1)) != 0 || (out & 1) == 1) {
            out += 1; // carry may bump the exponent, saturating to infinity
        }
        F16(out)
    }

    /// Converts to `f32` exactly (every binary16 value is representable).
    pub fn to_f32(self) -> f32 {
        let sign = if self.0 & 0x8000 != 0 { -1.0f32 } else { 1.0 };
        let exp = (self.0 >> 10) & 0x1F;
        let mant = (self.0 & 0x03FF) as f32;
        match exp {
            0 => sign * mant * 2.0f32.powi(-24),
            0x1F => {
                if mant == 0.0 {
                    sign * f32::INFINITY
                } else {
                    f32::NAN
                }
            }
            e => sign * (1.0 + mant / 1024.0) * 2.0f32.powi(i32::from(e) - 15),
        }
    }

    /// Whether this value is NaN.
    pub fn is_nan(self) -> bool {
        (self.0 & 0x7C00) == 0x7C00 && (self.0 & 0x03FF) != 0
    }

    /// Whether this value is positive or negative infinity.
    pub fn is_infinite(self) -> bool {
        (self.0 & 0x7FFF) == 0x7C00
    }

    /// Whether this value is finite (not NaN, not infinite).
    pub fn is_finite(self) -> bool {
        (self.0 & 0x7C00) != 0x7C00
    }

    /// Whether this value is subnormal.
    pub fn is_subnormal(self) -> bool {
        (self.0 & 0x7C00) == 0 && (self.0 & 0x03FF) != 0
    }

    /// The negation of this value (sign-bit flip, exact).
    #[allow(clippy::should_implement_trait)] // std::ops::Neg is also implemented
    pub fn neg(self) -> F16 {
        F16(self.0 ^ 0x8000)
    }

    /// Logistic sigmoid, computed in `f32` and rounded once.
    pub fn sigmoid(self) -> F16 {
        let x = self.to_f32();
        F16::from_f32(1.0 / (1.0 + (-x).exp()))
    }

    /// Hyperbolic tangent, computed in `f32` and rounded once.
    pub fn tanh(self) -> F16 {
        F16::from_f32(self.to_f32().tanh())
    }

    /// Rectified linear unit.
    pub fn relu(self) -> F16 {
        if self.is_nan() || self.to_f32() > 0.0 {
            self
        } else {
            F16::ZERO
        }
    }
}

impl From<F16> for f32 {
    fn from(h: F16) -> f32 {
        h.to_f32()
    }
}

impl std::ops::Add for F16 {
    type Output = F16;

    fn add(self, rhs: F16) -> F16 {
        F16::from_f32(self.to_f32() + rhs.to_f32())
    }
}

impl std::ops::Sub for F16 {
    type Output = F16;

    fn sub(self, rhs: F16) -> F16 {
        F16::from_f32(self.to_f32() - rhs.to_f32())
    }
}

impl std::ops::Mul for F16 {
    type Output = F16;

    fn mul(self, rhs: F16) -> F16 {
        F16::from_f32(self.to_f32() * rhs.to_f32())
    }
}

impl std::ops::Neg for F16 {
    type Output = F16;

    fn neg(self) -> F16 {
        F16::neg(self)
    }
}

impl PartialOrd for F16 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        self.to_f32().partial_cmp(&other.to_f32())
    }
}

impl fmt::Display for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f32())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_bit_patterns() {
        assert_eq!(F16::from_f32(0.0).to_bits(), 0x0000);
        assert_eq!(F16::from_f32(-0.0).to_bits(), 0x8000);
        assert_eq!(F16::from_f32(1.0).to_bits(), 0x3C00);
        assert_eq!(F16::from_f32(-2.0).to_bits(), 0xC000);
        assert_eq!(F16::from_f32(65504.0).to_bits(), 0x7BFF);
        assert_eq!(F16::from_f32(2.0f32.powi(-14)).to_bits(), 0x0400);
        // Smallest subnormal: 2^-24.
        assert_eq!(F16::from_f32(2.0f32.powi(-24)).to_bits(), 0x0001);
    }

    #[test]
    fn overflow_and_underflow() {
        assert!(F16::from_f32(1e6).is_infinite());
        assert!(F16::from_f32(-1e6) == F16::NEG_INFINITY);
        // 65520 is the rounding boundary: rounds to infinity.
        assert!(F16::from_f32(65520.0).is_infinite());
        // Just below rounds to MAX.
        assert_eq!(F16::from_f32(65519.0), F16::MAX);
        // Below half the smallest subnormal flushes to zero.
        assert_eq!(F16::from_f32(2.0f32.powi(-26)), F16::ZERO);
        assert_eq!(F16::from_f32(-2.0f32.powi(-26)).to_bits(), 0x8000);
    }

    #[test]
    fn round_to_nearest_even() {
        // 1 + 2^-11 is exactly halfway between 1.0 and 1+2^-10: ties to even
        // (mantissa 0).
        assert_eq!(F16::from_f32(1.0 + 2.0f32.powi(-11)).to_bits(), 0x3C00);
        // 1 + 3*2^-11 is halfway between odd and even: ties up to even.
        assert_eq!(
            F16::from_f32(1.0 + 3.0 * 2.0f32.powi(-11)).to_bits(),
            0x3C02
        );
        // Slightly above halfway rounds up.
        assert_eq!(
            F16::from_f32(1.0 + 2.0f32.powi(-11) + 2.0f32.powi(-20)).to_bits(),
            0x3C01
        );
    }

    #[test]
    fn nan_propagates() {
        assert!(F16::from_f32(f32::NAN).is_nan());
        assert!(F16::NAN.to_f32().is_nan());
        assert!((F16::NAN + F16::ONE).is_nan());
        assert!(!F16::NAN.is_finite());
        assert!(!F16::INFINITY.is_nan());
    }

    #[test]
    fn exact_round_trip_for_all_finite_halfs() {
        // Every finite f16 must survive f16 -> f32 -> f16 exactly.
        for bits in 0..=u16::MAX {
            let h = F16::from_bits(bits);
            if h.is_nan() {
                assert!(F16::from_f32(h.to_f32()).is_nan());
            } else {
                assert_eq!(
                    F16::from_f32(h.to_f32()).to_bits(),
                    bits,
                    "bits {bits:#06x}"
                );
            }
        }
    }

    #[test]
    fn arithmetic_rounds_once() {
        let a = F16::from_f32(0.1);
        let b = F16::from_f32(0.2);
        let sum = a + b;
        assert_eq!(sum, F16::from_f32(a.to_f32() + b.to_f32()));
        assert!((sum.to_f32() - 0.3).abs() < 1e-3);
    }

    #[test]
    fn activations() {
        assert_eq!(F16::ZERO.sigmoid().to_f32(), 0.5);
        assert_eq!(F16::ZERO.tanh(), F16::ZERO);
        assert_eq!(F16::from_f32(-3.0).relu(), F16::ZERO);
        assert_eq!(F16::from_f32(3.0).relu(), F16::from_f32(3.0));
        assert!(F16::from_f32(10.0).sigmoid().to_f32() > 0.9999);
        assert!(F16::from_f32(-10.0).tanh().to_f32() < -0.999);
    }

    #[test]
    fn negation_is_exact() {
        let x = F16::from_f32(1.25);
        assert_eq!((-x).to_f32(), -1.25);
        assert_eq!((-F16::ZERO).to_bits(), 0x8000);
    }

    #[test]
    fn ordering_via_f32() {
        assert!(F16::from_f32(1.0) < F16::from_f32(2.0));
        assert!(F16::NAN.partial_cmp(&F16::ONE).is_none());
    }
}

//! Textual assembler and disassembler.
//!
//! The format is one instruction per line, mirroring [`Instruction`]'s
//! `Display` output, with `;` or `#` comments:
//!
//! ```text
//! ; GRU gate computation (one timestep)
//! vload v0, 0          ; x_t
//! mvmul v1, m0, v0     ; W_z * x_t
//! mvmul v2, m1, v3     ; U_z * h_{t-1}
//! vadd v1, v1, v2
//! sigmoid v1, v1       ; z_t
//! halt
//! ```

use crate::inst::{Instruction, MReg, VReg};
use crate::program::Program;
use crate::IsaError;

/// Assembles source text into a [`Program`].
///
/// # Errors
///
/// Returns [`IsaError::Asm`] with the offending line for syntax errors.
pub fn assemble(source: &str) -> Result<Program, IsaError> {
    let mut insts = Vec::new();
    for (lineno, raw) in source.lines().enumerate() {
        let line = lineno + 1;
        let text = raw.split([';', '#']).next().unwrap_or("").trim();
        if text.is_empty() {
            continue;
        }
        insts.push(parse_line(text, line)?);
    }
    Ok(Program::new(insts))
}

/// Disassembles a program back to source text (one instruction per line).
pub fn disassemble(program: &Program) -> String {
    program.to_string()
}

fn parse_line(text: &str, line: usize) -> Result<Instruction, IsaError> {
    let err = |message: String| IsaError::Asm { line, message };
    let (mnemonic, rest) = match text.split_once(char::is_whitespace) {
        Some((m, r)) => (m, r.trim()),
        None => (text, ""),
    };
    let operands: Vec<&str> = if rest.is_empty() {
        Vec::new()
    } else {
        rest.split(',').map(str::trim).collect()
    };

    let want = |n: usize| -> Result<(), IsaError> {
        if operands.len() == n {
            Ok(())
        } else {
            Err(err(format!(
                "`{mnemonic}` expects {n} operand(s), found {}",
                operands.len()
            )))
        }
    };

    let vreg = |s: &str| -> Result<VReg, IsaError> {
        s.strip_prefix('v')
            .and_then(|d| d.parse::<u8>().ok())
            .map(VReg)
            .ok_or_else(|| err(format!("invalid vector register `{s}`")))
    };
    let mreg = |s: &str| -> Result<MReg, IsaError> {
        s.strip_prefix('m')
            .and_then(|d| d.parse::<u16>().ok())
            .map(MReg)
            .ok_or_else(|| err(format!("invalid matrix register `{s}`")))
    };
    let addr = |s: &str| -> Result<u32, IsaError> {
        let parsed = if let Some(hex) = s.strip_prefix("0x") {
            u32::from_str_radix(hex, 16).ok()
        } else {
            s.parse::<u32>().ok()
        };
        parsed.ok_or_else(|| err(format!("invalid address `{s}`")))
    };

    use Instruction::*;
    let inst = match mnemonic {
        "vload" => {
            want(2)?;
            VLoad {
                dst: vreg(operands[0])?,
                addr: addr(operands[1])?,
            }
        }
        "vstore" => {
            want(2)?;
            VStore {
                src: vreg(operands[0])?,
                addr: addr(operands[1])?,
            }
        }
        "mvmul" => {
            want(3)?;
            MvMul {
                dst: vreg(operands[0])?,
                mat: mreg(operands[1])?,
                src: vreg(operands[2])?,
            }
        }
        "vadd" | "vsub" | "vmul" => {
            want(3)?;
            let dst = vreg(operands[0])?;
            let a = vreg(operands[1])?;
            let b = vreg(operands[2])?;
            match mnemonic {
                "vadd" => VAdd { dst, a, b },
                "vsub" => VSub { dst, a, b },
                _ => VMul { dst, a, b },
            }
        }
        "vmov" | "sigmoid" | "tanh" | "relu" => {
            want(2)?;
            let dst = vreg(operands[0])?;
            let src = vreg(operands[1])?;
            match mnemonic {
                "vmov" => VMov { dst, src },
                "sigmoid" => Sigmoid { dst, src },
                "tanh" => Tanh { dst, src },
                _ => Relu { dst, src },
            }
        }
        "vzero" => {
            want(1)?;
            VZero {
                dst: vreg(operands[0])?,
            }
        }
        "vone" => {
            want(1)?;
            VOne {
                dst: vreg(operands[0])?,
            }
        }
        "nop" => {
            want(0)?;
            Nop
        }
        "halt" => {
            want(0)?;
            Halt
        }
        other => return Err(err(format!("unknown mnemonic `{other}`"))),
    };
    Ok(inst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{Instruction as I, MReg, VReg};

    #[test]
    fn assembles_with_comments_and_blanks() {
        let p = assemble(
            "; header comment\n\
             \n\
             vload v0, 0x10   ; load input\n\
             mvmul v1, m2, v0 # tile multiply\n\
             halt\n",
        )
        .unwrap();
        assert_eq!(p.len(), 3);
        assert_eq!(
            p[0],
            I::VLoad {
                dst: VReg(0),
                addr: 16
            }
        );
        assert_eq!(
            p[1],
            I::MvMul {
                dst: VReg(1),
                mat: MReg(2),
                src: VReg(0)
            }
        );
    }

    #[test]
    fn round_trip_disassemble_assemble() {
        let p = assemble(
            "vload v0, 0\nvone v9\nvadd v1, v0, v9\nsigmoid v2, v1\ntanh v3, v2\n\
             relu v4, v3\nvmul v5, v4, v4\nvsub v6, v5, v0\nvmov v7, v6\nvzero v8\n\
             vstore v7, 42\nnop\nhalt\n",
        )
        .unwrap();
        let text = disassemble(&p);
        let q = assemble(&text).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn error_reports_line_number() {
        let err = assemble("vload v0, 0\nbogus v1\n").unwrap_err();
        match err {
            IsaError::Asm { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn operand_count_checked() {
        assert!(assemble("vadd v0, v1\n").is_err());
        assert!(assemble("halt v0\n").is_err());
    }

    #[test]
    fn bad_register_rejected() {
        assert!(assemble("vload x0, 0\n").is_err());
        assert!(assemble("vload v300, 0\n").is_err());
        assert!(assemble("mvmul v0, v1, v2\n").is_err());
    }
}

//! The scale-out optimization (Section 2.3).
//!
//! Deploying one large accelerator across FPGAs by *splitting* it would put
//! the inter-FPGA link in the middle of a pipeline. Instead — because the
//! data path's root soft block has data parallelism — the framework
//! **scales the accelerator down**: each FPGA gets a smaller accelerator
//! with fewer data processing units but an unmodified control path, so the
//! original software programs still run. The machines then exchange their
//! state slices through the synchronization template module (Fig. 8b),
//! which reuses the ordinary DRAM read/write instructions on pre-defined
//! addresses.
//!
//! Two custom tools operate on programs:
//!
//! * [`insert_communication`] — turns the stores/loads of designated state
//!   slots into sends and barrier receives on the template module's
//!   channels;
//! * [`reorder_for_overlap`] — dependency-preserving list scheduling that
//!   hoists sends as early as possible and sinks receives as late as
//!   possible, maximally overlapping inter-FPGA communication with
//!   computation (e.g. the transfer of `h_t` with the matrix
//!   multiplications on `x_{t+1}`).

use vfpga_accel::RemoteWindow;
use vfpga_isa::{Instruction, IsaConfig, Program};

use crate::CoreError;

/// Number of channels the synchronization template module provides.
pub const SYNC_CHANNELS: u32 = 64;

/// The pre-defined address window for a machine: the top `2 *
/// SYNC_CHANNELS` DRAM slots are reserved (the paper suggests out-of-range
/// addresses; reserving the top of the space keeps programs validatable).
///
/// # Errors
///
/// Returns [`CoreError::Isa`] if the ISA's DRAM is too small to carve out
/// the reserved window (`dram_slots < 2 * SYNC_CHANNELS`); previously this
/// underflowed `u32` into a bogus window near `u32::MAX`. Returns
/// [`CoreError::InvalidMachine`] if `machine_index >= num_machines`
/// (including the empty group `num_machines == 0`); previously the bogus
/// window silently shifted every machine's slice during recombination.
pub fn remote_window(
    isa: &IsaConfig,
    machine_index: usize,
    num_machines: usize,
) -> Result<RemoteWindow, CoreError> {
    if machine_index >= num_machines {
        return Err(CoreError::InvalidMachine {
            machine_index,
            num_machines,
        });
    }
    let reserved = 2 * SYNC_CHANNELS;
    if isa.dram_slots < reserved {
        return Err(CoreError::Isa(vfpga_isa::IsaError::Validation {
            index: 0,
            message: format!(
                "{} DRAM slots cannot hold the {reserved}-slot sync window",
                isa.dram_slots
            ),
        }));
    }
    let recv_base = isa.dram_slots - SYNC_CHANNELS;
    let send_base = recv_base - SYNC_CHANNELS;
    Ok(RemoteWindow {
        send_base,
        recv_base,
        channels: SYNC_CHANNELS,
        machine_index,
        num_machines,
    })
}

/// Rewrites a scaled-down machine's program so that designated *state
/// slots* (DRAM slots holding cross-timestep state such as `h_t`) are
/// exchanged between machines:
///
/// * every store to state slot `state_slots[k]` is followed by a send on
///   channel `k` (the machine's own slice);
/// * every load from that slot *after the first send* becomes a receive on
///   channel `k`, which blocks until all peers delivered and yields the
///   combined full-length vector.
///
/// Loads before any store keep reading local DRAM (the initial state is
/// replicated on every machine).
///
/// # Errors
///
/// Returns [`CoreError::Isa`] if more state slots are named than the
/// template module has channels, [`CoreError::StateSlotAliasesWindow`] if
/// a state slot falls inside the reserved window (the rewrite would turn
/// the inserted send itself into another state access), and
/// [`CoreError::DuplicateStateSlot`] if a slot is designated twice (only
/// the first channel would ever carry it, silently starving the second).
pub fn insert_communication(
    program: &Program,
    state_slots: &[u32],
    window: &RemoteWindow,
) -> Result<Program, CoreError> {
    if state_slots.len() as u32 > window.channels {
        return Err(CoreError::Isa(vfpga_isa::IsaError::Validation {
            index: 0,
            message: format!(
                "{} state slots exceed {} sync channels",
                state_slots.len(),
                window.channels
            ),
        }));
    }
    for (k, &slot) in state_slots.iter().enumerate() {
        if slot >= window.send_base {
            return Err(CoreError::StateSlotAliasesWindow { slot });
        }
        if state_slots[..k].contains(&slot) {
            return Err(CoreError::DuplicateStateSlot { slot });
        }
    }
    let chan_of = |addr: u32| state_slots.iter().position(|&s| s == addr);
    let mut sent = vec![false; state_slots.len()];
    let mut out = Program::default();
    for inst in program {
        match *inst {
            Instruction::VStore { src, addr } => {
                out.push(*inst);
                if let Some(k) = chan_of(addr) {
                    out.push(Instruction::VStore {
                        src,
                        addr: window.send_base + k as u32,
                    });
                    sent[k] = true;
                }
            }
            Instruction::VLoad { dst, addr } => match chan_of(addr) {
                Some(k) if sent[k] => out.push(Instruction::VLoad {
                    dst,
                    addr: window.recv_base + k as u32,
                }),
                _ => out.push(*inst),
            },
            other => out.push(other),
        }
    }
    Ok(out)
}

/// Classifies an instruction against a window for scheduling priority.
fn comm_class(inst: &Instruction, window: &RemoteWindow) -> CommClass {
    use vfpga_accel::RemoteAccess;
    match inst {
        Instruction::VStore { addr, .. } => match window.classify(*addr) {
            Some(RemoteAccess::Send(_)) => CommClass::Send,
            _ => CommClass::Compute,
        },
        Instruction::VLoad { addr, .. } => match window.classify(*addr) {
            Some(RemoteAccess::Recv(_)) => CommClass::Recv,
            _ => CommClass::Compute,
        },
        _ => CommClass::Compute,
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CommClass {
    Send,
    Compute,
    Recv,
}

/// Reorders a program (dependency-preserving) to overlap communication and
/// computation:
///
/// * every **send** hoists to the earliest position its dependencies allow
///   (immediately after the instruction producing its payload), so the
///   transfer starts as soon as the data exists;
/// * every **receive** sinks to the latest position its dependents allow
///   (immediately before its first consumer), so the independent
///   computation between a send and the consuming instruction — e.g. the
///   next timestep's matrix multiplications on `x` — executes while the
///   data is in flight.
///
/// This is deliberately *local* code motion: unlike a global list
/// scheduler, it cannot hoist an unbounded amount of future work above a
/// receive (which would drain the overlap budget of every later timestep
/// at once); each receive keeps exactly the slack its own timestep
/// provides, matching the per-timestep overlap the paper describes.
///
/// # Errors
///
/// Returns [`CoreError::Isa`] only if the computed schedule violates
/// dependencies (a bug guard; it cannot happen for well-formed programs).
pub fn reorder_for_overlap(program: &Program, window: &RemoteWindow) -> Result<Program, CoreError> {
    let graph = program.dep_graph();
    let n = graph.len();

    // Position keys on a doubled scale so sends/recvs can slot between
    // neighboring compute instructions.
    let mut key: Vec<i64> = (0..n).map(|i| 2 * i as i64).collect();
    for i in 0..n {
        match comm_class(&program[i], window) {
            CommClass::Send => {
                let after = graph.preds(i).iter().map(|&p| 2 * p as i64).max();
                if let Some(a) = after {
                    key[i] = a + 1;
                }
            }
            CommClass::Recv => {
                let before = graph.succs(i).iter().map(|&s| 2 * s as i64).min();
                if let Some(b) = before {
                    key[i] = b - 1;
                }
            }
            CommClass::Compute => {}
        }
    }
    // Topological schedule with the keys as priorities: dependencies are
    // always honored (a receive feeding a send cannot invert), and within
    // the ready set lower keys — hoisted sends, plain compute, then sunk
    // receives — go first.
    let mut indegree: Vec<usize> = (0..n).map(|i| graph.preds(i).len()).collect();
    let mut ready: std::collections::BTreeSet<(i64, usize)> = (0..n)
        .filter(|&i| indegree[i] == 0)
        .map(|i| (key[i], i))
        .collect();
    let mut order = Vec::with_capacity(n);
    while let Some(&(k, i)) = ready.iter().next() {
        ready.remove(&(k, i));
        order.push(i);
        for &s in graph.succs(i) {
            indegree[s] -= 1;
            if indegree[s] == 0 {
                ready.insert((key[s], s));
            }
        }
    }
    program.reordered(&order).map_err(CoreError::Isa)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vfpga_isa::{assemble, VReg};

    fn window() -> RemoteWindow {
        remote_window(&IsaConfig::default(), 0, 2).unwrap()
    }

    #[test]
    fn small_isa_window_is_rejected_not_wrapped() {
        // Regression: `dram_slots: 16` (the ISA test config) underflowed
        // the u32 base computation into a window near u32::MAX.
        let mut isa = IsaConfig::default();
        isa.dram_slots = 16;
        let err = remote_window(&isa, 0, 2);
        assert!(err.is_err(), "16-slot DRAM must not fit a 128-slot window");
        // One slot short of the reserved region still fails; exactly the
        // reserved size succeeds with send_base at zero.
        isa.dram_slots = 2 * SYNC_CHANNELS - 1;
        assert!(remote_window(&isa, 0, 2).is_err());
        isa.dram_slots = 2 * SYNC_CHANNELS;
        let w = remote_window(&isa, 0, 2).unwrap();
        assert_eq!(w.send_base, 0);
        assert_eq!(w.recv_base, SYNC_CHANNELS);
    }

    #[test]
    fn window_sits_at_top_of_dram() {
        let isa = IsaConfig::default();
        let w = remote_window(&isa, 1, 4).unwrap();
        assert_eq!(w.recv_base + w.channels, isa.dram_slots);
        assert_eq!(w.send_base + w.channels, w.recv_base);
        assert_eq!(w.machine_index, 1);
        assert_eq!(w.num_machines, 4);
    }

    #[test]
    fn insert_adds_send_after_state_store() {
        // Slot 10 is the state slot.
        let p = assemble("vload v0, 0\nvstore v0, 10\nvload v1, 10\nhalt\n").unwrap();
        let w = window();
        let q = insert_communication(&p, &[10], &w).unwrap();
        // Expect: vload; vstore local; vstore send; vload recv; halt.
        assert_eq!(q.len(), 5);
        assert_eq!(
            q[2],
            Instruction::VStore {
                src: VReg(0),
                addr: w.send_base
            }
        );
        assert_eq!(
            q[3],
            Instruction::VLoad {
                dst: VReg(1),
                addr: w.recv_base
            }
        );
    }

    #[test]
    fn initial_state_load_stays_local() {
        // The h_0 load precedes any store: it must stay a local load.
        let p = assemble("vload v0, 10\nvstore v0, 10\nvload v1, 10\nhalt\n").unwrap();
        let w = window();
        let q = insert_communication(&p, &[10], &w).unwrap();
        assert_eq!(
            q[0],
            Instruction::VLoad {
                dst: VReg(0),
                addr: 10
            }
        );
        // The post-store load becomes a receive.
        assert_eq!(
            q[3],
            Instruction::VLoad {
                dst: VReg(1),
                addr: w.recv_base
            }
        );
    }

    #[test]
    fn too_many_state_slots_rejected() {
        let p = assemble("halt\n").unwrap();
        let slots: Vec<u32> = (0..SYNC_CHANNELS + 1).collect();
        assert!(insert_communication(&p, &slots, &window()).is_err());
    }

    #[test]
    fn machine_outside_group_is_rejected() {
        // Regression (fuzzer-found degenerate input): a machine index at
        // or past the group size produced a structurally valid window
        // whose slice recombination was shifted; now a typed error.
        let isa = IsaConfig::default();
        assert!(matches!(
            remote_window(&isa, 2, 2),
            Err(crate::CoreError::InvalidMachine {
                machine_index: 2,
                num_machines: 2
            })
        ));
        assert!(matches!(
            remote_window(&isa, 0, 0),
            Err(crate::CoreError::InvalidMachine { .. })
        ));
        assert!(remote_window(&isa, 1, 2).is_ok());
    }

    #[test]
    fn state_slot_inside_window_is_rejected() {
        // Regression (fuzzer-found degenerate input): designating a slot
        // inside the reserved window made the inserted send itself count
        // as a state store, silently corrupting the channel protocol.
        let p = assemble("halt\n").unwrap();
        let w = window();
        let err = insert_communication(&p, &[w.send_base], &w).unwrap_err();
        assert!(matches!(
            err,
            crate::CoreError::StateSlotAliasesWindow { slot } if slot == w.send_base
        ));
        let err = insert_communication(&p, &[w.recv_base + 3], &w).unwrap_err();
        assert!(matches!(
            err,
            crate::CoreError::StateSlotAliasesWindow { .. }
        ));
    }

    #[test]
    fn duplicate_state_slot_is_rejected() {
        // Regression (fuzzer-found degenerate input): a repeated state
        // slot bound only its first channel; peers blocked forever on the
        // second channel's barrier in co-simulation.
        let p = assemble("halt\n").unwrap();
        let err = insert_communication(&p, &[10, 11, 10], &window()).unwrap_err();
        assert!(matches!(
            err,
            crate::CoreError::DuplicateStateSlot { slot: 10 }
        ));
    }

    #[test]
    fn reorder_hoists_sends_and_sinks_recvs() {
        let w = window();
        // Program: produce v0; store-send; big independent compute chain on
        // v2; recv into v1; consume v1.
        let src = format!(
            "vload v0, 0\n\
             vload v2, 1\n\
             vstore v0, {send}\n\
             vload v1, {recv}\n\
             sigmoid v3, v2\n\
             tanh v4, v3\n\
             vadd v5, v1, v4\n\
             halt\n",
            send = w.send_base,
            recv = w.recv_base
        );
        let p = assemble(&src).unwrap();
        let q = reorder_for_overlap(&p, &w).unwrap();
        let pos = |inst: &Instruction| {
            q.iter()
                .position(|i| i == inst)
                .unwrap_or_else(|| panic!("missing {inst}"))
        };
        let send_pos = pos(&Instruction::VStore {
            src: VReg(0),
            addr: w.send_base,
        });
        let recv_pos = pos(&Instruction::VLoad {
            dst: VReg(1),
            addr: w.recv_base,
        });
        let sig_pos = pos(&vfpga_isa::assemble("sigmoid v3, v2").unwrap()[0]);
        let tanh_pos = pos(&vfpga_isa::assemble("tanh v4, v3").unwrap()[0]);
        // Send before the compute chain; recv after it.
        assert!(send_pos < sig_pos, "send should hoist above compute");
        assert!(recv_pos > tanh_pos, "recv should sink below compute");
    }

    #[test]
    fn reorder_preserves_dependencies() {
        let w = window();
        let p = assemble("vload v0, 0\nmvmul v1, m0, v0\nvadd v2, v1, v0\nvstore v2, 3\nhalt\n")
            .unwrap();
        let q = reorder_for_overlap(&p, &w).unwrap();
        // No comm instructions: order must be unchanged (stable tie-break).
        assert_eq!(p, q);
    }

    #[test]
    fn end_to_end_insert_then_reorder_stays_valid() {
        let w = window();
        let p = assemble(
            "vload v9, 10\n\
             vload v0, 0\n\
             mvmul v1, m0, v0\n\
             vstore v1, 10\n\
             vload v2, 10\n\
             mvmul v3, m1, v2\n\
             vstore v3, 20\n\
             halt\n",
        )
        .unwrap();
        let with_comm = insert_communication(&p, &[10], &w).unwrap();
        let reordered = reorder_for_overlap(&with_comm, &w).unwrap();
        // `reordered` only returns Ok for dependency-preserving orders, so
        // reaching here is the assertion; sanity-check instruction count.
        assert_eq!(reordered.len(), with_comm.len());
    }
}

//! The mapping database the system controller searches at deployment time.

use std::collections::BTreeMap;
use std::sync::Arc;

use vfpga_fabric::{DeviceType, ResourceVec};
use vfpga_hsabs::{HsCompiler, VirtualBlockImage};

use crate::decompose::Decomposition;
use crate::partition::PartitionTree;
use crate::CoreError;

/// Virtual-block boundary crossings on an operation's critical path when
/// the framework's pattern-aware partition tool places the design: the
/// pipelined data path of a SIMD unit never straddles a virtual block, so
/// only the region entry and exit remain (Section 4.3).
pub const PATTERN_AWARE_CROSSINGS: usize = 2;

/// Crossings when a pattern-oblivious partitioner (e.g. ViTAL's own generic
/// tool) splits a SIMD unit's pipeline across virtual blocks — the ablation
/// the paper contrasts against.
pub const PATTERN_OBLIVIOUS_CROSSINGS: usize = 8;

/// One deployment unit of one option: a cluster of soft blocks compiled for
/// every feasible device type.
#[derive(Debug, Clone)]
pub struct DeploymentUnit {
    /// Estimated resources of this unit.
    pub resources: ResourceVec,
    /// Compiled image per device type name (absent when the unit does not
    /// fit that type).
    pub images: BTreeMap<String, VirtualBlockImage>,
    /// Fraction of the accelerator's compute capability in this unit
    /// (tile share), used to derive scaled timing.
    pub compute_share: f64,
}

/// One way to deploy an accelerator: `units.len()` FPGAs.
#[derive(Debug, Clone)]
pub struct DeploymentOption {
    /// The units, largest (control-bearing) first.
    pub units: Vec<DeploymentUnit>,
    /// Latency-insensitive boundary crossings on the critical path.
    pub crossings_per_op: usize,
    /// Inter-unit traffic in bits per activation.
    pub cut_bandwidth: u64,
}

impl DeploymentOption {
    /// Number of FPGAs this option occupies.
    pub fn num_units(&self) -> usize {
        self.units.len()
    }
}

/// The mapping results of one accelerator instance.
#[derive(Debug, Clone)]
pub struct MappingEntry {
    /// Instance name.
    pub name: String,
    /// Deployment options sorted by ascending unit count — exactly the
    /// order the greedy runtime policy scans (Section 2.3).
    pub options: Vec<DeploymentOption>,
    /// Total estimated resources (control + data path).
    pub total_resources: ResourceVec,
    /// Estimated HS-compilation cost of all images, in seconds (for the
    /// Section 4.3 compilation-overhead accounting).
    pub compile_seconds: f64,
}

/// The database of compiled mappings (Fig. 7): one entry per registered
/// accelerator instance.
///
/// Entries are stored behind [`Arc`] so the deployment hot path can hold a
/// cheap shared handle across a placement attempt instead of deep-cloning
/// every option, unit, and image of the entry per attempt. Entries are
/// immutable once registered (re-registration replaces the whole `Arc`).
#[derive(Debug, Clone, Default)]
pub struct MappingDatabase {
    entries: BTreeMap<String, Arc<MappingEntry>>,
}

impl MappingDatabase {
    /// Creates an empty database.
    pub fn new() -> Self {
        MappingDatabase::default()
    }

    /// Registers an accelerator instance: compiles every deployment option
    /// of its partition plan against the HS abstraction of every feasible
    /// device type.
    ///
    /// `pattern_aware` selects which partition tool produced the placement
    /// (the framework's own, or the HS abstraction's generic one); it only
    /// affects the recorded crossing count.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Hs`] if not even the single-FPGA option fits
    /// any provided device type.
    pub fn register(
        &mut self,
        name: &str,
        decomposition: &Decomposition,
        plan: &PartitionTree,
        device_types: &[DeviceType],
        compiler: &HsCompiler,
        pattern_aware: bool,
    ) -> Result<&MappingEntry, CoreError> {
        let mut options = Vec::new();
        let mut compile_seconds = 0.0;
        let total_resources = decomposition.total_resources();
        let data_luts = decomposition.tree.root_block().resources.luts.max(1);

        for units in 1..=plan.max_units() {
            let Ok(clusters) = plan.units_for(units) else {
                break;
            };
            let cut_bandwidth = plan.cut_bandwidth_for(units)?;
            let mut unit_list = Vec::new();
            let mut feasible = true;
            for (i, cluster) in clusters.iter().enumerate() {
                // The first (largest) unit carries the control soft block.
                let mut resources = cluster.resources;
                if i == 0 {
                    resources += decomposition.control_resources;
                }
                let mut images = BTreeMap::new();
                for dt in device_types {
                    match compiler.compile(&format!("{name}/{units}u/{i}"), &resources, dt) {
                        Ok(img) => {
                            compile_seconds += compiler.compile_seconds(&resources);
                            images.insert(dt.name().to_string(), img);
                        }
                        Err(vfpga_hsabs::HsError::DoesNotFit { .. }) => {}
                        Err(e) => return Err(CoreError::Hs(e)),
                    }
                }
                if images.is_empty() {
                    feasible = false;
                    break;
                }
                unit_list.push(DeploymentUnit {
                    resources,
                    images,
                    compute_share: cluster.resources.luts as f64 / data_luts as f64,
                });
            }
            if !feasible {
                continue;
            }
            // Largest unit first (it carries control and the policy places
            // it first).
            unit_list.sort_by_key(|u| std::cmp::Reverse(u.resources.luts));
            options.push(DeploymentOption {
                units: unit_list,
                crossings_per_op: if pattern_aware {
                    PATTERN_AWARE_CROSSINGS
                } else {
                    PATTERN_OBLIVIOUS_CROSSINGS
                },
                cut_bandwidth,
            });
        }

        if options.is_empty() {
            return Err(CoreError::Hs(vfpga_hsabs::HsError::DoesNotFit {
                name: name.to_string(),
                device_type: device_types
                    .iter()
                    .map(DeviceType::name)
                    .collect::<Vec<_>>()
                    .join(","),
            }));
        }
        options.sort_by_key(DeploymentOption::num_units);
        let entry = MappingEntry {
            name: name.to_string(),
            options,
            total_resources,
            compile_seconds,
        };
        self.entries.insert(name.to_string(), Arc::new(entry));
        Ok(&self.entries[name])
    }

    /// Registers a pre-built mapping entry directly, replacing any entry
    /// with the same name. A hook for tools and tests that need entries
    /// the compile pipeline would not produce on its own (e.g. an instance
    /// offering only multi-FPGA deployment options).
    pub fn register_entry(&mut self, entry: MappingEntry) {
        self.entries.insert(entry.name.clone(), Arc::new(entry));
    }

    /// The entry for an instance, if registered.
    pub fn entry(&self, name: &str) -> Option<&MappingEntry> {
        self.entries.get(name).map(|e| &**e)
    }

    /// A shared handle to the entry for an instance, if registered. This
    /// is the deployment fast path: cloning the `Arc` is a refcount bump,
    /// not a deep copy of every compiled image.
    pub fn entry_shared(&self, name: &str) -> Option<Arc<MappingEntry>> {
        self.entries.get(name).cloned()
    }

    /// Iterates over all entries in name order.
    pub fn iter(&self) -> impl Iterator<Item = &MappingEntry> {
        self.entries.values().map(|e| &**e)
    }

    /// Number of registered instances.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompose::{decompose, DecomposeOptions};
    use crate::partition::partition;
    use vfpga_accel::{generate_rtl, AcceleratorConfig, CONTROL_PATH_MODULE, TOP_MODULE};
    use vfpga_rtl::FlatNode;

    fn small_est(_n: &FlatNode) -> ResourceVec {
        ResourceVec {
            luts: 20_000,
            ffs: 20_000,
            bram_kb: 500,
            uram_kb: 0,
            dsps: 120,
        }
    }

    fn register_accel(tiles: usize) -> (MappingDatabase, String) {
        let cfg = AcceleratorConfig::new("acc", tiles);
        let design = generate_rtl(&cfg);
        let mut opts = DecomposeOptions::new(CONTROL_PATH_MODULE);
        opts.move_to_control = vfpga_accel::MOVED_TO_CONTROL
            .iter()
            .map(|s| s.to_string())
            .collect();
        let d = decompose(&design, TOP_MODULE, &opts, &small_est).unwrap();
        let plan = partition(&d.tree, 2);
        let mut db = MappingDatabase::new();
        db.register(
            "acc",
            &d,
            &plan,
            &[DeviceType::xcvu37p(), DeviceType::xcku115()],
            &HsCompiler::default(),
            true,
        )
        .unwrap();
        (db, "acc".to_string())
    }

    #[test]
    fn registers_options_in_ascending_unit_order() {
        let (db, name) = register_accel(8);
        let entry = db.entry(&name).unwrap();
        assert!(!entry.options.is_empty());
        let counts: Vec<usize> = entry.options.iter().map(|o| o.num_units()).collect();
        let mut sorted = counts.clone();
        sorted.sort_unstable();
        assert_eq!(counts, sorted);
        assert_eq!(counts[0], 1);
        assert!(entry.compile_seconds > 0.0);
    }

    #[test]
    fn units_have_images_for_feasible_types() {
        let (db, name) = register_accel(8);
        let entry = db.entry(&name).unwrap();
        for option in &entry.options {
            for unit in &option.units {
                assert!(!unit.images.is_empty());
                for (ty, img) in &unit.images {
                    assert_eq!(img.device_type_name(), ty);
                    assert!(img.blocks() >= 1);
                }
            }
        }
    }

    #[test]
    fn control_rides_with_first_unit() {
        let (db, name) = register_accel(8);
        let entry = db.entry(&name).unwrap();
        let two = entry
            .options
            .iter()
            .find(|o| o.num_units() == 2)
            .expect("2-unit option");
        // First unit is strictly larger (it carries the control block).
        assert!(two.units[0].resources.luts > two.units[1].resources.luts);
    }

    #[test]
    fn crossings_track_partitioner_quality() {
        let cfg = AcceleratorConfig::new("acc", 4);
        let design = generate_rtl(&cfg);
        let mut opts = DecomposeOptions::new(CONTROL_PATH_MODULE);
        opts.move_to_control = vfpga_accel::MOVED_TO_CONTROL
            .iter()
            .map(|s| s.to_string())
            .collect();
        let d = decompose(&design, TOP_MODULE, &opts, &small_est).unwrap();
        let plan = partition(&d.tree, 1);
        let types = [DeviceType::xcvu37p()];
        let compiler = HsCompiler::default();
        let mut db = MappingDatabase::new();
        let aware = db
            .register("aware", &d, &plan, &types, &compiler, true)
            .unwrap()
            .options[0]
            .crossings_per_op;
        let oblivious = db
            .register("oblivious", &d, &plan, &types, &compiler, false)
            .unwrap()
            .options[0]
            .crossings_per_op;
        assert!(aware < oblivious);
    }
}

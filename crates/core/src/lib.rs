//! # vfpga-core — the multi-layer virtualization framework
//!
//! This crate is the paper's contribution: the **system abstraction** that
//! sits between the application-specific ISA (top) and the
//! hardware-specific abstraction (bottom), plus the custom tools that
//! operate on it.
//!
//! * [`SoftBlockTree`] — the system abstraction itself: a pool of soft
//!   blocks in a multi-level tree whose internal nodes are one of the two
//!   primitive parallel patterns ([`Pattern::Data`], [`Pattern::Pipeline`]).
//!   Soft blocks have *no* FPGA-specific resource constraints, which is what
//!   gives the heterogeneous cluster a homogeneous view.
//! * [`decompose`] — the decomposing tool (Section 2.2.1): lowers an AS
//!   ISA-based accelerator's RTL onto the soft-block abstraction with the
//!   five-step bottom-up flow (build block graph, extract intra-block data
//!   parallelism, identify inter-block data parallelism, identify pipeline
//!   parallelism, iterate to fixpoint). [`decompose_top_down`] implements
//!   the alternative top-down flow of Fig. 3b over the module hierarchy.
//! * [`partition`] — the partitioning tool (Section 2.2.2): iteratively
//!   bisects the decomposed accelerator, cutting pipelines at their
//!   minimum-bandwidth edge and splitting data-parallel nodes evenly,
//!   producing deployment units for up to 2^N FPGAs.
//! * [`MappingDatabase`] — the compiled-mapping store the system controller
//!   searches at deployment time (Fig. 7): every deployment variant of
//!   every accelerator instance, compiled against the HS abstraction of
//!   every feasible device type.
//! * [`scaleout`] — the scale-out optimization (Section 2.3): scale one
//!   accelerator down into several smaller ones, insert the DRAM-mapped
//!   send/receive instructions the synchronization template module
//!   intercepts, and reorder instructions (under dependency constraints) to
//!   overlap inter-FPGA communication with computation.

mod database;
mod decompose;
mod partition;
pub mod patterns;
pub mod scaleout;
mod softblock;
mod topdown;

pub use database::{
    DeploymentOption, DeploymentUnit, MappingDatabase, MappingEntry, PATTERN_AWARE_CROSSINGS,
    PATTERN_OBLIVIOUS_CROSSINGS,
};
pub use decompose::{decompose, decompose_traced, DecomposeOptions, Decomposition};
pub use partition::{partition, partition_traced, PartitionNode, PartitionTree};
pub use patterns::{reduction, TreeBuilder};
pub use softblock::{Pattern, SoftBlock, SoftBlockId, SoftBlockKind, SoftBlockTree};
pub use topdown::decompose_top_down;

use std::fmt;

/// Errors from the framework's tools.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// The RTL analysis failed.
    Rtl(vfpga_rtl::RtlError),
    /// The named control-path module was not found in the design.
    MissingControlModule(String),
    /// The data path produced an empty block graph.
    EmptyDataPath,
    /// A soft block id is not part of the tree.
    UnknownBlock(usize),
    /// A deployment was requested that the partition plan cannot provide.
    NoSuchVariant {
        /// Units requested.
        requested: usize,
        /// Largest variant available.
        available: usize,
    },
    /// The HS abstraction refused a compilation.
    Hs(vfpga_hsabs::HsError),
    /// The instruction transformation produced an invalid program.
    Isa(vfpga_isa::IsaError),
    /// A scale-out machine index outside its group (`machine_index >=
    /// num_machines`, or an empty group).
    InvalidMachine {
        /// The machine index requested.
        machine_index: usize,
        /// The size of the scale-out group.
        num_machines: usize,
    },
    /// A designated state slot falls inside the reserved sync window, so
    /// rewriting it to a send/receive would alias the window itself.
    StateSlotAliasesWindow {
        /// The offending DRAM slot.
        slot: u32,
    },
    /// The same state slot was designated twice; the rewrite would bind it
    /// to one channel and silently starve the other.
    DuplicateStateSlot {
        /// The repeated DRAM slot.
        slot: u32,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Rtl(e) => write!(f, "rtl error: {e}"),
            CoreError::MissingControlModule(m) => {
                write!(f, "control-path module `{m}` not found in design")
            }
            CoreError::EmptyDataPath => write!(f, "data path contains no basic modules"),
            CoreError::UnknownBlock(id) => write!(f, "soft block {id} not in tree"),
            CoreError::NoSuchVariant {
                requested,
                available,
            } => write!(
                f,
                "no partition variant with {requested} units (largest is {available})"
            ),
            CoreError::Hs(e) => write!(f, "hs abstraction error: {e}"),
            CoreError::Isa(e) => write!(f, "isa error: {e}"),
            CoreError::InvalidMachine {
                machine_index,
                num_machines,
            } => write!(
                f,
                "machine index {machine_index} outside scale-out group of {num_machines}"
            ),
            CoreError::StateSlotAliasesWindow { slot } => {
                write!(f, "state slot {slot} lies inside the reserved sync window")
            }
            CoreError::DuplicateStateSlot { slot } => {
                write!(f, "state slot {slot} designated more than once")
            }
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Rtl(e) => Some(e),
            CoreError::Hs(e) => Some(e),
            CoreError::Isa(e) => Some(e),
            _ => None,
        }
    }
}

impl From<vfpga_rtl::RtlError> for CoreError {
    fn from(e: vfpga_rtl::RtlError) -> Self {
        CoreError::Rtl(e)
    }
}

impl From<vfpga_hsabs::HsError> for CoreError {
    fn from(e: vfpga_hsabs::HsError) -> Self {
        CoreError::Hs(e)
    }
}

impl From<vfpga_isa::IsaError> for CoreError {
    fn from(e: vfpga_isa::IsaError) -> Self {
        CoreError::Isa(e)
    }
}

//! The partitioning tool (Section 2.2.2).
//!
//! Partitions a decomposed accelerator into clusters of soft blocks — the
//! basic units of runtime deployment — using the iterative method of
//! Fig. 6: each iteration splits one cluster into two, cutting a pipeline
//! at the link with minimum communication bandwidth and splitting a
//! data-parallel node's children evenly. After N iterations the plan can
//! deploy the accelerator onto up to 2^N FPGAs, and intermediate
//! combinations (e.g. 3 devices) come from mixing split levels.
//!
//! The extracted parallel patterns are exactly what keeps this cheap: no
//! search over arbitrary graph cuts is needed, just one scan per pipeline
//! node — this is the paper's complexity reduction over pattern-oblivious
//! partitioners.

use vfpga_fabric::ResourceVec;

use crate::softblock::{Pattern, SoftBlockId, SoftBlockKind, SoftBlockTree};
use crate::CoreError;

/// One deployment unit: a cluster of soft blocks that deploys onto a
/// single FPGA.
#[derive(Debug, Clone)]
pub struct PartitionNode {
    /// The soft blocks forming the cluster (subtree roots).
    pub blocks: Vec<SoftBlockId>,
    /// Estimated resources of the cluster.
    pub resources: ResourceVec,
    /// Bandwidth (bits) crossing the cut if this node is split, and the
    /// two halves. `None` for unsplit or unsplittable nodes.
    pub split: Option<PartitionSplit>,
}

/// A performed split of one partition node.
#[derive(Debug, Clone)]
pub struct PartitionSplit {
    /// Bits of traffic crossing between the two halves per activation.
    pub cut_bandwidth: u64,
    /// First half.
    pub left: Box<PartitionNode>,
    /// Second half.
    pub right: Box<PartitionNode>,
}

impl PartitionNode {
    /// Leaves of the partition subtree (the smallest deployment units).
    fn leaf_count(&self) -> usize {
        match &self.split {
            None => 1,
            Some(s) => s.left.leaf_count() + s.right.leaf_count(),
        }
    }
}

/// The partition plan of one accelerator: a binary tree of deployment
/// units.
#[derive(Debug, Clone)]
pub struct PartitionTree {
    root: PartitionNode,
    iterations: usize,
}

/// A cluster in flight during partitioning.
struct Cluster {
    pattern: Option<Pattern>,
    children: Vec<SoftBlockId>,
    link_widths: Vec<u64>,
    blocks: Vec<SoftBlockId>,
    resources: ResourceVec,
}

impl Cluster {
    fn from_block(tree: &SoftBlockTree, id: SoftBlockId) -> Cluster {
        let b = tree.block(id);
        match &b.kind {
            SoftBlockKind::Leaf { .. } => Cluster {
                pattern: None,
                children: vec![],
                link_widths: vec![],
                blocks: vec![id],
                resources: b.resources,
            },
            SoftBlockKind::Composite {
                pattern,
                children,
                link_widths,
            } => Cluster {
                pattern: Some(*pattern),
                children: children.clone(),
                link_widths: link_widths.clone(),
                blocks: vec![id],
                resources: b.resources,
            },
        }
    }

    fn from_children(
        tree: &SoftBlockTree,
        pattern: Pattern,
        children: Vec<SoftBlockId>,
        link_widths: Vec<u64>,
    ) -> Cluster {
        if children.len() == 1 {
            return Cluster::from_block(tree, children[0]);
        }
        let resources = children.iter().map(|&c| tree.block(c).resources).sum();
        Cluster {
            pattern: Some(pattern),
            blocks: children.clone(),
            children,
            link_widths,
            resources,
        }
    }

    /// Splits per the pattern rules; `None` if unsplittable (a leaf).
    fn split(&self, tree: &SoftBlockTree) -> Option<(Cluster, Cluster, u64)> {
        let pattern = self.pattern?;
        if self.children.len() < 2 {
            // Descend into a lone composite child.
            return Cluster::from_block(tree, *self.children.first()?).split(tree);
        }
        match pattern {
            Pattern::Pipeline => {
                // Cut at the minimum-bandwidth link.
                let (cut_idx, &cut_bw) = self
                    .link_widths
                    .iter()
                    .enumerate()
                    .min_by_key(|&(_, &w)| w)
                    .expect("pipeline with >=2 children has links");
                let left = Cluster::from_children(
                    tree,
                    Pattern::Pipeline,
                    self.children[..=cut_idx].to_vec(),
                    self.link_widths[..cut_idx].to_vec(),
                );
                let right = Cluster::from_children(
                    tree,
                    Pattern::Pipeline,
                    self.children[cut_idx + 1..].to_vec(),
                    self.link_widths[cut_idx + 1..].to_vec(),
                );
                Some((left, right, cut_bw))
            }
            Pattern::Data => {
                // Even split; halves exchange nothing between themselves.
                let mid = self.children.len() / 2;
                let left = Cluster::from_children(
                    tree,
                    Pattern::Data,
                    self.children[..mid].to_vec(),
                    vec![],
                );
                let right = Cluster::from_children(
                    tree,
                    Pattern::Data,
                    self.children[mid..].to_vec(),
                    vec![],
                );
                Some((left, right, 0))
            }
        }
    }
}

fn build(tree: &SoftBlockTree, cluster: Cluster, depth: usize) -> PartitionNode {
    let split = if depth == 0 {
        None
    } else {
        cluster
            .split(tree)
            .map(|(left, right, cut_bandwidth)| PartitionSplit {
                cut_bandwidth,
                left: Box::new(build(tree, left, depth - 1)),
                right: Box::new(build(tree, right, depth - 1)),
            })
    };
    PartitionNode {
        blocks: cluster.blocks,
        resources: cluster.resources,
        split,
    }
}

/// Partitions a decomposed accelerator with `iterations` rounds of
/// bisection (supporting deployments onto up to `2^iterations` FPGAs).
pub fn partition(tree: &SoftBlockTree, iterations: usize) -> PartitionTree {
    let root = build(tree, Cluster::from_block(tree, tree.root()), iterations);
    PartitionTree { root, iterations }
}

/// [`partition`] with span tracing: the bisection run is recorded as a
/// zero-duration `partition` span carrying the iteration count and the
/// resulting maximum unit count, nested under the caller's compile-flow
/// span.
pub fn partition_traced(
    tree: &SoftBlockTree,
    iterations: usize,
    ctx: Option<vfpga_sim::SpanCtx<'_>>,
) -> PartitionTree {
    let result = partition(tree, iterations);
    if let Some(ctx) = ctx {
        let span = ctx.spans.begin("partition", ctx.trace, ctx.parent, ctx.at);
        ctx.spans.attr(span, "iterations", iterations);
        ctx.spans.attr(span, "max_units", result.max_units());
        ctx.spans.end(span, ctx.at);
    }
    result
}

impl PartitionTree {
    /// The whole-accelerator unit.
    pub fn root(&self) -> &PartitionNode {
        &self.root
    }

    /// The number of bisection iterations performed.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// The maximum number of deployment units this plan supports.
    pub fn max_units(&self) -> usize {
        self.root.leaf_count()
    }

    /// Selects a deployment onto exactly `units` FPGAs by greedily
    /// splitting the largest unit first (Fig. 6's mixed combinations, e.g.
    /// units {#2, #3, #4} for three devices).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NoSuchVariant`] if the plan cannot produce that
    /// many units.
    pub fn units_for(&self, units: usize) -> Result<Vec<&PartitionNode>, CoreError> {
        if units == 0 || units > self.max_units() {
            return Err(CoreError::NoSuchVariant {
                requested: units,
                available: self.max_units(),
            });
        }
        let mut current: Vec<&PartitionNode> = vec![&self.root];
        while current.len() < units {
            // Split the largest splittable unit (by LUT estimate).
            let (idx, _) = current
                .iter()
                .enumerate()
                .filter(|(_, n)| n.split.is_some())
                .max_by_key(|(_, n)| n.resources.luts)
                .ok_or(CoreError::NoSuchVariant {
                    requested: units,
                    available: current.len(),
                })?;
            let node = current.remove(idx);
            let split = node.split.as_ref().expect("filtered on splittable");
            current.push(&split.left);
            current.push(&split.right);
        }
        Ok(current)
    }

    /// Total bandwidth crossing between units in the `units_for(n)`
    /// deployment — the inter-FPGA traffic per activation.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NoSuchVariant`] for unit counts outside
    /// `1..=max_units()`, exactly mirroring [`units_for`]
    /// (`PartitionTree::units_for`); previously `cut_bandwidth_for(0)`
    /// answered `Ok(0)` for a deployment that cannot exist.
    pub fn cut_bandwidth_for(&self, units: usize) -> Result<u64, CoreError> {
        if units == 0 || units > self.max_units() {
            return Err(CoreError::NoSuchVariant {
                requested: units,
                available: self.max_units(),
            });
        }
        // Sum of cut bandwidths of every split performed to reach `units`.
        let mut total = 0u64;
        let mut current: Vec<&PartitionNode> = vec![&self.root];
        while current.len() < units {
            let (idx, _) = current
                .iter()
                .enumerate()
                .filter(|(_, n)| n.split.is_some())
                .max_by_key(|(_, n)| n.resources.luts)
                .ok_or(CoreError::NoSuchVariant {
                    requested: units,
                    available: current.len(),
                })?;
            let node = current.remove(idx);
            let split = node.split.as_ref().expect("filtered on splittable");
            total += split.cut_bandwidth;
            current.push(&split.left);
            current.push(&split.right);
        }
        if units > current.len() {
            return Err(CoreError::NoSuchVariant {
                requested: units,
                available: current.len(),
            });
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::softblock::{SoftBlock, SoftBlockKind};

    fn leaf(id: usize, luts: u64) -> SoftBlock {
        SoftBlock {
            id: SoftBlockId(id),
            kind: SoftBlockKind::Leaf {
                path: format!("u{id}"),
                module: "m".into(),
                behavior: None,
            },
            resources: ResourceVec {
                luts,
                ffs: luts,
                bram_kb: 0,
                uram_kb: 0,
                dsps: 0,
            },
            content_hash: 1,
        }
    }

    /// pipeline(l0 -100- l1 -20- l2 -80- l3): min cut at the 20-bit link.
    fn pipeline_tree() -> SoftBlockTree {
        let mut blocks: Vec<SoftBlock> = (0..4).map(|i| leaf(i, 1000)).collect();
        blocks.push(SoftBlock {
            id: SoftBlockId(4),
            kind: SoftBlockKind::Composite {
                pattern: Pattern::Pipeline,
                children: (0..4).map(SoftBlockId).collect(),
                link_widths: vec![100, 20, 80],
            },
            resources: ResourceVec {
                luts: 4000,
                ffs: 4000,
                bram_kb: 0,
                uram_kb: 0,
                dsps: 0,
            },
            content_hash: 2,
        });
        SoftBlockTree::new(blocks, SoftBlockId(4))
    }

    /// data(8 identical leaves).
    fn data_tree() -> SoftBlockTree {
        let mut blocks: Vec<SoftBlock> = (0..8).map(|i| leaf(i, 500)).collect();
        blocks.push(SoftBlock {
            id: SoftBlockId(8),
            kind: SoftBlockKind::Composite {
                pattern: Pattern::Data,
                children: (0..8).map(SoftBlockId).collect(),
                link_widths: vec![],
            },
            resources: ResourceVec {
                luts: 4000,
                ffs: 4000,
                bram_kb: 0,
                uram_kb: 0,
                dsps: 0,
            },
            content_hash: 3,
        });
        SoftBlockTree::new(blocks, SoftBlockId(8))
    }

    #[test]
    fn pipeline_cuts_at_min_bandwidth_link() {
        let tree = pipeline_tree();
        let plan = partition(&tree, 1);
        let split = plan.root().split.as_ref().unwrap();
        assert_eq!(split.cut_bandwidth, 20);
        // Left = first two stages, right = last two.
        assert_eq!(split.left.resources.luts, 2000);
        assert_eq!(split.right.resources.luts, 2000);
    }

    #[test]
    fn data_split_is_even_and_free() {
        let tree = data_tree();
        let plan = partition(&tree, 2);
        let s = plan.root().split.as_ref().unwrap();
        assert_eq!(s.cut_bandwidth, 0);
        assert_eq!(s.left.resources.luts, 2000);
        assert_eq!(s.right.resources.luts, 2000);
        // Second level splits again.
        let ll = s.left.split.as_ref().unwrap();
        assert_eq!(ll.left.resources.luts, 1000);
    }

    #[test]
    fn iterations_bound_unit_count() {
        let tree = data_tree();
        assert_eq!(partition(&tree, 0).max_units(), 1);
        assert_eq!(partition(&tree, 1).max_units(), 2);
        assert_eq!(partition(&tree, 2).max_units(), 4);
        // Depth 3 exhausts the 8 leaves.
        assert_eq!(partition(&tree, 3).max_units(), 8);
    }

    #[test]
    fn units_for_produces_intermediate_counts() {
        let tree = data_tree();
        let plan = partition(&tree, 2);
        let three = plan.units_for(3).unwrap();
        assert_eq!(three.len(), 3);
        let total: u64 = three.iter().map(|u| u.resources.luts).sum();
        assert_eq!(total, 4000);
        assert!(plan.units_for(5).is_err());
        assert!(plan.units_for(0).is_err());
    }

    #[test]
    fn leaves_are_unsplittable() {
        let blocks = vec![leaf(0, 100)];
        let tree = SoftBlockTree::new(blocks, SoftBlockId(0));
        let plan = partition(&tree, 3);
        assert_eq!(plan.max_units(), 1);
        assert!(plan.units_for(2).is_err());
    }

    #[test]
    fn cut_bandwidth_for_rejects_degenerate_unit_counts() {
        // Regression (found by the fuzzer's partition-conservation
        // oracle): `cut_bandwidth_for(0)` returned Ok(0) for a deployment
        // that cannot exist, while `units_for(0)` errored — the two
        // accessors now agree on the whole `1..=max_units` domain.
        let tree = data_tree();
        let plan = partition(&tree, 2);
        assert!(matches!(
            plan.cut_bandwidth_for(0),
            Err(CoreError::NoSuchVariant {
                requested: 0,
                available: 4
            })
        ));
        assert!(plan.cut_bandwidth_for(5).is_err());
        for units in 1..=plan.max_units() {
            assert!(plan.cut_bandwidth_for(units).is_ok());
            assert!(plan.units_for(units).is_ok());
        }
    }

    #[test]
    fn cut_bandwidth_accumulates() {
        let tree = pipeline_tree();
        let plan = partition(&tree, 2);
        assert_eq!(plan.cut_bandwidth_for(1).unwrap(), 0);
        assert_eq!(plan.cut_bandwidth_for(2).unwrap(), 20);
        // Next split divides one half at its min link (100 or 80).
        let bw3 = plan.cut_bandwidth_for(3).unwrap();
        assert!(bw3 == 20 + 80 || bw3 == 20 + 100);
    }
}

//! Programmatic construction of soft-block trees from the two primitive
//! patterns.
//!
//! The paper chooses data and pipeline parallelism as the only primitive
//! patterns because "they are sufficient to construct other
//! complex/nested parallel patterns" (Fig. 2c shows a reduction built from
//! them). This module provides a builder for hand-constructing trees —
//! system designers decomposing small accelerators manually, tests, and
//! the [`reduction`] constructor demonstrating the Fig. 2c composition.

use vfpga_fabric::ResourceVec;

use crate::softblock::{Pattern, SoftBlock, SoftBlockId, SoftBlockKind, SoftBlockTree};

/// An incremental soft-block tree builder.
///
/// ```
/// use vfpga_core::{Pattern, TreeBuilder};
/// use vfpga_fabric::ResourceVec;
///
/// let mut b = TreeBuilder::new();
/// let r = ResourceVec { luts: 100, ffs: 100, bram_kb: 0, uram_kb: 0, dsps: 1 };
/// let stage1 = b.leaf("u0", "mul", r);
/// let stage2 = b.leaf("u1", "add", r);
/// let root = b.pipeline(vec![stage1, stage2], vec![32]);
/// let tree = b.build(root);
/// assert_eq!(tree.root_block().pattern(), Some(Pattern::Pipeline));
/// assert_eq!(tree.root_block().resources.luts, 200);
/// ```
#[derive(Debug, Default)]
pub struct TreeBuilder {
    blocks: Vec<SoftBlock>,
}

impl TreeBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        TreeBuilder::default()
    }

    /// Adds a leaf soft block holding one basic module instance.
    pub fn leaf(
        &mut self,
        path: impl Into<String>,
        behavior: impl Into<String>,
        resources: ResourceVec,
    ) -> SoftBlockId {
        let behavior = behavior.into();
        let id = SoftBlockId(self.blocks.len());
        let content_hash = fnv(&format!("leaf:{behavior}"));
        self.blocks.push(SoftBlock {
            id,
            kind: SoftBlockKind::Leaf {
                path: path.into(),
                module: behavior.clone(),
                behavior: Some(behavior),
            },
            resources,
            content_hash,
        });
        id
    }

    /// Adds a data-parallel block over `children`.
    ///
    /// # Panics
    ///
    /// Panics if `children` is empty or a child id is unknown.
    pub fn data(&mut self, children: Vec<SoftBlockId>) -> SoftBlockId {
        assert!(!children.is_empty(), "data block needs children");
        let resources = self.sum(&children);
        let hash = self.mix("data", &children);
        let id = SoftBlockId(self.blocks.len());
        self.blocks.push(SoftBlock {
            id,
            kind: SoftBlockKind::Composite {
                pattern: Pattern::Data,
                children,
                link_widths: vec![],
            },
            resources,
            content_hash: hash,
        });
        id
    }

    /// Adds a pipeline block over `children` with the given inter-stage
    /// link widths.
    ///
    /// # Panics
    ///
    /// Panics if `children` is empty or `link_widths.len() !=
    /// children.len() - 1`.
    pub fn pipeline(&mut self, children: Vec<SoftBlockId>, link_widths: Vec<u64>) -> SoftBlockId {
        assert!(!children.is_empty(), "pipeline block needs children");
        assert_eq!(
            link_widths.len(),
            children.len() - 1,
            "one link width per adjacent pair"
        );
        let resources = self.sum(&children);
        let hash = self.mix("pipe", &children);
        let id = SoftBlockId(self.blocks.len());
        self.blocks.push(SoftBlock {
            id,
            kind: SoftBlockKind::Composite {
                pattern: Pattern::Pipeline,
                children,
                link_widths,
            },
            resources,
            content_hash: hash,
        });
        id
    }

    /// Finishes the tree with `root` as its root.
    ///
    /// # Panics
    ///
    /// Panics if the arena is not a single tree rooted at `root` (see
    /// [`SoftBlockTree::new`]).
    pub fn build(self, root: SoftBlockId) -> SoftBlockTree {
        SoftBlockTree::new(self.blocks, root)
    }

    fn sum(&self, children: &[SoftBlockId]) -> ResourceVec {
        children.iter().map(|c| self.blocks[c.0].resources).sum()
    }

    fn mix(&self, kind: &str, children: &[SoftBlockId]) -> u64 {
        let mut h = fnv(kind);
        for c in children {
            h ^= self.blocks[c.0].content_hash;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }
}

fn fnv(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Builds the Fig. 2c **reduction pattern** from the two primitives: a
/// pipeline of `log2(width)` data-parallel layers of combine blocks, each
/// layer half as wide as the previous — a binary reduction tree expressed
/// with nothing but data and pipeline parallelism.
///
/// `width` leaves feed the first layer; `combine_resources` is the cost of
/// one combine block; `element_bits` the width of one operand.
///
/// # Panics
///
/// Panics if `width` is not a power of two greater than 1.
pub fn reduction(width: usize, combine_resources: ResourceVec, element_bits: u64) -> SoftBlockTree {
    assert!(
        width.is_power_of_two() && width > 1,
        "reduction width must be a power of two > 1"
    );
    let mut b = TreeBuilder::new();
    let mut layers = Vec::new();
    let mut level_width = width / 2;
    let mut level = 0;
    while level_width >= 1 {
        let blocks: Vec<SoftBlockId> = (0..level_width)
            .map(|i| b.leaf(format!("l{level}/c{i}"), "combine", combine_resources))
            .collect();
        layers.push(if blocks.len() == 1 {
            blocks[0]
        } else {
            b.data(blocks)
        });
        if level_width == 1 {
            break;
        }
        level_width /= 2;
        level += 1;
    }
    let widths: Vec<u64> = (0..layers.len() - 1)
        .map(|l| element_bits * (width as u64 >> (l + 1)))
        .collect();
    let root = if layers.len() == 1 {
        layers[0]
    } else {
        b.pipeline(layers, widths)
    };
    b.build(root)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::partition;

    fn r(luts: u64) -> ResourceVec {
        ResourceVec {
            luts,
            ffs: luts,
            bram_kb: 0,
            uram_kb: 0,
            dsps: 1,
        }
    }

    #[test]
    fn reduction_composes_primitives() {
        let tree = reduction(8, r(50), 32);
        let root = tree.root_block();
        // Three layers (4, 2, 1 combiners) in a pipeline.
        assert_eq!(root.pattern(), Some(Pattern::Pipeline));
        assert_eq!(root.children().len(), 3);
        assert_eq!(tree.leaf_count(), 7); // 4 + 2 + 1
        let first = tree.block(root.children()[0]);
        assert_eq!(first.pattern(), Some(Pattern::Data));
        assert_eq!(first.children().len(), 4);
        // Link widths shrink as the reduction narrows.
        match &root.kind {
            SoftBlockKind::Composite { link_widths, .. } => {
                assert_eq!(link_widths, &[32 * 4, 32 * 2]);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn reduction_of_two_is_a_single_combine() {
        let tree = reduction(2, r(10), 16);
        assert_eq!(tree.leaf_count(), 1);
        assert!(tree.root_block().is_leaf());
    }

    #[test]
    fn reduction_partitions_at_narrow_links() {
        // The partitioner should cut the reduction at its narrowest link
        // (the last one).
        let tree = reduction(16, r(100), 64);
        let plan = partition(&tree, 1);
        let split = plan.root().split.as_ref().unwrap();
        // Narrowest inter-layer link: 64 bits * 2 = 128.
        assert_eq!(split.cut_bandwidth, 128);
    }

    #[test]
    fn builder_checks_arity() {
        let mut b = TreeBuilder::new();
        let l0 = b.leaf("a", "x", r(1));
        let l1 = b.leaf("b", "x", r(1));
        let p = b.pipeline(vec![l0, l1], vec![8]);
        let tree = b.build(p);
        assert_eq!(tree.depth(), 2);
    }

    #[test]
    #[should_panic(expected = "one link width per adjacent pair")]
    fn builder_rejects_bad_link_arity() {
        let mut b = TreeBuilder::new();
        let l0 = b.leaf("a", "x", r(1));
        let l1 = b.leaf("b", "x", r(1));
        b.pipeline(vec![l0, l1], vec![]);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn reduction_requires_power_of_two() {
        reduction(6, r(1), 8);
    }
}

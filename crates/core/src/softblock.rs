//! The soft-block system abstraction.

use std::fmt;

use vfpga_fabric::ResourceVec;

/// The two primitive parallel patterns (Fig. 2b).
///
/// The paper chooses exactly these two because they are sufficient to
/// construct other complex/nested patterns (e.g. reduction, Fig. 2c).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pattern {
    /// Children are identical and operate on disjoint data.
    Data,
    /// Children form a producer-consumer chain.
    Pipeline,
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pattern::Data => write!(f, "data"),
            Pattern::Pipeline => write!(f, "pipeline"),
        }
    }
}

/// Identifies a soft block within a [`SoftBlockTree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SoftBlockId(pub usize);

/// What a soft block contains.
#[derive(Debug, Clone, PartialEq)]
pub enum SoftBlockKind {
    /// A leaf soft block holding one basic module instance.
    Leaf {
        /// Hierarchical instance path in the source RTL.
        path: String,
        /// Basic module name.
        module: String,
        /// The module's behavior tag, if any.
        behavior: Option<String>,
    },
    /// A non-leaf soft block whose children are connected in one of the two
    /// primitive parallel patterns.
    Composite {
        /// The connecting pattern.
        pattern: Pattern,
        /// Children in order (pipeline order for [`Pattern::Pipeline`]).
        children: Vec<SoftBlockId>,
        /// For pipelines: bit width of the link between consecutive
        /// children (`len == children.len() - 1`); empty for data
        /// parallelism.
        link_widths: Vec<u64>,
    },
}

/// One soft block: a node of the system abstraction.
///
/// Soft blocks deliberately carry *estimated* resources rather than
/// FPGA-specific constraints: the estimate travels with the block so the
/// partitioner and runtime can reason about capacity, but nothing about a
/// specific device's geometry leaks into the abstraction.
#[derive(Debug, Clone, PartialEq)]
pub struct SoftBlock {
    /// This block's id.
    pub id: SoftBlockId,
    /// Leaf or composite content.
    pub kind: SoftBlockKind,
    /// Estimated spatial resources of the subtree.
    pub resources: ResourceVec,
    /// Structural content hash: equal hashes mean interchangeable blocks
    /// (the equivalence the data-parallel pattern requires).
    pub content_hash: u64,
}

impl SoftBlock {
    /// Whether this is a leaf block.
    pub fn is_leaf(&self) -> bool {
        matches!(self.kind, SoftBlockKind::Leaf { .. })
    }

    /// The pattern of a composite block, `None` for leaves.
    pub fn pattern(&self) -> Option<Pattern> {
        match &self.kind {
            SoftBlockKind::Composite { pattern, .. } => Some(*pattern),
            SoftBlockKind::Leaf { .. } => None,
        }
    }

    /// Children ids (empty for leaves).
    pub fn children(&self) -> &[SoftBlockId] {
        match &self.kind {
            SoftBlockKind::Composite { children, .. } => children,
            SoftBlockKind::Leaf { .. } => &[],
        }
    }
}

/// The multi-level tree of soft blocks representing one decomposed
/// accelerator (Fig. 2a/2b).
#[derive(Debug, Clone)]
pub struct SoftBlockTree {
    blocks: Vec<SoftBlock>,
    root: SoftBlockId,
}

impl SoftBlockTree {
    /// Creates a tree from an arena of blocks and a root id.
    ///
    /// # Panics
    ///
    /// Panics if the arena is malformed: the root or a child id is out of
    /// range, a block is referenced by two parents, pipeline link widths
    /// have the wrong arity, or some block is unreachable from the root.
    pub fn new(blocks: Vec<SoftBlock>, root: SoftBlockId) -> Self {
        assert!(root.0 < blocks.len(), "root id out of range");
        let mut seen = vec![false; blocks.len()];
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            assert!(!seen[id.0], "block {} has two parents or a cycle", id.0);
            seen[id.0] = true;
            let b = &blocks[id.0];
            if let SoftBlockKind::Composite {
                children,
                link_widths,
                pattern,
            } = &b.kind
            {
                assert!(
                    !children.is_empty(),
                    "composite block {} has no children",
                    id.0
                );
                match pattern {
                    Pattern::Pipeline => assert_eq!(
                        link_widths.len(),
                        children.len() - 1,
                        "pipeline block {} link width arity",
                        id.0
                    ),
                    Pattern::Data => {
                        assert!(
                            link_widths.is_empty(),
                            "data block {} has link widths",
                            id.0
                        )
                    }
                }
                for c in children {
                    assert!(c.0 < blocks.len(), "child id out of range");
                    stack.push(*c);
                }
            }
        }
        assert!(
            seen.iter().all(|&s| s),
            "tree contains blocks unreachable from the root"
        );
        SoftBlockTree { blocks, root }
    }

    /// The root block id.
    pub fn root(&self) -> SoftBlockId {
        self.root
    }

    /// The root block.
    pub fn root_block(&self) -> &SoftBlock {
        &self.blocks[self.root.0]
    }

    /// The block with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn block(&self, id: SoftBlockId) -> &SoftBlock {
        &self.blocks[id.0]
    }

    /// Total number of blocks (leaves and composites).
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the tree is empty (never: a tree has at least its root).
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Number of leaf blocks.
    pub fn leaf_count(&self) -> usize {
        self.blocks.iter().filter(|b| b.is_leaf()).count()
    }

    /// Maximum depth (a lone leaf has depth 1).
    pub fn depth(&self) -> usize {
        fn depth_of(tree: &SoftBlockTree, id: SoftBlockId) -> usize {
            1 + tree
                .block(id)
                .children()
                .iter()
                .map(|&c| depth_of(tree, c))
                .max()
                .unwrap_or(0)
        }
        depth_of(self, self.root)
    }

    /// Iterates over all blocks in id order.
    pub fn iter(&self) -> impl Iterator<Item = &SoftBlock> {
        self.blocks.iter()
    }

    /// Leaf ids in the subtree rooted at `id`, left to right.
    pub fn leaves_under(&self, id: SoftBlockId) -> Vec<SoftBlockId> {
        let mut out = Vec::new();
        let mut stack = vec![id];
        while let Some(b) = stack.pop() {
            let block = self.block(b);
            if block.is_leaf() {
                out.push(b);
            } else {
                // Push in reverse so leaves come out left to right.
                for &c in block.children().iter().rev() {
                    stack.push(c);
                }
            }
        }
        out
    }

    /// Renders the tree in GraphViz dot format: leaves as boxes labelled
    /// with their module, data-parallel nodes as triple octagons, pipeline
    /// nodes as chains of ordered edges. Pipe the output through `dot
    /// -Tsvg` to visualize a decomposition.
    pub fn to_dot(&self) -> String {
        let mut out =
            String::from("digraph softblocks {\n  rankdir=TB;\n  node [fontname=\"monospace\"];\n");
        for b in self.iter() {
            match &b.kind {
                SoftBlockKind::Leaf { module, .. } => {
                    out.push_str(&format!(
                        "  b{} [shape=box, label=\"#{} {}\"];\n",
                        b.id.0, b.id.0, module
                    ));
                }
                SoftBlockKind::Composite {
                    pattern, children, ..
                } => {
                    let shape = match pattern {
                        Pattern::Data => "tripleoctagon",
                        Pattern::Pipeline => "cds",
                    };
                    out.push_str(&format!(
                        "  b{} [shape={shape}, label=\"#{} {pattern} x{}\"];\n",
                        b.id.0,
                        b.id.0,
                        children.len()
                    ));
                    for (i, c) in children.iter().enumerate() {
                        let label = if *pattern == Pattern::Pipeline {
                            format!(" [label=\"{i}\"]")
                        } else {
                            String::new()
                        };
                        out.push_str(&format!("  b{} -> b{}{};\n", b.id.0, c.0, label));
                    }
                }
            }
        }
        out.push_str("}\n");
        out
    }

    /// Renders the tree as an indented outline (for logs and debugging).
    pub fn render(&self) -> String {
        fn render_block(tree: &SoftBlockTree, id: SoftBlockId, indent: usize, out: &mut String) {
            let b = tree.block(id);
            let pad = "  ".repeat(indent);
            match &b.kind {
                SoftBlockKind::Leaf { path, module, .. } => {
                    out.push_str(&format!("{pad}leaf #{} {module} ({path})\n", id.0));
                }
                SoftBlockKind::Composite {
                    pattern, children, ..
                } => {
                    out.push_str(&format!(
                        "{pad}{pattern} #{} [{} children]\n",
                        id.0,
                        children.len()
                    ));
                    for &c in children {
                        render_block(tree, c, indent + 1, out);
                    }
                }
            }
        }
        let mut out = String::new();
        render_block(self, self.root, 0, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(id: usize, module: &str) -> SoftBlock {
        SoftBlock {
            id: SoftBlockId(id),
            kind: SoftBlockKind::Leaf {
                path: format!("u{id}"),
                module: module.to_string(),
                behavior: None,
            },
            resources: ResourceVec {
                luts: 100,
                ffs: 100,
                bram_kb: 0,
                uram_kb: 0,
                dsps: 1,
            },
            content_hash: 42,
        }
    }

    fn sample_tree() -> SoftBlockTree {
        // pipeline(leaf0, data(leaf2, leaf3))
        let blocks = vec![
            leaf(0, "conv"),
            SoftBlock {
                id: SoftBlockId(1),
                kind: SoftBlockKind::Composite {
                    pattern: Pattern::Data,
                    children: vec![SoftBlockId(2), SoftBlockId(3)],
                    link_widths: vec![],
                },
                resources: ResourceVec::ZERO,
                content_hash: 7,
            },
            leaf(2, "tile"),
            leaf(3, "tile"),
            SoftBlock {
                id: SoftBlockId(4),
                kind: SoftBlockKind::Composite {
                    pattern: Pattern::Pipeline,
                    children: vec![SoftBlockId(0), SoftBlockId(1)],
                    link_widths: vec![64],
                },
                resources: ResourceVec::ZERO,
                content_hash: 8,
            },
        ];
        SoftBlockTree::new(blocks, SoftBlockId(4))
    }

    #[test]
    fn structure_queries() {
        let t = sample_tree();
        assert_eq!(t.len(), 5);
        assert_eq!(t.leaf_count(), 3);
        assert_eq!(t.depth(), 3);
        assert_eq!(t.root_block().pattern(), Some(Pattern::Pipeline));
        let leaves = t.leaves_under(t.root());
        assert_eq!(leaves, vec![SoftBlockId(0), SoftBlockId(2), SoftBlockId(3)]);
    }

    #[test]
    fn render_is_readable() {
        let r = sample_tree().render();
        assert!(r.contains("pipeline #4"));
        assert!(r.contains("data #1"));
        assert!(r.contains("leaf #2 tile"));
    }

    #[test]
    fn dot_export_is_well_formed() {
        let dot = sample_tree().to_dot();
        assert!(dot.starts_with("digraph softblocks {"));
        assert!(dot.trim_end().ends_with('}'));
        // One node statement per block, one edge per parent-child pair.
        assert_eq!(dot.matches("shape=").count(), 5);
        assert_eq!(dot.matches(" -> ").count(), 4);
        // Pipeline edges are ordered.
        assert!(dot.contains("[label=\"0\"]"));
        assert!(dot.contains("tripleoctagon"));
    }

    #[test]
    #[should_panic(expected = "two parents")]
    fn shared_child_rejected() {
        let blocks = vec![
            leaf(0, "a"),
            SoftBlock {
                id: SoftBlockId(1),
                kind: SoftBlockKind::Composite {
                    pattern: Pattern::Data,
                    children: vec![SoftBlockId(0), SoftBlockId(0)],
                    link_widths: vec![],
                },
                resources: ResourceVec::ZERO,
                content_hash: 0,
            },
        ];
        SoftBlockTree::new(blocks, SoftBlockId(1));
    }

    #[test]
    #[should_panic(expected = "unreachable")]
    fn orphan_block_rejected() {
        let blocks = vec![leaf(0, "a"), leaf(1, "b")];
        SoftBlockTree::new(blocks, SoftBlockId(0));
    }

    #[test]
    #[should_panic(expected = "link width arity")]
    fn pipeline_arity_enforced() {
        let blocks = vec![
            leaf(0, "a"),
            leaf(1, "b"),
            SoftBlock {
                id: SoftBlockId(2),
                kind: SoftBlockKind::Composite {
                    pattern: Pattern::Pipeline,
                    children: vec![SoftBlockId(0), SoftBlockId(1)],
                    link_widths: vec![],
                },
                resources: ResourceVec::ZERO,
                content_hash: 0,
            },
        ];
        SoftBlockTree::new(blocks, SoftBlockId(2));
    }
}

//! The decomposing tool (Section 2.2.1).
//!
//! Lowers an AS ISA-based accelerator's RTL design onto the soft-block
//! abstraction using the bottom-up flow the paper automates:
//!
//! 1. **Build block graph** — flatten the hierarchy, extract every basic
//!    module of the data path into a leaf soft block, and connect blocks by
//!    the nets between them.
//! 2. **Extract intra-block data parallelism** — split leaves whose
//!    internal logic is data-parallel (the paper uses combinational
//!    equivalence checking; here the accelerator generator registers the
//!    lane multiplicity of each behavior, e.g. the 16 identical dot-product
//!    units inside `dpu_array`).
//! 3. **Identify inter-block data parallelism** — group interchangeable
//!    sibling blocks (equal content hash, same external neighbors) under a
//!    data-parallel parent.
//! 4. **Identify pipeline parallelism** — group chains of blocks under a
//!    pipeline parent, recording each link's bit width for the partitioner.
//! 5. **Iterate** — repeat 3 and 4 until no block can be merged.
//!
//! The control path is separated first (the designer marks its module name,
//! as the paper requires), and the case study additionally moves the small
//! FP16-to-BFP converter and vector register file into the control soft
//! block so the data-path root exposes pure data parallelism (Section 3).

use std::collections::{BTreeMap, HashMap};

use vfpga_fabric::ResourceVec;
use vfpga_rtl::{Design, FlatNode, NodeId};

use crate::softblock::{Pattern, SoftBlock, SoftBlockId, SoftBlockKind, SoftBlockTree};
use crate::CoreError;

/// Options controlling the decomposition.
#[derive(Debug, Clone)]
pub struct DecomposeOptions {
    /// Name of the control-path module, marked by the system designer
    /// (the paper's tools cannot infer it from RTL alone).
    pub control_module: String,
    /// Basic-module names moved from the data path into the control soft
    /// block (Section 3 moves the FP16-to-BFP converter and the vector
    /// register file).
    pub move_to_control: Vec<String>,
    /// Intra-block data parallelism: behavior tag to lane count (step 2).
    pub intra_parallelism: HashMap<String, usize>,
}

impl DecomposeOptions {
    /// Options for a design whose control path lives in `control_module`,
    /// with nothing moved and no intra-block parallelism registered.
    pub fn new(control_module: impl Into<String>) -> Self {
        DecomposeOptions {
            control_module: control_module.into(),
            move_to_control: Vec::new(),
            intra_parallelism: HashMap::new(),
        }
    }
}

/// Statistics recorded by the decomposer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecomposeStats {
    /// Leaf soft blocks in the data-path tree.
    pub data_leaves: usize,
    /// Basic modules assigned to the control soft block.
    pub control_leaves: usize,
    /// Data-parallel groups created.
    pub data_groups: usize,
    /// Pipeline groups created.
    pub pipeline_groups: usize,
    /// Iterations of steps 3-4 until fixpoint.
    pub rounds: usize,
}

/// The result of decomposing one accelerator.
#[derive(Debug, Clone)]
pub struct Decomposition {
    /// The data-path soft-block tree.
    pub tree: SoftBlockTree,
    /// Resources of the control soft block (control path plus any modules
    /// moved into it).
    pub control_resources: ResourceVec,
    /// Statistics of the run.
    pub stats: DecomposeStats,
}

impl Decomposition {
    /// Total estimated resources (control + data path).
    pub fn total_resources(&self) -> ResourceVec {
        self.control_resources + self.tree.root_block().resources
    }
}

/// Decomposes the accelerator rooted at `top` into a soft-block tree.
///
/// `leaf_resources` estimates the spatial resources of one basic-module
/// instance (the accelerator generator provides a calibrated estimator).
///
/// # Errors
///
/// Returns [`CoreError::MissingControlModule`] if `top` does not instantiate
/// the marked control module, [`CoreError::EmptyDataPath`] if nothing
/// remains in the data path, or an [`CoreError::Rtl`] error if the design
/// is malformed.
/// [`decompose`] with span tracing: the offline lowering is recorded as a
/// zero-duration `decompose` span (compilation happens outside sim time)
/// carrying the top module name and, on success, the
/// [`DecomposeStats`] — leaf/group counts and fixpoint rounds — so trace
/// artifacts show what the compile flow produced for each instance.
///
/// # Errors
///
/// Exactly as [`decompose`].
pub fn decompose_traced(
    design: &Design,
    top: &str,
    options: &DecomposeOptions,
    leaf_resources: &dyn Fn(&FlatNode) -> ResourceVec,
    ctx: Option<vfpga_sim::SpanCtx<'_>>,
) -> Result<Decomposition, CoreError> {
    let result = decompose(design, top, options, leaf_resources);
    if let Some(ctx) = ctx {
        let span = ctx.spans.begin("decompose", ctx.trace, ctx.parent, ctx.at);
        ctx.spans.attr(span, "top", top.to_string());
        match &result {
            Ok(d) => {
                ctx.spans.attr(span, "outcome", "ok");
                ctx.spans.attr(span, "data_leaves", d.stats.data_leaves);
                ctx.spans
                    .attr(span, "control_leaves", d.stats.control_leaves);
                ctx.spans.attr(span, "data_groups", d.stats.data_groups);
                ctx.spans
                    .attr(span, "pipeline_groups", d.stats.pipeline_groups);
                ctx.spans.attr(span, "rounds", d.stats.rounds);
            }
            Err(e) => {
                ctx.spans.attr(span, "outcome", "error");
                ctx.spans.attr(span, "error", e.to_string());
            }
        }
        ctx.spans.end(span, ctx.at);
    }
    result
}

pub fn decompose(
    design: &Design,
    top: &str,
    options: &DecomposeOptions,
    leaf_resources: &dyn Fn(&FlatNode) -> ResourceVec,
) -> Result<Decomposition, CoreError> {
    // Locate the control instance at the top level.
    let top_module = design
        .module(top)
        .ok_or_else(|| CoreError::Rtl(vfpga_rtl::RtlError::UnknownModule(top.to_string())))?;
    let ctrl_instance = top_module
        .instances
        .iter()
        .find(|i| i.module == options.control_module)
        .ok_or_else(|| CoreError::MissingControlModule(options.control_module.clone()))?
        .name
        .clone();

    // Step 1: build the block graph.
    let graph = design.flatten(top)?;
    let mut control_resources = ResourceVec::ZERO;
    let mut control_leaves = 0usize;
    let mut data_nodes: Vec<NodeId> = Vec::new();
    for (id, node) in graph.nodes() {
        let in_ctrl =
            node.path == ctrl_instance || node.path.starts_with(&format!("{ctrl_instance}/"));
        let moved = options.move_to_control.iter().any(|m| m == &node.module);
        if in_ctrl || moved {
            control_resources += leaf_resources(node);
            control_leaves += 1;
        } else {
            data_nodes.push(id);
        }
    }
    if data_nodes.is_empty() {
        return Err(CoreError::EmptyDataPath);
    }

    let mut arena: Vec<SoftBlock> = Vec::new();
    let mut stats = DecomposeStats {
        control_leaves,
        ..DecomposeStats::default()
    };

    // Working graph nodes: (soft block id, content hash, resources).
    let mut work: Vec<WorkNode> = Vec::new();
    let index_of: HashMap<NodeId, usize> = data_nodes
        .iter()
        .enumerate()
        .map(|(i, &n)| (n, i))
        .collect();

    for &node_id in &data_nodes {
        let node = graph.node(node_id).expect("node from iteration");
        let res = leaf_resources(node);
        let leaf_hash = hash_leaf(node);
        let lanes = node
            .behavior
            .as_deref()
            .and_then(|b| options.intra_parallelism.get(b).copied())
            .unwrap_or(1);
        let block_id = if lanes > 1 {
            // Step 2: split the leaf into `lanes` identical lane blocks
            // under a data-parallel parent.
            let lane_res = res.div_ceil(lanes as u64);
            let mut lane_hash_src = String::new();
            if let Some(b) = &node.behavior {
                lane_hash_src.push_str(b);
            }
            lane_hash_src.push_str("/lane");
            let lane_hash = hash_str(&lane_hash_src);
            let children: Vec<SoftBlockId> = (0..lanes)
                .map(|l| {
                    let id = SoftBlockId(arena.len());
                    arena.push(SoftBlock {
                        id,
                        kind: SoftBlockKind::Leaf {
                            path: format!("{}/lane{l}", node.path),
                            module: node.module.clone(),
                            behavior: node.behavior.as_ref().map(|b| format!("{b}_lane")),
                        },
                        resources: lane_res,
                        content_hash: lane_hash,
                    });
                    id
                })
                .collect();
            stats.data_leaves += lanes;
            stats.data_groups += 1;
            let id = SoftBlockId(arena.len());
            arena.push(SoftBlock {
                id,
                kind: SoftBlockKind::Composite {
                    pattern: Pattern::Data,
                    children,
                    link_widths: vec![],
                },
                resources: res,
                content_hash: hash_composite("data", &[lane_hash; 1], lanes as u64),
            });
            id
        } else {
            stats.data_leaves += 1;
            let id = SoftBlockId(arena.len());
            arena.push(SoftBlock {
                id,
                kind: SoftBlockKind::Leaf {
                    path: node.path.clone(),
                    module: node.module.clone(),
                    behavior: node.behavior.clone(),
                },
                resources: res,
                content_hash: leaf_hash,
            });
            id
        };
        work.push(WorkNode {
            block: block_id,
            hash: arena[block_id.0].content_hash,
            alive: true,
        });
    }

    // Directed edges between work nodes (by work index), keyed
    // `(driver, reader)`, weights = connecting bits.
    let mut edges: BTreeMap<(usize, usize), u64> = BTreeMap::new();
    for e in graph.edges() {
        if let (Some(&a), Some(&b)) = (index_of.get(&e.from), index_of.get(&e.to)) {
            *edges.entry((a, b)).or_insert(0) += e.width;
        }
    }

    // Steps 3-5: iterate grouping until fixpoint. When neither strict
    // data-parallel grouping nor pipeline grouping makes progress, fall
    // back to relaxed (matched-lane) grouping, which resolves e.g. the
    // two-lane farm whose block graph is one big cycle.
    loop {
        stats.rounds += 1;
        let merged_data = group_data_parallel(&mut work, &mut edges, &mut arena, &mut stats);
        let merged_pipe = group_pipelines(&mut work, &mut edges, &mut arena, &mut stats);
        if !merged_data && !merged_pipe {
            let merged_relaxed =
                group_data_parallel_relaxed(&mut work, &mut edges, &mut arena, &mut stats);
            if !merged_relaxed {
                break;
            }
        }
    }

    // Collapse to a single root.
    let alive: Vec<usize> = (0..work.len()).filter(|&i| work[i].alive).collect();
    let root = if alive.len() == 1 {
        work[alive[0]].block
    } else {
        // Irregular residue: wrap the remaining blocks as a pipeline in
        // work order, using the actual inter-block widths where present.
        let children: Vec<SoftBlockId> = alive.iter().map(|&i| work[i].block).collect();
        let link_widths: Vec<u64> = alive
            .windows(2)
            .map(|w| {
                edges.get(&(w[0], w[1])).copied().unwrap_or(0)
                    + edges.get(&(w[1], w[0])).copied().unwrap_or(0)
            })
            .collect();
        let resources = children.iter().map(|c| arena[c.0].resources).sum();
        let hashes: Vec<u64> = children.iter().map(|c| arena[c.0].content_hash).collect();
        let id = SoftBlockId(arena.len());
        arena.push(SoftBlock {
            id,
            kind: SoftBlockKind::Composite {
                pattern: Pattern::Pipeline,
                children,
                link_widths,
            },
            resources,
            content_hash: hash_composite("pipe", &hashes, 0),
        });
        id
    };

    Ok(Decomposition {
        tree: SoftBlockTree::new(arena, root),
        control_resources,
        stats,
    })
}

struct WorkNode {
    block: SoftBlockId,
    hash: u64,
    alive: bool,
}

/// Neighbors of `i` as `(neighbor, width, outgoing)` triples; parallel
/// in/out edges to the same neighbor appear as separate entries.
fn neighbors_of(edges: &BTreeMap<(usize, usize), u64>, i: usize) -> Vec<(usize, u64, bool)> {
    edges
        .iter()
        .filter_map(|(&(a, b), &w)| {
            if a == i {
                Some((b, w, true))
            } else if b == i {
                Some((a, w, false))
            } else {
                None
            }
        })
        .collect()
}

/// Undirected neighbor set of `i`.
fn undirected_neighbors(edges: &BTreeMap<(usize, usize), u64>, i: usize) -> Vec<usize> {
    let mut out: Vec<usize> = neighbors_of(edges, i)
        .into_iter()
        .map(|(n, _, _)| n)
        .collect();
    out.sort_unstable();
    out.dedup();
    out
}

/// Step 3: merge interchangeable siblings under data-parallel parents.
fn group_data_parallel(
    work: &mut Vec<WorkNode>,
    edges: &mut BTreeMap<(usize, usize), u64>,
    arena: &mut Vec<SoftBlock>,
    stats: &mut DecomposeStats,
) -> bool {
    // Group alive nodes by content hash.
    let mut by_hash: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
    for (i, n) in work.iter().enumerate() {
        if n.alive {
            by_hash.entry(n.hash).or_default().push(i);
        }
    }
    let mut merged_any = false;
    for (_, members) in by_hash {
        if members.len() < 2 {
            continue;
        }
        // Sub-partition by external connection signature: the sorted list
        // of (neighbor, width, direction) triples over neighbors outside
        // the hash group. Direction matters: an identical block feeding a
        // consumer is not interchangeable with one reading from it.
        let member_set: std::collections::HashSet<usize> = members.iter().copied().collect();
        let mut by_sig: BTreeMap<Vec<(usize, u64, bool)>, Vec<usize>> = BTreeMap::new();
        for &m in &members {
            let mut sig: Vec<(usize, u64, bool)> = neighbors_of(edges, m)
                .into_iter()
                .filter(|(n, _, _)| !member_set.contains(n))
                .collect();
            sig.sort_unstable();
            by_sig.entry(sig).or_default().push(m);
        }
        for (_, group) in by_sig {
            if group.len() < 2 {
                continue;
            }
            merged_any = true;
            stats.data_groups += 1;
            let children: Vec<SoftBlockId> = group.iter().map(|&i| work[i].block).collect();
            let resources: ResourceVec = children.iter().map(|c| arena[c.0].resources).sum();
            let child_hash = arena[children[0].0].content_hash;
            let id = SoftBlockId(arena.len());
            arena.push(SoftBlock {
                id,
                kind: SoftBlockKind::Composite {
                    pattern: Pattern::Data,
                    children,
                    link_widths: vec![],
                },
                resources,
                content_hash: hash_composite("data", &[child_hash], group.len() as u64),
            });
            // Replace the group with one new work node.
            let new_idx = work.len();
            work.push(WorkNode {
                block: id,
                hash: arena[id.0].content_hash,
                alive: true,
            });
            for &g in &group {
                work[g].alive = false;
            }
            // Rewire: external neighbors get summed widths; intra-group
            // edges vanish (artifacts of shared broadcast nets).
            let group_set: std::collections::HashSet<usize> = group.iter().copied().collect();
            let mut new_out: HashMap<usize, u64> = HashMap::new();
            let mut new_in: HashMap<usize, u64> = HashMap::new();
            edges.retain(|&(a, b), w| {
                let a_in = group_set.contains(&a);
                let b_in = group_set.contains(&b);
                if a_in && b_in {
                    false
                } else if a_in {
                    *new_out.entry(b).or_insert(0) += *w;
                    false
                } else if b_in {
                    *new_in.entry(a).or_insert(0) += *w;
                    false
                } else {
                    true
                }
            });
            for (n, w) in new_out {
                *edges.entry((new_idx, n)).or_insert(0) += w;
            }
            for (n, w) in new_in {
                *edges.entry((n, new_idx)).or_insert(0) += w;
            }
        }
    }
    merged_any
}

/// Relaxed data-parallel grouping (fallback): merge equal-hash nodes whose
/// neighborhoods match *by equivalence class* rather than by identity.
/// Each neighbor class must either be fully shared (every member connects
/// to the same node, e.g. a broadcast hub) or fully disjoint with equal
/// counts (each member owns its private downstream node, a matched lane).
/// This is what resolves farms whose block graph is one large cycle, where
/// neither strict grouping nor chain detection can start.
fn group_data_parallel_relaxed(
    work: &mut Vec<WorkNode>,
    edges: &mut BTreeMap<(usize, usize), u64>,
    arena: &mut Vec<SoftBlock>,
    stats: &mut DecomposeStats,
) -> bool {
    let mut by_hash: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
    for (i, n) in work.iter().enumerate() {
        if n.alive {
            by_hash.entry(n.hash).or_default().push(i);
        }
    }
    for (_, members) in by_hash {
        if members.len() < 2 {
            continue;
        }
        let member_set: std::collections::HashSet<usize> = members.iter().copied().collect();
        // Per member: neighbors outside the group, keyed by
        // (neighbor hash, direction), with the concrete neighbor indices.
        type NeighborClasses = BTreeMap<(u64, bool), Vec<(usize, u64)>>;
        let mut per_member: Vec<NeighborClasses> = Vec::new();
        for &m in &members {
            let mut classes: NeighborClasses = BTreeMap::new();
            for (n, w, out) in neighbors_of(edges, m) {
                if !member_set.contains(&n) {
                    classes.entry((work[n].hash, out)).or_default().push((n, w));
                }
            }
            per_member.push(classes);
        }
        // All members must see the same classes with the same multiplicity
        // and widths.
        let keys: Vec<(u64, bool)> = per_member[0].keys().copied().collect();
        let consistent = per_member.iter().all(|c| {
            c.keys().copied().collect::<Vec<_>>() == keys
                && keys.iter().all(|k| c[k].len() == per_member[0][k].len())
        });
        if !consistent {
            continue;
        }
        // Each class must be fully shared or fully disjoint.
        let mut eligible = true;
        for k in &keys {
            let mut all: Vec<usize> = Vec::new();
            for c in &per_member {
                all.extend(c[k].iter().map(|&(n, _)| n));
            }
            let mut distinct = all.clone();
            distinct.sort_unstable();
            distinct.dedup();
            let per = per_member[0][k].len();
            let shared = distinct.len() == per;
            let disjoint = distinct.len() == per * members.len();
            if !(shared || disjoint) {
                eligible = false;
                break;
            }
        }
        if !eligible {
            continue;
        }
        // Merge exactly like the strict step.
        stats.data_groups += 1;
        let children: Vec<SoftBlockId> = members.iter().map(|&i| work[i].block).collect();
        let resources: ResourceVec = children.iter().map(|c| arena[c.0].resources).sum();
        let child_hash = arena[children[0].0].content_hash;
        let id = SoftBlockId(arena.len());
        arena.push(SoftBlock {
            id,
            kind: SoftBlockKind::Composite {
                pattern: Pattern::Data,
                children,
                link_widths: vec![],
            },
            resources,
            content_hash: hash_composite("data", &[child_hash], members.len() as u64),
        });
        let new_idx = work.len();
        work.push(WorkNode {
            block: id,
            hash: arena[id.0].content_hash,
            alive: true,
        });
        for &g in &members {
            work[g].alive = false;
        }
        let mut new_out: HashMap<usize, u64> = HashMap::new();
        let mut new_in: HashMap<usize, u64> = HashMap::new();
        edges.retain(|&(a, b), w| {
            let a_in = member_set.contains(&a);
            let b_in = member_set.contains(&b);
            if a_in && b_in {
                false
            } else if a_in {
                *new_out.entry(b).or_insert(0) += *w;
                false
            } else if b_in {
                *new_in.entry(a).or_insert(0) += *w;
                false
            } else {
                true
            }
        });
        for (n, w) in new_out {
            *edges.entry((new_idx, n)).or_insert(0) += w;
        }
        for (n, w) in new_in {
            *edges.entry((n, new_idx)).or_insert(0) += w;
        }
        // One merge per call: the strict steps re-run first.
        return true;
    }
    false
}

/// Step 4: merge chains under pipeline parents.
fn group_pipelines(
    work: &mut Vec<WorkNode>,
    edges: &mut BTreeMap<(usize, usize), u64>,
    arena: &mut Vec<SoftBlock>,
    stats: &mut DecomposeStats,
) -> bool {
    let n = work.len();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for i in 0..n {
        if work[i].alive {
            adj[i] = undirected_neighbors(edges, i);
        }
    }
    let degree: Vec<usize> = adj.iter().map(Vec::len).collect();

    // A node can sit inside a chain iff it has one or two neighbors; branch
    // nodes (degree >= 3, e.g. a broadcast source feeding every lane) stay
    // outside so identical lanes remain identical.
    let pathable: Vec<bool> = (0..n)
        .map(|i| work[i].alive && (1..=2).contains(&degree[i]))
        .collect();
    let path_adj: Vec<Vec<usize>> = (0..n)
        .map(|i| {
            if pathable[i] {
                adj[i].iter().copied().filter(|&j| pathable[j]).collect()
            } else {
                Vec::new()
            }
        })
        .collect();

    let mut visited = vec![false; n];
    let mut chains: Vec<Vec<usize>> = Vec::new();
    for start in 0..n {
        if !pathable[start] || visited[start] {
            continue;
        }
        // Collect the connected component of pathable nodes.
        let mut component = vec![start];
        visited[start] = true;
        let mut head = 0;
        while head < component.len() {
            let cur = component[head];
            head += 1;
            for &next in &path_adj[cur] {
                if !visited[next] {
                    visited[next] = true;
                    component.push(next);
                }
            }
        }
        // A component where every node has two pathable neighbors is a
        // cycle; skip it (no linear pipeline exists).
        let Some(&endpoint) = component.iter().find(|&&i| path_adj[i].len() <= 1) else {
            continue;
        };
        // Walk the path from the endpoint.
        let mut chain = vec![endpoint];
        let mut prev = usize::MAX;
        let mut cur = endpoint;
        while let Some(&next) = path_adj[cur].iter().find(|&&x| x != prev) {
            prev = cur;
            cur = next;
            chain.push(cur);
        }
        if chain.len() >= 2 {
            chains.push(chain);
        }
    }

    let mut merged_any = false;
    for mut chain in chains {
        merged_any = true;
        stats.pipeline_groups += 1;
        // Orient the chain along the dataflow direction: count forward vs
        // backward directed edges and flip if the flow runs the other way.
        let forward: usize = chain
            .windows(2)
            .filter(|w| edges.contains_key(&(w[0], w[1])))
            .count();
        let backward: usize = chain
            .windows(2)
            .filter(|w| edges.contains_key(&(w[1], w[0])))
            .count();
        if backward > forward {
            chain.reverse();
        }
        let children: Vec<SoftBlockId> = chain.iter().map(|&i| work[i].block).collect();
        let link_widths: Vec<u64> = chain
            .windows(2)
            .map(|w| {
                edges.get(&(w[0], w[1])).copied().unwrap_or(0)
                    + edges.get(&(w[1], w[0])).copied().unwrap_or(0)
            })
            .collect();
        let resources: ResourceVec = children.iter().map(|c| arena[c.0].resources).sum();
        let hashes: Vec<u64> = children.iter().map(|c| arena[c.0].content_hash).collect();
        let id = SoftBlockId(arena.len());
        arena.push(SoftBlock {
            id,
            kind: SoftBlockKind::Composite {
                pattern: Pattern::Pipeline,
                children,
                link_widths,
            },
            resources,
            content_hash: hash_composite("pipe", &hashes, 0),
        });
        let new_idx = work.len();
        work.push(WorkNode {
            block: id,
            hash: arena[id.0].content_hash,
            alive: true,
        });
        let chain_set: std::collections::HashSet<usize> = chain.iter().copied().collect();
        let mut new_out: HashMap<usize, u64> = HashMap::new();
        let mut new_in: HashMap<usize, u64> = HashMap::new();
        edges.retain(|&(a, b), w| {
            let a_in = chain_set.contains(&a);
            let b_in = chain_set.contains(&b);
            if a_in && b_in {
                false
            } else if a_in {
                *new_out.entry(b).or_insert(0) += *w;
                false
            } else if b_in {
                *new_in.entry(a).or_insert(0) += *w;
                false
            } else {
                true
            }
        });
        for &c in &chain {
            work[c].alive = false;
        }
        for (n2, w) in new_out {
            *edges.entry((new_idx, n2)).or_insert(0) += w;
        }
        for (n2, w) in new_in {
            *edges.entry((n2, new_idx)).or_insert(0) += w;
        }
    }
    merged_any
}

fn hash_str(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn hash_leaf(node: &FlatNode) -> u64 {
    match &node.behavior {
        Some(b) => hash_str(&format!("leaf:{b}")),
        None => hash_str(&format!("leaf-module:{}", node.module)),
    }
}

fn hash_composite(kind: &str, child_hashes: &[u64], count: u64) -> u64 {
    let mut h = hash_str(kind);
    for &c in child_hashes {
        h ^= c;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h ^= count;
    h.wrapping_mul(0x100_0000_01b3)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vfpga_rtl::parse;

    fn unit_resources(_n: &FlatNode) -> ResourceVec {
        ResourceVec {
            luts: 1000,
            ffs: 1000,
            bram_kb: 10,
            uram_kb: 0,
            dsps: 4,
        }
    }

    /// A miniature accelerator: ctrl + datapath with 3 identical two-stage
    /// lanes between a splitter and a joiner.
    const MINI: &str = r#"
        module ctl_seq #(behavior="seq") (input [63:0] i, output [63:0] o);
        endmodule
        module ctrl (input [63:0] instr, output [63:0] ctl);
          ctl_seq u (.i(instr), .o(ctl));
        endmodule

        module stage_a #(behavior="sa") (input [31:0] x, output [31:0] y);
        endmodule
        module stage_b #(behavior="sb") (input [31:0] x, output [15:0] y);
        endmodule
        module lane (input [31:0] x, output [15:0] y);
          wire [31:0] t;
          stage_a a (.x(x), .y(t));
          stage_b b (.x(t), .y(y));
        endmodule
        module split #(behavior="split") (input [63:0] x, output [31:0] y);
        endmodule
        module join #(behavior="join") (input [15:0] x, output [63:0] y);
        endmodule
        module datapath (input [63:0] din, input [63:0] ctl, output [63:0] dout);
          wire [31:0] xs;
          wire [15:0] ys;
          split s (.x(din), .y(xs));
          lane l0 (.x(xs), .y(ys));
          lane l1 (.x(xs), .y(ys));
          lane l2 (.x(xs), .y(ys));
          join j (.x(ys), .y(dout));
        endmodule

        module top (input [63:0] instr, input [63:0] din, output [63:0] dout);
          wire [63:0] ctl;
          ctrl c (.instr(instr), .ctl(ctl));
          datapath d (.din(din), .ctl(ctl), .dout(dout));
        endmodule
    "#;

    #[test]
    fn traced_decompose_records_stats_and_matches_untraced() {
        use vfpga_sim::{SimTime, SpanCtx, SpanTracer, TraceId};

        let design = parse(MINI).unwrap();
        let opts = DecomposeOptions::new("ctrl");
        let mut spans = SpanTracer::new();
        let d = decompose_traced(
            &design,
            "top",
            &opts,
            &unit_resources,
            Some(SpanCtx {
                spans: &mut spans,
                trace: TraceId::NONE,
                parent: None,
                at: SimTime::ZERO,
            }),
        )
        .unwrap();
        let plain = decompose(&design, "top", &opts, &unit_resources).unwrap();
        assert_eq!(d.stats, plain.stats, "tracing must not change the result");
        let span = spans.span(vfpga_sim::SpanId(0));
        assert_eq!(span.name, "decompose");
        assert!(span.attr_is("outcome", "ok"));
        assert!(matches!(
            span.attr("data_leaves"),
            Some(vfpga_sim::SpanValue::U64(8))
        ));
        // Partition nests under a caller-provided parent.
        let root = spans.begin("compile", TraceId::NONE, None, SimTime::ZERO);
        let tree = crate::partition_traced(
            &d.tree,
            2,
            Some(SpanCtx {
                spans: &mut spans,
                trace: TraceId::NONE,
                parent: Some(root),
                at: SimTime::ZERO,
            }),
        );
        spans.end(root, SimTime::ZERO);
        assert_eq!(tree.max_units(), crate::partition(&d.tree, 2).max_units());
        let pspan = spans
            .spans()
            .iter()
            .find(|s| s.name == "partition")
            .unwrap();
        assert_eq!(pspan.parent, Some(root));
        assert!(matches!(
            pspan.attr("max_units"),
            Some(vfpga_sim::SpanValue::U64(n)) if *n as usize == tree.max_units()
        ));
        // Errors still trace (and still error).
        let mut spans2 = SpanTracer::new();
        assert!(decompose_traced(
            &design,
            "nope",
            &opts,
            &unit_resources,
            Some(SpanCtx {
                spans: &mut spans2,
                trace: TraceId::NONE,
                parent: None,
                at: SimTime::ZERO,
            }),
        )
        .is_err());
        assert!(spans2
            .span(vfpga_sim::SpanId(0))
            .attr_is("outcome", "error"));
    }

    #[test]
    fn mini_accelerator_decomposes_to_pipeline_of_data() {
        let design = parse(MINI).unwrap();
        let opts = DecomposeOptions::new("ctrl");
        let d = decompose(&design, "top", &opts, &unit_resources).unwrap();
        // Control: the one seq leaf.
        assert_eq!(d.stats.control_leaves, 1);
        // Data leaves: split + 3*2 + join = 8.
        assert_eq!(d.stats.data_leaves, 8);
        assert_eq!(d.tree.leaf_count(), 8);
        // Root: pipeline [split, data[3 x pipeline(a,b)], join].
        let root = d.tree.root_block();
        assert_eq!(root.pattern(), Some(Pattern::Pipeline));
        assert_eq!(root.children().len(), 3);
        let mid = d.tree.block(root.children()[1]);
        assert_eq!(mid.pattern(), Some(Pattern::Data));
        assert_eq!(mid.children().len(), 3);
        let lane = d.tree.block(mid.children()[0]);
        assert_eq!(lane.pattern(), Some(Pattern::Pipeline));
        assert_eq!(lane.children().len(), 2);
    }

    #[test]
    fn moving_endpoints_to_control_exposes_data_root() {
        let design = parse(MINI).unwrap();
        let mut opts = DecomposeOptions::new("ctrl");
        opts.move_to_control = vec!["split".into(), "join".into()];
        let d = decompose(&design, "top", &opts, &unit_resources).unwrap();
        assert_eq!(d.stats.control_leaves, 3);
        assert_eq!(d.tree.leaf_count(), 6);
        let root = d.tree.root_block();
        assert_eq!(root.pattern(), Some(Pattern::Data));
        assert_eq!(root.children().len(), 3);
    }

    #[test]
    fn intra_block_parallelism_splits_leaves() {
        let design = parse(MINI).unwrap();
        let mut opts = DecomposeOptions::new("ctrl");
        opts.intra_parallelism.insert("sa".into(), 4);
        let d = decompose(&design, "top", &opts, &unit_resources).unwrap();
        // Each stage_a leaf becomes 4 lane leaves: 1 + 3*(4+1) + 1 = 17.
        assert_eq!(d.tree.leaf_count(), 17);
        // Lane resources divide.
        let lanes: Vec<_> = d
            .tree
            .iter()
            .filter(|b| matches!(&b.kind, SoftBlockKind::Leaf { behavior: Some(x), .. } if x == "sa_lane"))
            .collect();
        assert_eq!(lanes.len(), 12);
        assert_eq!(lanes[0].resources.luts, 250);
    }

    #[test]
    fn resources_accumulate_up_the_tree() {
        let design = parse(MINI).unwrap();
        let opts = DecomposeOptions::new("ctrl");
        let d = decompose(&design, "top", &opts, &unit_resources).unwrap();
        // Root resources = 8 leaves x 1000 LUTs.
        assert_eq!(d.tree.root_block().resources.luts, 8000);
        assert_eq!(d.control_resources.luts, 1000);
        assert_eq!(d.total_resources().luts, 9000);
    }

    #[test]
    fn pipeline_link_widths_recorded() {
        let design = parse(MINI).unwrap();
        let opts = DecomposeOptions::new("ctrl");
        let d = decompose(&design, "top", &opts, &unit_resources).unwrap();
        // Inside a lane: a->b link is 32 bits.
        let root = d.tree.root_block();
        let mid = d.tree.block(root.children()[1]);
        let lane = d.tree.block(mid.children()[0]);
        match &lane.kind {
            SoftBlockKind::Composite { link_widths, .. } => assert_eq!(link_widths, &[32]),
            _ => panic!("expected composite"),
        }
    }

    #[test]
    fn missing_control_module_reported() {
        let design = parse(MINI).unwrap();
        let opts = DecomposeOptions::new("nonexistent");
        let err = decompose(&design, "top", &opts, &unit_resources).unwrap_err();
        assert!(matches!(err, CoreError::MissingControlModule(_)));
    }

    #[test]
    fn identical_blocks_with_different_neighbors_not_grouped() {
        // Two `sa` stages in different pipeline positions must not merge.
        let src = r#"
            module c #(behavior="seq") (input i, output o);
            endmodule
            module ctrl (input instr, output ctl);
              c u (.i(instr), .o(ctl));
            endmodule
            module sa #(behavior="sa") (input [31:0] x, output [31:0] y);
            endmodule
            module sb #(behavior="sb") (input [31:0] x, output [31:0] y);
            endmodule
            module datapath (input [31:0] din, input ctl, output [31:0] dout);
              wire [31:0] t1;
              wire [31:0] t2;
              sa first (.x(din), .y(t1));
              sb middle (.x(t1), .y(t2));
              sa last (.x(t2), .y(dout));
            endmodule
            module top (input instr, input [31:0] din, output [31:0] dout);
              wire ctl;
              ctrl cc (.instr(instr), .ctl(ctl));
              datapath d (.din(din), .ctl(ctl), .dout(dout));
            endmodule
        "#;
        let design = parse(src).unwrap();
        let opts = DecomposeOptions::new("ctrl");
        let d = decompose(&design, "top", &opts, &unit_resources).unwrap();
        // The two `sa` leaves sit at different chain positions: the result
        // must be a 3-stage pipeline, not a data group.
        let root = d.tree.root_block();
        assert_eq!(root.pattern(), Some(Pattern::Pipeline));
        assert_eq!(root.children().len(), 3);
        assert_eq!(d.stats.data_groups, 0);
    }
}

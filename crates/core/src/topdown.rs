//! The top-down decomposition flow (Fig. 3b).
//!
//! The paper describes two equivalent ways to lower a data path onto the
//! soft-block abstraction. The *bottom-up* flow ([`crate::decompose`]) is
//! what the automated tool uses ("due to the ease of implementation"); the
//! *top-down* flow starts from the whole data path and recursively splits
//! each soft block by one of the two primitive patterns until every block
//! contains a basic module. This module implements the top-down flow
//! directly over the module hierarchy — useful when the hierarchy already
//! mirrors the parallel structure (as generator-produced designs do) and
//! as a cross-check of the bottom-up tool: on such designs the two flows
//! must produce structurally equivalent trees.
//!
//! A module decomposes as:
//!
//! * a **basic module** -> a leaf soft block;
//! * a module whose child instances are all structurally equivalent
//!   (equal canonical hash) -> a data-parallel block over the recursively
//!   decomposed children;
//! * a module whose child instances form a connection chain -> a pipeline
//!   block over the children in chain order;
//! * anything else -> recursively decomposed children wrapped in a
//!   pipeline block in declaration order (the same irregular-residue rule
//!   the bottom-up flow applies).

use std::collections::HashMap;

use vfpga_fabric::ResourceVec;
use vfpga_rtl::{Design, FlatNode, ModuleDecl, PortDir};

use crate::softblock::{Pattern, SoftBlock, SoftBlockId, SoftBlockKind, SoftBlockTree};
use crate::CoreError;

/// Decomposes the module `top` top-down into a soft-block tree.
///
/// Unlike [`crate::decompose`], this flow keeps the designer's hierarchy:
/// it never regroups across module boundaries, so the result is only as
/// good as the hierarchy. `leaf_resources` estimates each basic module's
/// resources, as in the bottom-up flow.
///
/// # Errors
///
/// Returns [`CoreError::Rtl`] if `top` or any referenced module is
/// unknown.
pub fn decompose_top_down(
    design: &Design,
    top: &str,
    leaf_resources: &dyn Fn(&FlatNode) -> ResourceVec,
) -> Result<SoftBlockTree, CoreError> {
    let mut arena: Vec<SoftBlock> = Vec::new();
    let root = lower(design, top, top, leaf_resources, &mut arena)?;
    Ok(SoftBlockTree::new(arena, root))
}

fn lower(
    design: &Design,
    module_name: &str,
    path: &str,
    leaf_resources: &dyn Fn(&FlatNode) -> ResourceVec,
    arena: &mut Vec<SoftBlock>,
) -> Result<SoftBlockId, CoreError> {
    let module = design
        .module(module_name)
        .ok_or_else(|| CoreError::Rtl(vfpga_rtl::RtlError::UnknownModule(module_name.into())))?;

    if module.is_basic() {
        let node = FlatNode {
            path: path.to_string(),
            module: module.name.clone(),
            behavior: module.behavior.clone(),
        };
        let id = SoftBlockId(arena.len());
        arena.push(SoftBlock {
            id,
            kind: SoftBlockKind::Leaf {
                path: node.path.clone(),
                module: node.module.clone(),
                behavior: node.behavior.clone(),
            },
            resources: leaf_resources(&node),
            content_hash: design.canonical_hash(module_name)?,
        });
        return Ok(id);
    }

    // Recursively lower children first.
    let mut children = Vec::with_capacity(module.instances.len());
    for inst in &module.instances {
        let child_path = format!("{path}/{}", inst.name);
        children.push(lower(
            design,
            &inst.module,
            &child_path,
            leaf_resources,
            arena,
        )?);
    }
    let resources: ResourceVec = children.iter().map(|&c| arena[c.0].resources).sum();

    // Single child: the wrapper adds no structure.
    if children.len() == 1 {
        return Ok(children[0]);
    }

    // Pattern selection on the *instances* of this module.
    let hashes: Result<Vec<u64>, CoreError> = module
        .instances
        .iter()
        .map(|i| design.canonical_hash(&i.module).map_err(CoreError::from))
        .collect();
    let hashes = hashes?;
    let all_equivalent = hashes.windows(2).all(|w| w[0] == w[1]);
    // Equivalent instances are data-parallel only when they are also
    // independent: siblings chained through internal wires (e.g. two
    // identical PEs back to back) are a pipeline, not data parallelism.
    let independent = {
        let mut users: HashMap<&str, usize> = HashMap::new();
        for inst in &module.instances {
            for net in inst.connections.values() {
                if module.wires.contains_key(net) {
                    *users.entry(net.as_str()).or_insert(0) += 1;
                }
            }
        }
        users.values().all(|&n| n < 2)
    };

    let id = SoftBlockId(arena.len());
    if all_equivalent && independent {
        let child_hash = arena[children[0].0].content_hash;
        arena.push(SoftBlock {
            id,
            kind: SoftBlockKind::Composite {
                pattern: Pattern::Data,
                children,
                link_widths: vec![],
            },
            resources,
            content_hash: mix("data", &[child_hash], hashes.len() as u64),
        });
        return Ok(id);
    }

    // Chain detection over instance connections: order instances along
    // driver->reader edges if they form a linear chain.
    let (ordered, link_widths) = chain_order(module, &children);
    let child_hashes: Vec<u64> = ordered.iter().map(|&c| arena[c.0].content_hash).collect();
    arena.push(SoftBlock {
        id,
        kind: SoftBlockKind::Composite {
            pattern: Pattern::Pipeline,
            children: ordered,
            link_widths,
        },
        resources,
        content_hash: mix("pipe", &child_hashes, 0),
    });
    Ok(id)
}

/// Orders a module's children along the dataflow if they form a chain;
/// otherwise returns declaration order. Also returns the inter-child link
/// widths.
fn chain_order(module: &ModuleDecl, children: &[SoftBlockId]) -> (Vec<SoftBlockId>, Vec<u64>) {
    let n = module.instances.len();
    // Undirected inter-instance edges via shared internal wires (module
    // ports lead outside the module and do not connect siblings); chain
    // orientation is fixed afterwards by which endpoint touches a module
    // input port.
    let mut edges: HashMap<(usize, usize), u64> = HashMap::new();
    let mut by_net: HashMap<&str, Vec<(usize, u32)>> = HashMap::new();
    for (i, inst) in module.instances.iter().enumerate() {
        for net in inst.connections.values() {
            // Only internal wires connect siblings; module ports lead
            // outside.
            if let Some(width) = module.wires.get(net) {
                by_net.entry(net).or_default().push((i, *width));
            }
        }
    }
    for members in by_net.values() {
        for (k, &(a, w)) in members.iter().enumerate() {
            for &(b, _) in &members[k + 1..] {
                if a != b {
                    *edges.entry((a.min(b), a.max(b))).or_insert(0) += u64::from(w);
                }
            }
        }
    }
    let mut degree = vec![0usize; n];
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &(a, b) in edges.keys() {
        degree[a] += 1;
        degree[b] += 1;
        adj[a].push(b);
        adj[b].push(a);
    }
    // A chain has exactly two endpoints of degree 1 and the rest degree 2.
    let endpoints: Vec<usize> = (0..n).filter(|&i| degree[i] == 1).collect();
    let is_chain = endpoints.len() == 2 && (0..n).all(|i| degree[i] == 1 || degree[i] == 2);
    if !is_chain {
        let widths = (0..n.saturating_sub(1))
            .map(|i| edges.get(&(i, i + 1)).copied().unwrap_or(0))
            .collect();
        return (children.to_vec(), widths);
    }
    // Walk the chain. Prefer the endpoint connected to a module input
    // port so the order follows the dataflow.
    let start = endpoints
        .iter()
        .copied()
        .find(|&e| {
            module.instances[e].connections.values().any(|net| {
                module
                    .ports
                    .iter()
                    .any(|p| p.dir == PortDir::Input && p.name == *net)
            })
        })
        .unwrap_or(endpoints[0]);
    let mut order = vec![start];
    let mut prev = usize::MAX;
    let mut cur = start;
    while let Some(&next) = adj[cur].iter().find(|&&x| x != prev) {
        prev = cur;
        cur = next;
        order.push(cur);
    }
    let widths = order
        .windows(2)
        .map(|w| {
            edges
                .get(&(w[0].min(w[1]), w[0].max(w[1])))
                .copied()
                .unwrap_or(0)
        })
        .collect();
    (order.iter().map(|&i| children[i]).collect(), widths)
}

fn mix(kind: &str, child_hashes: &[u64], count: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in kind.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    for &c in child_hashes {
        h ^= c;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h ^ count
}

#[cfg(test)]
mod tests {
    use super::*;
    use vfpga_rtl::parse;

    fn unit(_n: &FlatNode) -> ResourceVec {
        ResourceVec {
            luts: 100,
            ffs: 100,
            bram_kb: 1,
            uram_kb: 0,
            dsps: 1,
        }
    }

    const HIER: &str = r#"
        module pe #(behavior="pe") (input [15:0] x, output [15:0] y);
        endmodule
        module stage (input [15:0] x, output [15:0] y);
          wire [15:0] t;
          pe a (.x(x), .y(t));
          pe b (.x(t), .y(y));
        endmodule
        module farm (input [15:0] x, output [15:0] y);
          stage s0 (.x(x), .y(y));
          stage s1 (.x(x), .y(y));
          stage s2 (.x(x), .y(y));
        endmodule
    "#;

    #[test]
    fn hierarchy_lowered_to_patterns() {
        let design = parse(HIER).unwrap();
        let tree = decompose_top_down(&design, "farm", &unit).unwrap();
        let root = tree.root_block();
        // farm: three equivalent stages -> data parallel.
        assert_eq!(root.pattern(), Some(Pattern::Data));
        assert_eq!(root.children().len(), 3);
        // stage: two pes chained through wire t -> pipeline with a 16-bit
        // link.
        let stage = tree.block(root.children()[0]);
        assert_eq!(stage.pattern(), Some(Pattern::Pipeline));
        match &stage.kind {
            SoftBlockKind::Composite { link_widths, .. } => assert_eq!(link_widths, &[16]),
            _ => panic!("expected composite"),
        }
        assert_eq!(tree.leaf_count(), 6);
        // Resources accumulate.
        assert_eq!(root.resources.luts, 600);
    }

    #[test]
    fn basic_module_becomes_single_leaf() {
        let design = parse(HIER).unwrap();
        let tree = decompose_top_down(&design, "pe", &unit).unwrap();
        assert_eq!(tree.len(), 1);
        assert!(tree.root_block().is_leaf());
    }

    #[test]
    fn matches_bottom_up_on_generated_accelerators() {
        use crate::decompose::{decompose, DecomposeOptions};
        let cfg = vfpga_accel::AcceleratorConfig::new("x", 5);
        let design = vfpga_accel::generate_rtl(&cfg);
        let est = |_: &FlatNode| ResourceVec {
            luts: 10,
            ffs: 10,
            bram_kb: 0,
            uram_kb: 0,
            dsps: 0,
        };
        // Bottom-up over the data path with the Section 3 modifications.
        let mut opts = DecomposeOptions::new(vfpga_accel::CONTROL_PATH_MODULE);
        opts.move_to_control = vfpga_accel::MOVED_TO_CONTROL
            .iter()
            .map(|s| s.to_string())
            .collect();
        let bottom_up = decompose(&design, vfpga_accel::TOP_MODULE, &opts, &est).unwrap();
        // Top-down over one tile: must find the same 7-stage pipeline that
        // the bottom-up flow grouped per tile.
        let tile = decompose_top_down(&design, "bw_tile", &est).unwrap();
        assert_eq!(tile.root_block().pattern(), Some(Pattern::Pipeline));
        assert_eq!(tile.root_block().children().len(), 7);
        let bu_tile = bottom_up
            .tree
            .block(bottom_up.tree.root_block().children()[0]);
        assert_eq!(bu_tile.children().len(), tile.root_block().children().len());
    }

    #[test]
    fn irregular_module_falls_back_to_declaration_order() {
        let src = r#"
            module a #(behavior="a") (input [7:0] x, output [7:0] y);
            endmodule
            module b #(behavior="b") (input [7:0] x, output [7:0] y);
            endmodule
            module diamond (input [7:0] x, output [7:0] y);
              wire [7:0] t;
              wire [7:0] u;
              a top_arm (.x(x), .y(t));
              b bottom_arm (.x(x), .y(u));
              a joiner (.x(t), .y(y));
              b joiner2 (.x(u), .y(y));
            endmodule
        "#;
        let design = parse(src).unwrap();
        let tree = decompose_top_down(&design, "diamond", &unit).unwrap();
        // Not a chain, not all-equivalent: wrapped as a pipeline residue.
        assert_eq!(tree.root_block().pattern(), Some(Pattern::Pipeline));
        assert_eq!(tree.root_block().children().len(), 4);
    }
}

//! # vfpga-runtime — the runtime management system
//!
//! The top layer of the framework (Section 2.3): a **system controller**
//! that owns the mapping database and allocates physical FPGAs to deploy
//! decomposed accelerators, sending configuration requests to the HS
//! abstraction's low-level controller (Fig. 7).
//!
//! * [`SystemController`] — deployment/release with the paper's **greedy
//!   policy** (scan mapping results by ascending soft-block count, i.e.
//!   fewest FPGAs first, minimizing inter-FPGA communication), plus the two
//!   comparison policies of the evaluation: [`Policy::Baseline`] (AS ISA
//!   only: one whole FPGA per accelerator, the paper's baseline system) and
//!   [`Policy::Restricted`] (multi-FPGA deployments confined to devices of
//!   one type, emulating the homogeneous-only multi-FPGA support of
//!   existing HS abstractions — the Fig. 12 middle bar).
//! * [`run_cloud_sim`] — the discrete-event simulation of the cluster
//!   serving a workload set: arrivals queue, deploy, run, release;
//!   aggregated throughput in tasks/second is Fig. 12's metric. Every run
//!   returns a fully instrumented [`CloudReport`]: latency percentiles,
//!   occupancy/queue-depth time series, rejection-reason breakdowns (see
//!   [`RejectReason`]), a metrics registry, and a scheduler-event trace —
//!   with the accounting invariant `completed + never_deployed + lost ==
//!   arrivals` (queued tasks are never silently dropped).
//! * [`run_cloud_sim_faulted`] — the same simulation interleaved with a
//!   [`vfpga_sim::FaultPlan`]'s device fail/recover waves: interrupted
//!   deployments migrate to surviving devices with bounded exponential
//!   backoff (see [`RecoveryPolicy`]), falling back to deeper partition
//!   variants when the original footprint no longer fits, and the report
//!   gains recovery accounting (interruptions, migrations, mean
//!   time-to-recovery, degraded-mode occupancy).
//! * [`co_simulate_timing`]/[`co_simulate_functional`] — coupled simulation
//!   of scaled-down accelerators exchanging state over the inter-FPGA ring,
//!   with a configurable added link latency (the paper's programmable
//!   latency-insertion module) — the machinery behind Fig. 11.

mod cloudsim;
mod controller;
mod monitor;
mod scaleout_sim;
#[cfg(test)]
mod testutil;

pub use cloudsim::{
    run_cloud_sim, run_cloud_sim_faulted, run_cloud_sim_traced, run_cloud_sim_tuned,
    AdmissionTuning, CloudReport, ElasticityPolicy, RecoveryPolicy, DEFAULT_TRACE_CAPACITY,
};
pub use controller::{
    ControllerStats, Deployment, DeploymentId, Placement, Policy, RejectReason, ScaleDown,
    SystemController,
};
pub use monitor::{MonitorConfig, MonitorReport, RunMonitor};
pub use scaleout_sim::{
    co_simulate_functional, co_simulate_timing, co_simulate_timing_faulted, LinkChaos,
    ScaleOutTiming,
};

use std::fmt;

/// Errors from the runtime layer.
#[derive(Debug)]
pub enum RuntimeError {
    /// The instance is not in the mapping database.
    UnknownInstance(String),
    /// The HS abstraction rejected a configuration request.
    Hs(vfpga_hsabs::HsError),
    /// Communicating machines deadlocked (each waiting on the other).
    Deadlock {
        /// Machines still blocked when progress stopped.
        blocked: usize,
    },
    /// Communicating machines starved on messages that were sent but can
    /// never be delivered (the link failed for good, retransmissions were
    /// exhausted, or delivery would pass the deadline).
    Timeout {
        /// Machines still blocked when progress stopped.
        blocked: usize,
    },
    /// A functional simulation error during co-simulation.
    Sim(Box<dyn std::error::Error>),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::UnknownInstance(name) => {
                write!(f, "instance `{name}` not in mapping database")
            }
            RuntimeError::Hs(e) => write!(f, "hs abstraction error: {e}"),
            RuntimeError::Deadlock { blocked } => {
                write!(f, "scale-out deadlock with {blocked} machines blocked")
            }
            RuntimeError::Timeout { blocked } => {
                write!(
                    f,
                    "scale-out timeout with {blocked} machines starved on undeliverable messages"
                )
            }
            RuntimeError::Sim(e) => write!(f, "simulation error: {e}"),
        }
    }
}

impl std::error::Error for RuntimeError {}

impl From<vfpga_hsabs::HsError> for RuntimeError {
    fn from(e: vfpga_hsabs::HsError) -> Self {
        RuntimeError::Hs(e)
    }
}

//! Shared helpers for the runtime crate's unit tests.

#![cfg(test)]

use vfpga_accel::{
    generate_rtl, leaf_resource_estimator, AcceleratorConfig, CONTROL_PATH_MODULE,
    MOVED_TO_CONTROL, TOP_MODULE,
};
use vfpga_core::{decompose, partition, DecomposeOptions, MappingDatabase};
use vfpga_fabric::Cluster;
use vfpga_hsabs::HsCompiler;

/// Builds a database with one small instance (`"tiny"`, 4 tiles) and one
/// large instance (`"big"`, 16 tiles) registered against the paper
/// cluster's device types.
pub fn small_db() -> (Cluster, MappingDatabase) {
    let cluster = Cluster::paper_cluster();
    let types = cluster.device_types();
    let compiler = HsCompiler::default();
    let mut db = MappingDatabase::new();
    for (name, tiles, weight_mb) in [("tiny", 4usize, 20u64), ("big", 16, 180)] {
        let config = AcceleratorConfig::new(name, tiles)
            .with_weight_memory_kb(weight_mb * 1024)
            .with_memory_kind(vfpga_fabric::MemoryKind::Uram);
        let design = generate_rtl(&config);
        let mut opts = DecomposeOptions::new(CONTROL_PATH_MODULE);
        opts.move_to_control = MOVED_TO_CONTROL.iter().map(|s| s.to_string()).collect();
        let est = leaf_resource_estimator(&config);
        let d = decompose(&design, TOP_MODULE, &opts, &est).unwrap();
        let plan = partition(&d.tree, 2);
        db.register(name, &d, &plan, &types, &compiler, true)
            .unwrap();
    }
    (cluster, db)
}

//! Streaming run telemetry: windowed rollups and SLO burn-rate alerts.
//!
//! [`RunMonitor`] rides inside the cloud simulation (opt-in via
//! [`MonitorConfig`] on [`AdmissionTuning`](crate::AdmissionTuning)) and
//! folds every scheduler event it is shown — arrivals, queue waits,
//! completions, migrations, retransmissions, occupancy samples — into a
//! [`RollupSet`] of tumbling windows keyed by tenant, device, ring
//! segment, and the whole cluster. Latencies land in mergeable
//! [`QuantileSketch`](vfpga_sim::QuantileSketch)es, so the per-window
//! digests stay within the configured relative error at O(log range)
//! memory regardless of task count.
//!
//! At the end of the run, [`RunMonitor::finish`] evaluates every
//! configured [`SloSpec`] against every key that saw latency traffic
//! using the multi-window burn-rate state machine
//! ([`evaluate_slo`](vfpga_sim::evaluate_slo)) and packages rollups,
//! outcomes, and alerts into a [`MonitorReport`] — a pure function of the
//! seeded event stream, so the whole section is byte-deterministic.

use std::collections::BTreeMap;

use vfpga_sim::{
    evaluate_slo, prometheus_rollup_text, Json, RollupKey, RollupSet, SimTime, SloOutcome, SloSpec,
};

/// Opt-in configuration for the in-run telemetry monitor.
///
/// Defaults to disabled: a run with the default config performs no
/// monitor work and emits no `monitor` section, keeping pre-monitor
/// artifacts byte-identical.
#[derive(Debug, Clone, PartialEq)]
pub struct MonitorConfig {
    /// Whether the monitor runs at all.
    pub enabled: bool,
    /// Tumbling-window length for the rollups.
    pub window: SimTime,
    /// Relative-error bound for the latency sketches (DDSketch alpha).
    pub sketch_error: f64,
    /// SLOs to evaluate over the finished rollups.
    pub slos: Vec<SloSpec>,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            enabled: false,
            window: SimTime::from_us(250.0),
            sketch_error: 0.01,
            slos: Vec::new(),
        }
    }
}

impl MonitorConfig {
    /// An enabled monitor with the given window and SLO set, at the
    /// default 1% sketch error.
    pub fn enabled(window: SimTime, slos: Vec<SloSpec>) -> Self {
        MonitorConfig {
            enabled: true,
            window,
            slos,
            ..MonitorConfig::default()
        }
    }
}

/// The in-run collector (see the module docs). Created by the simulator
/// when [`MonitorConfig::enabled`] is set; every hook is O(log) in the
/// sketch bucket count.
#[derive(Debug, Clone)]
pub struct RunMonitor {
    config: MonitorConfig,
    rollups: RollupSet,
}

impl RunMonitor {
    /// Builds a monitor from an enabled config.
    pub fn new(config: MonitorConfig) -> Self {
        let rollups = RollupSet::new(config.window, config.sketch_error);
        RunMonitor { config, rollups }
    }

    /// A task for `tenant` arrived at `at`.
    pub fn on_arrival(&mut self, tenant: &str, at: SimTime) {
        self.rollups.record_arrival(RollupKey::Cluster, at);
        self.rollups
            .record_arrival(RollupKey::Tenant(tenant.to_string()), at);
    }

    /// A queued task for `tenant` was admitted at `at` after `wait`.
    pub fn on_queue_wait(&mut self, tenant: &str, at: SimTime, wait: SimTime) {
        self.rollups.record_queue_wait(RollupKey::Cluster, at, wait);
        self.rollups
            .record_queue_wait(RollupKey::Tenant(tenant.to_string()), at, wait);
    }

    /// A task for `tenant` completed at `at` with end-to-end `latency`;
    /// `device` is its primary placement when known.
    pub fn on_completion(
        &mut self,
        tenant: &str,
        device: Option<u64>,
        at: SimTime,
        latency: SimTime,
    ) {
        self.rollups
            .record_completion(RollupKey::Cluster, at, latency);
        self.rollups
            .record_completion(RollupKey::Tenant(tenant.to_string()), at, latency);
        if let Some(d) = device {
            self.rollups
                .record_completion(RollupKey::Device(d), at, latency);
        }
    }

    /// A deployment started migrating off `device` at `at`.
    pub fn on_migration(&mut self, device: u64, at: SimTime) {
        self.rollups.record_migration(RollupKey::Cluster, at);
        self.rollups.record_migration(RollupKey::Device(device), at);
    }

    /// A transfer over ring `segment` was retransmitted at `at`.
    pub fn on_retransmit(&mut self, segment: u64, at: SimTime, bytes: u64) {
        self.rollups
            .record_retransmit(RollupKey::Cluster, at, bytes);
        self.rollups
            .record_retransmit(RollupKey::Segment(segment), at, bytes);
    }

    /// A cluster-occupancy sample (fraction of units busy) at `at`.
    pub fn on_occupancy(&mut self, at: SimTime, fraction: f64) {
        self.rollups
            .record_occupancy(RollupKey::Cluster, at, fraction);
    }

    /// Closes the run at `end`, evaluates the configured SLOs, and
    /// returns the report. `trace_dropped`/`oldest_retained` come from
    /// the run's trace ring: when events were dropped, rollup windows
    /// that predate the oldest retained event are marked truncated so the
    /// artifact never presents partial windows as measurements.
    pub fn finish(
        self,
        end: SimTime,
        trace_dropped: u64,
        oldest_retained: Option<SimTime>,
    ) -> MonitorReport {
        let RunMonitor {
            config,
            mut rollups,
        } = self;
        let mut truncated_windows = 0;
        if trace_dropped > 0 {
            if let Some(oldest) = oldest_retained {
                truncated_windows = rollups.mark_truncated_before(oldest);
            }
        }
        let last = rollups.window_index(end);
        let mut outcomes = Vec::new();
        for key in rollups.keys() {
            // SLOs constrain end-to-end latency: segments carry no
            // latency signal, so they are not evaluated.
            if matches!(key, RollupKey::Segment(_)) {
                continue;
            }
            let series = rollups.series_for(&key);
            if series.iter().all(|(_, s)| s.latency.count() == 0) {
                continue;
            }
            for spec in &config.slos {
                let bad: BTreeMap<u64, bool> = series
                    .iter()
                    .map(|(idx, stats)| {
                        let violated = match stats.latency.quantile(spec.quantile) {
                            Some(q) => q > spec.target,
                            None => false,
                        };
                        (*idx, violated)
                    })
                    .collect();
                outcomes.push(evaluate_slo(
                    spec,
                    &key.label(),
                    &bad,
                    last,
                    rollups.window(),
                ));
            }
        }
        MonitorReport {
            specs: config.slos,
            truncated_windows,
            rollups,
            outcomes,
        }
    }
}

/// The finished telemetry section of a run: the rollup cells, the SLO
/// specs that were evaluated, and their outcomes (alerts included).
#[derive(Debug, Clone)]
pub struct MonitorReport {
    /// The SLO specs that were evaluated.
    pub specs: Vec<SloSpec>,
    /// Rollup cells marked truncated because the trace ring overflowed.
    pub truncated_windows: usize,
    /// The per-key tumbling-window rollups.
    pub rollups: RollupSet,
    /// One outcome per (SLO, key-with-latency-traffic) pair.
    pub outcomes: Vec<SloOutcome>,
}

impl MonitorReport {
    /// Every alert fired across all outcomes, in deterministic order.
    pub fn alerts(&self) -> impl Iterator<Item = &vfpga_sim::Alert> {
        self.outcomes.iter().flat_map(|o| o.alerts.iter())
    }

    /// Number of alerts fired.
    pub fn alerts_fired(&self) -> usize {
        self.alerts().count()
    }

    /// Number of fired alerts that also resolved before run end.
    pub fn alerts_resolved(&self) -> usize {
        self.alerts().filter(|a| a.resolved_at.is_some()).count()
    }

    /// The highest fast-span burn rate seen by any outcome.
    pub fn max_burn(&self) -> f64 {
        self.outcomes
            .iter()
            .fold(0.0f64, |m, o| m.max(o.max_fast_burn))
    }

    /// The lowest health score across outcomes (1.0 when none ran).
    pub fn min_health(&self) -> f64 {
        self.outcomes.iter().fold(1.0f64, |m, o| m.min(o.health))
    }

    /// Serializes the section: summary counters first, then specs,
    /// outcomes, and the full rollup table.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("alerts_fired", self.alerts_fired() as u64)
            .with("alerts_resolved", self.alerts_resolved() as u64)
            .with("max_burn", self.max_burn())
            .with("min_health", self.min_health())
            .with("truncated_windows", self.truncated_windows as u64)
            .with(
                "slos",
                Json::Arr(self.specs.iter().map(SloSpec::to_json).collect()),
            )
            .with(
                "outcomes",
                Json::Arr(self.outcomes.iter().map(SloOutcome::to_json).collect()),
            )
            .with("rollups", self.rollups.to_json())
    }

    /// The rollup/SLO families in Prometheus exposition format.
    pub fn prometheus_text(&self) -> String {
        prometheus_rollup_text(&self.rollups, &self.outcomes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: f64) -> SimTime {
        SimTime::from_us(us)
    }

    fn monitor_with_slo() -> RunMonitor {
        let mut spec = SloSpec::latency("p95-latency", 0.95, t(80.0));
        spec.fast_windows = 2;
        spec.slow_windows = 4;
        spec.error_budget = 0.1;
        RunMonitor::new(MonitorConfig::enabled(t(100.0), vec![spec]))
    }

    #[test]
    fn disabled_is_the_default() {
        let cfg = MonitorConfig::default();
        assert!(!cfg.enabled);
        assert!(cfg.slos.is_empty());
    }

    #[test]
    fn burst_of_slow_completions_fires_and_resolves() {
        let mut m = monitor_with_slo();
        // Healthy traffic, then a sustained slow burst, then recovery.
        for i in 0..40u64 {
            let at = t(i as f64 * 100.0 + 50.0);
            let latency = if (10..18).contains(&i) {
                t(200.0)
            } else {
                t(40.0)
            };
            m.on_arrival("bw-m", at);
            m.on_completion("bw-m", Some(0), at, latency);
        }
        let report = m.finish(t(4000.0), 0, None);
        assert!(report.alerts_fired() >= 1, "{:?}", report.outcomes);
        assert_eq!(report.alerts_fired(), report.alerts_resolved());
        assert!(report.max_burn() >= 2.0);
        assert!(report.min_health() < 1.0);
        assert_eq!(report.truncated_windows, 0);
    }

    #[test]
    fn segments_collect_but_are_not_slo_evaluated() {
        let mut m = monitor_with_slo();
        m.on_completion("bw-s", None, t(10.0), t(20.0));
        m.on_retransmit(3, t(15.0), 4096);
        let report = m.finish(t(100.0), 0, None);
        assert!(report
            .outcomes
            .iter()
            .all(|o| !o.key.starts_with("segment")));
        // The segment still shows up in the rollup table.
        assert!(report
            .rollups
            .keys()
            .iter()
            .any(|k| matches!(k, RollupKey::Segment(3))));
    }

    #[test]
    fn trace_overflow_marks_early_windows() {
        let mut m = monitor_with_slo();
        m.on_completion("bw-s", None, t(10.0), t(20.0));
        m.on_completion("bw-s", None, t(510.0), t(20.0));
        let report = m.finish(t(600.0), 100, Some(t(450.0)));
        assert!(report.truncated_windows > 0);
        let text = report.to_json().compact();
        assert!(text.contains("\"truncated\":true"), "{text}");
    }

    #[test]
    fn report_is_byte_deterministic() {
        let build = || {
            let mut m = monitor_with_slo();
            for i in 0..25u64 {
                let at = t(i as f64 * 40.0);
                m.on_arrival("bw-l", at);
                m.on_queue_wait("bw-l", at, t(5.0));
                m.on_completion("bw-l", Some(i % 3), at, t(90.0));
                m.on_occupancy(at, 0.5);
            }
            m.on_migration(1, t(333.0));
            m.finish(t(1000.0), 0, None).to_json().pretty()
        };
        assert_eq!(build(), build());
    }
}

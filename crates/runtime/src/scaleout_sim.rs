//! Coupled simulation of scaled-down accelerators exchanging state over
//! the inter-FPGA ring (Fig. 11's machinery), with optional interconnect
//! fault injection (degraded service, corruption with bounded
//! retransmission, hard outages) and a deadline watchdog.

use vfpga_accel::{CycleSim, FuncSim, Poll, StepOutcome};
use vfpga_isa::Program;
use vfpga_sim::{
    DegradedMode, Json, Link, LinkFaultKind, LinkParams, RetransmitPolicy, Rng, SimTime,
};

use crate::RuntimeError;

/// Interconnect fault schedule for a timing co-simulation: health waves of
/// the (single logical) ring link plus a transfer corruption model and an
/// optional delivery deadline.
///
/// With a quiescent chaos config the co-simulation is bit-for-bit the
/// ideal-wire model: no RNG is drawn and arrivals follow the memoryless
/// `send + serialization + latency + added_latency` formula.
#[derive(Debug, Clone)]
pub struct LinkChaos {
    /// Health transitions of the ring link, in time order.
    pub events: Vec<(SimTime, LinkFaultKind)>,
    /// What the link serves while degraded.
    pub degraded: DegradedMode,
    /// Per-transmission corruption probability, `0.0..=1.0`.
    pub corruption_prob: f64,
    /// Retransmission budget for corrupted transmissions.
    pub retransmit: RetransmitPolicy,
    /// Messages that cannot arrive by this deadline are undeliverable; the
    /// watchdog reports [`RuntimeError::Timeout`] instead of `Deadlock`
    /// when a machine starves on one.
    pub deadline: Option<SimTime>,
    /// Seed of the corruption draw stream.
    pub seed: u64,
}

impl LinkChaos {
    /// A chaos config that injects nothing.
    pub fn quiescent() -> Self {
        LinkChaos {
            events: Vec::new(),
            degraded: DegradedMode::default(),
            corruption_prob: 0.0,
            retransmit: RetransmitPolicy::default(),
            deadline: None,
            seed: 0,
        }
    }

    /// Whether this config perturbs delivery at all (a bare deadline does
    /// not change arrival times, only classifies starvation).
    pub fn is_quiescent(&self) -> bool {
        self.events.is_empty() && self.corruption_prob == 0.0 && self.deadline.is_none()
    }
}

/// Result of a timing co-simulation, including the communication counters
/// the observability layer exports (message volume, scheduling rounds,
/// transmitter queue-wait pressure, and retransmission work — the knobs
/// Fig. 11's latency sweep stresses).
#[derive(Debug, Clone)]
pub struct ScaleOutTiming {
    /// Per-machine finish time.
    pub finish: Vec<SimTime>,
    /// The inference latency: the latest finish.
    pub makespan: SimTime,
    /// Ring messages exchanged across all machines.
    pub messages: u64,
    /// Payload bytes put on the wire (f16 elements, 2 bytes each).
    pub bytes_on_wire: u64,
    /// Scheduler rounds the co-simulation needed to drain all machines
    /// (each round polls every unfinished machine once).
    pub poll_rounds: u64,
    /// Messages that waited (behind the transmitter or a down link)
    /// before their first byte went out.
    pub queue_waits: u64,
    /// Total pre-serialization wait across those messages.
    pub queue_wait_total: SimTime,
    /// Longest single pre-serialization wait.
    pub queue_wait_max: SimTime,
    /// Retransmissions performed for corrupted transmissions.
    pub retransmits: u64,
    /// Payload bytes re-serialized by those retransmissions.
    pub bytes_retransmitted: u64,
}

impl ScaleOutTiming {
    /// Load imbalance: gap between the earliest and latest finisher.
    pub fn imbalance(&self) -> SimTime {
        let earliest = self.finish.iter().copied().min().unwrap_or(SimTime::ZERO);
        self.makespan.saturating_sub(earliest)
    }

    /// Serializes the timing result (times in seconds).
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("makespan_s", self.makespan.as_secs())
            .with("imbalance_s", self.imbalance().as_secs())
            .with(
                "finish_s",
                Json::Arr(
                    self.finish
                        .iter()
                        .map(|t| Json::from(t.as_secs()))
                        .collect(),
                ),
            )
            .with("messages", self.messages)
            .with("bytes_on_wire", self.bytes_on_wire)
            .with("poll_rounds", self.poll_rounds)
            .with("queue_waits", self.queue_waits)
            .with("queue_wait_total_s", self.queue_wait_total.as_secs())
            .with("queue_wait_max_s", self.queue_wait_max.as_secs())
            .with("retransmits", self.retransmits)
            .with("bytes_retransmitted", self.bytes_retransmitted)
    }
}

/// The faulted wire: computes the arrival time of each message exactly once
/// (at the moment the send is first observed), applying link health waves,
/// corruption with bounded exponential-backoff retransmission, and the
/// delivery deadline. Accumulates the fault accounting for the report.
struct Wire {
    link: LinkParams,
    added: SimTime,
    chaos: LinkChaos,
    rng: Rng,
    retransmits: u64,
    bytes_retransmitted: u64,
    stall_waits: u64,
    stall_total: SimTime,
    stall_max: SimTime,
}

impl Wire {
    fn new(link: LinkParams, added: SimTime, chaos: LinkChaos) -> Self {
        let rng = Rng::seed_from_u64(chaos.seed ^ 0x5749_5245_5749_5245);
        Wire {
            link,
            added,
            chaos,
            rng,
            retransmits: 0,
            bytes_retransmitted: 0,
            stall_waits: 0,
            stall_total: SimTime::ZERO,
            stall_max: SimTime::ZERO,
        }
    }

    /// Link health at time `t` per the event schedule.
    fn health_at(&self, t: SimTime) -> LinkFaultKind {
        let mut state = LinkFaultKind::Recovered;
        for &(at, kind) in &self.chaos.events {
            if at > t {
                break;
            }
            state = kind;
        }
        state
    }

    /// First recovery strictly after `t`, if any.
    fn next_recovery_after(&self, t: SimTime) -> Option<SimTime> {
        self.chaos
            .events
            .iter()
            .find(|&&(at, kind)| at > t && kind == LinkFaultKind::Recovered)
            .map(|&(at, _)| at)
    }

    fn record_stall(&mut self, wait: SimTime) {
        if wait > SimTime::ZERO {
            self.stall_waits += 1;
            self.stall_total += wait;
            self.stall_max = self.stall_max.max(wait);
        }
    }

    /// Arrival of a message of `bytes` sent at `at`; `None` when the link
    /// never recovers, the retransmit budget runs out, or the deadline
    /// passes.
    fn deliver(&mut self, at: SimTime, bytes: u64) -> Option<SimTime> {
        if self.chaos.is_quiescent() {
            // The ideal pipelined wire of Fig. 11 — kept bit-identical.
            return Some(at + self.link.serialization_time(bytes) + self.link.latency + self.added);
        }
        let mut start = at;
        let mut retransmits = 0u32;
        let mut delivered = None;
        loop {
            match self.health_at(start) {
                LinkFaultKind::Failed => {
                    // The message waits for the link to come back.
                    let Some(up) = self.next_recovery_after(start) else {
                        break;
                    };
                    self.record_stall(up.saturating_sub(start));
                    start = up;
                }
                state => {
                    let eff = if state == LinkFaultKind::Degraded {
                        LinkParams {
                            latency: self.link.latency + self.chaos.degraded.extra_latency,
                            bandwidth_gbps: self.link.bandwidth_gbps
                                * self.chaos.degraded.bandwidth_factor,
                        }
                    } else {
                        self.link
                    };
                    let done = start + eff.serialization_time(bytes);
                    let corrupt = self.chaos.corruption_prob > 0.0
                        && self.rng.next_f64() < self.chaos.corruption_prob;
                    if !corrupt {
                        let arrival = done + eff.latency + self.added;
                        if self.chaos.deadline.is_some_and(|d| arrival > d) {
                            break;
                        }
                        delivered = Some(arrival);
                        break;
                    }
                    if retransmits >= self.chaos.retransmit.max_retransmits {
                        break;
                    }
                    start = done + self.chaos.retransmit.backoff(retransmits);
                    retransmits += 1;
                    self.bytes_retransmitted += bytes;
                }
            }
        }
        self.retransmits += retransmits as u64;
        delivered
    }
}

/// Per-sender arrival snapshot entry: `(chan, seq, arrival)` where a `None`
/// arrival marks a message that can never be delivered.
type MsgArrival = (u32, u64, Option<SimTime>);

/// Folds machine `m`'s new sends (past `entry.len()`) into its arrival
/// snapshot, pushing each through the faulted wire once and through the
/// machine's shadow transmitter (which measures the serialization-pressure
/// queue waits the ideal pipelined-wire arrival model hides).
fn sync_sends(machine: &CycleSim, entry: &mut Vec<MsgArrival>, shadow: &mut Link, wire: &mut Wire) {
    let sends = machine.sends();
    for s in &sends[entry.len()..] {
        let bytes = s.len as u64 * 2; // f16 payload
        shadow.transfer(s.at, bytes);
        entry.push((s.chan, s.seq, wire.deliver(s.at, bytes)));
    }
}

/// Co-simulates the timing of communicating machines over an ideal ring.
///
/// Each machine runs its own [`CycleSim`] (with its remote window already
/// configured). A message sent by machine `p` on channel `c` with sequence
/// number `s` becomes available to every other machine at
///
/// ```text
/// send_time + serialization(len) + link.latency + added_latency
/// ```
///
/// `added_latency` reproduces the paper's programmable latency-insertion
/// module, which Fig. 11 sweeps. A barrier receive completes when *all*
/// peers' `s`-th message on the channel has arrived.
///
/// # Errors
///
/// Returns [`RuntimeError::Deadlock`] if every unfinished machine is
/// blocked and no new message can unblock any of them.
pub fn co_simulate_timing(
    machines: &mut [CycleSim],
    link: LinkParams,
    added_latency: SimTime,
) -> Result<ScaleOutTiming, RuntimeError> {
    co_simulate_timing_faulted(machines, link, added_latency, &LinkChaos::quiescent())
}

/// [`co_simulate_timing`] over a faultable ring: the link degrades, fails,
/// and recovers per `chaos.events`; transmissions are corrupted with
/// `chaos.corruption_prob` and retransmitted under the bounded
/// exponential-backoff budget; arrivals account for every retransmission.
///
/// # Errors
///
/// * [`RuntimeError::Timeout`] — a machine starves on a message that was
///   *sent* but can never be delivered: the link failed for good, the
///   retransmit budget was exhausted, or delivery would pass
///   `chaos.deadline`.
/// * [`RuntimeError::Deadlock`] — a machine starves on a message that was
///   never sent (a protocol cycle, as before).
pub fn co_simulate_timing_faulted(
    machines: &mut [CycleSim],
    link: LinkParams,
    added_latency: SimTime,
    chaos: &LinkChaos,
) -> Result<ScaleOutTiming, RuntimeError> {
    let n = machines.len();
    let mut finish: Vec<Option<SimTime>> = vec![None; n];
    let mut poll_rounds = 0u64;
    let mut wire = Wire::new(link, added_latency, chaos.clone());
    // One shadow transmitter per sender: measures transmitter back-pressure
    // without feeding it back into arrival times (the wire is pipelined).
    let mut shadow: Vec<Link> = (0..n).map(|_| Link::new(link)).collect();
    // Arrival snapshot, maintained incrementally: entry [p][i] is the
    // delivery of machine p's i-th send. Rebuilt only when a machine
    // actually produced new sends (not per machine per round).
    let mut arrivals: Vec<Vec<MsgArrival>> = vec![Vec::new(); n];
    for m in 0..n {
        sync_sends(&machines[m], &mut arrivals[m], &mut shadow[m], &mut wire);
    }

    loop {
        poll_rounds += 1;
        let mut progressed = false;
        let mut blocked = 0usize;
        let mut starved = false;
        for m in 0..n {
            if finish[m].is_some() {
                continue;
            }
            let sends_before = machines[m].sends().len();
            let outcome = {
                let arrivals = &arrivals;
                let starved = &mut starved;
                let mut recv_ready = |chan: u32, seq: u64| -> Option<SimTime> {
                    let mut latest = SimTime::ZERO;
                    for (p, peer) in arrivals.iter().enumerate() {
                        if p == m {
                            continue;
                        }
                        let &(_, _, arrival) =
                            peer.iter().find(|&&(c, s, _)| c == chan && s == seq)?;
                        match arrival {
                            Some(a) => latest = latest.max(a),
                            None => {
                                // Sent but undeliverable: the receiver is
                                // starved, not deadlocked.
                                *starved = true;
                                return None;
                            }
                        }
                    }
                    Some(latest)
                };
                machines[m].poll(&mut recv_ready)
            };
            match outcome {
                Poll::Done(t) => {
                    finish[m] = Some(t);
                    progressed = true;
                }
                Poll::Blocked { .. } => {
                    blocked += 1;
                    if machines[m].sends().len() > sends_before {
                        progressed = true;
                    }
                }
            }
            if machines[m].sends().len() > sends_before {
                sync_sends(&machines[m], &mut arrivals[m], &mut shadow[m], &mut wire);
            }
        }
        if finish.iter().all(Option::is_some) {
            break;
        }
        if !progressed {
            return Err(if starved {
                RuntimeError::Timeout { blocked }
            } else {
                RuntimeError::Deadlock { blocked }
            });
        }
    }

    let finish: Vec<SimTime> = finish.into_iter().map(Option::unwrap).collect();
    let makespan = finish.iter().copied().fold(SimTime::ZERO, SimTime::max);
    let mut messages = 0u64;
    let mut bytes_on_wire = 0u64;
    for m in machines.iter() {
        messages += m.sends().len() as u64;
        bytes_on_wire += m.sends().iter().map(|s| s.len as u64 * 2).sum::<u64>();
    }
    let mut queue_waits = wire.stall_waits;
    let mut queue_wait_total = wire.stall_total;
    let mut queue_wait_max = wire.stall_max;
    for s in &shadow {
        queue_waits += s.queue_wait_count();
        queue_wait_total += s.queue_wait_total();
        queue_wait_max = queue_wait_max.max(s.queue_wait_max());
    }
    Ok(ScaleOutTiming {
        finish,
        makespan,
        messages,
        bytes_on_wire,
        poll_rounds,
        queue_waits,
        queue_wait_total,
        queue_wait_max,
        retransmits: wire.retransmits,
        bytes_retransmitted: wire.bytes_retransmitted,
    })
}

/// Co-simulates the *functional* execution of communicating machines: each
/// machine's sends are delivered to every peer's inbox; barrier receives
/// block until all peers delivered. On success every machine has halted
/// and its architectural state (DRAM, registers) holds the results.
///
/// # Errors
///
/// Returns [`RuntimeError::Sim`] on semantic errors and
/// [`RuntimeError::Deadlock`] if no machine can make progress.
pub fn co_simulate_functional(
    sims: &mut [FuncSim],
    programs: &[Program],
) -> Result<(), RuntimeError> {
    assert_eq!(sims.len(), programs.len(), "one program per machine");
    let n = sims.len();
    for (sim, program) in sims.iter_mut().zip(programs) {
        sim.start(program)
            .map_err(|e| RuntimeError::Sim(Box::new(e)))?;
    }
    let mut halted = vec![false; n];
    loop {
        let mut progressed = false;
        for m in 0..n {
            if halted[m] {
                continue;
            }
            // Run machine m until it halts or blocks.
            loop {
                match sims[m].step().map_err(|e| RuntimeError::Sim(Box::new(e)))? {
                    StepOutcome::Executed => {
                        progressed = true;
                    }
                    StepOutcome::Halted => {
                        halted[m] = true;
                        progressed = true;
                        break;
                    }
                    StepOutcome::NeedsRemote { .. } => break,
                }
            }
            // Deliver everything machine m sent to all peers.
            let sends = sims[m].take_sends();
            if !sends.is_empty() {
                progressed = true;
            }
            for (chan, data) in sends {
                for (p, sim) in sims.iter_mut().enumerate() {
                    if p != m {
                        sim.inject_remote(chan, m, data.clone());
                    }
                }
            }
        }
        if halted.iter().all(|&h| h) {
            return Ok(());
        }
        if !progressed {
            let blocked = halted.iter().filter(|&&h| !h).count();
            return Err(RuntimeError::Deadlock { blocked });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vfpga_accel::{AcceleratorConfig, TimingModel};
    use vfpga_core::scaleout::{insert_communication, remote_window};
    use vfpga_workload::{generate_program, RnnKind, RnnTask, SliceSpec};

    /// Two communicating machines; `mute` strips machine 1's communication
    /// so machine 0 waits on messages that are never sent.
    fn two_machines(mute: bool) -> Vec<CycleSim> {
        let machines = 2;
        let task = RnnTask::new(RnnKind::Gru, 512, 4);
        let cfg = AcceleratorConfig::new("watchdog", 8).scaled_down(machines);
        (0..machines)
            .map(|m| {
                let rnn = generate_program(task, SliceSpec::new(m, machines));
                let window = remote_window(&cfg.isa, m, machines).unwrap();
                let program = if mute && m == 1 {
                    rnn.program.clone()
                } else {
                    insert_communication(&rnn.program, &rnn.state_slots, &window).unwrap()
                };
                let mut sim = CycleSim::new(
                    TimingModel::for_config(&cfg, 400.0),
                    &program,
                    rnn.mat_shapes,
                    rnn.dram_lens,
                );
                if !(mute && m == 1) {
                    sim.set_remote_window(Some(window));
                }
                sim
            })
            .collect()
    }

    fn test_link() -> LinkParams {
        LinkParams::new(SimTime::from_ns(500.0), 25.0)
    }

    #[test]
    fn quiescent_chaos_matches_plain_cosim() {
        let plain = {
            let mut sims = two_machines(false);
            co_simulate_timing(&mut sims, test_link(), SimTime::ZERO).unwrap()
        };
        let faulted = {
            let mut sims = two_machines(false);
            co_simulate_timing_faulted(
                &mut sims,
                test_link(),
                SimTime::ZERO,
                &LinkChaos::quiescent(),
            )
            .unwrap()
        };
        assert_eq!(plain.finish, faulted.finish);
        assert_eq!(plain.makespan, faulted.makespan);
        assert_eq!(plain.poll_rounds, faulted.poll_rounds);
        assert_eq!(faulted.retransmits, 0);
        assert_eq!(faulted.bytes_retransmitted, 0);
    }

    #[test]
    fn missing_sender_is_a_deadlock() {
        let mut sims = two_machines(true);
        let err = co_simulate_timing(&mut sims, test_link(), SimTime::ZERO).unwrap_err();
        assert!(
            matches!(err, RuntimeError::Deadlock { blocked: 1 }),
            "{err}"
        );
    }

    #[test]
    fn unrecovered_link_failure_is_a_timeout() {
        let mut sims = two_machines(false);
        let chaos = LinkChaos {
            events: vec![(SimTime::ZERO, LinkFaultKind::Failed)],
            ..LinkChaos::quiescent()
        };
        let err =
            co_simulate_timing_faulted(&mut sims, test_link(), SimTime::ZERO, &chaos).unwrap_err();
        assert!(matches!(err, RuntimeError::Timeout { .. }), "{err}");
    }

    #[test]
    fn impossible_deadline_is_a_timeout_not_a_deadlock() {
        let mut sims = two_machines(false);
        let chaos = LinkChaos {
            deadline: Some(SimTime::from_ps(1)),
            ..LinkChaos::quiescent()
        };
        let err =
            co_simulate_timing_faulted(&mut sims, test_link(), SimTime::ZERO, &chaos).unwrap_err();
        assert!(matches!(err, RuntimeError::Timeout { .. }), "{err}");
    }

    #[test]
    fn transient_outage_delays_but_completes_with_retransmit_accounting() {
        let healthy = {
            let mut sims = two_machines(false);
            co_simulate_timing(&mut sims, test_link(), SimTime::ZERO).unwrap()
        };
        // The link drops mid-stream and comes back; everything sent during
        // the outage waits for recovery.
        let mut sims = two_machines(false);
        let down_at = SimTime::from_ps(healthy.makespan.as_ps() / 4);
        let up_at = SimTime::from_ps(healthy.makespan.as_ps() / 2);
        let chaos = LinkChaos {
            events: vec![
                (down_at, LinkFaultKind::Failed),
                (up_at, LinkFaultKind::Recovered),
            ],
            ..LinkChaos::quiescent()
        };
        let faulted =
            co_simulate_timing_faulted(&mut sims, test_link(), SimTime::ZERO, &chaos).unwrap();
        assert!(
            faulted.makespan >= healthy.makespan,
            "outage cannot speed things up: {} < {}",
            faulted.makespan,
            healthy.makespan
        );
        assert!(faulted.queue_waits > 0, "outage waits are recorded");
        assert!(faulted.queue_wait_total >= faulted.queue_wait_max);
    }

    #[test]
    fn corruption_forces_retransmissions() {
        let mut sims = two_machines(false);
        let chaos = LinkChaos {
            corruption_prob: 0.5,
            retransmit: RetransmitPolicy {
                max_retransmits: 64,
                base_backoff: SimTime::from_ns(50.0),
            },
            seed: 7,
            ..LinkChaos::quiescent()
        };
        let faulted =
            co_simulate_timing_faulted(&mut sims, test_link(), SimTime::ZERO, &chaos).unwrap();
        assert!(faulted.retransmits > 0);
        assert!(faulted.bytes_retransmitted > 0);
        let healthy = {
            let mut sims = two_machines(false);
            co_simulate_timing(&mut sims, test_link(), SimTime::ZERO).unwrap()
        };
        assert!(faulted.makespan > healthy.makespan);
    }

    #[test]
    fn degraded_link_slows_the_sweep() {
        let healthy = {
            let mut sims = two_machines(false);
            co_simulate_timing(&mut sims, test_link(), SimTime::ZERO).unwrap()
        };
        let mut sims = two_machines(false);
        let chaos = LinkChaos {
            events: vec![(SimTime::ZERO, LinkFaultKind::Degraded)],
            degraded: DegradedMode::new(0.25, SimTime::from_ns(500.0)),
            ..LinkChaos::quiescent()
        };
        let faulted =
            co_simulate_timing_faulted(&mut sims, test_link(), SimTime::ZERO, &chaos).unwrap();
        assert!(faulted.makespan > healthy.makespan);
    }
}

//! Coupled simulation of scaled-down accelerators exchanging state over
//! the inter-FPGA ring (Fig. 11's machinery).

use vfpga_accel::{CycleSim, FuncSim, Poll, StepOutcome};
use vfpga_isa::Program;
use vfpga_sim::{Json, LinkParams, SimTime};

use crate::RuntimeError;

/// Result of a timing co-simulation, including the communication counters
/// the observability layer exports (message volume and scheduling rounds —
/// the knobs Fig. 11's latency sweep stresses).
#[derive(Debug, Clone)]
pub struct ScaleOutTiming {
    /// Per-machine finish time.
    pub finish: Vec<SimTime>,
    /// The inference latency: the latest finish.
    pub makespan: SimTime,
    /// Ring messages exchanged across all machines.
    pub messages: u64,
    /// Payload bytes put on the wire (f16 elements, 2 bytes each).
    pub bytes_on_wire: u64,
    /// Scheduler rounds the co-simulation needed to drain all machines
    /// (each round polls every unfinished machine once).
    pub poll_rounds: u64,
}

impl ScaleOutTiming {
    /// Load imbalance: gap between the earliest and latest finisher.
    pub fn imbalance(&self) -> SimTime {
        let earliest = self.finish.iter().copied().min().unwrap_or(SimTime::ZERO);
        self.makespan.saturating_sub(earliest)
    }

    /// Serializes the timing result (times in seconds).
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("makespan_s", self.makespan.as_secs())
            .with("imbalance_s", self.imbalance().as_secs())
            .with(
                "finish_s",
                Json::Arr(
                    self.finish
                        .iter()
                        .map(|t| Json::from(t.as_secs()))
                        .collect(),
                ),
            )
            .with("messages", self.messages)
            .with("bytes_on_wire", self.bytes_on_wire)
            .with("poll_rounds", self.poll_rounds)
    }
}

/// Co-simulates the timing of communicating machines.
///
/// Each machine runs its own [`CycleSim`] (with its remote window already
/// configured). A message sent by machine `p` on channel `c` with sequence
/// number `s` becomes available to every other machine at
///
/// ```text
/// send_time + serialization(len) + link.latency + added_latency
/// ```
///
/// `added_latency` reproduces the paper's programmable latency-insertion
/// module, which Fig. 11 sweeps. A barrier receive completes when *all*
/// peers' `s`-th message on the channel has arrived.
///
/// # Errors
///
/// Returns [`RuntimeError::Deadlock`] if every unfinished machine is
/// blocked and no new message can unblock any of them.
pub fn co_simulate_timing(
    machines: &mut [CycleSim],
    link: LinkParams,
    added_latency: SimTime,
) -> Result<ScaleOutTiming, RuntimeError> {
    let n = machines.len();
    let mut finish: Vec<Option<SimTime>> = vec![None; n];
    let mut poll_rounds = 0u64;

    loop {
        poll_rounds += 1;
        let mut progressed = false;
        let mut blocked = 0usize;
        for m in 0..n {
            if finish[m].is_some() {
                continue;
            }
            // Arrival of the seq-th message on chan at machine m: latest
            // over all peers.
            let arrivals: Vec<Vec<(u32, u64, SimTime, usize)>> = (0..n)
                .map(|p| {
                    machines[p]
                        .sends()
                        .iter()
                        .map(|s| (s.chan, s.seq, s.at, s.len))
                        .collect()
                })
                .collect();
            let mut recv_ready = |chan: u32, seq: u64| -> Option<SimTime> {
                let mut latest = SimTime::ZERO;
                for (p, peer) in arrivals.iter().enumerate() {
                    if p == m {
                        continue;
                    }
                    let sent = peer.iter().find(|&&(c, s, _, _)| c == chan && s == seq)?;
                    let bytes = sent.3 as u64 * 2; // f16 payload
                    let arrival =
                        sent.2 + link.serialization_time(bytes) + link.latency + added_latency;
                    latest = latest.max(arrival);
                }
                Some(latest)
            };
            let sends_before = machines[m].sends().len();
            match machines[m].poll(&mut recv_ready) {
                Poll::Done(t) => {
                    finish[m] = Some(t);
                    progressed = true;
                }
                Poll::Blocked { .. } => {
                    blocked += 1;
                    if machines[m].sends().len() > sends_before {
                        progressed = true;
                    }
                }
            }
        }
        if finish.iter().all(Option::is_some) {
            break;
        }
        if !progressed {
            return Err(RuntimeError::Deadlock { blocked });
        }
    }

    let finish: Vec<SimTime> = finish.into_iter().map(Option::unwrap).collect();
    let makespan = finish.iter().copied().fold(SimTime::ZERO, SimTime::max);
    let mut messages = 0u64;
    let mut bytes_on_wire = 0u64;
    for m in machines.iter() {
        messages += m.sends().len() as u64;
        bytes_on_wire += m.sends().iter().map(|s| s.len as u64 * 2).sum::<u64>();
    }
    Ok(ScaleOutTiming {
        finish,
        makespan,
        messages,
        bytes_on_wire,
        poll_rounds,
    })
}

/// Co-simulates the *functional* execution of communicating machines: each
/// machine's sends are delivered to every peer's inbox; barrier receives
/// block until all peers delivered. On success every machine has halted
/// and its architectural state (DRAM, registers) holds the results.
///
/// # Errors
///
/// Returns [`RuntimeError::Sim`] on semantic errors and
/// [`RuntimeError::Deadlock`] if no machine can make progress.
pub fn co_simulate_functional(
    sims: &mut [FuncSim],
    programs: &[Program],
) -> Result<(), RuntimeError> {
    assert_eq!(sims.len(), programs.len(), "one program per machine");
    let n = sims.len();
    for (sim, program) in sims.iter_mut().zip(programs) {
        sim.start(program)
            .map_err(|e| RuntimeError::Sim(Box::new(e)))?;
    }
    let mut halted = vec![false; n];
    loop {
        let mut progressed = false;
        for m in 0..n {
            if halted[m] {
                continue;
            }
            // Run machine m until it halts or blocks.
            loop {
                match sims[m].step().map_err(|e| RuntimeError::Sim(Box::new(e)))? {
                    StepOutcome::Executed => {
                        progressed = true;
                    }
                    StepOutcome::Halted => {
                        halted[m] = true;
                        progressed = true;
                        break;
                    }
                    StepOutcome::NeedsRemote { .. } => break,
                }
            }
            // Deliver everything machine m sent to all peers.
            let sends = sims[m].take_sends();
            if !sends.is_empty() {
                progressed = true;
            }
            for (chan, data) in sends {
                for (p, sim) in sims.iter_mut().enumerate() {
                    if p != m {
                        sim.inject_remote(chan, m, data.clone());
                    }
                }
            }
        }
        if halted.iter().all(|&h| h) {
            return Ok(());
        }
        if !progressed {
            let blocked = halted.iter().filter(|&&h| !h).count();
            return Err(RuntimeError::Deadlock { blocked });
        }
    }
}

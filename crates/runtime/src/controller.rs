//! The system controller and runtime policies.

use std::collections::HashMap;

use vfpga_core::MappingDatabase;
use vfpga_fabric::{Cluster, DeviceId};
use vfpga_hsabs::{
    AllocationId, DeviceHealth, HsError, LowLevelController, TransientFaultInjector,
};
use vfpga_sim::{SimTime, SpanCtx, SpanId, SpanTracer, TraceId, CONTROL_TID};

use crate::RuntimeError;

/// The runtime resource-management policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// The paper's baseline system: AS ISA only. FPGAs are managed at
    /// per-device granularity — one accelerator occupies one whole FPGA,
    /// no spatial sharing, no multi-FPGA deployment.
    Baseline,
    /// The framework, but one accelerator may only span FPGAs of a single
    /// type (emulating the homogeneous-cluster multi-FPGA support of
    /// existing HS abstractions; Fig. 12's "restricted" system).
    Restricted,
    /// The full framework: spatial sharing plus heterogeneous multi-FPGA
    /// deployment.
    Full,
}

/// Why a deployment attempt was turned down (as opposed to failing with a
/// hard [`RuntimeError`]): the cluster can serve the instance in principle,
/// just not right now or not under the active policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RejectReason {
    /// The active policy filters out every mapping option the database
    /// offers (e.g. the baseline policy with a multi-FPGA-only entry).
    PolicyExcluded,
    /// Statically provisioned baseline: every provisioned device is busy.
    NoFreeDevice,
    /// No feasible placement: too few free virtual blocks under the
    /// policy's placement constraints.
    InsufficientCapacity,
    /// Partial reconfiguration failed transiently while committing an
    /// otherwise-feasible placement (injected fault); the attempt rolled
    /// back cleanly and retrying may succeed.
    TransientFault,
}

impl RejectReason {
    /// All reasons, in a stable order (for per-reason breakdowns).
    pub const ALL: [RejectReason; 4] = [
        RejectReason::PolicyExcluded,
        RejectReason::NoFreeDevice,
        RejectReason::InsufficientCapacity,
        RejectReason::TransientFault,
    ];

    /// Stable label for metrics and trace export.
    pub fn as_str(self) -> &'static str {
        match self {
            RejectReason::PolicyExcluded => "policy_excluded",
            RejectReason::NoFreeDevice => "no_free_device",
            RejectReason::InsufficientCapacity => "insufficient_capacity",
            RejectReason::TransientFault => "transient_fault",
        }
    }

    /// Index into [`RejectReason::ALL`].
    pub fn index(self) -> usize {
        match self {
            RejectReason::PolicyExcluded => 0,
            RejectReason::NoFreeDevice => 1,
            RejectReason::InsufficientCapacity => 2,
            RejectReason::TransientFault => 3,
        }
    }
}

/// Lifetime counters of one [`SystemController`]: every deployment
/// decision it has made, cheap enough to update unconditionally.
#[derive(Debug, Clone, Copy, Default)]
pub struct ControllerStats {
    /// Successful deployments.
    pub deploys: u64,
    /// Releases performed.
    pub releases: u64,
    /// Rejected attempts, indexed by [`RejectReason::index`]. Counts
    /// every attempt, whether it was answered by a full placement probe
    /// or by the feasibility cache.
    pub rejects: [u64; 4],
    /// Device failures handled via
    /// [`SystemController::handle_device_failure`].
    pub device_failures: u64,
    /// Live deployments interrupted by device failures.
    pub interrupted: u64,
    /// Deployment attempts that ran a full placement probe (database
    /// lookup + option scan) rather than being answered from the
    /// feasibility cache. `probes + cache_hits` is the total attempt
    /// count; the bench artifact reports `probes` as `deploy_attempts`.
    pub probes: u64,
    /// Deployment attempts answered by the capacity-epoch feasibility
    /// cache without probing.
    pub cache_hits: u64,
}

impl ControllerStats {
    /// Total rejected attempts across all reasons.
    pub fn total_rejects(&self) -> u64 {
        self.rejects.iter().sum()
    }

    /// Rejections for one reason.
    pub fn rejects_for(&self, reason: RejectReason) -> u64 {
        self.rejects[reason.index()]
    }
}

/// Identifies one live deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DeploymentId(pub u64);

/// One deployed unit.
#[derive(Debug, Clone)]
pub struct Placement {
    /// The device holding the unit.
    pub device: DeviceId,
    /// The HS allocation backing it.
    pub allocation: AllocationId,
    /// Fraction of the accelerator's compute capability in this unit.
    pub compute_share: f64,
}

/// A live deployment of one accelerator instance.
#[derive(Debug, Clone)]
pub struct Deployment {
    /// This deployment's id.
    pub id: DeploymentId,
    /// The instance name requested.
    pub instance: String,
    /// Under a statically provisioned baseline: the instance actually
    /// installed on the device serving this task (which may differ from
    /// the requested one — the inelasticity the paper describes).
    pub installed_instance: Option<String>,
    /// The deployed units.
    pub placements: Vec<Placement>,
    /// Latency-insensitive boundary crossings on the critical path (from
    /// the mapping entry).
    pub crossings_per_op: usize,
    /// Inter-unit traffic in bits per activation.
    pub cut_bandwidth: u64,
    /// Largest ring distance between any two of the deployment's devices.
    pub max_ring_hops: usize,
}

impl Deployment {
    /// Number of FPGAs this deployment spans.
    pub fn num_units(&self) -> usize {
        self.placements.len()
    }

    /// Number of *distinct* devices hosting the deployment's units.
    /// Co-located units (several units on one FPGA) exchange state through
    /// local DRAM and never touch the ring.
    pub fn num_devices(&self) -> usize {
        let mut devices: Vec<_> = self.placements.iter().map(|p| p.device).collect();
        devices.sort_unstable();
        devices.dedup();
        devices.len()
    }
}

/// Outcome of a preemptive scale-down request
/// ([`SystemController::demote_deployment`]).
#[derive(Debug)]
pub enum ScaleDown {
    /// The deployment now runs as the returned smaller variant; the old
    /// allocation was released.
    Demoted(Deployment),
    /// No strictly smaller mapping option exists (or the policy forbids
    /// resizing); nothing changed.
    AlreadyMinimal,
    /// The old allocation was released but every smaller variant failed
    /// to commit (transient reconfiguration faults on every candidate).
    /// The deployment is gone; its task must re-enter the caller's
    /// migration/admission machinery like an interrupted one.
    Displaced,
}

/// The system controller (Fig. 7): searches the mapping database for
/// deployable mapping results under the active policy and drives the HS
/// abstraction's low-level controller.
#[derive(Debug)]
pub struct SystemController {
    cluster: Cluster,
    db: MappingDatabase,
    llc: LowLevelController,
    policy: Policy,
    /// Whole-device occupancy for the baseline policy.
    device_taken: Vec<bool>,
    /// Static provisioning (baseline policy): the instance compiled onto
    /// each device at offline time. The paper's baseline fixes resource
    /// allocation "at the offline compilation time, resulting in a low
    /// elasticity" — tasks run on whatever accelerator their device hosts.
    provisioned: Option<Vec<String>>,
    live: HashMap<u64, Vec<(DeviceId, AllocationId)>>,
    next_id: u64,
    stats: ControllerStats,
    /// Device-type names in `cluster.device_types()` order; the indexed
    /// placement fast path works in these indexes instead of allocating
    /// type-name `String`s per probe.
    type_names: Vec<String>,
    /// Each device's index into `type_names`.
    device_type_idx: Vec<usize>,
    /// Capacity-epoch feasibility cache: instance name → (epoch, reason)
    /// of its last capacity rejection. While the LLC's capacity epoch is
    /// unchanged, free capacity can only have shrunk, so the rejection is
    /// replayed without re-probing. Transient faults are never cached.
    feas_cache: HashMap<String, (u64, RejectReason)>,
    cache_enabled: bool,
}

impl SystemController {
    /// Creates a controller over a cluster with a compiled mapping
    /// database.
    pub fn new(cluster: Cluster, db: MappingDatabase, policy: Policy) -> Self {
        let llc = LowLevelController::new(&cluster);
        let device_taken = vec![false; cluster.len()];
        let type_names: Vec<String> = cluster
            .device_types()
            .iter()
            .map(|t| t.name().to_string())
            .collect();
        let device_type_idx: Vec<usize> = cluster
            .iter()
            .map(|d| {
                type_names
                    .iter()
                    .position(|n| n == d.device_type().name())
                    .expect("every device's type appears in device_types()")
            })
            .collect();
        SystemController {
            cluster,
            db,
            llc,
            policy,
            device_taken,
            provisioned: None,
            live: HashMap::new(),
            next_id: 0,
            stats: ControllerStats::default(),
            type_names,
            device_type_idx,
            feas_cache: HashMap::new(),
            cache_enabled: true,
        }
    }

    /// Enables or disables the capacity-epoch feasibility cache (on by
    /// default). Disabling exists for A/B determinism tests and the bench
    /// baseline: both modes must admit the same tasks at the same
    /// sim-times — the cache only short-circuits probes whose outcome is
    /// already known. Toggling clears any cached rejections.
    pub fn set_feasibility_cache(&mut self, enabled: bool) {
        self.cache_enabled = enabled;
        self.feas_cache.clear();
    }

    /// The low-level controller's capacity epoch: bumped on every
    /// release, eviction, and recovery. Schedulers use it to skip
    /// admission work that cannot succeed (see
    /// [`set_feasibility_cache`](SystemController::set_feasibility_cache)).
    pub fn capacity_epoch(&self) -> u64 {
        self.llc.capacity_epoch()
    }

    /// Statically provisions the cluster (baseline policy): device `i`
    /// hosts `instances[i]`, fixed offline. Tasks then run on whichever
    /// provisioned device is free — possibly an ill-fitting accelerator.
    ///
    /// # Panics
    ///
    /// Panics if `instances.len()` differs from the cluster size or an
    /// instance is not in the database.
    pub fn with_provisioning(mut self, instances: Vec<String>) -> Self {
        assert_eq!(
            instances.len(),
            self.cluster.len(),
            "one provisioned instance per device"
        );
        for (i, name) in instances.iter().enumerate() {
            let entry = self
                .db
                .entry(name)
                .unwrap_or_else(|| panic!("provisioned instance `{name}` not in database"));
            let dt = self.cluster.device(DeviceId(i)).device_type().name();
            assert!(
                entry
                    .options
                    .iter()
                    .any(|o| o.num_units() == 1 && o.units[0].images.contains_key(dt)),
                "provisioned instance `{name}` cannot fit device {i} ({dt})"
            );
        }
        self.provisioned = Some(instances);
        self
    }

    /// The active policy.
    pub fn policy(&self) -> Policy {
        self.policy
    }

    /// The mapping database.
    pub fn database(&self) -> &MappingDatabase {
        &self.db
    }

    /// The cluster under management.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Lifetime deployment/release/rejection counters.
    pub fn stats(&self) -> &ControllerStats {
        &self.stats
    }

    /// Installs a deterministic transient configure-failure injector on
    /// the low-level controller: each otherwise-successful configuration
    /// request fails with probability `prob`, drawn from a stream seeded
    /// by `seed`. Pass `prob = 0.0` to disable.
    pub fn enable_transient_faults(&mut self, prob: f64, seed: u64) {
        self.llc.set_fault_injector(if prob > 0.0 {
            Some(TransientFaultInjector::new(prob, seed))
        } else {
            None
        });
    }

    /// Runtime health of one device.
    pub fn device_health(&self, device: DeviceId) -> DeviceHealth {
        self.llc.device_health(device)
    }

    /// Number of devices currently failed.
    pub fn failed_devices(&self) -> usize {
        self.llc.failed_devices()
    }

    /// Live allocations the low-level controller still holds on `device`
    /// (zero for a failed device — the eviction invariant).
    pub fn allocations_on(&self, device: DeviceId) -> usize {
        self.llc.allocations_on(device)
    }

    /// Handles the failure of one device: evicts its allocations, tears
    /// down every live deployment that had a unit on it (their surviving
    /// units on other devices release too — a deployment is all-or-
    /// nothing), and returns the interrupted deployment ids in ascending
    /// order so the caller can migrate them. After this call no live
    /// deployment references the failed device.
    ///
    /// Idempotent: failing an already-failed device interrupts nothing.
    pub fn handle_device_failure(&mut self, device: DeviceId) -> Vec<DeploymentId> {
        self.handle_device_failure_inner(device)
    }

    /// [`handle_device_failure`] with span tracing: the whole eviction is
    /// recorded as a zero-duration `device_failure` control-plane span
    /// ([`TraceId::NONE`], the failed device's `control` lane) carrying the
    /// device id and the number of interrupted deployments — so Perfetto
    /// shows failure-handling markers on each FPGA row.
    ///
    /// [`handle_device_failure`]: SystemController::handle_device_failure
    pub fn handle_device_failure_spanned(
        &mut self,
        device: DeviceId,
        spans: &mut SpanTracer,
        at: SimTime,
    ) -> Vec<DeploymentId> {
        let span = spans.begin("device_failure", TraceId::NONE, None, at);
        spans.set_lane(span, device.0 as u64 + 1, CONTROL_TID);
        spans.attr(span, "device", device.0);
        let interrupted = self.handle_device_failure_inner(device);
        spans.attr(span, "interrupted", interrupted.len());
        spans.end(span, at);
        interrupted
    }

    fn handle_device_failure_inner(&mut self, device: DeviceId) -> Vec<DeploymentId> {
        let was_healthy = self.llc.device_health(device) == DeviceHealth::Healthy;
        let evicted = self.llc.evict_device(device);
        if was_healthy {
            self.stats.device_failures += 1;
        }
        let evicted: std::collections::HashSet<AllocationId> = evicted.into_iter().collect();
        let mut interrupted: Vec<DeploymentId> = self
            .live
            .iter()
            .filter(|(_, placements)| placements.iter().any(|(_, a)| evicted.contains(a)))
            .map(|(id, _)| DeploymentId(*id))
            .collect();
        interrupted.sort_by_key(|d| d.0);
        for id in &interrupted {
            let placements = self.live.remove(&id.0).expect("collected from live");
            for (d, a) in placements {
                if !evicted.contains(&a) {
                    // Surviving units release normally; their slots free up
                    // for the migration the caller will attempt.
                    let _ = self.llc.release(a);
                }
                if self.policy == Policy::Baseline {
                    self.device_taken[d.0] = false;
                }
            }
        }
        self.stats.interrupted += interrupted.len() as u64;
        interrupted
    }

    /// Handles the recovery of a failed device: it rejoins placement with
    /// every slot free.
    pub fn handle_device_recovery(&mut self, device: DeviceId) {
        self.llc.recover_device(device);
    }

    /// Attempts to deploy an instance. Returns `Ok(None)` when the cluster
    /// currently lacks capacity (the caller queues the task).
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::UnknownInstance`] for unregistered
    /// instances.
    pub fn try_deploy(&mut self, instance: &str) -> Result<Option<Deployment>, RuntimeError> {
        self.try_deploy_explained(instance).map(|r| r.ok())
    }

    /// Attempts to deploy an instance, reporting *why* when turned down:
    /// `Ok(Err(reason))` distinguishes policy exclusion, busy provisioned
    /// devices, and capacity exhaustion — the rejection-reason breakdown
    /// the cloud simulator's observability layer aggregates.
    ///
    /// The greedy policy scans the instance's mapping results sorted by
    /// ascending number of soft blocks, taking the first feasible
    /// allocation — minimizing the number of allocated FPGAs and therefore
    /// the inter-FPGA communication overhead (Section 2.3).
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::UnknownInstance`] for unregistered
    /// instances.
    pub fn try_deploy_explained(
        &mut self,
        instance: &str,
    ) -> Result<Result<Deployment, RejectReason>, RuntimeError> {
        let outcome = self.deploy_inner(instance, None)?;
        match &outcome {
            Ok(_) => self.stats.deploys += 1,
            Err(reason) => self.stats.rejects[reason.index()] += 1,
        }
        Ok(outcome)
    }

    /// [`try_deploy_explained`] with span tracing: the decision is recorded
    /// as a zero-duration `deploy` span under `parent` (the task's root
    /// span in the cloud simulator) carrying the instance name plus the
    /// outcome — `deployed` with the unit count, or `rejected` with the
    /// [`RejectReason`] label. Each partial-reconfiguration request the
    /// commit issues nests as a `reconfigure` child on the target device's
    /// lane, so one glance at Perfetto shows *which* FPGAs an admission
    /// touched (including rolled-back attempts).
    ///
    /// # Errors
    ///
    /// Exactly as [`try_deploy_explained`].
    ///
    /// [`try_deploy_explained`]: SystemController::try_deploy_explained
    pub fn try_deploy_spanned(
        &mut self,
        instance: &str,
        spans: &mut SpanTracer,
        trace: TraceId,
        parent: Option<SpanId>,
        at: SimTime,
    ) -> Result<Result<Deployment, RejectReason>, RuntimeError> {
        let span = spans.begin("deploy", trace, parent, at);
        spans.attr(span, "instance", instance.to_string());
        let outcome = self.deploy_inner(
            instance,
            Some(SpanCtx {
                spans,
                trace,
                parent: Some(span),
                at,
            }),
        );
        match &outcome {
            Ok(Ok(d)) => {
                self.stats.deploys += 1;
                spans.attr(span, "outcome", "deployed");
                spans.attr(span, "units", d.num_units());
            }
            Ok(Err(reason)) => {
                self.stats.rejects[reason.index()] += 1;
                spans.attr(span, "outcome", "rejected");
                spans.attr(span, "reason", reason.as_str());
            }
            Err(_) => {
                spans.attr(span, "outcome", "error");
            }
        }
        spans.end(span, at);
        outcome
    }

    fn deploy_inner(
        &mut self,
        instance: &str,
        ctx: Option<SpanCtx<'_>>,
    ) -> Result<Result<Deployment, RejectReason>, RuntimeError> {
        // Feasibility-cache fast path: while the capacity epoch is
        // unchanged, free capacity can only have shrunk, so an instance
        // rejected for capacity reasons at this epoch is still rejected.
        // The replayed outcome (and any span the caller records around
        // it) is exactly what a full probe would produce — capacity
        // rejections touch no device state and emit no reconfigure
        // spans — which is what keeps cache-on and cache-off runs
        // byte-identical.
        if self.cache_enabled {
            if let Some(&(epoch, reason)) = self.feas_cache.get(instance) {
                if epoch == self.llc.capacity_epoch() {
                    self.stats.cache_hits += 1;
                    return Ok(Err(reason));
                }
            }
        }
        self.stats.probes += 1;
        let outcome = self.probe_inner(instance, ctx)?;
        if let Err(reason) = outcome {
            // A transient fault says nothing about capacity — an
            // immediate retry may succeed — so it is never cached.
            if self.cache_enabled && reason != RejectReason::TransientFault {
                self.feas_cache
                    .insert(instance.to_string(), (self.llc.capacity_epoch(), reason));
            }
        }
        Ok(outcome)
    }

    /// One full placement probe: database lookup, option scan, commit.
    /// [`deploy_inner`](Self::deploy_inner) wraps it with the feasibility
    /// cache.
    fn probe_inner(
        &mut self,
        instance: &str,
        mut ctx: Option<SpanCtx<'_>>,
    ) -> Result<Result<Deployment, RejectReason>, RuntimeError> {
        let entry = self
            .db
            .entry_shared(instance)
            .ok_or_else(|| RuntimeError::UnknownInstance(instance.to_string()))?;

        // Statically provisioned baseline: the task runs on whatever free
        // device's preinstalled accelerator, preferring a matching install.
        if self.policy == Policy::Baseline && self.provisioned.is_some() {
            return self.deploy_provisioned(instance, ctx);
        }

        // Per-type free-slot summary, computed once per probe: the most
        // free slots any single device of each type offers. A unit that
        // cannot fit the *best* device of any eligible type cannot fit at
        // all, so whole options are rejected below without scanning
        // devices.
        let max_free = self.type_max_free();

        let mut any_policy_eligible = false;
        for option in &entry.options {
            if self.policy == Policy::Baseline && option.num_units() > 1 {
                continue;
            }
            any_policy_eligible = true;
            let Some(devices) = self.find_placement(option, &max_free) else {
                continue;
            };
            // Commit the placement.
            let mut allocations: Vec<(DeviceId, AllocationId)> = Vec::new();
            let mut placements = Vec::new();
            for (unit, &device) in option.units.iter().zip(&devices) {
                let type_name = self.cluster.device(device).device_type().name();
                let image = &unit.images[type_name];
                let alloc = match self.llc.configure_spanned(
                    device,
                    image,
                    ctx.as_mut().map(|c| c.reborrow()),
                ) {
                    Ok(a) => a,
                    Err(e) => {
                        // Roll back anything configured so far.
                        for (_, a) in allocations {
                            let _ = self.llc.release(a);
                        }
                        // A transient (injected) reconfiguration failure is
                        // a soft outcome: the placement was feasible, the
                        // commit rolled back cleanly, and the caller may
                        // simply retry. Everything else is a hard error.
                        return match e {
                            HsError::TransientConfigureFailure(_) => {
                                Ok(Err(RejectReason::TransientFault))
                            }
                            e => Err(RuntimeError::Hs(e)),
                        };
                    }
                };
                allocations.push((device, alloc));
                placements.push(Placement {
                    device,
                    allocation: alloc,
                    compute_share: unit.compute_share,
                });
            }
            if self.policy == Policy::Baseline {
                for &d in &devices {
                    self.device_taken[d.0] = true;
                }
            }
            let mut max_ring_hops = 0;
            for a in &placements {
                for b in &placements {
                    max_ring_hops = max_ring_hops.max(self.cluster.ring_hops(a.device, b.device));
                }
            }
            let id = DeploymentId(self.next_id);
            self.next_id += 1;
            self.live.insert(id.0, allocations);
            return Ok(Ok(Deployment {
                id,
                instance: instance.to_string(),
                installed_instance: None,
                placements,
                crossings_per_op: option.crossings_per_op,
                cut_bandwidth: option.cut_bandwidth,
                max_ring_hops,
            }));
        }
        Ok(Err(if any_policy_eligible {
            RejectReason::InsufficientCapacity
        } else {
            RejectReason::PolicyExcluded
        }))
    }

    /// Deploys a task onto a statically provisioned device (baseline): the
    /// device keeps the accelerator that was compiled onto it offline.
    fn deploy_provisioned(
        &mut self,
        instance: &str,
        ctx: Option<SpanCtx<'_>>,
    ) -> Result<Result<Deployment, RejectReason>, RuntimeError> {
        let prov = self.provisioned.as_ref().expect("checked by caller");
        let mut candidates: Vec<DeviceId> = self
            .cluster
            .device_ids()
            .filter(|d| !self.device_taken[d.0] && self.llc.is_healthy(*d))
            .collect();
        // Prefer a device whose installed instance matches the request.
        candidates.sort_by_key(|d| (prov[d.0] != instance, d.0));
        let Some(&device) = candidates.first() else {
            return Ok(Err(RejectReason::NoFreeDevice));
        };
        let installed = prov[device.0].clone();
        let entry = self
            .db
            .entry_shared(&installed)
            .expect("validated at provisioning");
        let option = entry
            .options
            .iter()
            .find(|o| o.num_units() == 1)
            .expect("validated at provisioning");
        let dt = self.cluster.device(device).device_type().name();
        let image = &option.units[0].images[dt];
        let alloc = match self.llc.configure_spanned(device, image, ctx) {
            Ok(a) => a,
            Err(HsError::TransientConfigureFailure(_)) => {
                return Ok(Err(RejectReason::TransientFault))
            }
            Err(e) => return Err(RuntimeError::Hs(e)),
        };
        self.device_taken[device.0] = true;
        let id = DeploymentId(self.next_id);
        self.next_id += 1;
        self.live.insert(id.0, vec![(device, alloc)]);
        Ok(Ok(Deployment {
            id,
            instance: instance.to_string(),
            installed_instance: Some(installed),
            placements: vec![Placement {
                device,
                allocation: alloc,
                compute_share: 1.0,
            }],
            crossings_per_op: 0,
            cut_bandwidth: 0,
            max_ring_hops: 0,
        }))
    }

    /// The most free slots any single placeable device of each type
    /// offers right now (indexed like `type_names`). Computed once per
    /// probe; [`option_may_fit`](Self::option_may_fit) compares unit
    /// block counts against it to reject whole options without the
    /// per-device scan.
    fn type_max_free(&self) -> Vec<usize> {
        let mut max_free = vec![0usize; self.type_names.len()];
        for device in self.cluster.device_ids() {
            // Whole-device granularity: a taken baseline device offers
            // nothing, matching the scan's filter below.
            if self.policy == Policy::Baseline && self.device_taken[device.0] {
                continue;
            }
            let t = self.device_type_idx[device.0];
            max_free[t] = max_free[t].max(self.llc.slots_free(device));
        }
        max_free
    }

    /// Necessary condition for an option to place: every unit fits the
    /// best device of at least one eligible type. Ignores units competing
    /// for the same slots, so `true` still needs the full scan — but a
    /// `false` skips it, and under saturation that is the common case.
    fn option_may_fit(
        &self,
        option: &vfpga_core::DeploymentOption,
        restrict: Option<usize>,
        max_free: &[usize],
    ) -> bool {
        option.units.iter().all(|unit| {
            self.type_names.iter().enumerate().any(|(t, name)| {
                if restrict.is_some_and(|r| r != t) {
                    return false;
                }
                unit.images
                    .get(name)
                    .is_some_and(|img| img.blocks() <= max_free[t])
            })
        })
    }

    /// Finds devices for each unit of an option under the active policy,
    /// without committing. Units are assigned best-fit (most-loaded
    /// feasible device first) with ring proximity as tie-break.
    fn find_placement(
        &self,
        option: &vfpga_core::DeploymentOption,
        max_free: &[usize],
    ) -> Option<Vec<DeviceId>> {
        match self.policy {
            // Restricted: try each device type exclusively, in
            // `device_types()` order.
            Policy::Restricted => (0..self.type_names.len()).find_map(|t| {
                self.option_may_fit(option, Some(t), max_free)
                    .then(|| self.find_placement_with(option, Some(t)))
                    .flatten()
            }),
            _ => self
                .option_may_fit(option, None, max_free)
                .then(|| self.find_placement_with(option, None))
                .flatten(),
        }
    }

    fn find_placement_with(
        &self,
        option: &vfpga_core::DeploymentOption,
        restrict: Option<usize>,
    ) -> Option<Vec<DeviceId>> {
        let mut free: Vec<usize> = self
            .cluster
            .device_ids()
            .map(|d| self.llc.slots_free(d))
            .collect();
        // Per-unit block counts by type index, resolved once instead of a
        // string-keyed map lookup per (unit, device) pair.
        let blocks_by_type: Vec<Vec<Option<usize>>> = option
            .units
            .iter()
            .map(|unit| {
                self.type_names
                    .iter()
                    .map(|name| unit.images.get(name).map(|img| img.blocks()))
                    .collect()
            })
            .collect();
        let mut chosen: Vec<DeviceId> = Vec::new();
        for blocks_of in &blocks_by_type {
            let mut best: Option<(usize, usize, DeviceId)> = None; // (free_after, hops, dev)
            for device in self.cluster.device_ids() {
                let t = self.device_type_idx[device.0];
                if restrict.is_some_and(|r| r != t) {
                    continue;
                }
                if self.policy == Policy::Baseline {
                    // Whole-device granularity: device must be untouched.
                    if self.device_taken[device.0] || free[device.0] != self.llc.slots_total(device)
                    {
                        continue;
                    }
                }
                let Some(blocks) = blocks_of[t] else {
                    continue;
                };
                if free[device.0] < blocks {
                    continue;
                }
                let free_after = free[device.0] - blocks;
                let hops = chosen
                    .first()
                    .map(|&f| self.cluster.ring_hops(f, device))
                    .unwrap_or(0);
                let key = (free_after, hops, device);
                if best.is_none_or(|b| key < b) {
                    best = Some(key);
                }
            }
            let (_, _, device) = best?;
            free[device.0] -= blocks_of[self.device_type_idx[device.0]]
                .expect("chosen device's type has an image");
            chosen.push(device);
        }
        Some(chosen)
    }

    /// Releases a deployment, freeing its virtual blocks (and, under the
    /// baseline policy, its whole devices).
    ///
    /// # Errors
    ///
    /// Returns an HS error for unknown deployments.
    pub fn release(&mut self, deployment: &Deployment) -> Result<(), RuntimeError> {
        let allocations = self.live.remove(&deployment.id.0).ok_or(RuntimeError::Hs(
            vfpga_hsabs::HsError::UnknownAllocation(deployment.id.0),
        ))?;
        for (_, a) in allocations {
            self.llc.release(a)?;
        }
        if self.policy == Policy::Baseline {
            for p in &deployment.placements {
                self.device_taken[p.device.0] = false;
            }
        }
        self.stats.releases += 1;
        Ok(())
    }

    /// Unit count of the largest mapping option strictly smaller than
    /// `deployment` — the variant a preemptive scale-down would land on —
    /// or `None` when the deployment is already minimal (or the policy
    /// forbids resizing). Lets schedulers rank demotion victims by how
    /// few units each would lose without committing anything.
    pub fn scale_down_target(&self, deployment: &Deployment) -> Option<usize> {
        if self.policy == Policy::Baseline {
            return None;
        }
        let entry = self.db.entry_shared(&deployment.instance)?;
        entry
            .options
            .iter()
            .map(vfpga_core::DeploymentOption::num_units)
            .filter(|&u| u < deployment.num_units())
            .max()
    }

    /// Attempts to grow a live deployment to a higher-unit mapping
    /// variant using only currently free capacity. Candidate variants are
    /// ranked co-located-first — smallest `max_ring_hops`, then fewest
    /// distinct devices, then fewest units — and offered to `accept` as a
    /// placed (but uncommitted) [`Deployment`]; the first accepted
    /// candidate is committed. The running allocation is held until the
    /// new footprint is fully configured, so a failed promotion never
    /// risks the task: a transient reconfiguration fault rolls back the
    /// new units and returns `Ok(None)` with the old deployment intact.
    ///
    /// On success the old allocation is released (bumping the capacity
    /// epoch) and the new deployment — with a fresh id — is returned.
    /// Returns `Ok(None)` when no larger variant fits, none is accepted,
    /// or the policy forbids resizing.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::UnknownInstance`] for unregistered
    /// instances and propagates hard HS errors (after rolling back any
    /// units configured for the candidate).
    pub fn promote_deployment(
        &mut self,
        deployment: &Deployment,
        accept: &mut dyn FnMut(&Deployment) -> bool,
        mut ctx: Option<SpanCtx<'_>>,
    ) -> Result<Option<Deployment>, RuntimeError> {
        if self.policy == Policy::Baseline || deployment.installed_instance.is_some() {
            return Ok(None);
        }
        let entry = self
            .db
            .entry_shared(&deployment.instance)
            .ok_or_else(|| RuntimeError::UnknownInstance(deployment.instance.clone()))?;
        let max_free = self.type_max_free();
        // Rank every placeable larger variant before committing anything:
        // all placements are computed against the same free state, and a
        // rolled-back transient leaves that state unchanged, so the
        // ranking stays valid across commit attempts.
        let mut candidates = Vec::new();
        for option in &entry.options {
            if option.num_units() <= deployment.num_units() {
                continue;
            }
            let Some(devices) = self.find_placement(option, &max_free) else {
                continue;
            };
            let mut hops = 0;
            let mut distinct: Vec<DeviceId> = devices.clone();
            distinct.sort_unstable();
            distinct.dedup();
            for a in &devices {
                for b in &devices {
                    hops = hops.max(self.cluster.ring_hops(*a, *b));
                }
            }
            candidates.push((hops, distinct.len(), option.num_units(), option, devices));
        }
        candidates.sort_by_key(|&(hops, distinct, units, _, _)| (hops, distinct, units));
        for (hops, _, _, option, devices) in candidates {
            // The candidate is offered with placeholder allocation ids:
            // service-time models read devices, shares, and link shape,
            // never the HS handles, and nothing is configured until the
            // caller accepts.
            let phantom = Deployment {
                id: deployment.id,
                instance: deployment.instance.clone(),
                installed_instance: None,
                placements: devices
                    .iter()
                    .zip(&option.units)
                    .map(|(&device, unit)| Placement {
                        device,
                        allocation: AllocationId(u64::MAX),
                        compute_share: unit.compute_share,
                    })
                    .collect(),
                crossings_per_op: option.crossings_per_op,
                cut_bandwidth: option.cut_bandwidth,
                max_ring_hops: hops,
            };
            if !accept(&phantom) {
                continue;
            }
            let mut allocations: Vec<(DeviceId, AllocationId)> = Vec::new();
            let mut placements = Vec::new();
            for (unit, &device) in option.units.iter().zip(&devices) {
                let type_name = self.cluster.device(device).device_type().name();
                let image = &unit.images[type_name];
                match self
                    .llc
                    .configure_spanned(device, image, ctx.as_mut().map(|c| c.reborrow()))
                {
                    Ok(alloc) => {
                        allocations.push((device, alloc));
                        placements.push(Placement {
                            device,
                            allocation: alloc,
                            compute_share: unit.compute_share,
                        });
                    }
                    Err(e) => {
                        // Roll back the half-built candidate; the running
                        // deployment was never touched.
                        for (_, a) in allocations {
                            let _ = self.llc.release(a);
                        }
                        return match e {
                            HsError::TransientConfigureFailure(_) => Ok(None),
                            e => Err(RuntimeError::Hs(e)),
                        };
                    }
                }
            }
            // The new footprint is in place: swap the old one out.
            let old = self.live.remove(&deployment.id.0).ok_or(RuntimeError::Hs(
                vfpga_hsabs::HsError::UnknownAllocation(deployment.id.0),
            ))?;
            for (_, a) in old {
                self.llc.release(a)?;
            }
            self.stats.releases += 1;
            self.stats.deploys += 1;
            let id = DeploymentId(self.next_id);
            self.next_id += 1;
            self.live.insert(id.0, allocations);
            return Ok(Some(Deployment {
                id,
                instance: deployment.instance.clone(),
                installed_instance: None,
                placements,
                crossings_per_op: option.crossings_per_op,
                cut_bandwidth: option.cut_bandwidth,
                max_ring_hops: hops,
            }));
        }
        Ok(None)
    }

    /// Preemptively shrinks a live deployment to the largest strictly
    /// smaller mapping variant (fewest lost units), freeing capacity for
    /// queued work. Unlike promotion the old allocation is released
    /// *first* — the smaller variant re-places into the superset the
    /// release opens up, so the demotion itself can never be blocked by
    /// the deployment it shrinks. Progressively smaller variants are
    /// tried if a commit flakes; if every one fails the deployment is
    /// gone and [`ScaleDown::Displaced`] tells the caller to route the
    /// task through its interruption/migration machinery.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::UnknownInstance`] for unregistered
    /// instances, an HS error when the deployment is not live, and
    /// propagates hard HS errors.
    pub fn demote_deployment(
        &mut self,
        deployment: &Deployment,
        mut ctx: Option<SpanCtx<'_>>,
    ) -> Result<ScaleDown, RuntimeError> {
        if self.policy == Policy::Baseline || deployment.installed_instance.is_some() {
            return Ok(ScaleDown::AlreadyMinimal);
        }
        let entry = self
            .db
            .entry_shared(&deployment.instance)
            .ok_or_else(|| RuntimeError::UnknownInstance(deployment.instance.clone()))?;
        let mut smaller: Vec<_> = entry
            .options
            .iter()
            .filter(|o| o.num_units() < deployment.num_units())
            .collect();
        if smaller.is_empty() {
            return Ok(ScaleDown::AlreadyMinimal);
        }
        smaller.sort_by_key(|o| std::cmp::Reverse(o.num_units()));
        let old = self.live.remove(&deployment.id.0).ok_or(RuntimeError::Hs(
            vfpga_hsabs::HsError::UnknownAllocation(deployment.id.0),
        ))?;
        for (_, a) in old {
            self.llc.release(a)?;
        }
        self.stats.releases += 1;
        for option in smaller {
            // Free state changed at the release (and stays changed after
            // a rolled-back transient), so re-summarize per candidate.
            let max_free = self.type_max_free();
            let Some(devices) = self.find_placement(option, &max_free) else {
                continue;
            };
            let mut allocations: Vec<(DeviceId, AllocationId)> = Vec::new();
            let mut placements = Vec::new();
            let mut transient = false;
            for (unit, &device) in option.units.iter().zip(&devices) {
                let type_name = self.cluster.device(device).device_type().name();
                let image = &unit.images[type_name];
                match self
                    .llc
                    .configure_spanned(device, image, ctx.as_mut().map(|c| c.reborrow()))
                {
                    Ok(alloc) => {
                        allocations.push((device, alloc));
                        placements.push(Placement {
                            device,
                            allocation: alloc,
                            compute_share: unit.compute_share,
                        });
                    }
                    Err(HsError::TransientConfigureFailure(_)) => {
                        for (_, a) in allocations.drain(..) {
                            let _ = self.llc.release(a);
                        }
                        transient = true;
                        break;
                    }
                    Err(e) => {
                        for (_, a) in allocations {
                            let _ = self.llc.release(a);
                        }
                        return Err(RuntimeError::Hs(e));
                    }
                }
            }
            if transient {
                continue;
            }
            let mut max_ring_hops = 0;
            for a in &placements {
                for b in &placements {
                    max_ring_hops = max_ring_hops.max(self.cluster.ring_hops(a.device, b.device));
                }
            }
            self.stats.deploys += 1;
            let id = DeploymentId(self.next_id);
            self.next_id += 1;
            self.live.insert(id.0, allocations);
            return Ok(ScaleDown::Demoted(Deployment {
                id,
                instance: deployment.instance.clone(),
                installed_instance: None,
                placements,
                crossings_per_op: option.crossings_per_op,
                cut_bandwidth: option.cut_bandwidth,
                max_ring_hops,
            }));
        }
        Ok(ScaleDown::Displaced)
    }

    /// The concrete virtual-block slot indexes backing one allocation
    /// (ascending); `None` once released or evicted. The trace exporter
    /// uses the first slot as the deployment's `vblock` lane.
    pub fn allocation_slots(&self, allocation: AllocationId) -> Option<&[usize]> {
        self.llc.slots_of(allocation)
    }

    /// Cluster-wide virtual-block occupancy (0..=1).
    pub fn occupancy(&self) -> f64 {
        self.llc.occupancy()
    }

    /// Number of live deployments.
    pub fn live_deployments(&self) -> usize {
        self.live.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::small_db;

    #[test]
    fn deploy_release_roundtrip() {
        let (cluster, db) = small_db();
        let mut c = SystemController::new(cluster, db, Policy::Full);
        assert_eq!(c.live_deployments(), 0);
        let d = c.try_deploy("tiny").unwrap().unwrap();
        assert_eq!(d.num_units(), 1);
        assert!(c.occupancy() > 0.0);
        assert_eq!(c.live_deployments(), 1);
        c.release(&d).unwrap();
        assert_eq!(c.occupancy(), 0.0);
        // Double release is an error.
        assert!(c.release(&d).is_err());
    }

    #[test]
    fn unknown_instance_is_an_error() {
        let (cluster, db) = small_db();
        let mut c = SystemController::new(cluster, db, Policy::Full);
        assert!(matches!(
            c.try_deploy("ghost"),
            Err(RuntimeError::UnknownInstance(_))
        ));
    }

    #[test]
    fn greedy_prefers_fewest_fpgas() {
        let (cluster, db) = small_db();
        let mut c = SystemController::new(cluster, db, Policy::Full);
        // With a completely free cluster, even the big instance takes the
        // single-FPGA option.
        let d = c.try_deploy("big").unwrap().unwrap();
        assert_eq!(d.num_units(), 1);
    }

    #[test]
    fn baseline_serializes_on_devices() {
        let (cluster, db) = small_db();
        let n = cluster.len();
        let mut c = SystemController::new(cluster, db, Policy::Baseline);
        let mut held = Vec::new();
        while let Some(d) = c.try_deploy("tiny").unwrap() {
            held.push(d);
            assert!(held.len() <= n, "baseline cannot exceed one per device");
        }
        assert_eq!(held.len(), n);
        // Releasing one admits exactly one more.
        let d = held.pop().unwrap();
        c.release(&d).unwrap();
        assert!(c.try_deploy("tiny").unwrap().is_some());
        assert!(c.try_deploy("tiny").unwrap().is_none());
    }

    #[test]
    fn full_policy_packs_multiple_tenants() {
        let (cluster, db) = small_db();
        let n = cluster.len();
        let mut c = SystemController::new(cluster, db, Policy::Full);
        let mut held = Vec::new();
        while let Some(d) = c.try_deploy("tiny").unwrap() {
            held.push(d);
            assert!(held.len() < 100);
        }
        assert!(held.len() > n, "sharing should beat one-per-device");
    }

    #[test]
    fn full_policy_reports_capacity_exhaustion() {
        let (cluster, db) = small_db();
        let mut c = SystemController::new(cluster, db, Policy::Full);
        let mut held = Vec::new();
        loop {
            match c.try_deploy_explained("big").unwrap() {
                Ok(d) => held.push(d),
                Err(reason) => {
                    // The full policy never excludes an option and has no
                    // provisioning: only capacity can turn it down.
                    assert_eq!(reason, RejectReason::InsufficientCapacity);
                    break;
                }
            }
            assert!(held.len() < 100);
        }
        assert_eq!(c.stats().deploys, held.len() as u64);
        assert_eq!(c.stats().rejects_for(RejectReason::InsufficientCapacity), 1);
        assert_eq!(c.stats().total_rejects(), 1);
        for d in &held {
            c.release(d).unwrap();
        }
        assert_eq!(c.stats().releases, held.len() as u64);
        // Capacity is back.
        assert!(c.try_deploy_explained("big").unwrap().is_ok());
    }

    #[test]
    fn provisioned_baseline_reports_no_free_device() {
        let (cluster, db) = small_db();
        let n = cluster.len();
        let prov = vec!["tiny".to_string(); n];
        let mut c = SystemController::new(cluster, db, Policy::Baseline).with_provisioning(prov);
        for _ in 0..n {
            assert!(c.try_deploy_explained("tiny").unwrap().is_ok());
        }
        let rejected = c.try_deploy_explained("tiny").unwrap().unwrap_err();
        assert_eq!(rejected, RejectReason::NoFreeDevice);
        assert_eq!(c.stats().rejects_for(RejectReason::NoFreeDevice), 1);
    }

    #[test]
    fn baseline_reports_policy_exclusion_for_multi_unit_only_entries() {
        use vfpga_core::MappingEntry;

        let (cluster, db) = small_db();
        let big = db.entry("big").unwrap();
        let multi_only: Vec<_> = big
            .options
            .iter()
            .filter(|o| o.num_units() > 1)
            .cloned()
            .collect();
        assert!(!multi_only.is_empty(), "test needs a multi-unit option");
        let mut db2 = MappingDatabase::new();
        db2.register_entry(MappingEntry {
            name: "huge".to_string(),
            options: multi_only,
            total_resources: big.total_resources,
            compile_seconds: big.compile_seconds,
        });
        // Baseline filters out every option — even on an idle cluster.
        let mut base = SystemController::new(cluster.clone(), db2.clone(), Policy::Baseline);
        let rejected = base.try_deploy_explained("huge").unwrap().unwrap_err();
        assert_eq!(rejected, RejectReason::PolicyExcluded);
        assert_eq!(base.stats().rejects_for(RejectReason::PolicyExcluded), 1);
        // The full policy deploys the same entry fine.
        let mut full = SystemController::new(cluster, db2, Policy::Full);
        let d = full.try_deploy_explained("huge").unwrap().unwrap();
        assert!(d.num_units() > 1);
    }

    #[test]
    fn double_release_keeps_accounting_intact() {
        let (cluster, db) = small_db();
        let mut c = SystemController::new(cluster, db, Policy::Full);
        let d1 = c.try_deploy("tiny").unwrap().unwrap();
        let d2 = c.try_deploy("tiny").unwrap().unwrap();
        let occupancy_one = {
            c.release(&d1).unwrap();
            c.occupancy()
        };
        // Releasing the same deployment again: a well-formed error that
        // neither panics nor double-frees slots.
        assert!(matches!(c.release(&d1), Err(RuntimeError::Hs(_))));
        assert_eq!(c.occupancy(), occupancy_one);
        assert_eq!(c.live_deployments(), 1);
        assert_eq!(c.stats().releases, 1);
        c.release(&d2).unwrap();
        assert_eq!(c.occupancy(), 0.0);
        // The controller still deploys fine afterwards.
        assert!(c.try_deploy("tiny").unwrap().is_some());
    }

    #[test]
    fn device_failure_interrupts_and_recovery_readmits() {
        let (cluster, db) = small_db();
        let mut c = SystemController::new(cluster, db, Policy::Full);
        // Deploy until something lands on device 0.
        let mut held = Vec::new();
        loop {
            let d = c.try_deploy("tiny").unwrap().expect("capacity");
            let on_zero = d.placements.iter().any(|p| p.device == DeviceId(0));
            held.push(d);
            if on_zero {
                break;
            }
            assert!(held.len() < 100);
        }
        let live_before = c.live_deployments();
        let interrupted = c.handle_device_failure(DeviceId(0));
        assert!(!interrupted.is_empty());
        assert!(interrupted.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(c.live_deployments(), live_before - interrupted.len());
        // The eviction invariant: nothing lives on the failed device.
        assert_eq!(c.allocations_on(DeviceId(0)), 0);
        assert_eq!(c.failed_devices(), 1);
        assert_eq!(c.stats().interrupted, interrupted.len() as u64);
        // Interrupted deployments are gone: releasing one is an error.
        let gone = held
            .iter()
            .find(|d| interrupted.contains(&d.id))
            .expect("interrupted deployment in held set");
        assert!(c.release(gone).is_err());
        // Idempotent: a second failure of the same device is a no-op.
        assert!(c.handle_device_failure(DeviceId(0)).is_empty());
        // New placements avoid the failed device.
        let d = c.try_deploy("tiny").unwrap().expect("survivors have room");
        assert!(d.placements.iter().all(|p| p.device != DeviceId(0)));
        c.handle_device_recovery(DeviceId(0));
        assert_eq!(c.failed_devices(), 0);
    }

    #[test]
    fn all_devices_failed_rejects_without_panicking() {
        let (cluster, db) = small_db();
        let n = cluster.len();
        let mut c = SystemController::new(cluster, db, Policy::Full);
        for i in 0..n {
            c.handle_device_failure(DeviceId(i));
        }
        assert_eq!(c.occupancy(), 0.0);
        let rejected = c.try_deploy_explained("tiny").unwrap().unwrap_err();
        assert_eq!(rejected, RejectReason::InsufficientCapacity);
    }

    #[test]
    fn transient_faults_surface_as_soft_rejections() {
        let (cluster, db) = small_db();
        let mut c = SystemController::new(cluster, db, Policy::Full);
        c.enable_transient_faults(1.0, 7);
        let rejected = c.try_deploy_explained("tiny").unwrap().unwrap_err();
        assert_eq!(rejected, RejectReason::TransientFault);
        assert_eq!(c.stats().rejects_for(RejectReason::TransientFault), 1);
        // Nothing leaked: the rolled-back attempt left the cluster empty.
        assert_eq!(c.occupancy(), 0.0);
        assert_eq!(c.live_deployments(), 0);
        c.enable_transient_faults(0.0, 0);
        assert!(c.try_deploy("tiny").unwrap().is_some());
    }

    #[test]
    fn spanned_deploy_records_decision_and_reconfigures() {
        let (cluster, db) = small_db();
        let mut c = SystemController::new(cluster, db, Policy::Full);
        let mut spans = SpanTracer::new();
        let at = SimTime::from_us(10.0);
        let root = spans.begin("task", TraceId(0), None, SimTime::ZERO);
        let d = c
            .try_deploy_spanned("tiny", &mut spans, TraceId(0), Some(root), at)
            .unwrap()
            .unwrap();
        // One deploy span with nested reconfigure children, all closed.
        let deploy = spans
            .spans()
            .iter()
            .find(|s| s.name == "deploy")
            .expect("deploy span");
        assert_eq!(deploy.parent, Some(root));
        assert!(deploy.attr_is("outcome", "deployed"));
        assert_eq!((deploy.begin, deploy.end), (at, Some(at)));
        let reconfigures: Vec<_> = spans
            .spans()
            .iter()
            .filter(|s| s.name == "reconfigure")
            .collect();
        assert_eq!(reconfigures.len(), d.num_units());
        for r in &reconfigures {
            assert_eq!(r.parent, Some(deploy.id));
            assert!(r.attr_is("outcome", "configured"));
            assert!(r.lane.is_some(), "reconfigure pinned to a device lane");
        }
        assert_eq!(spans.open_count(), 1, "only the root stays open");
        // The lane's thread id matches the allocation's first slot.
        let first_slot = c.allocation_slots(d.placements[0].allocation).unwrap()[0];
        assert_eq!(
            reconfigures[0].lane,
            Some((d.placements[0].device.0 as u64 + 1, first_slot as u64))
        );
        // A rejection records the reason label.
        let mut held = vec![d];
        loop {
            match c
                .try_deploy_spanned("big", &mut spans, TraceId(1), None, at)
                .unwrap()
            {
                Ok(d) => held.push(d),
                Err(_) => break,
            }
            assert!(held.len() < 100);
        }
        let rejected = spans
            .spans()
            .iter()
            .filter(|s| s.name == "deploy")
            .last()
            .unwrap();
        assert!(rejected.attr_is("outcome", "rejected"));
        assert!(rejected.attr_is("reason", "insufficient_capacity"));
        // Stats agree with the unspanned path's accounting.
        assert_eq!(c.stats().deploys, held.len() as u64);
        assert_eq!(c.stats().rejects_for(RejectReason::InsufficientCapacity), 1);
    }

    #[test]
    fn spanned_device_failure_records_interrupted_count() {
        let (cluster, db) = small_db();
        let mut c = SystemController::new(cluster, db, Policy::Full);
        let mut spans = SpanTracer::new();
        let mut held = Vec::new();
        loop {
            let d = c.try_deploy("tiny").unwrap().expect("capacity");
            let on_zero = d.placements.iter().any(|p| p.device == DeviceId(0));
            held.push(d);
            if on_zero {
                break;
            }
            assert!(held.len() < 100);
        }
        let at = SimTime::from_us(25.0);
        let interrupted = c.handle_device_failure_spanned(DeviceId(0), &mut spans, at);
        assert!(!interrupted.is_empty());
        let span = spans.span(vfpga_sim::SpanId(0));
        assert_eq!(span.name, "device_failure");
        assert_eq!(span.trace, TraceId::NONE);
        assert_eq!(span.lane, Some((1, CONTROL_TID)));
        assert!(matches!(
            span.attr("device"),
            Some(vfpga_sim::SpanValue::U64(0))
        ));
        assert!(matches!(
            span.attr("interrupted"),
            Some(vfpga_sim::SpanValue::U64(n)) if *n == interrupted.len() as u64
        ));
        assert_eq!(spans.open_count(), 0);
    }

    #[test]
    fn feasibility_cache_replays_rejections_until_epoch_changes() {
        let (cluster, db) = small_db();
        let mut c = SystemController::new(cluster, db, Policy::Full);
        let mut held = Vec::new();
        while let Some(d) = c.try_deploy("big").unwrap() {
            held.push(d);
            assert!(held.len() < 100);
        }
        let probes_after_fill = c.stats().probes;
        assert_eq!(c.stats().cache_hits, 0, "no repeats yet");
        // Saturated: further attempts replay the cached rejection without
        // probing, and the reason is stable.
        for _ in 0..5 {
            let rejected = c.try_deploy_explained("big").unwrap().unwrap_err();
            assert_eq!(rejected, RejectReason::InsufficientCapacity);
        }
        assert_eq!(c.stats().probes, probes_after_fill);
        assert_eq!(c.stats().cache_hits, 5);
        // Attempt-level rejection counters still tick per attempt.
        assert_eq!(
            c.stats().rejects_for(RejectReason::InsufficientCapacity),
            6,
            "the probed rejection plus five cached replays"
        );
        // A release bumps the epoch: the next attempt probes again and
        // succeeds.
        c.release(&held.pop().unwrap()).unwrap();
        assert!(c.try_deploy("big").unwrap().is_some());
        assert!(c.stats().probes > probes_after_fill);
    }

    #[test]
    fn cache_disabled_probes_every_attempt_with_identical_outcomes() {
        let (cluster, db) = small_db();
        let run = |cache: bool| {
            let mut c = SystemController::new(cluster.clone(), db.clone(), Policy::Full);
            c.set_feasibility_cache(cache);
            let mut outcomes = Vec::new();
            let mut held = Vec::new();
            for _ in 0..40 {
                match c.try_deploy_explained("big").unwrap() {
                    Ok(d) => {
                        outcomes.push(Ok(d
                            .placements
                            .iter()
                            .map(|p| p.device)
                            .collect::<Vec<_>>()));
                        held.push(d);
                    }
                    Err(r) => outcomes.push(Err(r)),
                }
            }
            let stats = *c.stats();
            (outcomes, stats)
        };
        let (on, on_stats) = run(true);
        let (off, off_stats) = run(false);
        assert_eq!(
            format!("{on:?}"),
            format!("{off:?}"),
            "cache must not change admission decisions or placements"
        );
        assert_eq!(off_stats.cache_hits, 0);
        assert_eq!(off_stats.probes, 40, "cache off probes every attempt");
        assert!(
            on_stats.probes < off_stats.probes,
            "cache on must skip saturated probes ({} vs {})",
            on_stats.probes,
            off_stats.probes
        );
        assert_eq!(on_stats.probes + on_stats.cache_hits, 40);
    }

    #[test]
    fn capacity_epoch_bumps_on_every_capacity_changing_operation() {
        let (cluster, db) = small_db();
        let mut c = SystemController::new(cluster, db, Policy::Full);
        let e0 = c.capacity_epoch();
        let d = c.try_deploy("tiny").unwrap().unwrap();
        assert_eq!(
            c.capacity_epoch(),
            e0,
            "a configure only shrinks capacity and must not open an epoch"
        );
        c.release(&d).unwrap();
        let e1 = c.capacity_epoch();
        assert!(e1 > e0, "release opens an epoch");
        c.handle_device_failure(DeviceId(0));
        let e2 = c.capacity_epoch();
        assert!(e2 > e1, "eviction opens an epoch");
        // Idempotent re-failure does not.
        c.handle_device_failure(DeviceId(0));
        assert_eq!(c.capacity_epoch(), e2);
        c.handle_device_recovery(DeviceId(0));
        let e3 = c.capacity_epoch();
        assert!(e3 > e2, "recovery opens an epoch");
        c.handle_device_recovery(DeviceId(0));
        assert_eq!(
            c.capacity_epoch(),
            e3,
            "recovering a healthy device is a no-op"
        );
    }

    #[test]
    fn capacity_pressure_falls_back_to_more_units() {
        let (cluster, db) = small_db();
        let mut c = SystemController::new(cluster, db, Policy::Full);
        // Fill the cluster with big tenants until a multi-unit deployment
        // appears or capacity runs out.
        let mut saw_multi = false;
        let mut held = Vec::new();
        while let Some(d) = c.try_deploy("big").unwrap() {
            saw_multi |= d.num_units() > 1;
            held.push(d);
            if held.len() > 16 {
                break;
            }
        }
        assert!(
            saw_multi || held.len() >= 3,
            "pressure should trigger multi-unit or fill the big devices"
        );
    }
}

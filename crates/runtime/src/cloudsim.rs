//! Discrete-event simulation of the cluster serving a workload set,
//! optionally under an injected fault plan (device fail/recover waves and
//! flaky partial reconfiguration).

use std::collections::{HashMap, VecDeque};

use vfpga_fabric::DeviceId;
use vfpga_sim::{
    CriticalPath, EventQueue, FaultPlan, Json, LinkFaultKind, MetricsRegistry, RetransmitPolicy,
    Rng, SimTime, SpanCtx, SpanId, SpanTracer, Summary, ThroughputMeter, TimeSeries,
    TraceEventKind, TraceId, TraceRing, CONTROL_TID,
};
use vfpga_workload::{RnnTask, TaskArrival};

use crate::controller::{Deployment, RejectReason, ScaleDown, SystemController};
use crate::monitor::{MonitorConfig, MonitorReport, RunMonitor};
use crate::RuntimeError;

/// Default capacity of the scheduler-event trace ring kept by
/// [`run_cloud_sim`]. Sized so a full Fig. 12 workload set traces without
/// evictions while bounding memory for longer runs.
pub const DEFAULT_TRACE_CAPACITY: usize = 8192;

/// How many queued tasks one admission wave scans. Bounded so a deep
/// backlog keeps arrival order roughly fair without making every wave
/// O(queue).
const SCAN_WINDOW: usize = 64;

/// Dynamic-elasticity knobs for the reprovisioner: whether the scheduler
/// may resize *running* deployments in response to capacity-epoch
/// movement. Both off by default — unlike the [`AdmissionTuning`]
/// fast-path knobs, elasticity changes *what* the scheduler does, so it
/// is an explicit opt-in, and every run with it off stays byte-identical
/// to the pre-elasticity scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ElasticityPolicy {
    /// Promote running deployments to higher-unit mapping variants when
    /// idle capacity appears (and no task is queued for it), preferring
    /// co-located / low-ring-hop placements. A promotion only happens
    /// when the candidate's service time beats the current one, so it
    /// strictly shortens the task's remaining work.
    pub promote: bool,
    /// Preemptively scale down the cheapest running victim (fewest lost
    /// units, least remaining work) when queued tasks cannot be admitted,
    /// so they stop starving behind grown tenants. Only *borrowed* units
    /// are ever reclaimed: a deployment can be demoted back toward the
    /// shape admission gave it, never below — promotion is a revocable
    /// loan of idle capacity, not a transfer.
    pub preempt: bool,
}

impl ElasticityPolicy {
    /// No resizing — the default, byte-identical to the pre-elasticity
    /// scheduler.
    pub const DISABLED: ElasticityPolicy = ElasticityPolicy {
        promote: false,
        preempt: false,
    };

    /// Both promotion and preemptive scale-down.
    pub const FULL: ElasticityPolicy = ElasticityPolicy {
        promote: true,
        preempt: true,
    };

    /// Whether any reprovisioning is enabled.
    pub fn any(self) -> bool {
        self.promote || self.preempt
    }
}

/// Knobs for the admission scheduler. `wave_gating` and `trace_spans`
/// change how much work a run performs — never *what* it admits — and
/// default on; [`run_cloud_sim_tuned`] exists so the bench harness can
/// turn them off and measure the unoptimized path. `elasticity` opts into
/// the reprovisioner and defaults off (see [`ElasticityPolicy`]).
#[derive(Debug, Clone, PartialEq)]
pub struct AdmissionTuning {
    /// Skip admission waves while the queue head is saturated and the
    /// controller's capacity epoch is unchanged. A skipped wave is one
    /// that provably could not admit anything: every task in the scan
    /// window was just rejected for capacity, capacity can only have
    /// shrunk since (the epoch tracks every release/evict/recover), and
    /// no new task entered the window — so gating never changes admission
    /// decisions or their sim-times, only the number of re-probes (and
    /// with them the attempt-level rejection counters).
    pub wave_gating: bool,
    /// Record the causal span forest. Disabling skips span bookkeeping
    /// entirely — the report's `spans` and `critical_path` come out empty
    /// — for benchmark-scale workloads where the forest would dominate
    /// memory.
    pub trace_spans: bool,
    /// Dynamic reprovisioning of running deployments (off by default).
    pub elasticity: ElasticityPolicy,
    /// Streaming telemetry: windowed rollups and SLO burn-rate alerting
    /// (off by default; see [`MonitorConfig`]). A run with the monitor off
    /// performs no monitor work and serializes no `monitor` section, so
    /// pre-monitor artifacts stay byte-identical.
    pub monitor: MonitorConfig,
}

impl Default for AdmissionTuning {
    fn default() -> Self {
        AdmissionTuning {
            wave_gating: true,
            trace_spans: true,
            elasticity: ElasticityPolicy::DISABLED,
            monitor: MonitorConfig::default(),
        }
    }
}

/// How the simulator recovers deployments interrupted by a device failure.
///
/// An interrupted task immediately attempts to redeploy on the surviving
/// devices (the greedy option scan naturally falls back to a deeper
/// partition variant — more, smaller units — when the original footprint no
/// longer fits). Each failed attempt backs off exponentially in sim time;
/// after `max_retries` failed backoff retries the task is demoted: requeued
/// into the admission queue by default, or dropped (counted as lost) when
/// `drop_on_exhaustion` is set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryPolicy {
    /// Backoff retries after the immediate attempt (retry `k`, 0-based,
    /// waits `base_backoff * 2^k`).
    pub max_retries: u32,
    /// First backoff delay.
    pub base_backoff: SimTime,
    /// When retries exhaust: `true` drops the task (lost), `false` demotes
    /// it to the admission queue where it waits like a fresh arrival.
    pub drop_on_exhaustion: bool,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            max_retries: 5,
            base_backoff: SimTime::from_us(50.0),
            drop_on_exhaustion: false,
        }
    }
}

impl RecoveryPolicy {
    /// Delay before retry number `attempt` (0-based): `base * 2^attempt`,
    /// saturating.
    pub fn backoff(&self, attempt: u32) -> SimTime {
        let shift = attempt.min(32);
        SimTime::from_ps(self.base_backoff.as_ps().saturating_mul(1u64 << shift))
    }
}

/// Results of one cloud simulation run, including the observability
/// artifacts the run accumulated: streaming summaries, tail percentiles,
/// occupancy/queue-depth time series, the rejection-reason breakdown, the
/// full metrics registry, the scheduler-event trace, and — for chaos runs —
/// the failure-recovery accounting.
///
/// Accounting invariant: every arrival either completed, is reported in
/// [`never_deployed`](CloudReport::never_deployed), or was classified
/// [`lost`](CloudReport::lost) after exhausting migration retries — the
/// simulator never silently drops a task.
#[derive(Debug, Clone)]
pub struct CloudReport {
    /// Tasks that arrived.
    pub arrivals: u64,
    /// Tasks completed.
    pub completed: u64,
    /// Tasks still waiting in the queue when the simulation drained: they
    /// could never be deployed (e.g. the policy excludes every mapping
    /// option, or capacity never freed up).
    pub never_deployed: u64,
    /// Tasks dropped after a device failure exhausted their migration
    /// retries (only under [`RecoveryPolicy::drop_on_exhaustion`]).
    pub lost: u64,
    /// Time of the last completion.
    pub elapsed: SimTime,
    /// Aggregated system throughput in tasks per second (Fig. 12's
    /// metric).
    pub throughput_per_s: f64,
    /// End-to-end latency statistics (arrival to completion).
    pub latency: Summary,
    /// Median end-to-end latency in seconds; `None` if nothing completed.
    pub latency_p50: Option<f64>,
    /// 95th-percentile end-to-end latency in seconds.
    pub latency_p95: Option<f64>,
    /// 99th-percentile end-to-end latency in seconds.
    pub latency_p99: Option<f64>,
    /// Queueing delay statistics (arrival to first deployment). One-shot
    /// per task by design; the *second* wait of a task demoted back to
    /// the queue after exhausting migration retries is reported
    /// separately in [`requeue_wait`](CloudReport::requeue_wait).
    pub queue_wait: Summary,
    /// Queueing delay of requeued tasks (demotion after retry exhaustion
    /// to redeployment from the admission queue), in seconds.
    pub requeue_wait: Summary,
    /// Time-weighted mean cluster occupancy over the run (utilization).
    pub mean_occupancy: f64,
    /// Highest sampled cluster occupancy.
    pub peak_occupancy: f64,
    /// Deepest the admission queue ever got.
    pub peak_queue_depth: u64,
    /// Rejected deployment attempts, indexed by
    /// [`RejectReason::index`]; one task retried many times counts each
    /// attempt, so under saturation this scales with how often the
    /// scheduler re-probed, not with the workload. The per-task view is
    /// [`rejected_tasks`](CloudReport::rejected_tasks).
    pub rejections: [u64; 4],
    /// Distinct tasks rejected at least once per reason, indexed by
    /// [`RejectReason::index`]; a task counts once per reason no matter
    /// how many waves re-attempted it.
    pub rejected_tasks: [u64; 4],
    /// Device failures injected during the run.
    pub device_failures: u64,
    /// Device recoveries during the run.
    pub device_recoveries: u64,
    /// Deployment interruptions (a task interrupted by two failures counts
    /// twice).
    pub interrupted: u64,
    /// Interruptions recovered by redeployment (via the migration retry
    /// path or later, from the admission queue after demotion).
    pub migrated: u64,
    /// Successful redeployments of interrupted tasks — the controller
    /// deploys that served a recovery rather than a first admission.
    /// Counts both recovery paths, so the `deploys` metric (first
    /// admissions) plus this equals the controller's lifetime deploy
    /// count. Currently equal to [`migrated`](CloudReport::migrated) by
    /// construction; kept separate so the deploy-side accounting closes
    /// without reference to the interruption bookkeeping.
    pub redeployments: u64,
    /// Interruptions demoted to the admission queue after exhausting
    /// migration retries.
    pub requeued: u64,
    /// Recoveries that fell back to a deeper partition variant (more,
    /// smaller units than the interrupted deployment — the paper's
    /// scale-out machinery in reverse).
    pub scale_down_redeployments: u64,
    /// Time from interruption to successful redeployment, in seconds.
    pub time_to_recovery: Summary,
    /// Running deployments the reprovisioner grew to a higher-unit
    /// variant (zero unless [`ElasticityPolicy::promote`] is on).
    pub promotions: u64,
    /// Running deployments the reprovisioner preemptively shrank to admit
    /// queued work (zero unless [`ElasticityPolicy::preempt`] is on).
    pub preemptions: u64,
    /// Units gained across all promotions.
    pub units_gained: u64,
    /// Units lost across all preemptive scale-downs.
    pub units_lost: u64,
    /// Remaining-service time each promotion saved its task, in seconds
    /// (old remaining minus new remaining; positive by construction).
    pub promotion_saved: Summary,
    /// Remaining-service time each preemption added to its victim, in
    /// seconds (new remaining minus old remaining).
    pub preemption_added: Summary,
    /// Sim time spent with at least one device failed.
    pub degraded_time: SimTime,
    /// Time-weighted mean occupancy of the surviving devices while
    /// degraded (0 when the run never degraded).
    pub degraded_mean_occupancy: f64,
    /// Ring-segment failures injected during the run (link fault events
    /// whose segment index fit the cluster's ring).
    pub link_failures: u64,
    /// Ring-segment degradations injected during the run.
    pub link_degradations: u64,
    /// Ring-segment recoveries during the run.
    pub link_recoveries: u64,
    /// Transfers re-sent over the ring: corruption bursts on degraded
    /// segments plus the one re-send each reroute performs.
    pub link_retransmits: u64,
    /// Bytes those retransmissions re-sent. Each burst's `Retransmit`
    /// trace event carries its share, so with no trace evictions the
    /// event bytes sum to exactly this counter.
    pub link_retransmit_bytes: u64,
    /// Multi-device deployments re-routed the other way around the
    /// bidirectional ring after a segment failure lengthened their path
    /// (hop counts recomputed over the surviving segments).
    pub link_reroutes: u64,
    /// Deployments interrupted because segment failures severed every
    /// ring path between their units; they recover through the same
    /// migration machinery a device failure uses.
    pub link_severed: u64,
    /// Sim time with at least one ring segment degraded or failed.
    pub link_degraded_time: SimTime,
    /// Whether the run's fault plan covered ring segments. Gates the
    /// `links` block of [`CloudReport::to_json`], so device-only runs
    /// serialize exactly as they did before the interconnect fault model
    /// existed.
    pub link_faults_planned: bool,
    /// Streaming-telemetry section — windowed rollups and SLO burn-rate
    /// outcomes — present only when [`MonitorConfig::enabled`] was set on
    /// the run's [`AdmissionTuning`].
    pub monitor: Option<MonitorReport>,
    /// Cluster occupancy over time (step function, coalesced).
    pub occupancy_series: TimeSeries,
    /// Queue depth over time (step function, coalesced).
    pub queue_depth_series: TimeSeries,
    /// Every metric the run recorded, exportable via
    /// [`MetricsRegistry::to_json`].
    pub metrics: MetricsRegistry,
    /// The most recent scheduler events (ring buffer).
    pub trace: TraceRing,
    /// The causal span forest of the run: one `task` root per arrival with
    /// contiguous phase children (`queue_wait`, `compute`, `migrate`) plus
    /// nested control-plane markers (`deploy`, `reconfigure`, `backoff`,
    /// `device_failure`). Export via
    /// [`chrome_trace_events`](vfpga_sim::chrome_trace_events).
    pub spans: SpanTracer,
    /// Critical-path decomposition of every completed task's end-to-end
    /// latency: per-task phase buckets that sum exactly to the total, with
    /// the dominant phase at p50/p95/p99.
    pub critical_path: CriticalPath,
}

impl CloudReport {
    /// Rejected attempts for one reason.
    pub fn rejections_for(&self, reason: RejectReason) -> u64 {
        self.rejections[reason.index()]
    }

    /// Total rejected attempts across all reasons.
    pub fn total_rejections(&self) -> u64 {
        self.rejections.iter().sum()
    }

    /// Distinct tasks rejected at least once for one reason.
    pub fn rejected_tasks_for(&self, reason: RejectReason) -> u64 {
        self.rejected_tasks[reason.index()]
    }

    /// Whether every arrival is accounted for (completed, reported as
    /// never deployed, or classified lost) — the invariant all cloudsim
    /// and chaos tests pin.
    pub fn accounts_for_all_arrivals(&self) -> bool {
        self.completed + self.never_deployed + self.lost == self.arrivals
    }

    /// Mean time from interruption to redeployment in seconds; `None` if
    /// nothing recovered.
    pub fn mean_time_to_recovery_s(&self) -> Option<f64> {
        if self.time_to_recovery.count() == 0 {
            None
        } else {
            Some(self.time_to_recovery.mean())
        }
    }

    /// Serializes the report (without raw trace events; those stay
    /// available programmatically via [`CloudReport::trace`]).
    pub fn to_json(&self) -> Json {
        let mut attempts = Json::obj();
        let mut tasks = Json::obj();
        for reason in RejectReason::ALL {
            attempts = attempts.with(reason.as_str(), self.rejections_for(reason));
            tasks = tasks.with(reason.as_str(), self.rejected_tasks_for(reason));
        }
        let rejections = Json::obj().with("attempts", attempts).with("tasks", tasks);
        let mut json = Json::obj()
            .with("arrivals", self.arrivals)
            .with("completed", self.completed)
            .with("never_deployed", self.never_deployed)
            .with("lost", self.lost)
            .with("elapsed_s", self.elapsed.as_secs())
            .with("throughput_per_s", self.throughput_per_s)
            .with(
                "latency_s",
                Json::obj()
                    .with("count", self.latency.count())
                    .with("mean", self.latency.mean())
                    .with("p50", self.latency_p50)
                    .with("p95", self.latency_p95)
                    .with("p99", self.latency_p99)
                    .with("min", self.latency.min())
                    .with("max", self.latency.max()),
            )
            .with(
                "queue_wait_s",
                Json::obj()
                    .with("count", self.queue_wait.count())
                    .with("mean", self.queue_wait.mean())
                    .with("min", self.queue_wait.min())
                    .with("max", self.queue_wait.max()),
            )
            .with(
                "requeue_wait_s",
                Json::obj()
                    .with("count", self.requeue_wait.count())
                    .with("mean", self.requeue_wait.mean())
                    .with("min", self.requeue_wait.min())
                    .with("max", self.requeue_wait.max()),
            )
            .with("occupancy", {
                let mut occ = Json::obj()
                    .with("mean", self.mean_occupancy)
                    .with("peak", self.peak_occupancy)
                    .with("series", self.occupancy_series.to_json());
                // Downsampling accounting appears only when the point cap
                // actually folded samples, so short runs serialize exactly
                // as they did before the cap existed.
                if self.occupancy_series.points_folded() > 0 {
                    occ = occ
                        .with("points_kept", self.occupancy_series.points_kept() as u64)
                        .with("points_folded", self.occupancy_series.points_folded());
                }
                occ
            })
            .with("queue_depth", {
                let mut qd = Json::obj()
                    .with("peak", self.peak_queue_depth)
                    .with("series", self.queue_depth_series.to_json());
                if self.queue_depth_series.points_folded() > 0 {
                    qd = qd
                        .with("points_kept", self.queue_depth_series.points_kept() as u64)
                        .with("points_folded", self.queue_depth_series.points_folded());
                }
                qd
            })
            .with("rejections", rejections)
            .with(
                "recovery",
                Json::obj()
                    .with("device_failures", self.device_failures)
                    .with("device_recoveries", self.device_recoveries)
                    .with("interrupted", self.interrupted)
                    .with("migrated", self.migrated)
                    .with("redeployments", self.redeployments)
                    .with("requeued", self.requeued)
                    .with("lost", self.lost)
                    .with("scale_down_redeployments", self.scale_down_redeployments)
                    .with("mean_time_to_recovery_s", self.mean_time_to_recovery_s())
                    .with("degraded_time_s", self.degraded_time.as_secs())
                    .with("degraded_mean_occupancy", self.degraded_mean_occupancy),
            );
        if self.link_faults_planned {
            json = json.with(
                "links",
                Json::obj()
                    .with("failures", self.link_failures)
                    .with("degradations", self.link_degradations)
                    .with("recoveries", self.link_recoveries)
                    .with("retransmits", self.link_retransmits)
                    .with("bytes_retransmitted", self.link_retransmit_bytes)
                    .with("reroutes", self.link_reroutes)
                    .with("severed", self.link_severed)
                    .with("degraded_time_s", self.link_degraded_time.as_secs()),
            );
        }
        json = json.with(
            "elasticity",
            Json::obj()
                .with("promotions", self.promotions)
                .with("preemptions", self.preemptions)
                .with("units_gained", self.units_gained)
                .with("units_lost", self.units_lost)
                .with(
                    "promotion_saved_s",
                    Json::obj()
                        .with("count", self.promotion_saved.count())
                        .with("mean", self.promotion_saved.mean())
                        .with("min", self.promotion_saved.min())
                        .with("max", self.promotion_saved.max()),
                )
                .with(
                    "preemption_added_s",
                    Json::obj()
                        .with("count", self.preemption_added.count())
                        .with("mean", self.preemption_added.mean())
                        .with("min", self.preemption_added.min())
                        .with("max", self.preemption_added.max()),
                ),
        );
        if let Some(monitor) = &self.monitor {
            json = json.with("monitor", monitor.to_json());
        }
        json.with(
            "trace",
            Json::obj()
                .with("retained", self.trace.len())
                .with("dropped", self.trace.dropped()),
        )
        .with("spans", self.spans.len())
        .with("critical_path", self.critical_path.to_json())
    }
}

enum Event {
    Arrival(usize),
    Completion {
        task_index: usize,
        epoch: u64,
    },
    DeviceFailed(usize),
    DeviceRecovered(usize),
    LinkDegraded(usize),
    LinkFailed(usize),
    LinkRecovered(usize),
    MigrationRetry {
        task_index: usize,
        epoch: u64,
        attempt: u32,
    },
    /// Re-runs the admission wave after a transient configure failure left
    /// queued work with no other future event to retry on.
    RetryNudge,
}

/// Runs a workload through the controller with the default trace capacity
/// and no injected faults.
///
/// * `instance_for` names the accelerator instance (a mapping-database key)
///   serving a task — the deployment catalog is sized per model class.
/// * `service_time` gives the task's execution latency on a given
///   deployment (built from the cycle-level timing simulations).
///
/// Tasks that cannot deploy on arrival wait in a FIFO queue; every
/// completion retries the queue head. Tasks that never fit (policy
/// exclusion, permanent capacity shortfall) are reported in
/// [`CloudReport::never_deployed`] rather than silently dropped.
///
/// # Errors
///
/// Propagates controller errors ([`RuntimeError::UnknownInstance`] etc.).
pub fn run_cloud_sim(
    controller: &mut SystemController,
    arrivals: &[TaskArrival],
    instance_for: &dyn Fn(&RnnTask) -> String,
    service_time: &dyn Fn(&RnnTask, &Deployment) -> SimTime,
) -> Result<CloudReport, RuntimeError> {
    run_cloud_sim_traced(
        controller,
        arrivals,
        instance_for,
        service_time,
        DEFAULT_TRACE_CAPACITY,
    )
}

/// [`run_cloud_sim`] with an explicit trace-ring capacity.
///
/// # Errors
///
/// Propagates controller errors ([`RuntimeError::UnknownInstance`] etc.).
pub fn run_cloud_sim_traced(
    controller: &mut SystemController,
    arrivals: &[TaskArrival],
    instance_for: &dyn Fn(&RnnTask) -> String,
    service_time: &dyn Fn(&RnnTask, &Deployment) -> SimTime,
    trace_capacity: usize,
) -> Result<CloudReport, RuntimeError> {
    run_cloud_sim_faulted(
        controller,
        arrivals,
        instance_for,
        service_time,
        &FaultPlan::none(),
        RecoveryPolicy::default(),
        trace_capacity,
    )
}

/// [`run_cloud_sim`] interleaving the workload with a fault plan's device
/// fail/recover waves — and, when the plan carries them, its ring-segment
/// link waves — recovering interrupted deployments per `recovery`.
///
/// Link degradations corrupt in-flight transfers of the multi-device
/// deployments routed over the segment (retransmitted under the plan's
/// bounded-backoff budget); link failures re-route affected deployments
/// the other way around the bidirectional ring, or interrupt them into the
/// migration path when the failure severs every path between their units.
///
/// The plan's transient configure-failure probability is installed on the
/// controller's fault injector for the duration of the run (and left in
/// place afterwards — rebuild the controller between runs, as the chaos
/// experiments do). Fault-plan device indices beyond the cluster size are
/// ignored, as are link indices beyond the ring's segment count. Two runs
/// from identical seeds and inputs produce byte-identical reports.
///
/// # Errors
///
/// Propagates controller errors ([`RuntimeError::UnknownInstance`] etc.).
pub fn run_cloud_sim_faulted(
    controller: &mut SystemController,
    arrivals: &[TaskArrival],
    instance_for: &dyn Fn(&RnnTask) -> String,
    service_time: &dyn Fn(&RnnTask, &Deployment) -> SimTime,
    faults: &FaultPlan,
    recovery: RecoveryPolicy,
    trace_capacity: usize,
) -> Result<CloudReport, RuntimeError> {
    run_cloud_sim_tuned(
        controller,
        arrivals,
        instance_for,
        service_time,
        faults,
        recovery,
        trace_capacity,
        AdmissionTuning::default(),
    )
}

/// [`run_cloud_sim_faulted`] with explicit [`AdmissionTuning`] — the bench
/// harness's entry point for measuring the admission fast path against the
/// unoptimized scheduler.
///
/// # Errors
///
/// Propagates controller errors ([`RuntimeError::UnknownInstance`] etc.).
#[allow(clippy::too_many_arguments)]
pub fn run_cloud_sim_tuned(
    controller: &mut SystemController,
    arrivals: &[TaskArrival],
    instance_for: &dyn Fn(&RnnTask) -> String,
    service_time: &dyn Fn(&RnnTask, &Deployment) -> SimTime,
    faults: &FaultPlan,
    recovery: RecoveryPolicy,
    trace_capacity: usize,
    tuning: AdmissionTuning,
) -> Result<CloudReport, RuntimeError> {
    let mut sim = CloudSim::new(
        controller,
        arrivals,
        instance_for,
        service_time,
        faults,
        recovery,
        trace_capacity,
        tuning,
    );
    sim.run()?;
    Ok(sim.finish())
}

/// Metric ids the run updates on its hot path.
struct Meters {
    arrivals: vfpga_sim::CounterId,
    deploys: vfpga_sim::CounterId,
    completions: vfpga_sim::CounterId,
    releases: vfpga_sim::CounterId,
    rejects: [vfpga_sim::CounterId; 4],
    device_failures: vfpga_sim::CounterId,
    device_recoveries: vfpga_sim::CounterId,
    interrupted: vfpga_sim::CounterId,
    migrations: vfpga_sim::CounterId,
    redeployments: vfpga_sim::CounterId,
    lost: vfpga_sim::CounterId,
    promotions: vfpga_sim::CounterId,
    preemptions: vfpga_sim::CounterId,
    latency: vfpga_sim::TimerId,
    queue_wait: vfpga_sim::TimerId,
    requeue_wait: vfpga_sim::TimerId,
    service: vfpga_sim::TimerId,
    time_to_recovery: vfpga_sim::TimerId,
    depth: vfpga_sim::GaugeId,
    occupancy: vfpga_sim::GaugeId,
    failed_devices: vfpga_sim::GaugeId,
    /// Present only when the run's fault plan covers ring segments, so a
    /// device-only run's exposition carries no idle link families.
    links: Option<LinkMeters>,
}

/// Link metric ids: per-event counters plus one
/// `vfpga_link_state{segment="i"}` gauge per ring segment (0 healthy,
/// 1 degraded, 2 failed) — the exposition's label-family example.
struct LinkMeters {
    failures: vfpga_sim::CounterId,
    degradations: vfpga_sim::CounterId,
    recoveries: vfpga_sim::CounterId,
    retransmits: vfpga_sim::CounterId,
    retransmit_bytes: vfpga_sim::CounterId,
    reroutes: vfpga_sim::CounterId,
    severed: vfpga_sim::CounterId,
    state: Vec<vfpga_sim::GaugeId>,
}

/// The simulation state machine: one instance per run.
struct CloudSim<'a> {
    controller: &'a mut SystemController,
    arrivals: &'a [TaskArrival],
    instance_for: &'a dyn Fn(&RnnTask) -> String,
    service_time: &'a dyn Fn(&RnnTask, &Deployment) -> SimTime,
    recovery: RecoveryPolicy,
    faults: &'a FaultPlan,

    queue: VecDeque<usize>,
    events: EventQueue<Event>,
    running: Vec<Option<Deployment>>,
    /// Maps a live deployment id to the task it serves.
    task_of: HashMap<u64, usize>,
    deployed_at: Vec<SimTime>,
    /// Bumped whenever a task's deployment changes or is interrupted;
    /// pending `Completion`/`MigrationRetry` events carrying an older epoch
    /// are stale and ignored.
    epoch: Vec<u64>,
    /// `Some((when, old_units))` while a task's interruption awaits
    /// redeployment.
    interrupted_pending: Vec<Option<(SimTime, u32)>>,
    /// Whether a task's first-deployment queue wait was recorded.
    waited: Vec<bool>,
    /// `Some(when)` while a task demoted after retry exhaustion waits in
    /// the admission queue (its second queue wait).
    requeued_at: Vec<Option<SimTime>>,
    traced_reject: Vec<bool>,
    /// Per-task bitmask of [`RejectReason::index`] bits already counted
    /// into `rejected_tasks`.
    reject_seen: Vec<u8>,

    meter: ThroughputMeter,
    latency: Summary,
    queue_wait: Summary,
    requeue_wait: Summary,
    time_to_recovery: Summary,
    last_completion: SimTime,
    rejections: [u64; 4],
    rejected_tasks: [u64; 4],
    device_failures: u64,
    device_recoveries: u64,
    interrupted: u64,
    migrated: u64,
    redeployments: u64,
    requeued: u64,
    lost: u64,
    scale_down_redeployments: u64,

    /// Elastic reprovisioning (from [`AdmissionTuning`]).
    elasticity: ElasticityPolicy,
    /// Each running task's full service time under its current deployment
    /// (denominator of the work-fraction model on resize).
    service_total: Vec<SimTime>,
    /// When each running task's scheduled `Completion` will fire; the
    /// remaining work at any instant is `completion_at - now`.
    completion_at: Vec<SimTime>,
    /// Units each running task was *admitted* with (its last non-elastic
    /// deployment). Units above this watermark are borrowed via promotion
    /// and are the only ones preemption may reclaim.
    base_units: Vec<u32>,
    /// Capacity epoch of the last promotion pass; a pass runs at most once
    /// per epoch (capacity unchanged means the scan would repeat).
    last_promo_epoch: Option<u64>,
    /// Capacity epoch of the last *unproductive* preemption pass; while it
    /// matches, preemption is skipped so a saturated queue cannot demote
    /// more than one victim per capacity change.
    last_preempt_epoch: Option<u64>,
    promotions: u64,
    preemptions: u64,
    units_gained: u64,
    units_lost: u64,
    promotion_saved: Summary,
    preemption_added: Summary,

    /// Wave gating (from [`AdmissionTuning`]): `Some(epoch)` after a wave
    /// rejected every scanned task with the capacity epoch at `epoch`.
    /// While the epoch is unchanged and nothing new entered the scan
    /// window, further waves are skipped — they could only replay the
    /// same rejections.
    gating: bool,
    saturated_at: Option<u64>,

    /// Degraded-mode integration state.
    last_event_at: SimTime,
    degraded_time: SimTime,
    degraded_occ_weighted: f64,

    /// Per-ring-segment hard-failure state (`true` while the segment is
    /// down), sized to the cluster's ring.
    link_failed: Vec<bool>,
    /// Per-ring-segment degraded state (`true` while degraded).
    link_degraded: Vec<bool>,
    /// Corruption-burst stream, salted off the plan seed on a channel
    /// disjoint from the schedule generators. Drawn only when the plan
    /// carries a nonzero corruption probability, so quiescent runs never
    /// touch it.
    link_rng: Rng,
    link_failures: u64,
    link_degradations: u64,
    link_recoveries: u64,
    link_retransmits: u64,
    link_retransmit_bytes: u64,
    link_reroutes: u64,
    link_severed: u64,
    link_degraded_time: SimTime,

    metrics: MetricsRegistry,
    m: Meters,
    trace: TraceRing,

    /// Streaming telemetry collector; `Some` only when
    /// [`MonitorConfig::enabled`] was set on the tuning.
    monitor: Option<RunMonitor>,

    /// The causal span forest. Per task the phase children of its root span
    /// are kept *contiguous* — at any moment exactly one of `queue_wait`,
    /// `compute`, or `migrate` is open — so the direct children partition
    /// `[arrival, end]` and the critical-path buckets sum exactly.
    spans: SpanTracer,
    /// Each task's root `task` span; `None` once closed.
    root_span: Vec<Option<SpanId>>,
    /// Each task's currently open phase child.
    phase_span: Vec<Option<SpanId>>,
    /// An open `backoff` span (nested in `migrate`) awaiting its retry.
    backoff_span: Vec<Option<SpanId>>,
}

impl<'a> CloudSim<'a> {
    #[allow(clippy::too_many_arguments)]
    fn new(
        controller: &'a mut SystemController,
        arrivals: &'a [TaskArrival],
        instance_for: &'a dyn Fn(&RnnTask) -> String,
        service_time: &'a dyn Fn(&RnnTask, &Deployment) -> SimTime,
        faults: &'a FaultPlan,
        recovery: RecoveryPolicy,
        trace_capacity: usize,
        tuning: AdmissionTuning,
    ) -> Self {
        let segments = controller.cluster().ring().segments();
        let mut metrics = MetricsRegistry::new();
        metrics.describe("arrivals", "Tasks that arrived.");
        metrics.describe("deploys", "First admissions deployed.");
        metrics.describe("completions", "Tasks completed.");
        metrics.describe("latency_s", "End-to-end latency, arrival to completion.");
        metrics.describe(
            "queue_wait_s",
            "Queueing delay, arrival to first deployment.",
        );
        metrics.describe("queue_depth", "Admission queue depth.");
        metrics.describe("occupancy", "Fraction of cluster units busy.");
        metrics.describe("failed_devices", "Devices currently failed.");
        let links = (faults.links() > 0).then(|| {
            metrics.describe("link.failures", "Ring-segment hard failures injected.");
            metrics.describe("link.degradations", "Ring-segment degradations injected.");
            metrics.describe("link.recoveries", "Ring segments returned to service.");
            metrics.describe("link.retransmits", "Transfers re-sent over the ring.");
            metrics.describe(
                "link.retransmit_bytes",
                "Bytes carried by ring retransmissions.",
            );
            metrics.describe(
                "link.reroutes",
                "Deployments re-routed around a failed segment.",
            );
            metrics.describe(
                "link.severed",
                "Deployments left with no surviving ring path.",
            );
            metrics.describe(
                "vfpga_link_state",
                "Ring segment health: 0 healthy, 1 degraded, 2 failed.",
            );
            LinkMeters {
                failures: metrics.counter("link.failures"),
                degradations: metrics.counter("link.degradations"),
                recoveries: metrics.counter("link.recoveries"),
                retransmits: metrics.counter("link.retransmits"),
                retransmit_bytes: metrics.counter("link.retransmit_bytes"),
                reroutes: metrics.counter("link.reroutes"),
                severed: metrics.counter("link.severed"),
                state: (0..segments)
                    .map(|s| metrics.gauge(&format!("vfpga_link_state{{segment=\"{s}\"}}")))
                    .collect(),
            }
        });
        let m = Meters {
            arrivals: metrics.counter("arrivals"),
            deploys: metrics.counter("deploys"),
            completions: metrics.counter("completions"),
            releases: metrics.counter("releases"),
            rejects: [
                metrics.counter("rejected.policy_excluded"),
                metrics.counter("rejected.no_free_device"),
                metrics.counter("rejected.insufficient_capacity"),
                metrics.counter("rejected.transient_fault"),
            ],
            device_failures: metrics.counter("device_failures"),
            device_recoveries: metrics.counter("device_recoveries"),
            interrupted: metrics.counter("interrupted"),
            migrations: metrics.counter("migrations"),
            redeployments: metrics.counter("redeployments"),
            lost: metrics.counter("lost"),
            promotions: metrics.counter("promotions"),
            preemptions: metrics.counter("preemptions"),
            latency: metrics.timer("latency_s"),
            queue_wait: metrics.timer("queue_wait_s"),
            requeue_wait: metrics.timer("requeue_wait_s"),
            service: metrics.timer("service_s"),
            time_to_recovery: metrics.timer("time_to_recovery_s"),
            depth: metrics.gauge("queue_depth"),
            occupancy: metrics.gauge("occupancy"),
            failed_devices: metrics.gauge("failed_devices"),
            links,
        };
        let monitor = tuning
            .monitor
            .enabled
            .then(|| RunMonitor::new(tuning.monitor.clone()));
        let n = arrivals.len();
        CloudSim {
            controller,
            arrivals,
            instance_for,
            service_time,
            recovery,
            faults,
            queue: VecDeque::new(),
            events: EventQueue::new(),
            running: vec![None; n],
            task_of: HashMap::new(),
            deployed_at: vec![SimTime::ZERO; n],
            epoch: vec![0; n],
            interrupted_pending: vec![None; n],
            waited: vec![false; n],
            requeued_at: vec![None; n],
            traced_reject: vec![false; n],
            reject_seen: vec![0; n],
            meter: ThroughputMeter::new(),
            latency: Summary::new(),
            queue_wait: Summary::new(),
            requeue_wait: Summary::new(),
            time_to_recovery: Summary::new(),
            last_completion: SimTime::ZERO,
            rejections: [0; 4],
            rejected_tasks: [0; 4],
            device_failures: 0,
            device_recoveries: 0,
            interrupted: 0,
            migrated: 0,
            redeployments: 0,
            requeued: 0,
            lost: 0,
            scale_down_redeployments: 0,
            elasticity: tuning.elasticity,
            service_total: vec![SimTime::ZERO; n],
            completion_at: vec![SimTime::ZERO; n],
            base_units: vec![0; n],
            last_promo_epoch: None,
            last_preempt_epoch: None,
            promotions: 0,
            preemptions: 0,
            units_gained: 0,
            units_lost: 0,
            promotion_saved: Summary::new(),
            preemption_added: Summary::new(),
            gating: tuning.wave_gating,
            saturated_at: None,
            last_event_at: SimTime::ZERO,
            degraded_time: SimTime::ZERO,
            degraded_occ_weighted: 0.0,
            link_failed: vec![false; segments],
            link_degraded: vec![false; segments],
            link_rng: Rng::seed_from_u64(faults.seed() ^ 0x4c49_4e4b_434f_5252),
            link_failures: 0,
            link_degradations: 0,
            link_recoveries: 0,
            link_retransmits: 0,
            link_retransmit_bytes: 0,
            link_reroutes: 0,
            link_severed: 0,
            link_degraded_time: SimTime::ZERO,
            metrics,
            m,
            trace: TraceRing::new(trace_capacity),
            monitor,
            spans: if tuning.trace_spans {
                SpanTracer::new()
            } else {
                SpanTracer::disabled()
            },
            root_span: vec![None; n],
            phase_span: vec![None; n],
            backoff_span: vec![None; n],
        }
    }

    /// Closes the task's open phase child (if any) at `now`, keeping the
    /// phase partition contiguous.
    fn close_phase(&mut self, task_index: usize, now: SimTime) {
        if let Some(span) = self.phase_span[task_index].take() {
            self.spans.end(span, now);
        }
    }

    /// Opens a new phase child under the task's root span.
    fn open_phase(&mut self, task_index: usize, name: &'static str, now: SimTime) -> SpanId {
        debug_assert!(self.phase_span[task_index].is_none(), "phase overlap");
        let span = self.spans.begin(
            name,
            TraceId(task_index as u64),
            self.root_span[task_index],
            now,
        );
        self.phase_span[task_index] = Some(span);
        span
    }

    /// Closes an open `backoff` span (the retry it was waiting for is now
    /// happening, or the task moved on).
    fn close_backoff(&mut self, task_index: usize, now: SimTime) {
        if let Some(span) = self.backoff_span[task_index].take() {
            self.spans.end(span, now);
        }
    }

    /// Closes the task's root span with a final `outcome` attribute.
    fn close_root(&mut self, task_index: usize, outcome: &'static str, now: SimTime) {
        if let Some(span) = self.root_span[task_index].take() {
            self.spans.attr(span, "outcome", outcome);
            self.spans.end(span, now);
        }
    }

    fn run(&mut self) -> Result<(), RuntimeError> {
        if self.faults.configure_failure_prob() > 0.0 {
            // Distinct stream from the plan's own fail/recover schedule.
            self.controller.enable_transient_faults(
                self.faults.configure_failure_prob(),
                self.faults.seed() ^ 0x7452_414e_5349_454e,
            );
        }
        for (i, a) in self.arrivals.iter().enumerate() {
            self.events.schedule(a.at, Event::Arrival(i));
        }
        let devices = self.controller.cluster().len();
        for ev in self.faults.events() {
            if ev.device >= devices {
                continue;
            }
            let event = if ev.fail {
                Event::DeviceFailed(ev.device)
            } else {
                Event::DeviceRecovered(ev.device)
            };
            self.events.schedule(ev.at, event);
        }
        // Link transitions ride the same event queue; segment indices
        // beyond the cluster's ring are ignored, mirroring the device rule.
        let segments = self.link_failed.len();
        for ev in self.faults.link_events() {
            if ev.link >= segments {
                continue;
            }
            let event = match ev.kind {
                LinkFaultKind::Degraded => Event::LinkDegraded(ev.link),
                LinkFaultKind::Failed => Event::LinkFailed(ev.link),
                LinkFaultKind::Recovered => Event::LinkRecovered(ev.link),
            };
            self.events.schedule(ev.at, event);
        }

        while let Some((now, event)) = self.events.pop() {
            self.integrate_degraded(now);
            match event {
                Event::Arrival(i) => {
                    self.enqueue(i);
                    self.metrics.inc(self.m.arrivals);
                    self.trace
                        .push(now, TraceEventKind::Arrival { task: i as u64 });
                    let root = self.spans.begin("task", TraceId(i as u64), None, now);
                    let instance = (self.instance_for)(&self.arrivals[i].task);
                    if let Some(mon) = self.monitor.as_mut() {
                        mon.on_arrival(&instance, now);
                    }
                    self.spans.attr(root, "instance", instance);
                    self.root_span[i] = Some(root);
                    self.open_phase(i, "queue_wait", now);
                }
                Event::Completion { task_index, epoch } => {
                    if self.epoch[task_index] != epoch {
                        // The deployment this completion belonged to was
                        // interrupted; the task has moved on.
                        continue;
                    }
                    self.on_completion(now, task_index)?;
                }
                Event::DeviceFailed(device) => self.on_device_failed(now, device)?,
                Event::DeviceRecovered(device) => {
                    self.device_recoveries += 1;
                    self.metrics.inc(self.m.device_recoveries);
                    self.controller.handle_device_recovery(DeviceId(device));
                    self.trace.push(
                        now,
                        TraceEventKind::DeviceRecovered {
                            device: device as u64,
                        },
                    );
                }
                Event::LinkDegraded(seg) => self.on_link_degraded(now, seg),
                Event::LinkFailed(seg) => self.on_link_failed(now, seg)?,
                Event::LinkRecovered(seg) => self.on_link_recovered(now, seg),
                Event::MigrationRetry {
                    task_index,
                    epoch,
                    attempt,
                } => {
                    // The backoff this retry slept through is over either
                    // way (stale retries close it too, so no span leaks).
                    self.close_backoff(task_index, now);
                    if self.epoch[task_index] != epoch {
                        continue;
                    }
                    self.attempt_migration(now, task_index, attempt)?;
                }
                Event::RetryNudge => {}
            }
            // Admission gating: while the gate epoch matches, capacity can
            // only have shrunk since the last all-rejected wave and
            // nothing new entered the scan window, so the wave is skipped
            // — it would replay the identical rejections. A gate-setting
            // wave saw no transient fault, so a skipped wave also cannot
            // strand retryable work (no feasible placement means no
            // configure attempt and no injector draw).
            let gated = self.saturated_at == Some(self.controller.capacity_epoch());
            let saw_transient = if gated {
                false
            } else {
                self.admission_wave(now)?
            };
            if self.elasticity.any() {
                self.reprovision(now)?;
            }
            self.sample_gauges(now);
            if saw_transient && self.events.is_empty() && !self.queue.is_empty() {
                // Without a nudge the run would drain here and strand
                // retryable work; transient faults only ever delay.
                self.events
                    .schedule_in(self.recovery.base_backoff, Event::RetryNudge);
            }
        }
        debug_assert!(
            self.running.iter().all(Option::is_none),
            "tasks still running after the event queue drained"
        );
        Ok(())
    }

    /// Appends a task to the admission queue, clearing the saturation
    /// gate when the task lands inside the scan window: a wave that
    /// rejected everything it scanned says nothing about an instance it
    /// never probed, so the next wave must run. A task queued beyond the
    /// window cannot be scanned until the queue drains past it — which
    /// itself requires an admission, i.e. a capacity-epoch change — so
    /// the gate may stand.
    fn enqueue(&mut self, task_index: usize) {
        if self.queue.len() < SCAN_WINDOW {
            self.saturated_at = None;
        }
        self.queue.push_back(task_index);
    }

    /// Books one rejected deployment attempt: the per-attempt counters
    /// always tick; the distinct-task counter ticks once per (task,
    /// reason).
    fn record_rejection(&mut self, task_index: usize, reason: RejectReason) {
        self.rejections[reason.index()] += 1;
        self.metrics.inc(self.m.rejects[reason.index()]);
        let bit = 1u8 << reason.index();
        if self.reject_seen[task_index] & bit == 0 {
            self.reject_seen[task_index] |= bit;
            self.rejected_tasks[reason.index()] += 1;
        }
    }

    /// Accumulates degraded-mode time/occupancy for the interval since the
    /// previous event (cluster state is constant between events).
    fn integrate_degraded(&mut self, now: SimTime) {
        let interval = now.saturating_sub(self.last_event_at);
        if interval > SimTime::ZERO && self.controller.failed_devices() > 0 {
            self.degraded_time += interval;
            self.degraded_occ_weighted += self.controller.occupancy() * interval.as_secs();
        }
        if interval > SimTime::ZERO
            && (self.link_failed.iter().any(|&f| f) || self.link_degraded.iter().any(|&d| d))
        {
            self.link_degraded_time += interval;
        }
        self.last_event_at = now;
    }

    fn on_completion(&mut self, now: SimTime, task_index: usize) -> Result<(), RuntimeError> {
        let deployment = self.running[task_index]
            .take()
            .expect("completion for task not running");
        self.task_of.remove(&deployment.id.0);
        self.controller.release(&deployment)?;
        self.meter.record_completion();
        let e2e = now.saturating_sub(self.arrivals[task_index].at).as_secs();
        self.latency.record(e2e);
        if self.monitor.is_some() {
            let tenant = (self.instance_for)(&self.arrivals[task_index].task);
            let device = deployment.placements.first().map(|p| p.device.0 as u64);
            let latency = now.saturating_sub(self.arrivals[task_index].at);
            if let Some(mon) = self.monitor.as_mut() {
                mon.on_completion(&tenant, device, now, latency);
            }
        }
        self.metrics.inc(self.m.completions);
        self.metrics.inc(self.m.releases);
        self.metrics.record_timer(self.m.latency, e2e);
        self.metrics.record_timer(
            self.m.service,
            now.saturating_sub(self.deployed_at[task_index]).as_secs(),
        );
        self.trace.push(
            now,
            TraceEventKind::Completion {
                task: task_index as u64,
            },
        );
        self.trace.push(
            now,
            TraceEventKind::Release {
                task: task_index as u64,
            },
        );
        self.close_phase(task_index, now);
        self.close_root(task_index, "completed", now);
        self.last_completion = now;
        Ok(())
    }

    fn on_device_failed(&mut self, now: SimTime, device: usize) -> Result<(), RuntimeError> {
        self.device_failures += 1;
        self.metrics.inc(self.m.device_failures);
        self.trace.push(
            now,
            TraceEventKind::DeviceFailed {
                device: device as u64,
            },
        );
        let interrupted =
            self.controller
                .handle_device_failure_spanned(DeviceId(device), &mut self.spans, now);
        for id in interrupted {
            let task_index = self
                .task_of
                .remove(&id.0)
                .expect("interrupted deployment maps to a running task");
            let old = self.running[task_index]
                .take()
                .expect("interrupted task was running");
            self.epoch[task_index] += 1;
            self.interrupted += 1;
            self.metrics.inc(self.m.interrupted);
            self.interrupted_pending[task_index] = Some((now, old.num_units() as u32));
            if let Some(mon) = self.monitor.as_mut() {
                mon.on_migration(device as u64, now);
            }
            self.trace.push(
                now,
                TraceEventKind::MigrationStarted {
                    task: task_index as u64,
                    device: device as u64,
                },
            );
            // The compute phase was cut short; the migrate phase starts at
            // the same instant so the partition stays gapless.
            if let Some(span) = self.phase_span[task_index] {
                self.spans.attr(span, "interrupted_by", device);
            }
            self.close_phase(task_index, now);
            let migrate = self.open_phase(task_index, "migrate", now);
            self.spans.attr(migrate, "device", device);
            // Immediate migration attempt; failures back off from here.
            // Migrating tasks get first claim on the capacity their
            // surviving units just freed, ahead of the admission queue.
            self.attempt_migration(now, task_index, 0)?;
        }
        Ok(())
    }

    /// The plan's retransmission model as a [`RetransmitPolicy`]
    /// (bounded budget, backoff doubling per attempt).
    fn retransmit_policy(&self) -> RetransmitPolicy {
        let p = self.faults.link_params();
        RetransmitPolicy {
            max_retransmits: p.max_retransmits,
            base_backoff: p.retransmit_backoff,
        }
    }

    /// Bytes one inter-unit state exchange of `d` puts on the ring: its
    /// cut bandwidth in bits per activation rounded up to bytes, floored
    /// at one byte so the accounting stays visible for tiny cuts.
    fn ring_bytes(d: &Deployment) -> u64 {
        d.cut_bandwidth.div_ceil(8).max(1)
    }

    /// Whether a running deployment's minimum-hop ring routes use segment
    /// `seg`: knocking out just that segment changes (or severs) some
    /// pairwise distance between its devices.
    fn crosses_segment(&self, d: &Deployment, seg: usize) -> bool {
        if d.num_devices() < 2 {
            return false;
        }
        let mut only = vec![false; self.link_failed.len()];
        only[seg] = true;
        let cluster = self.controller.cluster();
        for a in &d.placements {
            for b in &d.placements {
                let base = cluster.ring_hops(a.device, b.device);
                if cluster.ring_hops_avoiding(a.device, b.device, &only) != Some(base) {
                    return true;
                }
            }
        }
        false
    }

    /// Largest pairwise hop count of `d` routed around the currently
    /// failed segments; `None` when some pair is severed (no surviving
    /// direction connects it).
    fn max_hops_avoiding(&self, d: &Deployment) -> Option<usize> {
        let cluster = self.controller.cluster();
        let mut max = 0;
        for a in &d.placements {
            for b in &d.placements {
                max = max.max(cluster.ring_hops_avoiding(a.device, b.device, &self.link_failed)?);
            }
        }
        Some(max)
    }

    /// Pushes a running task's completion out by `delay`, bumping its
    /// epoch so the previously scheduled completion goes stale.
    fn delay_completion(&mut self, task_index: usize, delay: SimTime) {
        if delay == SimTime::ZERO {
            return;
        }
        let at = self.completion_at[task_index]
            .checked_add(delay)
            .unwrap_or(SimTime::MAX);
        self.completion_at[task_index] = at;
        self.epoch[task_index] += 1;
        self.events.schedule(
            at,
            Event::Completion {
                task_index,
                epoch: self.epoch[task_index],
            },
        );
    }

    /// A ring segment drops to degraded service. Running multi-device
    /// deployments routed over it see a corruption burst: queued
    /// transfers are re-sent under the plan's bounded-backoff budget,
    /// pushing their completions out by the backoff sum.
    fn on_link_degraded(&mut self, now: SimTime, seg: usize) {
        self.link_degradations += 1;
        self.link_degraded[seg] = true;
        if let Some(lm) = self.m.links.as_ref() {
            self.metrics.inc(lm.degradations);
            self.metrics.set_gauge(lm.state[seg], now, 1.0);
        }
        self.trace
            .push(now, TraceEventKind::LinkDegraded { link: seg as u64 });
        let span = self.spans.begin("link_degraded", TraceId::NONE, None, now);
        self.spans.set_lane(span, seg as u64 + 1, CONTROL_TID);
        self.spans.attr(span, "segment", seg);
        self.spans.end(span, now);
        let corruption = self.faults.corruption_prob();
        if corruption <= 0.0 {
            return;
        }
        let policy = self.retransmit_policy();
        for i in 0..self.running.len() {
            let Some(d) = self.running[i].clone() else {
                continue;
            };
            if !self.crosses_segment(&d, seg) {
                continue;
            }
            // Geometric burst, capped by the retransmission budget: each
            // re-send is itself corrupted with the same probability.
            let mut attempts = 0u32;
            while attempts < policy.max_retransmits && self.link_rng.next_f64() < corruption {
                attempts += 1;
            }
            if attempts == 0 {
                continue;
            }
            let bytes = Self::ring_bytes(&d) * attempts as u64;
            self.link_retransmits += attempts as u64;
            self.link_retransmit_bytes += bytes;
            if let Some(lm) = self.m.links.as_ref() {
                self.metrics.add(lm.retransmits, attempts as u64);
                self.metrics.add(lm.retransmit_bytes, bytes);
            }
            if let Some(mon) = self.monitor.as_mut() {
                mon.on_retransmit(seg as u64, now, bytes);
            }
            self.trace.push(
                now,
                TraceEventKind::Retransmit {
                    task: i as u64,
                    link: seg as u64,
                    attempts: attempts as u64,
                    bytes,
                },
            );
            let mut delay = SimTime::ZERO;
            for k in 0..attempts {
                delay = delay.checked_add(policy.backoff(k)).unwrap_or(SimTime::MAX);
            }
            self.delay_completion(i, delay);
        }
    }

    /// A ring segment fails outright. Every running multi-device
    /// deployment whose route lengthened re-routes the other way around
    /// the bidirectional ring (hop counts recomputed over the surviving
    /// segments, the in-flight transfer re-sent); a deployment left with
    /// *no* surviving path between its units is interrupted and recovered
    /// through the same migration machinery a device failure uses — which
    /// prefers co-located placements, immune to further ring failures.
    fn on_link_failed(&mut self, now: SimTime, seg: usize) -> Result<(), RuntimeError> {
        self.link_failures += 1;
        self.link_failed[seg] = true;
        if let Some(lm) = self.m.links.as_ref() {
            self.metrics.inc(lm.failures);
            self.metrics.set_gauge(lm.state[seg], now, 2.0);
        }
        self.trace
            .push(now, TraceEventKind::LinkFailed { link: seg as u64 });
        let span = self.spans.begin("link_failure", TraceId::NONE, None, now);
        self.spans.set_lane(span, seg as u64 + 1, CONTROL_TID);
        self.spans.attr(span, "segment", seg);
        let policy = self.retransmit_policy();
        let mut rerouted = 0u64;
        let mut severed = 0u64;
        for i in 0..self.running.len() {
            let Some(d) = self.running[i].clone() else {
                continue;
            };
            if d.num_devices() < 2 {
                continue;
            }
            match self.max_hops_avoiding(&d) {
                None => {
                    severed += 1;
                    self.link_severed += 1;
                    if let Some(lm) = self.m.links.as_ref() {
                        self.metrics.inc(lm.severed);
                    }
                    // The units themselves are healthy but can no longer
                    // exchange state: release the footprint explicitly
                    // (no device failure evicted it) and ride the
                    // interruption path.
                    let old = self.running[i].take().expect("severed task was running");
                    self.task_of.remove(&old.id.0);
                    self.controller.release(&old)?;
                    self.metrics.inc(self.m.releases);
                    self.epoch[i] += 1;
                    self.interrupted += 1;
                    self.metrics.inc(self.m.interrupted);
                    self.interrupted_pending[i] = Some((now, old.num_units() as u32));
                    let device = old.placements.first().map_or(0, |p| p.device.0 as u64);
                    if let Some(mon) = self.monitor.as_mut() {
                        mon.on_migration(device, now);
                    }
                    self.trace.push(
                        now,
                        TraceEventKind::MigrationStarted {
                            task: i as u64,
                            device,
                        },
                    );
                    if let Some(phase) = self.phase_span[i] {
                        self.spans.attr(phase, "interrupted_by_link", seg);
                    }
                    self.close_phase(i, now);
                    let migrate = self.open_phase(i, "migrate", now);
                    self.spans.attr(migrate, "link", seg);
                    self.attempt_migration(now, i, 0)?;
                }
                Some(hops) => {
                    if hops <= d.max_ring_hops {
                        continue;
                    }
                    rerouted += 1;
                    self.link_reroutes += 1;
                    if let Some(lm) = self.m.links.as_ref() {
                        self.metrics.inc(lm.reroutes);
                    }
                    let extra = (hops - d.max_ring_hops) as u64;
                    self.trace.push(
                        now,
                        TraceEventKind::LinkRerouted {
                            task: i as u64,
                            link: seg as u64,
                            extra_hops: extra,
                        },
                    );
                    // The transfer caught on the dead segment is re-sent
                    // along the detour, one backoff per extra hop plus
                    // the re-send itself.
                    let bytes = Self::ring_bytes(&d);
                    self.link_retransmits += 1;
                    self.link_retransmit_bytes += bytes;
                    if let Some(lm) = self.m.links.as_ref() {
                        self.metrics.inc(lm.retransmits);
                        self.metrics.add(lm.retransmit_bytes, bytes);
                    }
                    if let Some(mon) = self.monitor.as_mut() {
                        mon.on_retransmit(seg as u64, now, bytes);
                    }
                    self.trace.push(
                        now,
                        TraceEventKind::Retransmit {
                            task: i as u64,
                            link: seg as u64,
                            attempts: 1,
                            bytes,
                        },
                    );
                    let delay =
                        SimTime::from_ps(policy.base_backoff.as_ps().saturating_mul(extra + 1));
                    self.delay_completion(i, delay);
                    if let Some(slot) = self.running[i].as_mut() {
                        slot.max_ring_hops = hops;
                    }
                }
            }
        }
        self.spans.attr(span, "rerouted", rerouted);
        self.spans.attr(span, "severed", severed);
        self.spans.end(span, now);
        Ok(())
    }

    /// A ring segment returns to service. Detoured routes silently
    /// shorten back: each running multi-device deployment's hop count is
    /// recomputed under the remaining failures.
    fn on_link_recovered(&mut self, now: SimTime, seg: usize) {
        self.link_recoveries += 1;
        self.link_failed[seg] = false;
        self.link_degraded[seg] = false;
        if let Some(lm) = self.m.links.as_ref() {
            self.metrics.inc(lm.recoveries);
            self.metrics.set_gauge(lm.state[seg], now, 0.0);
        }
        self.trace
            .push(now, TraceEventKind::LinkRecovered { link: seg as u64 });
        let span = self.spans.begin("link_recovery", TraceId::NONE, None, now);
        self.spans.set_lane(span, seg as u64 + 1, CONTROL_TID);
        self.spans.attr(span, "segment", seg);
        self.spans.end(span, now);
        for i in 0..self.running.len() {
            let Some(d) = self.running[i].clone() else {
                continue;
            };
            if d.num_devices() < 2 {
                continue;
            }
            if let Some(hops) = self.max_hops_avoiding(&d) {
                if let Some(slot) = self.running[i].as_mut() {
                    slot.max_ring_hops = hops;
                }
            }
        }
    }

    /// One migration attempt for an interrupted task. Attempt 0 is the
    /// immediate one; subsequent attempts arrive via `MigrationRetry`.
    fn attempt_migration(
        &mut self,
        now: SimTime,
        task_index: usize,
        attempt: u32,
    ) -> Result<(), RuntimeError> {
        let task = self.arrivals[task_index].task;
        let name = (self.instance_for)(&task);
        let outcome = self.controller.try_deploy_spanned(
            &name,
            &mut self.spans,
            TraceId(task_index as u64),
            self.phase_span[task_index],
            now,
        )?;
        match outcome {
            Ok(deployment) => {
                self.complete_recovery(now, task_index, deployment);
            }
            Err(reason) => {
                self.record_rejection(task_index, reason);
                if attempt < self.recovery.max_retries {
                    let delay = self.recovery.backoff(attempt);
                    // The wait until the retry renders as a `backoff` span
                    // nested in the migrate phase; `MigrationRetry` closes
                    // it when it fires.
                    let span = self.spans.begin(
                        "backoff",
                        TraceId(task_index as u64),
                        self.phase_span[task_index],
                        now,
                    );
                    self.spans.attr(span, "attempt", attempt);
                    self.spans.attr(span, "delay_us", delay.as_us());
                    self.backoff_span[task_index] = Some(span);
                    self.events.schedule(
                        now.checked_add(delay).unwrap_or(SimTime::MAX),
                        Event::MigrationRetry {
                            task_index,
                            epoch: self.epoch[task_index],
                            attempt: attempt + 1,
                        },
                    );
                } else {
                    self.trace.push(
                        now,
                        TraceEventKind::RetryExhausted {
                            task: task_index as u64,
                        },
                    );
                    if self.recovery.drop_on_exhaustion {
                        self.lost += 1;
                        self.metrics.inc(self.m.lost);
                        self.interrupted_pending[task_index] = None;
                        if let Some(span) = self.phase_span[task_index] {
                            self.spans.attr(span, "outcome", "exhausted");
                        }
                        self.close_phase(task_index, now);
                        self.close_root(task_index, "lost", now);
                    } else {
                        self.requeued += 1;
                        self.requeued_at[task_index] = Some(now);
                        self.enqueue(task_index);
                        // The task waits like a fresh arrival: the migrate
                        // phase hands over to a new queue_wait phase.
                        if let Some(span) = self.phase_span[task_index] {
                            self.spans.attr(span, "outcome", "requeued");
                        }
                        self.close_phase(task_index, now);
                        self.open_phase(task_index, "queue_wait", now);
                    }
                }
            }
        }
        Ok(())
    }

    /// Books a successful redeployment of an interrupted task (either via
    /// the migration retry path or from the admission queue after
    /// demotion).
    fn complete_recovery(&mut self, now: SimTime, task_index: usize, deployment: Deployment) {
        let (since, old_units) = self.interrupted_pending[task_index]
            .take()
            .expect("recovery completes a pending interruption");
        if let Some(requeued) = self.requeued_at[task_index].take() {
            // The task's second stint in the admission queue (demotion
            // after retry exhaustion) ends here; the one-shot `queue_wait`
            // summary covers only the first, so this wait is recorded
            // separately.
            let wait = now.saturating_sub(requeued).as_secs();
            self.requeue_wait.record(wait);
            self.metrics.record_timer(self.m.requeue_wait, wait);
        }
        let ttr = now.saturating_sub(since).as_secs();
        self.time_to_recovery.record(ttr);
        self.metrics.record_timer(self.m.time_to_recovery, ttr);
        self.migrated += 1;
        self.metrics.inc(self.m.migrations);
        // This deployment served a recovery, not a first admission: the
        // `deploys` metric (and its `Deploy` trace event) never ticks for
        // it — on the wave path admission skips straight here — so the
        // deploy-side accounting has its own counter. `deploys +
        // redeployments` equals the controller's lifetime deploy count.
        self.redeployments += 1;
        self.metrics.inc(self.m.redeployments);
        if (deployment.num_units() as u32) > old_units {
            self.scale_down_redeployments += 1;
        }
        self.trace.push(
            now,
            TraceEventKind::MigrationCompleted {
                task: task_index as u64,
                units: deployment.num_units() as u32,
            },
        );
        self.start_service(now, task_index, deployment);
    }

    /// Installs a deployment for a task and schedules its completion. The
    /// service restarts from scratch (work lost at interruption is
    /// re-done), recomputed for the new deployment's shape.
    fn start_service(&mut self, now: SimTime, task_index: usize, deployment: Deployment) {
        let task = self.arrivals[task_index].task;
        let service = (self.service_time)(&task, &deployment);
        // Whatever phase led here (queue_wait or migrate) ends now; the
        // compute phase renders on the first unit's device/vblock lane so
        // Perfetto shows which FPGA slots the task occupied.
        self.close_phase(task_index, now);
        let compute = self.open_phase(task_index, "compute", now);
        self.spans.attr(compute, "units", deployment.num_units());
        if let Some(p) = deployment.placements.first() {
            let slot = self
                .controller
                .allocation_slots(p.allocation)
                .and_then(|s| s.first().copied())
                .unwrap_or(0);
            self.spans
                .set_lane(compute, p.device.0 as u64 + 1, slot as u64);
        }
        self.deployed_at[task_index] = now;
        self.epoch[task_index] += 1;
        self.task_of.insert(deployment.id.0, task_index);
        self.base_units[task_index] = deployment.num_units() as u32;
        self.running[task_index] = Some(deployment);
        self.service_total[task_index] = service;
        self.completion_at[task_index] = now.checked_add(service).unwrap_or(SimTime::MAX);
        self.events.schedule(
            self.completion_at[task_index],
            Event::Completion {
                task_index,
                epoch: self.epoch[task_index],
            },
        );
    }

    /// One elastic-reprovisioning pass, run after the admission wave
    /// whenever any [`ElasticityPolicy`] knob is on.
    ///
    /// Preemption first: while tasks starve in the queue, the cheapest
    /// victim is scaled down and the admission wave re-run; the loop stops
    /// as soon as a demotion fails to admit anything, and an unproductive
    /// pass arms a per-capacity-epoch latch so a saturated queue cannot
    /// demote more than one victim per capacity change. Promotion only
    /// runs when the queue is empty — growing a tenant while work is
    /// waiting would invert the policy's priorities — and at most once per
    /// capacity epoch.
    fn reprovision(&mut self, now: SimTime) -> Result<(), RuntimeError> {
        if self.elasticity.preempt
            && !self.queue.is_empty()
            && self.last_preempt_epoch != Some(self.controller.capacity_epoch())
        {
            let mut productive = false;
            while !self.queue.is_empty() {
                let Some(victim) = self.cheapest_victim(now) else {
                    break;
                };
                if !self.preempt_victim(now, victim)? {
                    break;
                }
                let before = self.queue.len();
                self.admission_wave(now)?;
                if self.queue.len() == before {
                    break;
                }
                productive = true;
            }
            if !productive {
                self.last_preempt_epoch = Some(self.controller.capacity_epoch());
            }
        }
        if self.elasticity.promote && self.queue.is_empty() {
            let epoch = self.controller.capacity_epoch();
            if self.last_promo_epoch != Some(epoch) {
                self.last_promo_epoch = Some(epoch);
                self.promote_pass(now)?;
            }
        }
        Ok(())
    }

    /// Picks the cheapest preemption victim: among running tasks holding
    /// borrowed units (promoted above their admitted shape) with a
    /// strictly smaller mapping variant to fall back to, the one losing
    /// the fewest units, breaking ties by least remaining work (least
    /// slowdown added), then lowest task index for determinism. Tasks at
    /// their admitted shape are never victims — demoting an organically
    /// placed tenant trades its (possibly streaming-inflated) slowdown
    /// for a stranger's queue wait, which measurably inflates the tail.
    fn cheapest_victim(&self, now: SimTime) -> Option<usize> {
        self.running
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| {
                let d = slot.as_ref()?;
                if (d.num_units() as u32) <= self.base_units[i] {
                    return None;
                }
                let target = self.controller.scale_down_target(d)?;
                let remaining = self.completion_at[i].saturating_sub(now);
                if remaining == SimTime::ZERO {
                    return None;
                }
                Some((d.num_units() - target, remaining, i))
            })
            .min()
            .map(|(_, _, i)| i)
    }

    /// Preemptively scales `victim` down to free capacity for the queue.
    /// Returns whether capacity was actually freed (a demotion or a
    /// displacement); `false` means the victim turned out unshrinkable
    /// and the caller should stop preempting.
    fn preempt_victim(&mut self, now: SimTime, victim: usize) -> Result<bool, RuntimeError> {
        let d = self.running[victim].clone().expect("victim is running");
        let from_units = d.num_units() as u32;
        let span = self.spans.begin(
            "reprovision",
            TraceId(victim as u64),
            self.phase_span[victim],
            now,
        );
        self.spans.attr(span, "kind", "preempt");
        let outcome = self.controller.demote_deployment(
            &d,
            Some(SpanCtx {
                spans: &mut self.spans,
                trace: TraceId(victim as u64),
                parent: Some(span),
                at: now,
            }),
        )?;
        match outcome {
            ScaleDown::Demoted(nd) => {
                let to_units = nd.num_units() as u32;
                self.spans.attr(span, "outcome", "demoted");
                self.spans.attr(span, "from_units", from_units as u64);
                self.spans.attr(span, "to_units", to_units as u64);
                self.spans.end(span, now);
                self.preemptions += 1;
                self.metrics.inc(self.m.preemptions);
                self.units_lost += (from_units - to_units) as u64;
                self.trace.push(
                    now,
                    TraceEventKind::PreemptiveScaleDown {
                        task: victim as u64,
                        from_units,
                        to_units,
                    },
                );
                let (old_rem, new_rem) = self.resize_running(now, victim, nd);
                self.preemption_added
                    .record(new_rem.as_secs() - old_rem.as_secs());
                Ok(true)
            }
            ScaleDown::AlreadyMinimal => {
                self.spans.attr(span, "outcome", "kept");
                self.spans.end(span, now);
                Ok(false)
            }
            ScaleDown::Displaced => {
                // Every smaller variant flaked during commit: the victim's
                // resources are gone, so it rides the same interruption /
                // migration machinery a device failure uses (and counts
                // into the same accounting).
                self.spans.attr(span, "outcome", "displaced");
                self.spans.end(span, now);
                let old = self.running[victim].take().expect("victim was running");
                self.task_of.remove(&old.id.0);
                let device = old.placements.first().map_or(0, |p| p.device.0 as u64);
                self.epoch[victim] += 1;
                self.interrupted += 1;
                self.metrics.inc(self.m.interrupted);
                self.interrupted_pending[victim] = Some((now, old.num_units() as u32));
                if let Some(mon) = self.monitor.as_mut() {
                    mon.on_migration(device, now);
                }
                self.trace.push(
                    now,
                    TraceEventKind::MigrationStarted {
                        task: victim as u64,
                        device,
                    },
                );
                self.close_phase(victim, now);
                let migrate = self.open_phase(victim, "migrate", now);
                self.spans.attr(migrate, "device", device);
                self.attempt_migration(now, victim, 0)?;
                Ok(true)
            }
        }
    }

    /// One promotion scan over the running tasks: each is offered the
    /// co-located-first larger variants and promoted when the candidate's
    /// service time beats the current one — under the work-fraction model
    /// the remaining work scales with the total, so a strictly better
    /// service time strictly shortens what is left.
    fn promote_pass(&mut self, now: SimTime) -> Result<(), RuntimeError> {
        for i in 0..self.running.len() {
            let Some(d) = self.running[i].clone() else {
                continue;
            };
            if self.completion_at[i].saturating_sub(now) == SimTime::ZERO {
                continue;
            }
            let from_units = d.num_units() as u32;
            let task = self.arrivals[i].task;
            let service_time = self.service_time;
            let old_secs = self.service_total[i].as_secs();
            let mut accept =
                move |cand: &Deployment| service_time(&task, cand).as_secs() < old_secs;
            let span = self
                .spans
                .begin("reprovision", TraceId(i as u64), self.phase_span[i], now);
            self.spans.attr(span, "kind", "promote");
            let promoted = self.controller.promote_deployment(
                &d,
                &mut accept,
                Some(SpanCtx {
                    spans: &mut self.spans,
                    trace: TraceId(i as u64),
                    parent: Some(span),
                    at: now,
                }),
            )?;
            match promoted {
                Some(nd) => {
                    let to_units = nd.num_units() as u32;
                    self.spans.attr(span, "outcome", "promoted");
                    self.spans.attr(span, "from_units", from_units as u64);
                    self.spans.attr(span, "to_units", to_units as u64);
                    self.spans.end(span, now);
                    self.promotions += 1;
                    self.metrics.inc(self.m.promotions);
                    self.units_gained += (to_units - from_units) as u64;
                    self.trace.push(
                        now,
                        TraceEventKind::ScaleUp {
                            task: i as u64,
                            from_units,
                            to_units,
                        },
                    );
                    let (old_rem, new_rem) = self.resize_running(now, i, nd);
                    self.promotion_saved
                        .record(old_rem.as_secs() - new_rem.as_secs());
                }
                None => {
                    self.spans.attr(span, "outcome", "kept");
                    self.spans.end(span, now);
                }
            }
        }
        Ok(())
    }

    /// Swaps a running task onto `new_deployment` at `now`, carrying its
    /// progress over as a work fraction: the remaining time is rescaled
    /// by the ratio of the new shape's service time to the old one. The
    /// compute phase closes and reopens at the same instant so the span
    /// partition stays gapless (two compute buckets simply sum in the
    /// critical-path analysis). Returns `(old_remaining, new_remaining)`.
    fn resize_running(
        &mut self,
        now: SimTime,
        task_index: usize,
        new_deployment: Deployment,
    ) -> (SimTime, SimTime) {
        let old = self.running[task_index]
            .take()
            .expect("resized task was running");
        self.task_of.remove(&old.id.0);
        let old_remaining = self.completion_at[task_index].saturating_sub(now);
        let old_total = self.service_total[task_index];
        let task = self.arrivals[task_index].task;
        let new_total = (self.service_time)(&task, &new_deployment);
        let frac = if old_total > SimTime::ZERO {
            old_remaining.as_secs() / old_total.as_secs()
        } else {
            0.0
        };
        let new_remaining = SimTime::from_secs(new_total.as_secs() * frac);
        self.close_phase(task_index, now);
        let compute = self.open_phase(task_index, "compute", now);
        self.spans
            .attr(compute, "units", new_deployment.num_units());
        if let Some(p) = new_deployment.placements.first() {
            let slot = self
                .controller
                .allocation_slots(p.allocation)
                .and_then(|s| s.first().copied())
                .unwrap_or(0);
            self.spans
                .set_lane(compute, p.device.0 as u64 + 1, slot as u64);
        }
        self.epoch[task_index] += 1;
        self.task_of.insert(new_deployment.id.0, task_index);
        self.running[task_index] = Some(new_deployment);
        self.service_total[task_index] = new_total;
        self.completion_at[task_index] = now.checked_add(new_remaining).unwrap_or(SimTime::MAX);
        self.events.schedule(
            self.completion_at[task_index],
            Event::Completion {
                task_index,
                epoch: self.epoch[task_index],
            },
        );
        (old_remaining, new_remaining)
    }

    /// Admits as many queued tasks as capacity allows. Tasks request
    /// deployment independently, so a blocked task does not block later
    /// tasks that fit elsewhere; the scan window stays bounded to keep
    /// arrival order roughly fair. Each wave scans the window once and
    /// drains every admitted task with a single retain pass (no O(n)
    /// mid-deque removals), repeating until a wave admits nothing.
    ///
    /// Returns whether any attempt was turned down by a transient
    /// configure fault (retryable; the caller may need to self-schedule a
    /// retry if no other event is pending).
    fn admission_wave(&mut self, now: SimTime) -> Result<bool, RuntimeError> {
        let mut saw_transient = false;
        loop {
            let window = self.queue.len().min(SCAN_WINDOW);
            let mut admitted_in_window = vec![false; window];
            let mut admitted: Vec<(usize, Deployment)> = Vec::new();
            for (pos, admitted_slot) in admitted_in_window.iter_mut().enumerate() {
                let idx = self.queue[pos];
                let task = self.arrivals[idx].task;
                let name = (self.instance_for)(&task);
                let outcome = self.controller.try_deploy_spanned(
                    &name,
                    &mut self.spans,
                    TraceId(idx as u64),
                    self.phase_span[idx],
                    now,
                )?;
                match outcome {
                    Ok(deployment) => {
                        *admitted_slot = true;
                        admitted.push((idx, deployment));
                    }
                    Err(reason) => {
                        self.record_rejection(idx, reason);
                        saw_transient |= reason == RejectReason::TransientFault;
                        // Trace only a task's first rejection: under
                        // saturation every task is re-tried per wave and
                        // the ring would otherwise hold nothing else.
                        if !self.traced_reject[idx] {
                            self.traced_reject[idx] = true;
                            self.trace.push(
                                now,
                                TraceEventKind::DeployRejected {
                                    task: idx as u64,
                                    reason: reason.as_str(),
                                },
                            );
                        }
                    }
                }
            }
            if admitted.is_empty() {
                // The wave ends with everything it scanned rejected. If no
                // rejection was transient (a transient could succeed on
                // the very next attempt), arm the gate: until the capacity
                // epoch changes or a new task enters the scan window,
                // re-running this wave is provably futile.
                if self.gating && !saw_transient && !self.queue.is_empty() {
                    self.saturated_at = Some(self.controller.capacity_epoch());
                }
                return Ok(saw_transient);
            }
            let mut pos = 0;
            self.queue.retain(|_| {
                let keep = pos >= window || !admitted_in_window[pos];
                pos += 1;
                keep
            });
            for (idx, deployment) in admitted {
                if self.interrupted_pending[idx].is_some() {
                    // A task demoted to the queue after exhausting its
                    // migration retries finally found capacity again.
                    self.complete_recovery(now, idx, deployment);
                    continue;
                }
                if !self.waited[idx] {
                    self.waited[idx] = true;
                    let wait = now.saturating_sub(self.arrivals[idx].at).as_secs();
                    self.queue_wait.record(wait);
                    self.metrics.record_timer(self.m.queue_wait, wait);
                    if self.monitor.is_some() {
                        let tenant = (self.instance_for)(&self.arrivals[idx].task);
                        let waited = now.saturating_sub(self.arrivals[idx].at);
                        if let Some(mon) = self.monitor.as_mut() {
                            mon.on_queue_wait(&tenant, now, waited);
                        }
                    }
                }
                self.metrics.inc(self.m.deploys);
                self.trace.push(
                    now,
                    TraceEventKind::Deploy {
                        task: idx as u64,
                        units: deployment.num_units() as u32,
                    },
                );
                self.start_service(now, idx, deployment);
            }
        }
    }

    /// Samples the cluster state after the admission wave settles; the
    /// series coalesce repeats, and the trace records changes only.
    fn sample_gauges(&mut self, now: SimTime) {
        let depth = self.queue.len() as f64;
        if self.metrics.gauge_series(self.m.depth).last() != Some(depth) {
            self.trace.push(
                now,
                TraceEventKind::QueueDepth {
                    depth: self.queue.len() as u64,
                },
            );
        }
        self.metrics.set_gauge(self.m.depth, now, depth);
        let occupancy = self.controller.occupancy();
        if let Some(mon) = self.monitor.as_mut() {
            mon.on_occupancy(now, occupancy);
        }
        if self.metrics.gauge_series(self.m.occupancy).last() != Some(occupancy) {
            self.trace.push(
                now,
                TraceEventKind::Occupancy {
                    fraction: occupancy,
                },
            );
        }
        self.metrics.set_gauge(self.m.occupancy, now, occupancy);
        self.metrics.set_gauge(
            self.m.failed_devices,
            now,
            self.controller.failed_devices() as f64,
        );
    }

    fn finish(mut self) -> CloudReport {
        let elapsed = self.last_completion;
        let never_deployed = self.queue.len() as u64;
        // Tasks stranded in the queue when the run drained never deployed:
        // their queue_wait phase and root close at the final event time so
        // every span in the forest is complete before export.
        let last = self.last_event_at;
        let stranded: Vec<usize> = self.queue.iter().copied().collect();
        for idx in stranded {
            self.close_phase(idx, last);
            self.close_root(idx, "never_deployed", last);
        }
        debug_assert_eq!(self.spans.open_count(), 0, "span leaked past the run");
        let monitor = self.monitor.take().map(|mon| {
            // When the trace ring overflowed, rollup windows that predate
            // its oldest retained event only saw part of their stream —
            // mark them so the artifact reports lower bounds as such.
            let oldest_retained = self.trace.iter().next().map(|e| e.at);
            mon.finish(last, self.trace.dropped(), oldest_retained)
        });
        let critical_path = CriticalPath::analyze(&self.spans);
        let occupancy_series = self.metrics.gauge_series(self.m.occupancy).clone();
        let queue_depth_series = self.metrics.gauge_series(self.m.depth).clone();
        let degraded_secs = self.degraded_time.as_secs();
        let report = CloudReport {
            arrivals: self.arrivals.len() as u64,
            completed: self.meter.completed(),
            never_deployed,
            lost: self.lost,
            elapsed,
            throughput_per_s: self.meter.per_second(elapsed),
            latency: self.latency,
            latency_p50: self.metrics.timer_quantile(self.m.latency, 0.50),
            latency_p95: self.metrics.timer_quantile(self.m.latency, 0.95),
            latency_p99: self.metrics.timer_quantile(self.m.latency, 0.99),
            queue_wait: self.queue_wait,
            requeue_wait: self.requeue_wait,
            mean_occupancy: occupancy_series.mean_until(elapsed).unwrap_or(0.0),
            peak_occupancy: occupancy_series.max().unwrap_or(0.0),
            peak_queue_depth: queue_depth_series.max().unwrap_or(0.0) as u64,
            rejections: self.rejections,
            rejected_tasks: self.rejected_tasks,
            device_failures: self.device_failures,
            device_recoveries: self.device_recoveries,
            interrupted: self.interrupted,
            migrated: self.migrated,
            redeployments: self.redeployments,
            requeued: self.requeued,
            scale_down_redeployments: self.scale_down_redeployments,
            time_to_recovery: self.time_to_recovery,
            promotions: self.promotions,
            preemptions: self.preemptions,
            units_gained: self.units_gained,
            units_lost: self.units_lost,
            promotion_saved: self.promotion_saved,
            preemption_added: self.preemption_added,
            degraded_time: self.degraded_time,
            degraded_mean_occupancy: if degraded_secs > 0.0 {
                self.degraded_occ_weighted / degraded_secs
            } else {
                0.0
            },
            link_failures: self.link_failures,
            link_degradations: self.link_degradations,
            link_recoveries: self.link_recoveries,
            link_retransmits: self.link_retransmits,
            link_retransmit_bytes: self.link_retransmit_bytes,
            link_reroutes: self.link_reroutes,
            link_severed: self.link_severed,
            link_degraded_time: self.link_degraded_time,
            link_faults_planned: self.faults.links() > 0,
            monitor,
            occupancy_series,
            queue_depth_series,
            metrics: self.metrics,
            trace: self.trace,
            spans: self.spans,
            critical_path,
        };
        debug_assert!(
            report.accounts_for_all_arrivals(),
            "arrivals unaccounted for: {} completed + {} never deployed + {} lost != {}",
            report.completed,
            report.never_deployed,
            report.lost,
            report.arrivals
        );
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::Policy;
    use crate::testutil::small_db;
    use vfpga_core::{MappingDatabase, MappingEntry};
    use vfpga_sim::{FaultPlanParams, LinkFaultEvent, LinkFaultParams};
    use vfpga_workload::{RnnKind, RnnTask};

    fn arrivals(n: usize, gap_us: f64) -> Vec<TaskArrival> {
        (0..n)
            .map(|i| TaskArrival {
                at: SimTime::from_us(i as f64 * gap_us),
                task: RnnTask::new(RnnKind::Lstm, 512, 5),
            })
            .collect()
    }

    fn fixed_service(_t: &RnnTask, _d: &Deployment) -> SimTime {
        SimTime::from_us(100.0)
    }

    fn chaos_plan(seed: u64) -> FaultPlan {
        FaultPlan::generate(
            FaultPlanParams {
                mttf: SimTime::from_us(150.0),
                mttr: SimTime::from_us(60.0),
                configure_failure_prob: 0.0,
                horizon: SimTime::from_us(800.0),
            },
            4,
            seed,
        )
    }

    #[test]
    fn all_tasks_complete() {
        let (cluster, db) = small_db();
        let mut c = SystemController::new(cluster, db, Policy::Full);
        let a = arrivals(50, 10.0);
        let report = run_cloud_sim(&mut c, &a, &|_| "tiny".to_string(), &fixed_service).unwrap();
        assert_eq!(report.completed, 50);
        assert_eq!(report.never_deployed, 0);
        assert_eq!(report.lost, 0);
        assert!(report.accounts_for_all_arrivals());
        assert!(report.throughput_per_s > 0.0);
        // Everything released at the end.
        assert_eq!(c.live_deployments(), 0);
        assert_eq!(c.occupancy(), 0.0);
        assert_eq!(c.stats().deploys, 50);
        assert_eq!(c.stats().releases, 50);
    }

    #[test]
    fn saturation_builds_queue_wait() {
        let (cluster, db) = small_db();
        // Offered load far above capacity: queue wait must grow well past
        // the (light-load) service time.
        let mut c = SystemController::new(cluster, db, Policy::Baseline);
        let a = arrivals(80, 1.0);
        let report = run_cloud_sim(&mut c, &a, &|_| "tiny".to_string(), &fixed_service).unwrap();
        assert_eq!(report.completed, 80);
        assert!(report.accounts_for_all_arrivals());
        assert!(report.queue_wait.mean() > 100e-6);
        // Under saturation the baseline's throughput is bounded by 4
        // concurrent servers of 100us each: 40000/s.
        assert!(report.throughput_per_s <= 41_000.0);
        assert!(report.throughput_per_s > 30_000.0);
        // Saturation means the controller turned down deploy attempts for
        // capacity, and the queue visibly backed up.
        assert!(report.rejections_for(RejectReason::InsufficientCapacity) > 0);
        assert!(report.peak_queue_depth > 0);
    }

    #[test]
    fn sharing_policy_outperforms_baseline_under_saturation() {
        let (cluster, db) = small_db();
        let a = arrivals(80, 1.0);
        let mut base = SystemController::new(cluster.clone(), db.clone(), Policy::Baseline);
        let b = run_cloud_sim(&mut base, &a, &|_| "tiny".to_string(), &fixed_service).unwrap();
        let mut full = SystemController::new(cluster, db, Policy::Full);
        let f = run_cloud_sim(&mut full, &a, &|_| "tiny".to_string(), &fixed_service).unwrap();
        assert!(
            f.throughput_per_s > b.throughput_per_s * 1.5,
            "full {} vs baseline {}",
            f.throughput_per_s,
            b.throughput_per_s
        );
    }

    #[test]
    fn restricted_policy_sits_between_baseline_and_full() {
        // The paper's Fig. 12 ordering on the heterogeneous paper cluster:
        // the restricted policy (spatial sharing, multi-FPGA confined to
        // one device type) beats the whole-device baseline but cannot beat
        // the full framework.
        let (cluster, db) = small_db();
        let a = arrivals(80, 1.0);
        let run = |policy: Policy| {
            let mut c = SystemController::new(cluster.clone(), db.clone(), policy);
            run_cloud_sim(&mut c, &a, &|_| "tiny".to_string(), &fixed_service).unwrap()
        };
        let base = run(Policy::Baseline);
        let restricted = run(Policy::Restricted);
        let full = run(Policy::Full);
        assert!(base.accounts_for_all_arrivals());
        assert!(restricted.accounts_for_all_arrivals());
        assert!(full.accounts_for_all_arrivals());
        assert!(
            restricted.throughput_per_s > base.throughput_per_s,
            "restricted {} should beat baseline {}",
            restricted.throughput_per_s,
            base.throughput_per_s
        );
        assert!(
            full.throughput_per_s >= restricted.throughput_per_s,
            "full {} should be at least restricted {}",
            full.throughput_per_s,
            restricted.throughput_per_s
        );
    }

    #[test]
    fn latency_includes_queueing() {
        let (cluster, db) = small_db();
        let mut c = SystemController::new(cluster, db, Policy::Baseline);
        let a = arrivals(20, 1.0);
        let report = run_cloud_sim(&mut c, &a, &|_| "tiny".to_string(), &fixed_service).unwrap();
        // End-to-end latency >= service time for every task.
        assert!(report.latency.min().unwrap() >= 100e-6 - 1e-9);
        assert!(report.latency.mean() > report.queue_wait.mean());
        // Percentiles are ordered and at least the service time.
        let (p50, p99) = (report.latency_p50.unwrap(), report.latency_p99.unwrap());
        assert!(p50 >= 100e-6 - 1e-9);
        assert!(p99 >= p50);
    }

    #[test]
    fn undeployable_tasks_are_reported_not_dropped() {
        // An instance offering only multi-FPGA options can never deploy
        // under the baseline policy: the report must say so instead of
        // under-reporting.
        let (cluster, db) = small_db();
        let big = db.entry("big").unwrap();
        let multi_only: Vec<_> = big
            .options
            .iter()
            .filter(|o| o.num_units() > 1)
            .cloned()
            .collect();
        assert!(!multi_only.is_empty(), "test needs a multi-unit option");
        let mut db2 = MappingDatabase::new();
        db2.register_entry(MappingEntry {
            name: "huge".to_string(),
            options: multi_only,
            total_resources: big.total_resources,
            compile_seconds: big.compile_seconds,
        });
        let mut c = SystemController::new(cluster, db2, Policy::Baseline);
        let a = arrivals(10, 1.0);
        let report = run_cloud_sim(&mut c, &a, &|_| "huge".to_string(), &fixed_service).unwrap();
        assert_eq!(report.completed, 0);
        assert_eq!(report.never_deployed, 10);
        assert!(report.accounts_for_all_arrivals());
        assert!(report.rejections_for(RejectReason::PolicyExcluded) > 0);
        // Empty run still yields a well-formed report.
        assert_eq!(report.latency.min(), None);
        assert_eq!(report.latency_p99, None);
        assert_eq!(report.throughput_per_s, 0.0);
        let json = report.to_json().compact();
        assert!(json.contains(r#""never_deployed":10"#), "{json}");
    }

    #[test]
    fn empty_workload_yields_empty_report() {
        let (cluster, db) = small_db();
        let mut c = SystemController::new(cluster, db, Policy::Full);
        let report = run_cloud_sim(&mut c, &[], &|_| "tiny".to_string(), &fixed_service).unwrap();
        assert_eq!(report.arrivals, 0);
        assert_eq!(report.completed, 0);
        assert!(report.accounts_for_all_arrivals());
        assert_eq!(report.latency.min(), None);
        assert_eq!(report.mean_occupancy, 0.0);
    }

    #[test]
    fn report_exposes_time_series_and_trace() {
        let (cluster, db) = small_db();
        let mut c = SystemController::new(cluster, db, Policy::Full);
        let a = arrivals(30, 5.0);
        let report = run_cloud_sim(&mut c, &a, &|_| "tiny".to_string(), &fixed_service).unwrap();
        // Occupancy rose and returned to zero.
        assert!(report.peak_occupancy > 0.0);
        assert_eq!(report.occupancy_series.last(), Some(0.0));
        assert!(report.mean_occupancy > 0.0);
        // The trace saw every lifecycle event kind.
        let labels: std::collections::BTreeSet<&str> =
            report.trace.iter().map(|e| e.kind.label()).collect();
        for expect in ["arrival", "deploy", "completion", "release", "occupancy"] {
            assert!(labels.contains(expect), "missing {expect} in {labels:?}");
        }
        // Metrics registry agrees with the report.
        let mut m = report.metrics.clone();
        let deploys = m.counter("deploys");
        assert_eq!(m.counter_value(deploys), 30);
        let json = report.to_json().compact();
        assert!(json.contains(r#""throughput_per_s""#), "{json}");
        assert!(json.contains(r#""series":[["#), "{json}");
    }

    #[test]
    fn backoff_doubles_and_saturates() {
        let p = RecoveryPolicy {
            max_retries: 5,
            base_backoff: SimTime::from_us(10.0),
            drop_on_exhaustion: false,
        };
        assert_eq!(p.backoff(0), SimTime::from_us(10.0));
        assert_eq!(p.backoff(1), SimTime::from_us(20.0));
        assert_eq!(p.backoff(3), SimTime::from_us(80.0));
        // Huge attempt numbers saturate instead of overflowing.
        assert_eq!(p.backoff(u32::MAX), p.backoff(32));
    }

    #[test]
    fn chaos_run_recovers_interrupted_tasks() {
        let (cluster, db) = small_db();
        let mut c = SystemController::new(cluster, db, Policy::Full);
        let a = arrivals(60, 10.0);
        let plan = chaos_plan(2024);
        assert!(plan.failures() > 0, "plan must actually inject failures");
        let report = run_cloud_sim_faulted(
            &mut c,
            &a,
            &|_| "tiny".to_string(),
            &fixed_service,
            &plan,
            RecoveryPolicy::default(),
            DEFAULT_TRACE_CAPACITY,
        )
        .unwrap();
        assert!(report.accounts_for_all_arrivals());
        assert!(report.device_failures > 0);
        assert!(report.interrupted > 0, "failures should interrupt work");
        assert!(report.migrated > 0, "some interruption should recover");
        assert!(report.degraded_time > SimTime::ZERO);
        let labels: std::collections::BTreeSet<&str> =
            report.trace.iter().map(|e| e.kind.label()).collect();
        for expect in ["device_failed", "migration_started", "migration_completed"] {
            assert!(labels.contains(expect), "missing {expect} in {labels:?}");
        }
        // Occupancy stays a valid fraction throughout the chaos.
        assert!(report.peak_occupancy <= 1.0);
        // After the run, the controller holds nothing.
        assert_eq!(c.live_deployments(), 0);
    }

    #[test]
    fn chaos_runs_are_byte_identical_for_a_fixed_seed() {
        let (cluster, db) = small_db();
        let a = arrivals(60, 10.0);
        let plan = chaos_plan(7);
        let run = || {
            let mut c = SystemController::new(cluster.clone(), db.clone(), Policy::Full);
            run_cloud_sim_faulted(
                &mut c,
                &a,
                &|_| "tiny".to_string(),
                &fixed_service,
                &plan,
                RecoveryPolicy::default(),
                DEFAULT_TRACE_CAPACITY,
            )
            .unwrap()
            .to_json()
            .pretty()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn drop_policy_classifies_lost_tasks() {
        let (cluster, db) = small_db();
        // Aggressive failures with recoveries far beyond the workload:
        // interrupted tasks find no healthy capacity and retries exhaust.
        let mut c = SystemController::new(cluster, db, Policy::Full);
        let a = arrivals(10, 5.0);
        let plan = FaultPlan::generate(
            FaultPlanParams {
                mttf: SimTime::from_us(30.0),
                mttr: SimTime::from_secs(10.0),
                configure_failure_prob: 0.0,
                horizon: SimTime::from_us(200.0),
            },
            4,
            3,
        );
        assert!(plan.failures() > 0);
        let report = run_cloud_sim_faulted(
            &mut c,
            &a,
            &|_| "tiny".to_string(),
            &fixed_service,
            &plan,
            RecoveryPolicy {
                max_retries: 2,
                base_backoff: SimTime::from_us(10.0),
                drop_on_exhaustion: true,
            },
            DEFAULT_TRACE_CAPACITY,
        )
        .unwrap();
        assert!(report.accounts_for_all_arrivals());
        if report.interrupted > 0 {
            assert!(
                report.lost + report.migrated > 0,
                "interruptions must resolve to lost or migrated"
            );
            if report.lost > 0 {
                let labels: std::collections::BTreeSet<&str> =
                    report.trace.iter().map(|e| e.kind.label()).collect();
                assert!(labels.contains("retry_exhausted"), "{labels:?}");
            }
        }
    }

    #[test]
    fn spans_partition_latency_and_critical_path_reports() {
        let (cluster, db) = small_db();
        let mut c = SystemController::new(cluster, db, Policy::Full);
        let a = arrivals(60, 10.0);
        let plan = chaos_plan(2024);
        let report = run_cloud_sim_faulted(
            &mut c,
            &a,
            &|_| "tiny".to_string(),
            &fixed_service,
            &plan,
            RecoveryPolicy::default(),
            DEFAULT_TRACE_CAPACITY,
        )
        .unwrap();
        // Every span closed; roots cover every arrival.
        assert_eq!(report.spans.open_count(), 0);
        let roots: Vec<_> = report
            .spans
            .spans()
            .iter()
            .filter(|s| s.name == "task")
            .collect();
        assert_eq!(roots.len(), 60);
        // Phase buckets sum *exactly* (in integer picoseconds) to each
        // completed task's end-to-end latency.
        let cp = &report.critical_path;
        assert_eq!(cp.tasks.len(), report.completed as usize);
        for task in &cp.tasks {
            assert_eq!(task.phase_sum(), task.total, "buckets must partition");
        }
        // The dominant-phase percentiles exist and name real phases.
        let p99 = cp.quantile_task(0.99).expect("tasks completed");
        assert!(["queue_wait", "compute", "migrate"].contains(&p99.dominant().0));
        // The chaos run migrated tasks: some task carries a migrate bucket.
        assert!(report.migrated > 0);
        assert!(
            cp.tasks
                .iter()
                .any(|t| t.phases.iter().any(|(n, _)| *n == "migrate")),
            "a migrated task should expose a migrate bucket"
        );
        // Spans mention the control-plane machinery too.
        let names: std::collections::BTreeSet<&str> =
            report.spans.spans().iter().map(|s| s.name).collect();
        for expect in ["deploy", "reconfigure", "device_failure"] {
            assert!(names.contains(expect), "missing {expect} in {names:?}");
        }
        // The report JSON carries the critical-path section.
        let json = report.to_json().compact();
        assert!(json.contains(r#""critical_path""#), "{json}");
        assert!(json.contains(r#""completed_tasks":"#), "{json}");
    }

    #[test]
    fn never_deployed_tasks_close_their_spans() {
        let (cluster, db) = small_db();
        let big = db.entry("big").unwrap();
        let multi_only: Vec<_> = big
            .options
            .iter()
            .filter(|o| o.num_units() > 1)
            .cloned()
            .collect();
        let mut db2 = MappingDatabase::new();
        db2.register_entry(MappingEntry {
            name: "huge".to_string(),
            options: multi_only,
            total_resources: big.total_resources,
            compile_seconds: big.compile_seconds,
        });
        let mut c = SystemController::new(cluster, db2, Policy::Baseline);
        let a = arrivals(10, 1.0);
        let report = run_cloud_sim(&mut c, &a, &|_| "huge".to_string(), &fixed_service).unwrap();
        assert_eq!(report.never_deployed, 10);
        assert_eq!(report.spans.open_count(), 0);
        let outcomes = report
            .spans
            .spans()
            .iter()
            .filter(|s| s.name == "task" && s.attr_is("outcome", "never_deployed"))
            .count();
        assert_eq!(outcomes, 10);
        // Nothing completed, so the critical path is empty but well-formed.
        assert!(report.critical_path.tasks.is_empty());
        assert!(report.critical_path.quantile_task(0.5).is_none());
    }

    #[test]
    fn requeued_tasks_record_second_wait_and_redeployments() {
        // Every device fails almost immediately (mttf << horizon) and
        // stays down far longer than the retry budget: interrupted tasks
        // exhaust their migration retries, demote to the admission queue,
        // and redeploy via the wave once devices recover. Regressions
        // pinned here: the wave-path redeploy used to take the
        // `complete_recovery` early-continue without ever counting into
        // the deploy-side metrics, and the second queue wait was never
        // recorded (`waited` is one-shot).
        let (cluster, db) = small_db();
        let mut c = SystemController::new(cluster, db, Policy::Full);
        let a = arrivals(8, 2.0);
        let plan = FaultPlan::generate(
            FaultPlanParams {
                mttf: SimTime::from_us(1.0),
                mttr: SimTime::from_us(400.0),
                configure_failure_prob: 0.0,
                horizon: SimTime::from_us(40.0),
            },
            4,
            5,
        );
        assert!(plan.failures() >= 4, "all devices must go down");
        let report = run_cloud_sim_faulted(
            &mut c,
            &a,
            &|_| "tiny".to_string(),
            &fixed_service,
            &plan,
            RecoveryPolicy {
                max_retries: 1,
                base_backoff: SimTime::from_us(5.0),
                drop_on_exhaustion: false,
            },
            DEFAULT_TRACE_CAPACITY,
        )
        .unwrap();
        assert!(report.accounts_for_all_arrivals());
        assert!(report.requeued > 0, "scenario must demote tasks");
        assert!(report.redeployments > 0);
        assert_eq!(report.redeployments, report.migrated);
        // The deploy-side accounting closes: first admissions (the
        // `deploys` metric) plus redeployments equal the controller's
        // lifetime deploy count. Before the fix, wave-path recoveries
        // fell through both counters.
        let mut m = report.metrics.clone();
        let deploys = m.counter("deploys");
        let redeploys = m.counter("redeployments");
        assert_eq!(
            m.counter_value(deploys) + m.counter_value(redeploys),
            c.stats().deploys,
            "deploys + redeployments must equal controller deploys"
        );
        // The second stint in the queue is measured, and the first-wait
        // summary stays one-shot per task.
        assert!(report.requeue_wait.count() > 0);
        assert!(report.requeue_wait.count() <= report.requeued);
        assert!(report.queue_wait.count() <= report.arrivals);
        let json = report.to_json().compact();
        assert!(json.contains(r#""requeue_wait_s""#), "{json}");
        assert!(json.contains(r#""redeployments""#), "{json}");
    }

    #[test]
    fn rejection_breakdown_counts_attempts_and_distinct_tasks() {
        let (cluster, db) = small_db();
        let mut c = SystemController::new(cluster, db, Policy::Baseline);
        let a = arrivals(80, 1.0);
        let report = run_cloud_sim(&mut c, &a, &|_| "tiny".to_string(), &fixed_service).unwrap();
        let reason = RejectReason::InsufficientCapacity;
        // The per-task view is bounded by the workload no matter how many
        // waves re-attempted the same queued tasks; before the fix only
        // the per-attempt counters existed, scaling with event count.
        let tasks = report.rejected_tasks_for(reason);
        assert!(tasks > 0);
        assert!(tasks <= report.arrivals);
        assert!(
            report.rejections_for(reason) > tasks,
            "saturation re-attempts: {} attempts vs {} tasks",
            report.rejections_for(reason),
            tasks
        );
        for r in RejectReason::ALL {
            assert!(report.rejections_for(r) >= report.rejected_tasks_for(r));
        }
        // The artifact names both views.
        let json = report.to_json().compact();
        assert!(json.contains(r#""rejections":{"attempts":{"#), "{json}");
        assert!(json.contains(r#""tasks":{"#), "{json}");
    }

    #[test]
    fn wave_gating_preserves_admission_decisions() {
        // Deep saturation with the queue well past the scan window: the
        // gate actually skips waves (fewer attempt-level rejections), yet
        // every outcome-visible quantity matches the ungated run.
        let (cluster, db) = small_db();
        let a = arrivals(200, 0.5);
        let run = |wave_gating: bool| {
            let mut c = SystemController::new(cluster.clone(), db.clone(), Policy::Baseline);
            run_cloud_sim_tuned(
                &mut c,
                &a,
                &|_| "tiny".to_string(),
                &fixed_service,
                &FaultPlan::none(),
                RecoveryPolicy::default(),
                DEFAULT_TRACE_CAPACITY,
                AdmissionTuning {
                    wave_gating,
                    ..AdmissionTuning::default()
                },
            )
            .unwrap()
        };
        let on = run(true);
        let off = run(false);
        assert_eq!(on.completed, off.completed);
        assert_eq!(on.never_deployed, off.never_deployed);
        assert_eq!(on.lost, off.lost);
        assert_eq!(on.elapsed, off.elapsed);
        assert_eq!(on.throughput_per_s, off.throughput_per_s);
        assert_eq!(on.latency_p50, off.latency_p50);
        assert_eq!(on.latency_p99, off.latency_p99);
        assert_eq!(on.rejected_tasks, off.rejected_tasks);
        assert_eq!(on.queue_wait.count(), off.queue_wait.count());
        assert_eq!(on.queue_wait.mean(), off.queue_wait.mean());
        assert!(
            on.total_rejections() < off.total_rejections(),
            "gating must skip futile re-probes: {} vs {}",
            on.total_rejections(),
            off.total_rejections()
        );
    }

    #[test]
    fn wave_gating_is_transparent_under_chaos() {
        let (cluster, db) = small_db();
        let a = arrivals(80, 1.0);
        let plan = chaos_plan(7);
        let run = |wave_gating: bool| {
            let mut c = SystemController::new(cluster.clone(), db.clone(), Policy::Full);
            run_cloud_sim_tuned(
                &mut c,
                &a,
                &|_| "tiny".to_string(),
                &fixed_service,
                &plan,
                RecoveryPolicy::default(),
                DEFAULT_TRACE_CAPACITY,
                AdmissionTuning {
                    wave_gating,
                    ..AdmissionTuning::default()
                },
            )
            .unwrap()
        };
        let on = run(true);
        let off = run(false);
        assert!(on.accounts_for_all_arrivals());
        assert_eq!(on.completed, off.completed);
        assert_eq!(on.never_deployed, off.never_deployed);
        assert_eq!(on.lost, off.lost);
        assert_eq!(on.elapsed, off.elapsed);
        assert_eq!(on.migrated, off.migrated);
        assert_eq!(on.redeployments, off.redeployments);
        assert_eq!(on.requeued, off.requeued);
        assert_eq!(on.rejected_tasks, off.rejected_tasks);
        assert_eq!(on.latency_p99, off.latency_p99);
        assert!(on.total_rejections() <= off.total_rejections());
    }

    #[test]
    fn span_tracing_off_changes_no_outcomes() {
        let (cluster, db) = small_db();
        let a = arrivals(60, 10.0);
        let plan = chaos_plan(2024);
        let run = |trace_spans: bool| {
            let mut c = SystemController::new(cluster.clone(), db.clone(), Policy::Full);
            run_cloud_sim_tuned(
                &mut c,
                &a,
                &|_| "tiny".to_string(),
                &fixed_service,
                &plan,
                RecoveryPolicy::default(),
                DEFAULT_TRACE_CAPACITY,
                AdmissionTuning {
                    trace_spans,
                    ..AdmissionTuning::default()
                },
            )
            .unwrap()
        };
        let on = run(true);
        let off = run(false);
        assert!(off.spans.is_empty());
        assert!(off.critical_path.tasks.is_empty());
        assert!(!on.spans.is_empty());
        assert_eq!(on.completed, off.completed);
        assert_eq!(on.elapsed, off.elapsed);
        assert_eq!(on.migrated, off.migrated);
        assert_eq!(on.latency_p99, off.latency_p99);
        assert_eq!(on.rejections, off.rejections);
    }

    #[test]
    fn transient_faults_delay_but_do_not_lose_tasks() {
        let (cluster, db) = small_db();
        let mut c = SystemController::new(cluster, db, Policy::Full);
        let a = arrivals(40, 10.0);
        // Transients only: zero horizon means no hard fail/recover waves.
        let plan = FaultPlan::generate(
            FaultPlanParams {
                mttf: SimTime::from_secs(1.0),
                mttr: SimTime::from_us(50.0),
                configure_failure_prob: 0.3,
                horizon: SimTime::ZERO,
            },
            4,
            11,
        );
        assert!(plan.failures() == 0);
        let report = run_cloud_sim_faulted(
            &mut c,
            &a,
            &|_| "tiny".to_string(),
            &fixed_service,
            &plan,
            RecoveryPolicy::default(),
            DEFAULT_TRACE_CAPACITY,
        )
        .unwrap();
        assert_eq!(report.completed, 40, "transients only delay");
        assert!(report.accounts_for_all_arrivals());
        assert!(
            report.rejections_for(RejectReason::TransientFault) > 0,
            "30% flake rate must surface in the breakdown"
        );
    }

    /// Service that improves with parallel units — the shape promotion
    /// exists for (e.g. a weight set that stops streaming once spread).
    fn scaling_service(_t: &RnnTask, d: &Deployment) -> SimTime {
        SimTime::from_us(100.0 / d.num_units() as f64)
    }

    fn elastic_run(
        cluster: &vfpga_fabric::Cluster,
        db: &MappingDatabase,
        a: &[TaskArrival],
        elasticity: ElasticityPolicy,
    ) -> CloudReport {
        let mut c = SystemController::new(cluster.clone(), db.clone(), Policy::Full);
        run_cloud_sim_tuned(
            &mut c,
            a,
            &|_| "tiny".to_string(),
            &scaling_service,
            &FaultPlan::none(),
            RecoveryPolicy::default(),
            DEFAULT_TRACE_CAPACITY,
            AdmissionTuning {
                elasticity,
                ..AdmissionTuning::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn promotion_grows_idle_deployments_and_shortens_service() {
        let (cluster, db) = small_db();
        // Sparse arrivals: the cluster is idle around every task, so each
        // deployment should be promoted off its greedy 1-unit placement.
        let a = arrivals(4, 300.0);
        let on = elastic_run(
            &cluster,
            &db,
            &a,
            ElasticityPolicy {
                promote: true,
                preempt: false,
            },
        );
        let off = elastic_run(&cluster, &db, &a, ElasticityPolicy::DISABLED);
        assert!(on.accounts_for_all_arrivals());
        assert_eq!(on.completed, 4);
        assert!(on.promotions >= 1, "idle capacity must trigger promotion");
        assert!(on.units_gained >= 1);
        assert_eq!(on.preemptions, 0, "promote-only policy never preempts");
        assert!(
            on.latency.mean() < off.latency.mean(),
            "promotion must shorten service: {} vs {}",
            on.latency.mean(),
            off.latency.mean()
        );
        assert!(on.promotion_saved.count() >= 1);
        assert!(on.promotion_saved.min().unwrap_or(0.0) > 0.0);
    }

    #[test]
    fn preemption_reclaims_promoted_capacity_for_queued_work() {
        let (cluster, db) = small_db();
        // A lone early task gets promoted into the idle cluster; a burst
        // then piles up behind it, which preemption must relieve.
        let mut a = arrivals(1, 0.0);
        for _ in 0..40 {
            a.push(TaskArrival {
                at: SimTime::from_us(10.0),
                task: RnnTask::new(RnnKind::Lstm, 512, 5),
            });
        }
        let on = elastic_run(&cluster, &db, &a, ElasticityPolicy::FULL);
        assert!(on.accounts_for_all_arrivals());
        assert_eq!(on.completed, a.len() as u64);
        assert!(on.promotions >= 1, "the early task must be promoted");
        assert!(
            on.preemptions >= 1,
            "the burst must claw promoted units back"
        );
        assert!(on.units_lost >= 1);
        assert!(on.preemption_added.count() >= 1);
    }

    #[test]
    fn elasticity_off_is_identical_to_default_tuning() {
        let (cluster, db) = small_db();
        let a = arrivals(60, 2.0);
        let explicit = elastic_run(&cluster, &db, &a, ElasticityPolicy::DISABLED);
        let mut c = SystemController::new(cluster.clone(), db.clone(), Policy::Full);
        let default = run_cloud_sim_tuned(
            &mut c,
            &a,
            &|_| "tiny".to_string(),
            &scaling_service,
            &FaultPlan::none(),
            RecoveryPolicy::default(),
            DEFAULT_TRACE_CAPACITY,
            AdmissionTuning::default(),
        )
        .unwrap();
        assert_eq!(default.promotions, 0);
        assert_eq!(default.preemptions, 0);
        assert_eq!(
            explicit.to_json().pretty(),
            default.to_json().pretty(),
            "default tuning must mean elasticity off, byte for byte"
        );
    }

    fn link_chaos_params() -> LinkFaultParams {
        LinkFaultParams {
            mttf: SimTime::from_us(150.0),
            mttr: SimTime::from_us(60.0),
            degraded_fraction: 0.5,
            bandwidth_factor: 0.25,
            extra_latency: SimTime::from_ns(250.0),
            corruption_prob: 0.4,
            max_retransmits: 3,
            retransmit_backoff: SimTime::from_ns(200.0),
            horizon: SimTime::from_us(800.0),
        }
    }

    /// One transition per ring segment at `at`, all of the same kind.
    fn all_segments(at: SimTime, kind: LinkFaultKind) -> Vec<LinkFaultEvent> {
        (0..4)
            .map(|link| LinkFaultEvent { at, link, kind })
            .collect()
    }

    fn faulted_run(
        cluster: &vfpga_fabric::Cluster,
        db: &MappingDatabase,
        a: &[TaskArrival],
        instance: &str,
        plan: &FaultPlan,
    ) -> CloudReport {
        let mut c = SystemController::new(cluster.clone(), db.clone(), Policy::Full);
        let name = instance.to_string();
        let report = run_cloud_sim_faulted(
            &mut c,
            a,
            &move |_| name.clone(),
            &fixed_service,
            plan,
            RecoveryPolicy::default(),
            DEFAULT_TRACE_CAPACITY,
        )
        .unwrap();
        assert_eq!(c.live_deployments(), 0, "everything released at the end");
        report
    }

    #[test]
    fn irrelevant_link_schedules_change_nothing() {
        let (cluster, db) = small_db();
        let a = arrivals(60, 2.0);
        let base = faulted_run(&cluster, &db, &a, "big", &chaos_plan(7));
        // Link events beyond the ring's segment count are ignored, like
        // out-of-range device indices; only the (all-zero) report block
        // betrays that the plan covered links at all.
        let mut lp = link_chaos_params();
        lp.corruption_prob = 0.0;
        let out_of_range = chaos_plan(7).with_link_schedule(
            lp,
            9,
            vec![
                LinkFaultEvent {
                    at: SimTime::from_us(10.0),
                    link: 7,
                    kind: LinkFaultKind::Failed,
                },
                LinkFaultEvent {
                    at: SimTime::from_us(90.0),
                    link: 7,
                    kind: LinkFaultKind::Recovered,
                },
            ],
        );
        let alt = faulted_run(&cluster, &db, &a, "big", &out_of_range);
        assert_eq!(alt.link_failures, 0);
        assert_eq!(alt.link_retransmits, 0);
        assert_eq!(alt.completed, base.completed);
        assert_eq!(alt.elapsed, base.elapsed);
        assert_eq!(alt.trace.len(), base.trace.len());
        // Device-only plans serialize without any link block at all.
        assert!(!base.link_faults_planned);
        assert!(!base.to_json().compact().contains(r#""links""#));
        assert!(alt.link_faults_planned);
        assert!(alt
            .to_json()
            .compact()
            .contains(r#""bytes_retransmitted":0"#));
    }

    #[test]
    fn all_segments_failing_severs_multi_device_deployments() {
        let (cluster, db) = small_db();
        // Saturate with the big instance so placements spill across FPGAs,
        // then take the whole ring down mid-stream: every multi-device
        // deployment loses its inter-unit paths and must migrate.
        let a = arrivals(40, 1.0);
        let mut lp = link_chaos_params();
        lp.corruption_prob = 0.0;
        let mut events = all_segments(SimTime::from_us(150.0), LinkFaultKind::Failed);
        events.extend(all_segments(
            SimTime::from_us(400.0),
            LinkFaultKind::Recovered,
        ));
        let plan = FaultPlan::none().with_link_schedule(lp, 4, events);
        assert!(plan.has_link_faults());
        let report = faulted_run(&cluster, &db, &a, "big", &plan);
        assert!(report.accounts_for_all_arrivals());
        assert_eq!(report.link_failures, 4);
        assert_eq!(report.link_recoveries, 4);
        assert_eq!(report.device_failures, 0);
        assert!(
            report.link_severed > 0,
            "the whole ring down must sever some multi-FPGA deployment"
        );
        // Link severs are the only interruption source in this run, and
        // they recover through the ordinary migration machinery.
        assert_eq!(report.interrupted, report.link_severed);
        assert!(report.migrated > 0);
        assert!(report.link_degraded_time > SimTime::ZERO);
        let labels: std::collections::BTreeSet<&str> =
            report.trace.iter().map(|e| e.kind.label()).collect();
        for expect in ["link_failed", "link_recovered", "migration_started"] {
            assert!(labels.contains(expect), "missing {expect} in {labels:?}");
        }
    }

    #[test]
    fn degraded_links_corrupt_and_retransmit_under_budget() {
        let (cluster, db) = small_db();
        let a = arrivals(40, 1.0);
        // Certain corruption: every burst runs to the retransmission
        // budget, making the counters exact multiples of it.
        let mut lp = link_chaos_params();
        lp.corruption_prob = 1.0;
        let mut events = all_segments(SimTime::from_us(150.0), LinkFaultKind::Degraded);
        events.extend(all_segments(
            SimTime::from_us(400.0),
            LinkFaultKind::Recovered,
        ));
        let plan = FaultPlan::none().with_link_schedule(lp, 4, events);
        let report = faulted_run(&cluster, &db, &a, "big", &plan);
        assert!(report.accounts_for_all_arrivals());
        assert_eq!(report.link_degradations, 4);
        assert_eq!(report.link_severed, 0, "degradation never interrupts");
        assert_eq!(report.interrupted, 0);
        assert!(
            report.link_retransmits > 0,
            "deployments routed over degraded segments must retransmit"
        );
        assert_eq!(
            report.link_retransmits % u64::from(lp.max_retransmits),
            0,
            "certain corruption exhausts the budget each burst"
        );
        // Degraded from 150us to 400us exactly.
        assert!(report.link_degraded_time >= SimTime::from_us(249.0));
        let labels: std::collections::BTreeSet<&str> =
            report.trace.iter().map(|e| e.kind.label()).collect();
        for expect in ["link_degraded", "retransmit"] {
            assert!(labels.contains(expect), "missing {expect} in {labels:?}");
        }
    }

    #[test]
    fn link_chaos_runs_are_byte_identical_and_bytes_reconcile() {
        let (cluster, db) = small_db();
        let a = arrivals(60, 2.0);
        let plan = chaos_plan(42).with_link_faults(link_chaos_params(), 4);
        assert!(plan.has_link_faults());
        let r1 = faulted_run(&cluster, &db, &a, "big", &plan);
        let r2 = faulted_run(&cluster, &db, &a, "big", &plan);
        assert_eq!(r1.to_json().pretty(), r2.to_json().pretty());
        assert!(r1.accounts_for_all_arrivals());
        // With no trace evictions, the Retransmit events' bytes sum to
        // exactly the report counter.
        assert_eq!(r1.trace.dropped(), 0);
        let traced: u64 = r1
            .trace
            .iter()
            .filter_map(|e| match &e.kind {
                TraceEventKind::Retransmit { bytes, .. } => Some(*bytes),
                _ => None,
            })
            .sum();
        assert_eq!(traced, r1.link_retransmit_bytes);
    }

    fn monitored_tuning() -> AdmissionTuning {
        let mut spec = vfpga_sim::SloSpec::latency("p95-latency", 0.95, SimTime::from_us(150.0));
        spec.fast_windows = 3;
        spec.slow_windows = 8;
        AdmissionTuning {
            monitor: MonitorConfig::enabled(SimTime::from_us(50.0), vec![spec]),
            ..AdmissionTuning::default()
        }
    }

    fn monitored_run(plan: &FaultPlan, tuning: AdmissionTuning) -> CloudReport {
        let (cluster, db) = small_db();
        let mut c = SystemController::new(cluster, db, Policy::Full);
        let a = arrivals(60, 10.0);
        run_cloud_sim_tuned(
            &mut c,
            &a,
            &|_| "tiny".to_string(),
            &fixed_service,
            plan,
            RecoveryPolicy::default(),
            DEFAULT_TRACE_CAPACITY,
            tuning,
        )
        .unwrap()
    }

    #[test]
    fn monitor_off_emits_no_section() {
        let report = monitored_run(&FaultPlan::none(), AdmissionTuning::default());
        assert!(report.monitor.is_none());
        assert!(!report.to_json().pretty().contains("\"monitor\""));
    }

    #[test]
    fn monitor_rollups_reconcile_with_report_counters() {
        let report = monitored_run(&chaos_plan(7), monitored_tuning());
        let monitor = report.monitor.as_ref().expect("monitor section present");
        // Cluster-keyed rollup counters sum to the report's totals.
        let whole = monitor
            .rollups
            .merged(u64::MAX / monitor.rollups.window().as_ps());
        let cluster = whole.series_for(&vfpga_sim::RollupKey::Cluster);
        assert_eq!(cluster.len(), 1);
        assert_eq!(cluster[0].1.arrivals, report.arrivals);
        assert_eq!(cluster[0].1.completions, report.completed);
        assert_eq!(cluster[0].1.latency.count(), report.completed);
        assert_eq!(cluster[0].1.migrations, report.interrupted);
        // The tenant key mirrors the cluster in a single-instance run.
        let tenant = whole.series_for(&vfpga_sim::RollupKey::Tenant("tiny".into()));
        assert_eq!(tenant[0].1.completions, report.completed);
        // Sketch quantiles track the exact tail within the configured
        // relative error.
        let alpha = monitor.rollups.alpha();
        for (q, exact) in [(0.5, report.latency_p50), (0.95, report.latency_p95)] {
            let sk = cluster[0].1.latency.quantile_secs(q).unwrap();
            let exact = exact.unwrap();
            assert!(
                (sk - exact).abs() <= alpha * exact + 1e-12,
                "q{q}: sketch {sk} vs exact {exact}"
            );
        }
        // SLO outcomes exist for every latency-bearing key and the section
        // serializes into the artifact.
        assert!(!monitor.outcomes.is_empty());
        let text = report.to_json().pretty();
        assert!(text.contains("\"monitor\""), "{text}");
        assert!(text.contains("\"slo\": \"p95-latency\""), "{text}");
        // The exposition carries the rollup families.
        assert!(monitor
            .prometheus_text()
            .contains("vfpga_rollup_completions{key=\"cluster\"}"));
    }

    #[test]
    fn monitored_chaos_runs_are_byte_identical() {
        let plan = chaos_plan(42).with_link_faults(link_chaos_params(), 4);
        let r1 = monitored_run(&plan, monitored_tuning());
        let r2 = monitored_run(&plan, monitored_tuning());
        assert_eq!(r1.to_json().pretty(), r2.to_json().pretty());
        // Link-labeled gauge families render once per family with one
        // sample line per segment.
        let prom = vfpga_sim::prometheus_text(&r1.metrics);
        assert_eq!(prom.matches("# TYPE vfpga_link_state gauge").count(), 1);
        assert!(prom.contains("vfpga_link_state{segment=\"0\"}"), "{prom}");
        assert!(prom.contains("# HELP link_retransmits"), "{prom}");
    }

    #[test]
    fn monitor_marks_windows_truncated_when_trace_overflows() {
        let (cluster, db) = small_db();
        let mut c = SystemController::new(cluster, db, Policy::Full);
        let a = arrivals(60, 10.0);
        // A tiny ring guarantees drops; the early windows predate its
        // oldest retained event and must be flagged.
        let report = run_cloud_sim_tuned(
            &mut c,
            &a,
            &|_| "tiny".to_string(),
            &fixed_service,
            &FaultPlan::none(),
            RecoveryPolicy::default(),
            8,
            monitored_tuning(),
        )
        .unwrap();
        assert!(report.trace.dropped() > 0);
        let monitor = report.monitor.as_ref().unwrap();
        assert!(monitor.truncated_windows > 0);
        assert!(report.to_json().pretty().contains("\"truncated\": true"));
    }
}

//! Discrete-event simulation of the cluster serving a workload set.

use std::collections::VecDeque;

use vfpga_sim::{
    EventQueue, Json, MetricsRegistry, SimTime, Summary, ThroughputMeter, TimeSeries,
    TraceEventKind, TraceRing,
};
use vfpga_workload::{RnnTask, TaskArrival};

use crate::controller::{Deployment, RejectReason, SystemController};
use crate::RuntimeError;

/// Default capacity of the scheduler-event trace ring kept by
/// [`run_cloud_sim`]. Sized so a full Fig. 12 workload set traces without
/// evictions while bounding memory for longer runs.
pub const DEFAULT_TRACE_CAPACITY: usize = 8192;

/// Results of one cloud simulation run, including the observability
/// artifacts the run accumulated: streaming summaries, tail percentiles,
/// occupancy/queue-depth time series, the rejection-reason breakdown, the
/// full metrics registry, and the scheduler-event trace.
///
/// Accounting invariant: every arrival either completed or is reported in
/// [`never_deployed`](CloudReport::never_deployed) — the simulator never
/// silently drops a queued task.
#[derive(Debug, Clone)]
pub struct CloudReport {
    /// Tasks that arrived.
    pub arrivals: u64,
    /// Tasks completed.
    pub completed: u64,
    /// Tasks still waiting in the queue when the simulation drained: they
    /// could never be deployed (e.g. the policy excludes every mapping
    /// option, or capacity never freed up).
    pub never_deployed: u64,
    /// Time of the last completion.
    pub elapsed: SimTime,
    /// Aggregated system throughput in tasks per second (Fig. 12's
    /// metric).
    pub throughput_per_s: f64,
    /// End-to-end latency statistics (arrival to completion).
    pub latency: Summary,
    /// Median end-to-end latency in seconds; `None` if nothing completed.
    pub latency_p50: Option<f64>,
    /// 95th-percentile end-to-end latency in seconds.
    pub latency_p95: Option<f64>,
    /// 99th-percentile end-to-end latency in seconds.
    pub latency_p99: Option<f64>,
    /// Queueing delay statistics (arrival to deployment).
    pub queue_wait: Summary,
    /// Time-weighted mean cluster occupancy over the run (utilization).
    pub mean_occupancy: f64,
    /// Highest sampled cluster occupancy.
    pub peak_occupancy: f64,
    /// Deepest the admission queue ever got.
    pub peak_queue_depth: u64,
    /// Rejected deployment attempts, indexed by
    /// [`RejectReason::index`]; one task retried many times counts each
    /// attempt.
    pub rejections: [u64; 3],
    /// Cluster occupancy over time (step function, coalesced).
    pub occupancy_series: TimeSeries,
    /// Queue depth over time (step function, coalesced).
    pub queue_depth_series: TimeSeries,
    /// Every metric the run recorded, exportable via
    /// [`MetricsRegistry::to_json`].
    pub metrics: MetricsRegistry,
    /// The most recent scheduler events (ring buffer).
    pub trace: TraceRing,
}

impl CloudReport {
    /// Rejected attempts for one reason.
    pub fn rejections_for(&self, reason: RejectReason) -> u64 {
        self.rejections[reason.index()]
    }

    /// Total rejected attempts across all reasons.
    pub fn total_rejections(&self) -> u64 {
        self.rejections.iter().sum()
    }

    /// Whether every arrival is accounted for (completed or reported as
    /// never deployed) — the invariant all cloudsim tests pin.
    pub fn accounts_for_all_arrivals(&self) -> bool {
        self.completed + self.never_deployed == self.arrivals
    }

    /// Serializes the report (without raw trace events; those stay
    /// available programmatically via [`CloudReport::trace`]).
    pub fn to_json(&self) -> Json {
        let mut rejections = Json::obj();
        for reason in RejectReason::ALL {
            rejections = rejections.field(reason.as_str(), self.rejections_for(reason));
        }
        Json::obj()
            .field("arrivals", self.arrivals)
            .field("completed", self.completed)
            .field("never_deployed", self.never_deployed)
            .field("elapsed_s", self.elapsed.as_secs())
            .field("throughput_per_s", self.throughput_per_s)
            .field(
                "latency_s",
                Json::obj()
                    .field("count", self.latency.count())
                    .field("mean", self.latency.mean())
                    .field("p50", self.latency_p50)
                    .field("p95", self.latency_p95)
                    .field("p99", self.latency_p99)
                    .field("min", self.latency.min())
                    .field("max", self.latency.max()),
            )
            .field(
                "queue_wait_s",
                Json::obj()
                    .field("count", self.queue_wait.count())
                    .field("mean", self.queue_wait.mean())
                    .field("min", self.queue_wait.min())
                    .field("max", self.queue_wait.max()),
            )
            .field(
                "occupancy",
                Json::obj()
                    .field("mean", self.mean_occupancy)
                    .field("peak", self.peak_occupancy)
                    .field("series", self.occupancy_series.to_json()),
            )
            .field(
                "queue_depth",
                Json::obj()
                    .field("peak", self.peak_queue_depth)
                    .field("series", self.queue_depth_series.to_json()),
            )
            .field("rejections", rejections)
            .field(
                "trace",
                Json::obj()
                    .field("retained", self.trace.len())
                    .field("dropped", self.trace.dropped()),
            )
    }
}

enum Event {
    Arrival(usize),
    Completion { task_index: usize },
}

/// Runs a workload through the controller with the default trace capacity.
///
/// * `instance_for` names the accelerator instance (a mapping-database key)
///   serving a task — the deployment catalog is sized per model class.
/// * `service_time` gives the task's execution latency on a given
///   deployment (built from the cycle-level timing simulations).
///
/// Tasks that cannot deploy on arrival wait in a FIFO queue; every
/// completion retries the queue head. Tasks that never fit (policy
/// exclusion, permanent capacity shortfall) are reported in
/// [`CloudReport::never_deployed`] rather than silently dropped.
///
/// # Errors
///
/// Propagates controller errors ([`RuntimeError::UnknownInstance`] etc.).
pub fn run_cloud_sim(
    controller: &mut SystemController,
    arrivals: &[TaskArrival],
    instance_for: &dyn Fn(&RnnTask) -> String,
    service_time: &dyn Fn(&RnnTask, &Deployment) -> SimTime,
) -> Result<CloudReport, RuntimeError> {
    run_cloud_sim_traced(
        controller,
        arrivals,
        instance_for,
        service_time,
        DEFAULT_TRACE_CAPACITY,
    )
}

/// [`run_cloud_sim`] with an explicit trace-ring capacity.
///
/// # Errors
///
/// Propagates controller errors ([`RuntimeError::UnknownInstance`] etc.).
pub fn run_cloud_sim_traced(
    controller: &mut SystemController,
    arrivals: &[TaskArrival],
    instance_for: &dyn Fn(&RnnTask) -> String,
    service_time: &dyn Fn(&RnnTask, &Deployment) -> SimTime,
    trace_capacity: usize,
) -> Result<CloudReport, RuntimeError> {
    let mut queue: VecDeque<usize> = VecDeque::new();
    let mut events: EventQueue<Event> = EventQueue::new();
    let mut running: Vec<Option<Deployment>> = vec![None; arrivals.len()];
    let mut deployed_at: Vec<SimTime> = vec![SimTime::ZERO; arrivals.len()];
    let mut traced_reject: Vec<bool> = vec![false; arrivals.len()];
    let mut meter = ThroughputMeter::new();
    let mut latency = Summary::new();
    let mut queue_wait = Summary::new();
    let mut last_completion = SimTime::ZERO;
    let mut rejections = [0u64; 3];

    let mut metrics = MetricsRegistry::new();
    let m_arrivals = metrics.counter("arrivals");
    let m_deploys = metrics.counter("deploys");
    let m_completions = metrics.counter("completions");
    let m_releases = metrics.counter("releases");
    let m_rejects = [
        metrics.counter("rejected.policy_excluded"),
        metrics.counter("rejected.no_free_device"),
        metrics.counter("rejected.insufficient_capacity"),
    ];
    let t_latency = metrics.timer("latency_s");
    let t_queue_wait = metrics.timer("queue_wait_s");
    let t_service = metrics.timer("service_s");
    let g_depth = metrics.gauge("queue_depth");
    let g_occupancy = metrics.gauge("occupancy");
    let mut trace = TraceRing::new(trace_capacity);

    for (i, a) in arrivals.iter().enumerate() {
        events.schedule(a.at, Event::Arrival(i));
    }

    while let Some((now, event)) = events.pop() {
        match event {
            Event::Arrival(i) => {
                queue.push_back(i);
                metrics.inc(m_arrivals);
                trace.push(now, TraceEventKind::Arrival { task: i as u64 });
            }
            Event::Completion { task_index } => {
                let deployment = running[task_index]
                    .take()
                    .expect("completion for task not running");
                controller.release(&deployment)?;
                meter.record_completion();
                let e2e = now.saturating_sub(arrivals[task_index].at).as_secs();
                latency.record(e2e);
                metrics.inc(m_completions);
                metrics.inc(m_releases);
                metrics.record_timer(t_latency, e2e);
                metrics.record_timer(
                    t_service,
                    now.saturating_sub(deployed_at[task_index]).as_secs(),
                );
                trace.push(
                    now,
                    TraceEventKind::Completion {
                        task: task_index as u64,
                    },
                );
                trace.push(
                    now,
                    TraceEventKind::Release {
                        task: task_index as u64,
                    },
                );
                last_completion = now;
            }
        }
        // Admit as many queued tasks as capacity allows. Tasks request
        // deployment independently, so a blocked task does not block later
        // tasks that fit elsewhere; the scan window stays bounded to keep
        // arrival order roughly fair. Each wave scans the window once and
        // drains every admitted task with a single retain pass (no O(n)
        // mid-deque removals), repeating until a wave admits nothing.
        const SCAN_WINDOW: usize = 64;
        loop {
            let window = queue.len().min(SCAN_WINDOW);
            let mut admitted_in_window = vec![false; window];
            let mut admitted: Vec<(usize, Deployment)> = Vec::new();
            for pos in 0..window {
                let idx = queue[pos];
                let task = arrivals[idx].task;
                let name = instance_for(&task);
                match controller.try_deploy_explained(&name)? {
                    Ok(deployment) => {
                        admitted_in_window[pos] = true;
                        admitted.push((idx, deployment));
                    }
                    Err(reason) => {
                        rejections[reason.index()] += 1;
                        metrics.inc(m_rejects[reason.index()]);
                        // Trace only a task's first rejection: under
                        // saturation every task is re-tried per wave and
                        // the ring would otherwise hold nothing else.
                        if !traced_reject[idx] {
                            traced_reject[idx] = true;
                            trace.push(
                                now,
                                TraceEventKind::DeployRejected {
                                    task: idx as u64,
                                    reason: reason.as_str(),
                                },
                            );
                        }
                    }
                }
            }
            if admitted.is_empty() {
                break;
            }
            let mut pos = 0;
            queue.retain(|_| {
                let keep = pos >= window || !admitted_in_window[pos];
                pos += 1;
                keep
            });
            for (idx, deployment) in admitted {
                deployed_at[idx] = now;
                let wait = now.saturating_sub(arrivals[idx].at).as_secs();
                queue_wait.record(wait);
                metrics.inc(m_deploys);
                metrics.record_timer(t_queue_wait, wait);
                trace.push(
                    now,
                    TraceEventKind::Deploy {
                        task: idx as u64,
                        units: deployment.num_units() as u32,
                    },
                );
                let task = arrivals[idx].task;
                let service = service_time(&task, &deployment);
                running[idx] = Some(deployment);
                events.schedule(now + service, Event::Completion { task_index: idx });
            }
        }
        // Sample the cluster state after the admission wave settles; the
        // series coalesce repeats, and the trace records changes only.
        let depth = queue.len() as f64;
        if metrics.gauge_series(g_depth).last() != Some(depth) {
            trace.push(
                now,
                TraceEventKind::QueueDepth {
                    depth: queue.len() as u64,
                },
            );
        }
        metrics.set_gauge(g_depth, now, depth);
        let occupancy = controller.occupancy();
        if metrics.gauge_series(g_occupancy).last() != Some(occupancy) {
            trace.push(
                now,
                TraceEventKind::Occupancy {
                    fraction: occupancy,
                },
            );
        }
        metrics.set_gauge(g_occupancy, now, occupancy);
    }

    let elapsed = last_completion;
    let never_deployed = queue.len() as u64;
    let occupancy_series = metrics.gauge_series(g_occupancy).clone();
    let queue_depth_series = metrics.gauge_series(g_depth).clone();
    let report = CloudReport {
        arrivals: arrivals.len() as u64,
        completed: meter.completed(),
        never_deployed,
        elapsed,
        throughput_per_s: meter.per_second(elapsed),
        latency,
        latency_p50: metrics.timer_quantile(t_latency, 0.50),
        latency_p95: metrics.timer_quantile(t_latency, 0.95),
        latency_p99: metrics.timer_quantile(t_latency, 0.99),
        queue_wait,
        mean_occupancy: occupancy_series.mean_until(elapsed).unwrap_or(0.0),
        peak_occupancy: occupancy_series.max().unwrap_or(0.0),
        peak_queue_depth: queue_depth_series.max().unwrap_or(0.0) as u64,
        rejections,
        occupancy_series,
        queue_depth_series,
        metrics,
        trace,
    };
    debug_assert!(
        report.accounts_for_all_arrivals(),
        "arrivals unaccounted for: {} completed + {} never deployed != {}",
        report.completed,
        report.never_deployed,
        report.arrivals
    );
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::Policy;
    use crate::testutil::small_db;
    use vfpga_core::{MappingDatabase, MappingEntry};
    use vfpga_workload::{RnnKind, RnnTask};

    fn arrivals(n: usize, gap_us: f64) -> Vec<TaskArrival> {
        (0..n)
            .map(|i| TaskArrival {
                at: SimTime::from_us(i as f64 * gap_us),
                task: RnnTask::new(RnnKind::Lstm, 512, 5),
            })
            .collect()
    }

    fn fixed_service(_t: &RnnTask, _d: &Deployment) -> SimTime {
        SimTime::from_us(100.0)
    }

    #[test]
    fn all_tasks_complete() {
        let (cluster, db) = small_db();
        let mut c = SystemController::new(cluster, db, Policy::Full);
        let a = arrivals(50, 10.0);
        let report = run_cloud_sim(&mut c, &a, &|_| "tiny".to_string(), &fixed_service).unwrap();
        assert_eq!(report.completed, 50);
        assert_eq!(report.never_deployed, 0);
        assert!(report.accounts_for_all_arrivals());
        assert!(report.throughput_per_s > 0.0);
        // Everything released at the end.
        assert_eq!(c.live_deployments(), 0);
        assert_eq!(c.occupancy(), 0.0);
        assert_eq!(c.stats().deploys, 50);
        assert_eq!(c.stats().releases, 50);
    }

    #[test]
    fn saturation_builds_queue_wait() {
        let (cluster, db) = small_db();
        // Offered load far above capacity: queue wait must grow well past
        // the (light-load) service time.
        let mut c = SystemController::new(cluster, db, Policy::Baseline);
        let a = arrivals(80, 1.0);
        let report = run_cloud_sim(&mut c, &a, &|_| "tiny".to_string(), &fixed_service).unwrap();
        assert_eq!(report.completed, 80);
        assert!(report.accounts_for_all_arrivals());
        assert!(report.queue_wait.mean() > 100e-6);
        // Under saturation the baseline's throughput is bounded by 4
        // concurrent servers of 100us each: 40000/s.
        assert!(report.throughput_per_s <= 41_000.0);
        assert!(report.throughput_per_s > 30_000.0);
        // Saturation means the controller turned down deploy attempts for
        // capacity, and the queue visibly backed up.
        assert!(report.rejections_for(RejectReason::InsufficientCapacity) > 0);
        assert!(report.peak_queue_depth > 0);
    }

    #[test]
    fn sharing_policy_outperforms_baseline_under_saturation() {
        let (cluster, db) = small_db();
        let a = arrivals(80, 1.0);
        let mut base = SystemController::new(cluster.clone(), db.clone(), Policy::Baseline);
        let b = run_cloud_sim(&mut base, &a, &|_| "tiny".to_string(), &fixed_service).unwrap();
        let mut full = SystemController::new(cluster, db, Policy::Full);
        let f = run_cloud_sim(&mut full, &a, &|_| "tiny".to_string(), &fixed_service).unwrap();
        assert!(
            f.throughput_per_s > b.throughput_per_s * 1.5,
            "full {} vs baseline {}",
            f.throughput_per_s,
            b.throughput_per_s
        );
    }

    #[test]
    fn restricted_policy_sits_between_baseline_and_full() {
        // The paper's Fig. 12 ordering on the heterogeneous paper cluster:
        // the restricted policy (spatial sharing, multi-FPGA confined to
        // one device type) beats the whole-device baseline but cannot beat
        // the full framework.
        let (cluster, db) = small_db();
        let a = arrivals(80, 1.0);
        let run = |policy: Policy| {
            let mut c = SystemController::new(cluster.clone(), db.clone(), policy);
            run_cloud_sim(&mut c, &a, &|_| "tiny".to_string(), &fixed_service).unwrap()
        };
        let base = run(Policy::Baseline);
        let restricted = run(Policy::Restricted);
        let full = run(Policy::Full);
        assert!(base.accounts_for_all_arrivals());
        assert!(restricted.accounts_for_all_arrivals());
        assert!(full.accounts_for_all_arrivals());
        assert!(
            restricted.throughput_per_s > base.throughput_per_s,
            "restricted {} should beat baseline {}",
            restricted.throughput_per_s,
            base.throughput_per_s
        );
        assert!(
            full.throughput_per_s >= restricted.throughput_per_s,
            "full {} should be at least restricted {}",
            full.throughput_per_s,
            restricted.throughput_per_s
        );
    }

    #[test]
    fn latency_includes_queueing() {
        let (cluster, db) = small_db();
        let mut c = SystemController::new(cluster, db, Policy::Baseline);
        let a = arrivals(20, 1.0);
        let report = run_cloud_sim(&mut c, &a, &|_| "tiny".to_string(), &fixed_service).unwrap();
        // End-to-end latency >= service time for every task.
        assert!(report.latency.min().unwrap() >= 100e-6 - 1e-9);
        assert!(report.latency.mean() > report.queue_wait.mean());
        // Percentiles are ordered and at least the service time.
        let (p50, p99) = (report.latency_p50.unwrap(), report.latency_p99.unwrap());
        assert!(p50 >= 100e-6 - 1e-9);
        assert!(p99 >= p50);
    }

    #[test]
    fn undeployable_tasks_are_reported_not_dropped() {
        // An instance offering only multi-FPGA options can never deploy
        // under the baseline policy: the report must say so instead of
        // under-reporting.
        let (cluster, db) = small_db();
        let big = db.entry("big").unwrap();
        let multi_only: Vec<_> = big
            .options
            .iter()
            .filter(|o| o.num_units() > 1)
            .cloned()
            .collect();
        assert!(!multi_only.is_empty(), "test needs a multi-unit option");
        let mut db2 = MappingDatabase::new();
        db2.register_entry(MappingEntry {
            name: "huge".to_string(),
            options: multi_only,
            total_resources: big.total_resources,
            compile_seconds: big.compile_seconds,
        });
        let mut c = SystemController::new(cluster, db2, Policy::Baseline);
        let a = arrivals(10, 1.0);
        let report = run_cloud_sim(&mut c, &a, &|_| "huge".to_string(), &fixed_service).unwrap();
        assert_eq!(report.completed, 0);
        assert_eq!(report.never_deployed, 10);
        assert!(report.accounts_for_all_arrivals());
        assert!(report.rejections_for(RejectReason::PolicyExcluded) > 0);
        // Empty run still yields a well-formed report.
        assert_eq!(report.latency.min(), None);
        assert_eq!(report.latency_p99, None);
        assert_eq!(report.throughput_per_s, 0.0);
        let json = report.to_json().compact();
        assert!(json.contains(r#""never_deployed":10"#), "{json}");
    }

    #[test]
    fn empty_workload_yields_empty_report() {
        let (cluster, db) = small_db();
        let mut c = SystemController::new(cluster, db, Policy::Full);
        let report = run_cloud_sim(&mut c, &[], &|_| "tiny".to_string(), &fixed_service).unwrap();
        assert_eq!(report.arrivals, 0);
        assert_eq!(report.completed, 0);
        assert!(report.accounts_for_all_arrivals());
        assert_eq!(report.latency.min(), None);
        assert_eq!(report.mean_occupancy, 0.0);
    }

    #[test]
    fn report_exposes_time_series_and_trace() {
        let (cluster, db) = small_db();
        let mut c = SystemController::new(cluster, db, Policy::Full);
        let a = arrivals(30, 5.0);
        let report = run_cloud_sim(&mut c, &a, &|_| "tiny".to_string(), &fixed_service).unwrap();
        // Occupancy rose and returned to zero.
        assert!(report.peak_occupancy > 0.0);
        assert_eq!(report.occupancy_series.last(), Some(0.0));
        assert!(report.mean_occupancy > 0.0);
        // The trace saw every lifecycle event kind.
        let labels: std::collections::BTreeSet<&str> =
            report.trace.iter().map(|e| e.kind.label()).collect();
        for expect in ["arrival", "deploy", "completion", "release", "occupancy"] {
            assert!(labels.contains(expect), "missing {expect} in {labels:?}");
        }
        // Metrics registry agrees with the report.
        let mut m = report.metrics.clone();
        let deploys = m.counter("deploys");
        assert_eq!(m.counter_value(deploys), 30);
        let json = report.to_json().compact();
        assert!(json.contains(r#""throughput_per_s""#), "{json}");
        assert!(json.contains(r#""series":[["#), "{json}");
    }
}

//! Discrete-event simulation of the cluster serving a workload set.

use std::collections::VecDeque;

use vfpga_sim::{EventQueue, SimTime, Summary, ThroughputMeter};
use vfpga_workload::{RnnTask, TaskArrival};

use crate::controller::{Deployment, SystemController};
use crate::RuntimeError;

/// Results of one cloud simulation run.
#[derive(Debug, Clone)]
pub struct CloudReport {
    /// Tasks completed.
    pub completed: u64,
    /// Time of the last completion.
    pub elapsed: SimTime,
    /// Aggregated system throughput in tasks per second (Fig. 12's
    /// metric).
    pub throughput_per_s: f64,
    /// End-to-end latency statistics (arrival to completion).
    pub latency: Summary,
    /// Queueing delay statistics (arrival to deployment).
    pub queue_wait: Summary,
}

enum Event {
    Arrival(usize),
    Completion {
        task_index: usize,
    },
}

/// Runs a workload through the controller.
///
/// * `instance_for` names the accelerator instance (a mapping-database key)
///   serving a task — the deployment catalog is sized per model class.
/// * `service_time` gives the task's execution latency on a given
///   deployment (built from the cycle-level timing simulations).
///
/// Tasks that cannot deploy on arrival wait in a FIFO queue; every
/// completion retries the queue head.
///
/// # Errors
///
/// Propagates controller errors ([`RuntimeError::UnknownInstance`] etc.).
pub fn run_cloud_sim(
    controller: &mut SystemController,
    arrivals: &[TaskArrival],
    instance_for: &dyn Fn(&RnnTask) -> String,
    service_time: &dyn Fn(&RnnTask, &Deployment) -> SimTime,
) -> Result<CloudReport, RuntimeError> {
    let mut queue: VecDeque<usize> = VecDeque::new();
    let mut events: EventQueue<Event> = EventQueue::new();
    let mut running: Vec<Option<Deployment>> = vec![None; arrivals.len()];
    let mut deployed_at: Vec<SimTime> = vec![SimTime::ZERO; arrivals.len()];
    let mut meter = ThroughputMeter::new();
    let mut latency = Summary::new();
    let mut queue_wait = Summary::new();
    let mut last_completion = SimTime::ZERO;

    for (i, a) in arrivals.iter().enumerate() {
        events.schedule(a.at, Event::Arrival(i));
    }

    while let Some((now, event)) = events.pop() {
        match event {
            Event::Arrival(i) => {
                queue.push_back(i);
            }
            Event::Completion { task_index } => {
                let deployment = running[task_index]
                    .take()
                    .expect("completion for task not running");
                controller.release(&deployment)?;
                meter.record_completion();
                latency.record((now.saturating_sub(arrivals[task_index].at)).as_secs());
                last_completion = now;
            }
        }
        // Admit as many queued tasks as capacity allows. Tasks request
        // deployment independently, so a blocked task does not block later
        // tasks that fit elsewhere; the scan window stays bounded to keep
        // arrival order roughly fair.
        const SCAN_WINDOW: usize = 64;
        loop {
            let mut admitted = None;
            for (pos, &idx) in queue.iter().take(SCAN_WINDOW).enumerate() {
                let task = arrivals[idx].task;
                let name = instance_for(&task);
                if let Some(deployment) = controller.try_deploy(&name)? {
                    admitted = Some((pos, idx, deployment));
                    break;
                }
            }
            let Some((pos, idx, deployment)) = admitted else {
                break;
            };
            queue.remove(pos);
            deployed_at[idx] = now;
            queue_wait.record(now.saturating_sub(arrivals[idx].at).as_secs());
            let task = arrivals[idx].task;
            let service = service_time(&task, &deployment);
            running[idx] = Some(deployment);
            events.schedule(now + service, Event::Completion { task_index: idx });
        }
    }

    let elapsed = last_completion;
    Ok(CloudReport {
        completed: meter.completed(),
        elapsed,
        throughput_per_s: meter.per_second(elapsed),
        latency,
        queue_wait,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::Policy;
    use crate::testutil::small_db;
    use vfpga_workload::{RnnKind, RnnTask};

    fn arrivals(n: usize, gap_us: f64) -> Vec<TaskArrival> {
        (0..n)
            .map(|i| TaskArrival {
                at: SimTime::from_us(i as f64 * gap_us),
                task: RnnTask::new(RnnKind::Lstm, 512, 5),
            })
            .collect()
    }

    fn fixed_service(_t: &RnnTask, _d: &Deployment) -> SimTime {
        SimTime::from_us(100.0)
    }

    #[test]
    fn all_tasks_complete() {
        let (cluster, db) = small_db();
        let mut c = SystemController::new(cluster, db, Policy::Full);
        let a = arrivals(50, 10.0);
        let report =
            run_cloud_sim(&mut c, &a, &|_| "tiny".to_string(), &fixed_service).unwrap();
        assert_eq!(report.completed, 50);
        assert!(report.throughput_per_s > 0.0);
        // Everything released at the end.
        assert_eq!(c.live_deployments(), 0);
        assert_eq!(c.occupancy(), 0.0);
    }

    #[test]
    fn saturation_builds_queue_wait() {
        let (cluster, db) = small_db();
        // Offered load far above capacity: queue wait must grow well past
        // the (light-load) service time.
        let mut c = SystemController::new(cluster, db, Policy::Baseline);
        let a = arrivals(80, 1.0);
        let report =
            run_cloud_sim(&mut c, &a, &|_| "tiny".to_string(), &fixed_service).unwrap();
        assert_eq!(report.completed, 80);
        assert!(report.queue_wait.mean() > 100e-6);
        // Under saturation the baseline's throughput is bounded by 4
        // concurrent servers of 100us each: 40000/s.
        assert!(report.throughput_per_s <= 41_000.0);
        assert!(report.throughput_per_s > 30_000.0);
    }

    #[test]
    fn sharing_policy_outperforms_baseline_under_saturation() {
        let (cluster, db) = small_db();
        let a = arrivals(80, 1.0);
        let mut base = SystemController::new(cluster.clone(), db.clone(), Policy::Baseline);
        let b = run_cloud_sim(&mut base, &a, &|_| "tiny".to_string(), &fixed_service).unwrap();
        let mut full = SystemController::new(cluster, db, Policy::Full);
        let f = run_cloud_sim(&mut full, &a, &|_| "tiny".to_string(), &fixed_service).unwrap();
        assert!(
            f.throughput_per_s > b.throughput_per_s * 1.5,
            "full {} vs baseline {}",
            f.throughput_per_s,
            b.throughput_per_s
        );
    }

    #[test]
    fn latency_includes_queueing() {
        let (cluster, db) = small_db();
        let mut c = SystemController::new(cluster, db, Policy::Baseline);
        let a = arrivals(20, 1.0);
        let report =
            run_cloud_sim(&mut c, &a, &|_| "tiny".to_string(), &fixed_service).unwrap();
        // End-to-end latency >= service time for every task.
        assert!(report.latency.min() >= 100e-6 - 1e-9);
        assert!(report.latency.mean() > report.queue_wait.mean());
    }
}

//! # vfpga-accel — the parameterized BrainWave-like accelerator
//!
//! The paper's case study (Section 3) builds a parameterized accelerator for
//! an AS ISA "similar to the one proposed in the Microsoft BrainWave
//! project", since BrainWave itself is not public. This crate is that
//! accelerator, built from scratch:
//!
//! * [`AcceleratorConfig`] — the parameterization: number of MVM tile
//!   engines (the SIMD units), native vector dimension, memory kind
//!   (BRAM/URAM, fixed when mapping to a device type), BFP format,
//!   instruction buffer presence;
//! * [`generate_rtl`] — emits the accelerator's structural RTL (Fig. 9's
//!   organization: control path, FP16↔BFP converters, tile engines,
//!   multi-function units, vector register file), the input to the
//!   decomposing tool;
//! * [`estimate_resources`]/[`Implementation`] — the analytical stand-in
//!   for Vivado synthesis/place/route: resource usage, achievable frequency
//!   and peak TFLOPS per device (regenerates Table 2);
//! * [`FuncSim`] — a bit-accurate functional simulator executing AS ISA
//!   programs (BFP matrix-vector multiply, f16 MFU ops), with the scale-out
//!   synchronization template module's combine semantics;
//! * [`TimingModel`]/[`CycleSim`] — a cycle-approximate in-order timing
//!   simulator, resumable so the runtime can co-simulate several
//!   communicating accelerators (Fig. 11).
//!
//! ```
//! use vfpga_accel::{AcceleratorConfig, FuncSim};
//! use vfpga_isa::{assemble, F16};
//!
//! let config = AcceleratorConfig::new("demo", 2);
//! let mut sim = FuncSim::new(&config);
//! // y = W * x with W = 2x2 identity.
//! sim.load_matrix(vfpga_isa::MReg(0), 2, 2, &[1.0, 0.0, 0.0, 1.0]);
//! sim.write_dram(0, &[F16::from_f32(3.0), F16::from_f32(-4.0)]);
//! let p = assemble("vload v0, 0\nmvmul v1, m0, v0\nvstore v1, 1\nhalt\n")?;
//! sim.run(&p)?;
//! let y = sim.read_dram(1).unwrap();
//! assert_eq!(y[0].to_f32(), 3.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod config;
mod estimate;
mod funcsim;
mod matrix;
mod rtlgen;
mod timing;

pub use config::AcceleratorConfig;
pub use estimate::{
    estimate_resources, fit_tiles, leaf_resource_estimator, peak_tflops, Implementation,
};
pub use funcsim::{ExecStats, FuncSim, RemoteAccess, RemoteWindow, SimError, StepOutcome};
pub use matrix::{MatrixMemory, QuantizedMatrix};
pub use rtlgen::{
    generate_rtl, CONTROL_PATH_MODULE, DATA_PATH_MODULE, MOVED_TO_CONTROL, TOP_MODULE,
};
pub use timing::{CycleSim, Poll, SendEvent, TimingModel};

//! Accelerator parameterization.

use vfpga_fabric::MemoryKind;
use vfpga_isa::{BfpFormat, IsaConfig};

/// Parameters of one BrainWave-like accelerator instance.
///
/// The paper generates accelerator instances with different numbers of tile
/// engines "to account for the varying performance/cost demands" and a
/// parameterized memory module bound to BRAM or URAM when mapped onto a
/// specific device type.
#[derive(Debug, Clone, PartialEq)]
pub struct AcceleratorConfig {
    /// Instance name, used as the RTL top-level prefix and database key.
    pub name: String,
    /// Number of MVM tile engines (the SIMD units).
    pub tiles: usize,
    /// Native vector dimension: vectors and matrix tiles are processed in
    /// chunks of this many elements.
    pub native_dim: usize,
    /// Rows each tile engine retires per cycle (its dot-product unit count).
    pub rows_per_cycle: usize,
    /// Block floating point format used by the tile engines.
    pub bfp: BfpFormat,
    /// Memory kind backing the matrix (weight) memory; fixed when mapping
    /// onto a device type.
    pub memory_kind: MemoryKind,
    /// Weight memory capacity in kilobits.
    pub weight_memory_kb: u64,
    /// Whether the instruction buffer is present (Section 3; avoids DRAM
    /// contention when the FPGA is shared).
    pub instruction_buffer: bool,
    /// Architectural limits exposed to programs.
    pub isa: IsaConfig,
}

impl AcceleratorConfig {
    /// Creates a configuration with `tiles` tile engines and defaults
    /// matching the paper's case study: native dimension 128, 16 rows per
    /// cycle per tile, ms-fp9 BFP, BRAM weight memory sized at 45 Mb, and
    /// the instruction buffer enabled.
    ///
    /// # Panics
    ///
    /// Panics if `tiles` is zero.
    pub fn new(name: impl Into<String>, tiles: usize) -> Self {
        assert!(tiles > 0, "accelerator needs at least one tile engine");
        AcceleratorConfig {
            name: name.into(),
            tiles,
            native_dim: 128,
            rows_per_cycle: 16,
            bfp: BfpFormat::MS_FP9,
            memory_kind: MemoryKind::Bram,
            weight_memory_kb: 45 * 1024,
            instruction_buffer: true,
            isa: IsaConfig::default(),
        }
    }

    /// Sets the weight memory capacity (kilobits); returns `self` for
    /// chaining.
    pub fn with_weight_memory_kb(mut self, kb: u64) -> Self {
        self.weight_memory_kb = kb;
        self
    }

    /// Sets the memory kind; returns `self` for chaining.
    pub fn with_memory_kind(mut self, kind: MemoryKind) -> Self {
        self.memory_kind = kind;
        self
    }

    /// Disables the instruction buffer (ablation of Section 3's buffer);
    /// returns `self` for chaining.
    pub fn without_instruction_buffer(mut self) -> Self {
        self.instruction_buffer = false;
        self
    }

    /// Sets the block floating point format (compute and weight storage);
    /// returns `self` for chaining.
    pub fn with_bfp(mut self, bfp: BfpFormat) -> Self {
        self.bfp = bfp;
        self
    }

    /// Multiply-accumulate operations each tile engine performs per cycle.
    pub fn macs_per_tile_per_cycle(&self) -> u64 {
        (self.native_dim * self.rows_per_cycle) as u64
    }

    /// Floating-point operations per cycle across all tile engines
    /// (2 FLOPs per MAC).
    pub fn flops_per_cycle(&self) -> u64 {
        2 * self.macs_per_tile_per_cycle() * self.tiles as u64
    }

    /// Peak TFLOPS at the given clock frequency.
    pub fn peak_tflops(&self, freq_mhz: f64) -> f64 {
        self.flops_per_cycle() as f64 * freq_mhz * 1e6 / 1e12
    }

    /// Storage cost in kilobits of a `rows x cols` BFP matrix in this
    /// configuration's format: mantissa bits per element plus one shared
    /// 8-bit exponent per block.
    pub fn matrix_storage_kb(&self, rows: usize, cols: usize) -> u64 {
        let blocks_per_row = cols.div_ceil(self.bfp.block_size) as u64;
        let bits =
            rows as u64 * (cols as u64 * u64::from(self.bfp.mantissa_bits) + blocks_per_row * 8);
        bits.div_ceil(1024)
    }

    /// Whether a set of matrices (given as `(rows, cols)` shapes) fits in
    /// the configured weight memory.
    pub fn matrices_fit(&self, shapes: &[(usize, usize)]) -> bool {
        let total: u64 = shapes
            .iter()
            .map(|&(r, c)| self.matrix_storage_kb(r, c))
            .sum();
        total <= self.weight_memory_kb
    }

    /// Derives the configuration of a *scaled-down* accelerator with
    /// `1/parts` of the tile engines (at least one), used by the scale-out
    /// optimization: the control path is unmodified, only the number of
    /// data processing units shrinks (paper Fig. 8a).
    ///
    /// # Panics
    ///
    /// Panics if `parts` is zero.
    pub fn scaled_down(&self, parts: usize) -> AcceleratorConfig {
        assert!(parts > 0, "cannot scale down into zero parts");
        let mut cfg = self.clone();
        cfg.name = format!("{}_1of{}", self.name, parts);
        cfg.tiles = (self.tiles / parts).max(1);
        cfg.weight_memory_kb = (self.weight_memory_kb / parts as u64).max(1024);
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_give_paper_scale_throughput() {
        // 21 tiles at 400 MHz should land near Table 2's 36 TFLOPS.
        let cfg = AcceleratorConfig::new("bw-v37", 21);
        let tflops = cfg.peak_tflops(400.0);
        assert!((30.0..40.0).contains(&tflops), "got {tflops}");
        // 13 tiles at 300 MHz near 16.7 TFLOPS.
        let small = AcceleratorConfig::new("bw-k115", 13);
        let tflops = small.peak_tflops(300.0);
        assert!((14.0..19.0).contains(&tflops), "got {tflops}");
    }

    #[test]
    fn matrix_storage_accounting() {
        let cfg = AcceleratorConfig::new("a", 1);
        // 1024x1024 at 9 bits/elem + 8 bits per 16-wide block per row:
        // 1024*(1024*9 + 64*8) bits = 1024*9728 bits ~ 9728 Kb.
        assert_eq!(cfg.matrix_storage_kb(1024, 1024), 9728);
    }

    #[test]
    fn capacity_gates_large_models() {
        // 45 Mb weight memory: LSTM h=1536 needs 8 matrices of 1536x1536
        // (~166 Mb) and must NOT fit — Table 4 shows it cannot fit KU115.
        let cfg = AcceleratorConfig::new("a", 13);
        let lstm1536 = vec![(1536, 1536); 8];
        assert!(!cfg.matrices_fit(&lstm1536));
        // A small LSTM fits easily.
        let lstm256 = vec![(256, 256); 8];
        assert!(cfg.matrices_fit(&lstm256));
    }

    #[test]
    fn scaled_down_preserves_control_path() {
        let cfg = AcceleratorConfig::new("bw", 20);
        let half = cfg.scaled_down(2);
        assert_eq!(half.tiles, 10);
        assert_eq!(half.isa, cfg.isa); // ISA (control path) unchanged
        assert_eq!(half.native_dim, cfg.native_dim);
        // Scaling below one tile clamps.
        let tiny = cfg.scaled_down(100);
        assert_eq!(tiny.tiles, 1);
    }
}

//! Analytical resource and frequency estimation.
//!
//! This is the simulated stand-in for Vivado synthesis / place & route
//! (which the paper drives manually with floorplanning, Fig. 10). The
//! per-component constants are calibrated against the paper's Table 2 so
//! that the baseline instances (21 tiles on XCVU37P, 13 on XCKU115) and
//! their utilization levels are reproduced by the same formulas that then
//! drive every fit/allocate decision in the framework.

use vfpga_fabric::{DeviceType, MemoryKind, ResourceVec};

use crate::config::AcceleratorConfig;

/// Control path (fetch + decode + sequencer + instruction buffer).
const CTRL: ResourceVec = ResourceVec {
    luts: 40_000,
    ffs: 55_000,
    bram_kb: 1536, // 1.5 Mb instruction buffer
    uram_kb: 0,
    dsps: 24,
};

/// Per tile engine (weight bank interface, DPU array, accumulators).
const PER_TILE: ResourceVec = ResourceVec {
    luts: 26_000,
    ffs: 27_000,
    bram_kb: 492, // operand/result double buffers
    uram_kb: 0,
    dsps: 352,
};

/// One multi-function unit (f16 add/sub, multiply, activation).
const MFU: ResourceVec = ResourceVec {
    luts: 18_000,
    ffs: 20_000,
    bram_kb: 0,
    uram_kb: 0,
    dsps: 96,
};

/// Vector register file.
const VRF: ResourceVec = ResourceVec {
    luts: 6_000,
    ffs: 8_000,
    bram_kb: 1228, // 1.2 Mb
    uram_kb: 0,
    dsps: 0,
};

/// FP16<->BFP converters (both directions).
const CONVERTERS: ResourceVec = ResourceVec {
    luts: 8_000,
    ffs: 8_000,
    bram_kb: 0,
    uram_kb: 0,
    dsps: 0,
};

/// Number of multi-function units instantiated.
const NUM_MFUS: u64 = 2;

/// Fraction of a device the tools can actually fill before routing
/// congestion and floorplanning constraints stop timing closure. Calibrated
/// so [`fit_tiles`] yields the paper's 21-tile (XCVU37P) and 13-tile
/// (XCKU115) baselines.
const ROUTABILITY_MARGIN: f64 = 0.88;

/// Share of weight memory placed in URAM on URAM-bearing devices. Note a
/// deliberate deviation from the paper here: our BFP weight encoding is
/// wider than BrainWave's narrow ms-fp formats, so large models only fit
/// on-chip if the design leans on URAM — the paper's design instead leaves
/// URAM heavily under-utilized (Table 2 reports 8.3%). EXPERIMENTS.md
/// discusses the discrepancy.
const URAM_WEIGHT_SHARE: f64 = 0.80;

// Without manual floorplanning the achievable frequency comes from the
// clock-region placement model (`vfpga_fabric::RegionGrid`): automatic
// placement scatters the tile engines across regions and the longest
// hub-to-tile span costs clock. Manual floorplanning (Fig. 10) recovers
// the device's full frequency by pipelining the long routes.

/// Estimates the resource usage of an accelerator configuration when
/// mapped with the given memory kind.
pub fn estimate_resources(config: &AcceleratorConfig) -> ResourceVec {
    let mut total = CTRL + VRF + CONVERTERS + PER_TILE.scaled(config.tiles as u64);
    total += MFU.scaled(NUM_MFUS);
    // Weight memory: split across URAM and BRAM on URAM devices.
    let (bram_kb, uram_kb) = match config.memory_kind {
        MemoryKind::Bram => (config.weight_memory_kb, 0),
        MemoryKind::Uram => {
            let uram = (config.weight_memory_kb as f64 * URAM_WEIGHT_SHARE) as u64;
            (config.weight_memory_kb - uram, uram)
        }
    };
    // Round up to whole memory blocks.
    total.bram_kb += bram_kb.div_ceil(36) * 36;
    total.uram_kb += uram_kb.div_ceil(288) * 288;
    total
}

/// Peak TFLOPS of a configuration on a device (tile throughput at the
/// device's clock).
pub fn peak_tflops(config: &AcceleratorConfig, device: &DeviceType) -> f64 {
    config.peak_tflops(device.freq_mhz())
}

/// The largest tile count whose estimate fits within the device's routable
/// area, given a weight memory size. Returns zero if not even one tile
/// fits.
pub fn fit_tiles(device: &DeviceType, weight_memory_kb: u64) -> usize {
    let budget = routable(device);
    let mut best = 0;
    for tiles in 1..=256 {
        let cfg = AcceleratorConfig::new("probe", tiles)
            .with_weight_memory_kb(weight_memory_kb)
            .with_memory_kind(device.preferred_memory());
        if estimate_resources(&cfg).fits_in(&budget) {
            best = tiles;
        } else {
            break;
        }
    }
    best
}

fn routable(device: &DeviceType) -> ResourceVec {
    let r = device.resources();
    ResourceVec {
        luts: (r.luts as f64 * ROUTABILITY_MARGIN) as u64,
        ffs: (r.ffs as f64 * ROUTABILITY_MARGIN) as u64,
        bram_kb: (r.bram_kb as f64 * ROUTABILITY_MARGIN) as u64,
        uram_kb: (r.uram_kb as f64 * ROUTABILITY_MARGIN) as u64,
        dsps: (r.dsps as f64 * ROUTABILITY_MARGIN) as u64,
    }
}

/// Returns a resource estimator for the basic modules of a generated
/// accelerator design, for use as the `leaf_resources` callback of the
/// decomposing tool. Estimates are keyed by each leaf's behavior tag and
/// calibrated against the same per-component constants as
/// [`estimate_resources`]; the weight memory is charged to the weight
/// banks (split across the tile engines, in the configured memory kind).
pub fn leaf_resource_estimator(
    config: &AcceleratorConfig,
) -> impl Fn(&vfpga_rtl::FlatNode) -> ResourceVec {
    let tiles = config.tiles as u64;
    let weight_per_tile_kb = config.weight_memory_kb / tiles;
    let memory_kind = config.memory_kind;
    move |node: &vfpga_rtl::FlatNode| {
        let rv = |luts: u64, ffs: u64, bram_kb: u64, uram_kb: u64, dsps: u64| ResourceVec {
            luts,
            ffs,
            bram_kb,
            uram_kb,
            dsps,
        };
        let behavior = node.behavior.as_deref().unwrap_or("");
        // Strip the `_lane` suffix the decomposer's intra-block split adds
        // and divide by the lane count afterwards.
        let (base, lanes) = match behavior.strip_suffix("_lane") {
            Some(b) => (b, 16u64),
            None => (behavior, 1u64),
        };
        let full = match base {
            "instruction_buffer" => rv(6_000, 8_000, 1536, 0, 0),
            "instruction_fetch" => rv(10_000, 14_000, 0, 0, 8),
            "instruction_decode" => rv(14_000, 18_000, 0, 0, 8),
            "sequencer" => rv(10_000, 15_000, 0, 0, 8),
            "fp16_to_bfp" => rv(4_000, 4_000, 0, 0, 0),
            "vector_regfile" => rv(6_000, 8_000, 1228, 0, 0),
            "weight_bank" => match memory_kind {
                MemoryKind::Bram => rv(3_000, 2_000, weight_per_tile_kb, 0, 0),
                MemoryKind::Uram => {
                    let uram = (weight_per_tile_kb as f64 * URAM_WEIGHT_SHARE) as u64;
                    rv(3_000, 2_000, weight_per_tile_kb - uram, uram, 0)
                }
            },
            "dpu_array" => rv(12_000, 14_000, 0, 0, 300),
            "accumulator" => rv(4_000, 4_000, 492, 0, 36),
            "bfp_to_fp16" => rv(2_000, 2_000, 0, 0, 0),
            "f16_addsub" => rv(2_000, 2_000, 0, 0, 8),
            "f16_mul" => rv(1_500, 1_500, 0, 0, 60),
            "activation" => rv(1_500, 1_500, 0, 0, 12),
            _ => rv(1_000, 1_000, 0, 0, 0),
        };
        full.div_ceil(lanes)
    }
}

/// The result of "implementing" (synthesizing) a configuration on a device.
#[derive(Debug, Clone)]
pub struct Implementation {
    /// The implemented configuration.
    pub config: AcceleratorConfig,
    /// Target device type.
    pub device: DeviceType,
    /// Estimated resource usage.
    pub resources: ResourceVec,
    /// Achieved clock frequency (MHz).
    pub freq_mhz: f64,
    /// Peak TFLOPS at the achieved frequency.
    pub peak_tflops: f64,
}

impl Implementation {
    /// Implements `config` on `device`, with or without manual
    /// floorplanning. Returns `None` if the design does not fit the
    /// device's routable area.
    pub fn implement(
        config: &AcceleratorConfig,
        device: &DeviceType,
        floorplanned: bool,
    ) -> Option<Implementation> {
        let mut config = config.clone();
        config.memory_kind = device.preferred_memory();
        let resources = estimate_resources(&config);
        if !resources.fits_in(&routable(device)) {
            return None;
        }
        let freq_mhz = if floorplanned {
            device.freq_mhz()
        } else {
            let grid = vfpga_fabric::RegionGrid::for_device(device);
            // Tiles plus the control hub, raster-placed (no guidance).
            let factor = grid
                .place((config.tiles + 1).min(grid.capacity()), false)
                .map(|p| grid.freq_factor(&p))
                .unwrap_or(0.6);
            device.freq_mhz() * factor
        };
        let peak_tflops = config.peak_tflops(freq_mhz);
        Some(Implementation {
            config,
            device: device.clone(),
            resources,
            freq_mhz,
            peak_tflops,
        })
    }

    /// Utilization of each resource class against the full device, as
    /// `(luts, ffs, bram, uram, dsps)` fractions.
    pub fn utilization(&self) -> (f64, f64, f64, f64, f64) {
        let cap = self.device.resources();
        let frac = |used: u64, cap: u64| {
            if cap == 0 {
                0.0
            } else {
                used as f64 / cap as f64
            }
        };
        (
            frac(self.resources.luts, cap.luts),
            frac(self.resources.ffs, cap.ffs),
            frac(self.resources.bram_kb, cap.bram_kb),
            frac(self.resources.uram_kb, cap.uram_kb),
            frac(self.resources.dsps, cap.dsps),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_tiles_reproduces_paper_baselines() {
        // Table 2: 21 tiles on XCVU37P, 13 on XCKU115.
        assert_eq!(fit_tiles(&DeviceType::xcvu37p(), 60 * 1024), 21);
        assert_eq!(fit_tiles(&DeviceType::xcku115(), 42 * 1024), 13);
    }

    #[test]
    fn baseline_utilization_is_high_but_feasible() {
        let vu = DeviceType::xcvu37p();
        let cfg = AcceleratorConfig::new("bw-v37", 21).with_weight_memory_kb(230 * 1024);
        let imp = Implementation::implement(&cfg, &vu, true).unwrap();
        let (luts, _ffs, bram, uram, dsps) = imp.utilization();
        assert!((0.40..0.60).contains(&luts), "lut util {luts}");
        assert!((0.70..0.90).contains(&dsps), "dsp util {dsps}");
        assert!((0.50..0.90).contains(&bram), "bram util {bram}");
        assert!((0.40..0.88).contains(&uram), "uram util {uram}");
        assert_eq!(imp.freq_mhz, 400.0);
        assert!((25.0..40.0).contains(&imp.peak_tflops));
    }

    #[test]
    fn ku115_has_no_uram_usage() {
        let ku = DeviceType::xcku115();
        let cfg = AcceleratorConfig::new("bw-k115", 13).with_weight_memory_kb(42 * 1024);
        let imp = Implementation::implement(&cfg, &ku, true).unwrap();
        assert_eq!(imp.resources.uram_kb, 0);
        assert_eq!(imp.freq_mhz, 300.0);
        assert!((12.0..20.0).contains(&imp.peak_tflops));
    }

    #[test]
    fn oversized_design_does_not_fit() {
        let ku = DeviceType::xcku115();
        let cfg = AcceleratorConfig::new("huge", 40);
        assert!(Implementation::implement(&cfg, &ku, true).is_none());
    }

    #[test]
    fn floorplanning_gates_frequency() {
        let vu = DeviceType::xcvu37p();
        let cfg = AcceleratorConfig::new("bw", 8);
        let with = Implementation::implement(&cfg, &vu, true).unwrap();
        let without = Implementation::implement(&cfg, &vu, false).unwrap();
        assert!(without.freq_mhz < with.freq_mhz);
        assert!(without.peak_tflops < with.peak_tflops);
    }

    #[test]
    fn estimate_scales_with_tiles() {
        let small = estimate_resources(&AcceleratorConfig::new("a", 2));
        let large = estimate_resources(&AcceleratorConfig::new("a", 10));
        assert!(large.luts > small.luts);
        assert!(large.dsps > small.dsps);
        assert_eq!(large.dsps - small.dsps, 8 * 352);
    }
}

//! Structural RTL generation for the accelerator (Fig. 9's organization).
//!
//! The generated design is the input to the paper's decomposing step: a
//! hierarchy whose top level separates the control path (`bw_ctrl`) from the
//! data path (`bw_datapath`). The data path is *row-partitioned*: each of
//! the N tile engines owns a slice of the output rows and carries its own
//! BFP-to-FP16 converter slice and multi-function-unit slice, so one tile
//! engine is a seven-stage pipeline
//!
//! ```text
//! weight_bank -> dpu_array -> accumulator -> bfp_to_fp16
//!             -> f16_addsub -> f16_mul -> activation
//! ```
//!
//! and the N tile engines are identical and connected in data parallelism.
//! This is what lets the decomposing tool recover the paper's Section 3
//! structure: after the designer moves the (small) FP16-to-BFP converter
//! and vector register file into the control soft block, the data path's
//! root soft block has pure data parallelism, enabling the scale-out
//! optimization. Every leaf carries a `behavior` tag so equivalence
//! checking recognizes the tile engines as identical.

use vfpga_rtl::{Design, Instance, ModuleDecl, Port};

use crate::config::AcceleratorConfig;

/// Name of the generated top-level module.
pub const TOP_MODULE: &str = "bw_top";
/// Name of the control-path module (the module system designers mark for
/// the decomposing tool, Section 2.2.1).
pub const CONTROL_PATH_MODULE: &str = "bw_ctrl";
/// Name of the data-path module.
pub const DATA_PATH_MODULE: &str = "bw_datapath";
/// Modules the case study moves from the data path into the control soft
/// block because they are much smaller than the remaining components
/// (Section 3): the FP16-to-BFP converter and the vector register file.
pub const MOVED_TO_CONTROL: [&str; 2] = ["bw_fp16_to_bfp", "bw_vrf"];

/// Generates the accelerator's structural RTL for a configuration.
///
/// Bus widths derive from the native dimension (the f16 vector bus is
/// `native_dim * 16` bits, the BFP bus `native_dim * mantissa_bits + 8`),
/// which makes the narrow inter-stage links the natural minimum-bandwidth
/// cut points for the partitioner.
///
/// # Panics
///
/// Panics only on internal generator bugs (all generated modules validate).
pub fn generate_rtl(config: &AcceleratorConfig) -> Design {
    let nd = config.native_dim as u32;
    let f16_bus = nd * 16;
    let bfp_bus = nd * config.bfp.mantissa_bits + 8;
    // Each tile owns a row slice; its output bus is narrower than the full
    // vector bus.
    let slice_bus = (f16_bus / config.tiles as u32).max(16);
    let ctrl_bus = 64u32;

    let mut d = Design::new();
    let add = |d: &mut Design, m: ModuleDecl| {
        d.add_module(m).expect("generated module must validate");
    };

    // ---- control path leaves -------------------------------------------
    if config.instruction_buffer {
        add(
            &mut d,
            ModuleDecl::leaf(
                "bw_ibuf",
                vec![
                    Port::input("fill", ctrl_bus),
                    Port::output("instr", ctrl_bus),
                ],
                "instruction_buffer",
            ),
        );
    }
    add(
        &mut d,
        ModuleDecl::leaf(
            "bw_ifetch",
            vec![
                Port::input("instr_in", ctrl_bus),
                Port::output("instr", ctrl_bus),
            ],
            "instruction_fetch",
        ),
    );
    add(
        &mut d,
        ModuleDecl::leaf(
            "bw_idecode",
            vec![
                Port::input("instr", ctrl_bus),
                Port::output("uops", ctrl_bus),
            ],
            "instruction_decode",
        ),
    );
    add(
        &mut d,
        ModuleDecl::leaf(
            "bw_seq",
            vec![Port::input("uops", ctrl_bus), Port::output("ctl", ctrl_bus)],
            "sequencer",
        ),
    );

    // ---- control path --------------------------------------------------
    {
        let mut ctrl = ModuleDecl::new(
            CONTROL_PATH_MODULE,
            vec![
                Port::input("instr_in", ctrl_bus),
                Port::output("ctl", ctrl_bus),
            ],
        );
        ctrl.add_wire("fetched", ctrl_bus);
        ctrl.add_wire("uops", ctrl_bus);
        if config.instruction_buffer {
            ctrl.add_wire("buffered", ctrl_bus);
            ctrl.add_instance(Instance::new(
                "u_ibuf",
                "bw_ibuf",
                [("fill", "instr_in"), ("instr", "buffered")],
            ));
            ctrl.add_instance(Instance::new(
                "u_fetch",
                "bw_ifetch",
                [("instr_in", "buffered"), ("instr", "fetched")],
            ));
        } else {
            ctrl.add_instance(Instance::new(
                "u_fetch",
                "bw_ifetch",
                [("instr_in", "instr_in"), ("instr", "fetched")],
            ));
        }
        ctrl.add_instance(Instance::new(
            "u_decode",
            "bw_idecode",
            [("instr", "fetched"), ("uops", "uops")],
        ));
        ctrl.add_instance(Instance::new(
            "u_seq",
            "bw_seq",
            [("uops", "uops"), ("ctl", "ctl")],
        ));
        add(&mut d, ctrl);
    }

    // ---- data path leaves ----------------------------------------------
    add(
        &mut d,
        ModuleDecl::leaf(
            "bw_fp16_to_bfp",
            vec![Port::input("x", f16_bus), Port::output("y", bfp_bus)],
            "fp16_to_bfp",
        ),
    );
    add(
        &mut d,
        ModuleDecl::leaf(
            "bw_wbank",
            vec![Port::input("x", bfp_bus), Port::output("xw", bfp_bus)],
            "weight_bank",
        ),
    );
    add(
        &mut d,
        ModuleDecl::leaf(
            "bw_dpu",
            vec![Port::input("xw", bfp_bus), Port::output("p", bfp_bus)],
            "dpu_array",
        ),
    );
    add(
        &mut d,
        ModuleDecl::leaf(
            "bw_acc",
            vec![Port::input("p", bfp_bus), Port::output("y", slice_bus)],
            "accumulator",
        ),
    );
    add(
        &mut d,
        ModuleDecl::leaf(
            "bw_bfp_to_fp16",
            vec![Port::input("x", slice_bus), Port::output("y", slice_bus)],
            "bfp_to_fp16",
        ),
    );
    add(
        &mut d,
        ModuleDecl::leaf(
            "bw_addsub",
            vec![Port::input("a", slice_bus), Port::output("y", slice_bus)],
            "f16_addsub",
        ),
    );
    add(
        &mut d,
        ModuleDecl::leaf(
            "bw_mulew",
            vec![Port::input("a", slice_bus), Port::output("y", slice_bus)],
            "f16_mul",
        ),
    );
    add(
        &mut d,
        ModuleDecl::leaf(
            "bw_act",
            vec![Port::input("x", slice_bus), Port::output("y", slice_bus)],
            "activation",
        ),
    );
    add(
        &mut d,
        ModuleDecl::leaf(
            "bw_vrf",
            vec![Port::input("wr", slice_bus), Port::output("rd", f16_bus)],
            "vector_regfile",
        ),
    );

    // ---- tile engine: a strict seven-stage pipeline ----------------------
    {
        let mut tile = ModuleDecl::new(
            "bw_tile",
            vec![Port::input("x", bfp_bus), Port::output("y", slice_bus)],
        );
        tile.add_wire("xw", bfp_bus);
        tile.add_wire("p", bfp_bus);
        tile.add_wire("yq", slice_bus);
        tile.add_wire("yf", slice_bus);
        tile.add_wire("s", slice_bus);
        tile.add_wire("m", slice_bus);
        tile.add_instance(Instance::new(
            "u_wbank",
            "bw_wbank",
            [("x", "x"), ("xw", "xw")],
        ));
        tile.add_instance(Instance::new("u_dpu", "bw_dpu", [("xw", "xw"), ("p", "p")]));
        tile.add_instance(Instance::new("u_acc", "bw_acc", [("p", "p"), ("y", "yq")]));
        tile.add_instance(Instance::new(
            "u_conv_out",
            "bw_bfp_to_fp16",
            [("x", "yq"), ("y", "yf")],
        ));
        tile.add_instance(Instance::new(
            "u_addsub",
            "bw_addsub",
            [("a", "yf"), ("y", "s")],
        ));
        tile.add_instance(Instance::new(
            "u_mulew",
            "bw_mulew",
            [("a", "s"), ("y", "m")],
        ));
        tile.add_instance(Instance::new("u_act", "bw_act", [("x", "m"), ("y", "y")]));
        add(&mut d, tile);
    }

    // ---- data path -------------------------------------------------------
    {
        let mut dp = ModuleDecl::new(
            DATA_PATH_MODULE,
            vec![
                Port::input("data_in", f16_bus),
                Port::input("ctl", ctrl_bus),
                Port::output("data_out", f16_bus),
            ],
        );
        dp.add_wire("xq", bfp_bus);
        dp.add_wire("gather", slice_bus);
        dp.add_instance(Instance::new(
            "u_conv_in",
            "bw_fp16_to_bfp",
            [("x", "data_in"), ("y", "xq")],
        ));
        for t in 0..config.tiles {
            dp.add_instance(Instance::new(
                format!("u_tile{t}"),
                "bw_tile",
                [("x", "xq"), ("y", "gather")],
            ));
        }
        dp.add_instance(Instance::new(
            "u_vrf",
            "bw_vrf",
            [("wr", "gather"), ("rd", "data_out")],
        ));
        add(&mut d, dp);
    }

    // ---- top --------------------------------------------------------------
    {
        let mut top = ModuleDecl::new(
            TOP_MODULE,
            vec![
                Port::input("instr_in", ctrl_bus),
                Port::input("data_in", f16_bus),
                Port::output("data_out", f16_bus),
            ],
        );
        top.add_wire("ctl", ctrl_bus);
        top.add_instance(Instance::new(
            "u_ctrl",
            CONTROL_PATH_MODULE,
            [("instr_in", "instr_in"), ("ctl", "ctl")],
        ));
        top.add_instance(Instance::new(
            "u_datapath",
            DATA_PATH_MODULE,
            [
                ("data_in", "data_in"),
                ("ctl", "ctl"),
                ("data_out", "data_out"),
            ],
        ));
        add(&mut d, top);
    }

    d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_valid_design_with_expected_structure() {
        let cfg = AcceleratorConfig::new("t", 4);
        let d = generate_rtl(&cfg);
        assert!(d.module(TOP_MODULE).is_some());
        assert!(d.module(CONTROL_PATH_MODULE).is_some());
        // ctrl: ibuf+fetch+decode+seq = 4 leaves; datapath: conv_in +
        // 4 tiles * 7 + vrf = 30 leaves.
        assert_eq!(d.leaf_instance_count(TOP_MODULE).unwrap(), 34);
    }

    #[test]
    fn tile_count_parameterizes_structure() {
        let small = generate_rtl(&AcceleratorConfig::new("s", 2));
        let large = generate_rtl(&AcceleratorConfig::new("l", 8));
        assert!(
            large.leaf_instance_count(TOP_MODULE).unwrap()
                > small.leaf_instance_count(TOP_MODULE).unwrap()
        );
        let hs = small.canonical_hash(DATA_PATH_MODULE).unwrap();
        let hl = large.canonical_hash(DATA_PATH_MODULE).unwrap();
        assert_ne!(hs, hl);
    }

    #[test]
    fn tile_is_a_strict_chain() {
        let d = generate_rtl(&AcceleratorConfig::new("t", 1));
        let g = d.flatten("bw_tile").unwrap();
        assert_eq!(g.node_count(), 7);
        // Interior nodes have exactly two neighbors.
        let interior = g
            .nodes()
            .filter(|(id, _)| g.neighbors(*id).count() == 2)
            .count();
        assert_eq!(interior, 5);
    }

    #[test]
    fn instruction_buffer_toggles_control_leaf() {
        let with = generate_rtl(&AcceleratorConfig::new("t", 2));
        let without = generate_rtl(&AcceleratorConfig::new("t", 2).without_instruction_buffer());
        assert!(with.module("bw_ibuf").is_some());
        assert!(without.module("bw_ibuf").is_none());
        assert_eq!(
            with.leaf_instance_count(CONTROL_PATH_MODULE).unwrap(),
            without.leaf_instance_count(CONTROL_PATH_MODULE).unwrap() + 1
        );
    }

    #[test]
    fn datapath_flattens_with_tiles_bridging_converter_and_vrf() {
        let d = generate_rtl(&AcceleratorConfig::new("t", 3));
        let g = d.flatten(DATA_PATH_MODULE).unwrap();
        // conv_in + 3*7 + vrf = 23.
        assert_eq!(g.node_count(), 23);
        // conv_in fans out to all three weight banks.
        let conv = g
            .nodes()
            .find(|(_, n)| n.module == "bw_fp16_to_bfp")
            .map(|(id, _)| id)
            .unwrap();
        assert_eq!(g.neighbors(conv).count(), 3);
    }
}

//! The matrix (weight) memory and BFP-quantized matrices.

use std::collections::BTreeMap;

use vfpga_isa::{BfpFormat, BfpVector, MReg, F16};

/// A matrix quantized row-by-row into BFP blocks, as the tile engines
/// consume it. Weights are quantized once at load time, mirroring the
/// offline weight preparation of the real system.
#[derive(Debug, Clone)]
pub struct QuantizedMatrix {
    rows: usize,
    cols: usize,
    format: BfpFormat,
    row_vectors: Vec<BfpVector>,
}

impl QuantizedMatrix {
    /// Quantizes a row-major `rows x cols` matrix.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols` or either dimension is zero.
    pub fn quantize(format: BfpFormat, rows: usize, cols: usize, data: &[f32]) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        assert_eq!(data.len(), rows * cols, "matrix data length mismatch");
        let row_vectors = data
            .chunks(cols)
            .map(|row| BfpVector::from_f32(format, row))
            .collect();
        QuantizedMatrix {
            rows,
            cols,
            format,
            row_vectors,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The BFP format the matrix was quantized with.
    pub fn format(&self) -> BfpFormat {
        self.format
    }

    /// Matrix-vector product `y = A * x` computed exactly as the tile
    /// engines do: the input is quantized once (the FP16-to-BFP converter),
    /// then each output element is an exact integer block dot product,
    /// rounded to f16 on writeback (the BFP-to-FP16 converter).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn mvmul(&self, x: &[F16]) -> Vec<F16> {
        assert_eq!(x.len(), self.cols, "vector length mismatch");
        let qx = BfpVector::from_f16(self.format, x);
        self.row_vectors
            .iter()
            .map(|row| F16::from_f32(row.dot(&qx) as f32))
            .collect()
    }

    /// Storage footprint in kilobits: mantissa bits per element plus one
    /// 8-bit shared exponent per block.
    pub fn storage_kb(&self) -> u64 {
        let blocks_per_row = self.cols.div_ceil(self.format.block_size) as u64;
        let bits = self.rows as u64
            * (self.cols as u64 * u64::from(self.format.mantissa_bits) + blocks_per_row * 8);
        bits.div_ceil(1024)
    }
}

/// The on-chip matrix memory: matrix registers mapped to quantized weight
/// tiles, with capacity accounting against the accelerator's weight memory.
#[derive(Debug, Clone, Default)]
pub struct MatrixMemory {
    matrices: BTreeMap<u16, QuantizedMatrix>,
}

impl MatrixMemory {
    /// Creates an empty matrix memory.
    pub fn new() -> Self {
        MatrixMemory::default()
    }

    /// Loads (or replaces) the matrix at `reg`.
    pub fn load(&mut self, reg: MReg, matrix: QuantizedMatrix) {
        self.matrices.insert(reg.0, matrix);
    }

    /// The matrix at `reg`, if loaded.
    pub fn get(&self, reg: MReg) -> Option<&QuantizedMatrix> {
        self.matrices.get(&reg.0)
    }

    /// Total storage used by all loaded matrices, in kilobits.
    pub fn used_kb(&self) -> u64 {
        self.matrices
            .values()
            .map(QuantizedMatrix::storage_kb)
            .sum()
    }

    /// Number of loaded matrices.
    pub fn len(&self) -> usize {
        self.matrices.len()
    }

    /// Whether no matrices are loaded.
    pub fn is_empty(&self) -> bool {
        self.matrices.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f16v(xs: &[f32]) -> Vec<F16> {
        xs.iter().map(|&x| F16::from_f32(x)).collect()
    }

    #[test]
    fn identity_mvmul_is_exact_for_small_values() {
        let n = 8;
        let mut data = vec![0.0f32; n * n];
        for i in 0..n {
            data[i * n + i] = 1.0;
        }
        let m = QuantizedMatrix::quantize(BfpFormat::new(9, 4), n, n, &data);
        let x = f16v(&[0.5, -1.0, 0.25, 2.0, 0.0, 1.0, -0.5, 4.0]);
        let y = m.mvmul(&x);
        for (yi, xi) in y.iter().zip(&x) {
            assert_eq!(yi.to_f32(), xi.to_f32());
        }
    }

    #[test]
    fn mvmul_close_to_f32_reference() {
        let (rows, cols) = (16, 32);
        let data: Vec<f32> = (0..rows * cols)
            .map(|i| ((i * 31 % 97) as f32 / 97.0) - 0.5)
            .collect();
        let x: Vec<f32> = (0..cols)
            .map(|i| ((i * 17 % 13) as f32 / 13.0) - 0.5)
            .collect();
        let m = QuantizedMatrix::quantize(BfpFormat::MS_FP9, rows, cols, &data);
        let y = m.mvmul(&f16v(&x));
        for r in 0..rows {
            let reference: f32 = (0..cols).map(|c| data[r * cols + c] * x[c]).sum();
            assert!(
                (y[r].to_f32() - reference).abs() < 0.05,
                "row {r}: {} vs {reference}",
                y[r]
            );
        }
    }

    #[test]
    fn storage_matches_config_formula() {
        let m = QuantizedMatrix::quantize(BfpFormat::MS_FP9, 64, 64, &vec![0.1; 64 * 64]);
        // 64 rows * (64*9 + 4 blocks * 8) bits = 64*608 = 38912 bits = 38 Kb.
        assert_eq!(m.storage_kb(), 38912u64.div_ceil(1024));
    }

    #[test]
    fn memory_tracks_usage() {
        let mut mem = MatrixMemory::new();
        assert!(mem.is_empty());
        let m = QuantizedMatrix::quantize(BfpFormat::MS_FP9, 64, 64, &vec![0.1; 64 * 64]);
        let kb = m.storage_kb();
        mem.load(MReg(0), m.clone());
        mem.load(MReg(1), m);
        assert_eq!(mem.len(), 2);
        assert_eq!(mem.used_kb(), 2 * kb);
        assert!(mem.get(MReg(0)).is_some());
        assert!(mem.get(MReg(9)).is_none());
    }

    #[test]
    #[should_panic(expected = "vector length mismatch")]
    fn mvmul_checks_shape() {
        let m = QuantizedMatrix::quantize(BfpFormat::new(9, 4), 4, 4, &[0.0; 16]);
        m.mvmul(&f16v(&[1.0, 2.0]));
    }
}

//! Cycle-approximate timing simulation.
//!
//! Programs for this ISA are straight-line, so timing reduces to an
//! in-order, pipelined issue model with a register scoreboard: one
//! instruction issues per cycle (plus a fetch stall when the instruction
//! buffer is absent), operands gate issue, and each functional unit has a
//! latency derived from the accelerator geometry. The simulator is
//! *resumable*: a receive from the inter-FPGA window blocks the machine
//! until the co-simulator (the runtime crate) reports the arrival time, which
//! is how the Fig. 11 communication/computation-overlap experiments run.

use std::collections::HashMap;

use vfpga_isa::{Instruction, Program};
use vfpga_sim::SimTime;

use crate::config::AcceleratorConfig;
use crate::funcsim::{RemoteAccess, RemoteWindow};

/// Calibrated timing parameters of one accelerator implementation.
///
/// The defaults are calibrated so the shapes of the paper's Table 4 and
/// Fig. 11 hold (see EXPERIMENTS.md); they are not microarchitecturally
/// exact.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingModel {
    /// Clock frequency in MHz (from the device type).
    pub freq_mhz: f64,
    /// Number of tile engines.
    pub tiles: usize,
    /// Native vector dimension.
    pub native_dim: usize,
    /// Rows retired per cycle per tile engine.
    pub rows_per_cycle: usize,
    /// Fill+drain depth of the MVM pipeline (converters, adder trees,
    /// accumulators), paid per dependent matrix-vector multiply.
    pub mvm_pipeline_depth: u64,
    /// Fill+drain depth of a multi-function unit.
    pub mfu_latency: u64,
    /// DRAM access latency in cycles.
    pub dram_latency: u64,
    /// f16 elements the DRAM interface moves per cycle.
    pub dram_elems_per_cycle: u64,
    /// Fixed per-invocation overhead (host transfer, doorbell, drain), in
    /// cycles.
    pub invocation_overhead: u64,
    /// Extra issue cycles per instruction when fetching from DRAM (no
    /// instruction buffer); zero when the buffer is present.
    pub fetch_stall: u64,
    /// Latency of handing a send to the inter-FPGA network FIFO.
    pub send_handoff: u64,
    /// Contention multiplier on the shared DRAM interface (1.0 = sole
    /// tenant). Spatial sharing puts several tenants behind one DRAM
    /// controller; instruction fetches and data vectors both pay this, so
    /// the instruction buffer (which removes the fetches) is what preserves
    /// performance isolation (Section 4.4).
    pub dram_contention: f64,
}

impl TimingModel {
    /// Builds a model for an accelerator configuration clocked at
    /// `freq_mhz`.
    pub fn for_config(config: &AcceleratorConfig, freq_mhz: f64) -> Self {
        TimingModel {
            freq_mhz,
            tiles: config.tiles,
            native_dim: config.native_dim,
            rows_per_cycle: config.rows_per_cycle,
            mvm_pipeline_depth: 140,
            mfu_latency: 24,
            dram_latency: 32,
            dram_elems_per_cycle: 32,
            invocation_overhead: (4.0e-6 * freq_mhz * 1e6) as u64, // ~4 us
            fetch_stall: if config.instruction_buffer { 0 } else { 8 },
            send_handoff: 8,
            dram_contention: 1.0,
        }
    }

    /// Effective per-instruction fetch stall under the configured DRAM
    /// contention.
    pub fn effective_fetch_stall(&self) -> u64 {
        (self.fetch_stall as f64 * self.dram_contention).round() as u64
    }

    /// Busy cycles of a `rows x cols` matrix-vector multiply: the tile
    /// operations spread across the tile engines.
    pub fn mvm_busy_cycles(&self, rows: usize, cols: usize) -> u64 {
        let nd = self.native_dim;
        let tile_ops = (rows.div_ceil(nd) * cols.div_ceil(nd)) as u64;
        let cycles_per_tile = (nd / self.rows_per_cycle) as u64;
        tile_ops.div_ceil(self.tiles as u64) * cycles_per_tile
    }

    /// Total latency of a matrix-vector multiply (busy + pipeline depth).
    pub fn mvm_latency(&self, rows: usize, cols: usize) -> u64 {
        self.mvm_busy_cycles(rows, cols) + self.mvm_pipeline_depth
    }

    /// Latency of an element-wise MFU operation over `len` elements.
    pub fn mfu_latency_cycles(&self, len: usize) -> u64 {
        (len.div_ceil(self.native_dim)) as u64 + self.mfu_latency
    }

    /// Latency of moving `len` f16 elements to/from DRAM, including
    /// queueing behind co-tenants on the shared interface.
    pub fn dram_latency_cycles(&self, len: usize) -> u64 {
        let base = (len as u64).div_ceil(self.dram_elems_per_cycle) + self.dram_latency;
        (base as f64 * self.dram_contention).round() as u64
    }

    /// Converts a cycle count on this machine's clock to simulated time.
    pub fn cycles_to_time(&self, cycles: u64) -> SimTime {
        SimTime::from_cycles(cycles, self.freq_mhz)
    }

    /// Converts simulated time to (rounded-up) cycles on this clock.
    pub fn time_to_cycles(&self, t: SimTime) -> u64 {
        let ps_per_cycle = 1e6 / self.freq_mhz;
        (t.as_ps() as f64 / ps_per_cycle).ceil() as u64
    }
}

/// One send recorded by the cycle simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendEvent {
    /// The channel (send-window offset).
    pub chan: u32,
    /// Sequence number of this send on its channel (0-based).
    pub seq: u64,
    /// Machine-local time the payload enters the network FIFO.
    pub at: SimTime,
    /// Payload length in f16 elements.
    pub len: usize,
}

/// Result of [`CycleSim::poll`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Poll {
    /// The program finished; the value is the total elapsed time.
    Done(SimTime),
    /// Execution is blocked waiting for the `seq`-th arrival on `chan`.
    Blocked {
        /// The receive channel.
        chan: u32,
        /// Sequence number of the awaited arrival.
        seq: u64,
    },
}

/// A resumable cycle-level simulation of one program on one accelerator.
pub struct CycleSim {
    model: TimingModel,
    insts: Vec<Instruction>,
    mat_shapes: HashMap<u16, (usize, usize)>,
    dram_len: HashMap<u32, usize>,
    vreg_len: Vec<usize>,
    reg_ready: Vec<u64>,
    window: Option<RemoteWindow>,
    scratch_slots: Vec<u32>,
    sent_len: HashMap<u32, usize>,
    send_seq: HashMap<u32, u64>,
    recv_seq: HashMap<u32, u64>,
    sends: Vec<SendEvent>,
    pc: usize,
    cycle: u64,
    /// Cycle at which the (shared) MVM tile engines become free: matrix
    /// ops serialize on the tile engines, which is what gives computation
    /// a *throughput* cost that communication can hide behind.
    mvm_free: u64,
    /// Cycle at which the multi-function units become free.
    mfu_free: u64,
    finish: u64,
    done: bool,
}

impl CycleSim {
    /// Creates a simulation.
    ///
    /// `mat_shapes` gives the shape of each loaded matrix register;
    /// `dram_len` the length of each pre-initialized DRAM slot (both are
    /// needed because latency depends on operand shape).
    pub fn new(
        model: TimingModel,
        program: &Program,
        mat_shapes: HashMap<u16, (usize, usize)>,
        dram_len: HashMap<u32, usize>,
    ) -> Self {
        let overhead = model.invocation_overhead;
        CycleSim {
            model,
            insts: program.instructions().to_vec(),
            mat_shapes,
            dram_len,
            vreg_len: vec![0; 256],
            reg_ready: vec![0; 256],
            window: None,
            scratch_slots: Vec::new(),
            sent_len: HashMap::new(),
            send_seq: HashMap::new(),
            recv_seq: HashMap::new(),
            sends: Vec::new(),
            pc: 0,
            cycle: overhead,
            mvm_free: overhead,
            mfu_free: overhead,
            finish: overhead,
            done: false,
        }
    }

    /// Configures the inter-FPGA window for scale-out co-simulation.
    pub fn set_remote_window(&mut self, window: Option<RemoteWindow>) {
        self.window = window;
    }

    /// Marks DRAM slots that the accelerator actually keeps on-chip (the
    /// vector register file / scratchpad): cross-timestep state like `h_t`
    /// and `c_t`. Accesses to these slots cost a short fixed latency and
    /// never contend on the shared DRAM interface.
    pub fn set_scratch_slots(&mut self, slots: Vec<u32>) {
        self.scratch_slots = slots;
    }

    /// Access latency for a local slot: scratchpad or DRAM.
    fn slot_latency(&self, addr: u32, len: usize) -> u64 {
        if self.scratch_slots.contains(&addr) {
            4 + (len.div_ceil(self.model.native_dim)) as u64
        } else {
            self.model.dram_latency_cycles(len)
        }
    }

    /// The timing model in use.
    pub fn model(&self) -> &TimingModel {
        &self.model
    }

    /// Sends recorded so far (monotone-growing across polls).
    pub fn sends(&self) -> &[SendEvent] {
        &self.sends
    }

    /// Advances until the program completes or blocks on a receive.
    ///
    /// `recv_ready(chan, seq)` must return the machine-local arrival time of
    /// the `seq`-th message on `chan` if it is known, or `None` if the peer
    /// has not produced it yet (the machine then stays blocked).
    pub fn poll(&mut self, recv_ready: &mut dyn FnMut(u32, u64) -> Option<SimTime>) -> Poll {
        use Instruction::*;
        while !self.done {
            let Some(&inst) = self.insts.get(self.pc) else {
                // Ran off the end: treat like a halt.
                self.done = true;
                break;
            };
            let mut issue =
                self.operands_ready(&inst).max(self.cycle) + self.model.effective_fetch_stall();
            let completion = match inst {
                Halt => {
                    self.done = true;
                    self.finish = self.finish.max(issue);
                    break;
                }
                Nop => issue + 1,
                VLoad { dst, addr } => {
                    match self.window.and_then(|w| w.classify(addr)) {
                        Some(RemoteAccess::Recv(chan)) => {
                            let seq = *self.recv_seq.get(&chan).unwrap_or(&0);
                            let Some(arrival) = recv_ready(chan, seq) else {
                                return Poll::Blocked { chan, seq };
                            };
                            self.recv_seq.insert(chan, seq + 1);
                            let arrival_cycle = self.model.time_to_cycles(arrival);
                            let len = self.recv_len(chan);
                            self.vreg_len[usize::from(dst.0)] = len;
                            // The template module gates the in-order
                            // machine at the barrier: nothing later issues
                            // until the data arrived (Section 2.3 assumes
                            // an in-order processor). Overlap therefore
                            // only exists for work *reordered above* the
                            // receive — which is the point of the tool.
                            issue = issue.max(arrival_cycle);
                            let done = issue + self.model.dram_latency_cycles(len);
                            self.reg_ready[usize::from(dst.0)] = done;
                            done
                        }
                        _ => {
                            let len = *self.dram_len.get(&addr).unwrap_or(&self.model.native_dim);
                            self.vreg_len[usize::from(dst.0)] = len;
                            let done = issue + self.slot_latency(addr, len);
                            self.reg_ready[usize::from(dst.0)] = done;
                            done
                        }
                    }
                }
                VStore { src, addr } => {
                    let len = self.vreg_len[usize::from(src.0)];
                    match self.window.and_then(|w| w.classify(addr)) {
                        Some(RemoteAccess::Send(chan)) => {
                            let at_cycle = issue + self.model.send_handoff;
                            let seq = *self.send_seq.get(&chan).unwrap_or(&0);
                            self.send_seq.insert(chan, seq + 1);
                            self.sent_len.insert(chan, len);
                            self.sends.push(SendEvent {
                                chan,
                                seq,
                                at: self.model.cycles_to_time(at_cycle),
                                len,
                            });
                            at_cycle
                        }
                        _ => {
                            self.dram_len.insert(addr, len);
                            issue + self.slot_latency(addr, len)
                        }
                    }
                }
                MvMul { dst, mat, src } => {
                    let (rows, cols) = *self
                        .mat_shapes
                        .get(&mat.0)
                        .unwrap_or(&(self.model.native_dim, self.model.native_dim));
                    let _ = src;
                    self.vreg_len[usize::from(dst.0)] = rows;
                    // The tile engines are a shared resource: this op
                    // occupies them for its busy time; the pipeline depth
                    // is latency on top.
                    let start = issue.max(self.mvm_free);
                    let busy = self.model.mvm_busy_cycles(rows, cols);
                    self.mvm_free = start + busy;
                    let done = start + busy + self.model.mvm_pipeline_depth;
                    self.reg_ready[usize::from(dst.0)] = done;
                    done
                }
                VAdd { dst, a, .. } | VSub { dst, a, .. } | VMul { dst, a, .. } => {
                    let len = self.vreg_len[usize::from(a.0)];
                    self.vreg_len[usize::from(dst.0)] = len;
                    let done = self.mfu_issue(issue, len);
                    self.reg_ready[usize::from(dst.0)] = done;
                    done
                }
                VMov { dst, src }
                | Sigmoid { dst, src }
                | Tanh { dst, src }
                | Relu { dst, src } => {
                    let len = self.vreg_len[usize::from(src.0)];
                    self.vreg_len[usize::from(dst.0)] = len;
                    let done = self.mfu_issue(issue, len);
                    self.reg_ready[usize::from(dst.0)] = done;
                    done
                }
                VZero { dst } | VOne { dst } => {
                    let len = self.vreg_len[usize::from(dst.0)].max(1);
                    self.vreg_len[usize::from(dst.0)] = len;
                    let done = self.mfu_issue(issue, len);
                    self.reg_ready[usize::from(dst.0)] = done;
                    done
                }
            };
            self.finish = self.finish.max(completion);
            if std::env::var_os("VFPGA_TRACE").is_some() {
                eprintln!(
                    "pc={:4} cycle={:8} issue={:8} done={:8} mvmfree={:8} {inst}",
                    self.pc, self.cycle, issue, completion, self.mvm_free
                );
            }
            // Pipelined issue: the next instruction can issue one cycle
            // after this one entered its unit.
            self.cycle = issue + 1;
            self.pc += 1;
        }
        Poll::Done(self.model.cycles_to_time(self.finish))
    }

    /// Runs a program with no remote window to completion.
    ///
    /// # Panics
    ///
    /// Panics if the program blocks on a receive (configure a window and
    /// use [`CycleSim::poll`] for scale-out programs).
    pub fn run_local(&mut self) -> SimTime {
        match self.poll(&mut |_, _| None) {
            Poll::Done(t) => t,
            Poll::Blocked { chan, .. } => {
                panic!("program blocked on remote channel {chan} in local-only simulation")
            }
        }
    }

    /// Occupies the MFU for an element-wise op over `len` elements and
    /// returns its completion cycle.
    fn mfu_issue(&mut self, issue: u64, len: usize) -> u64 {
        let start = issue.max(self.mfu_free);
        let busy = (len.div_ceil(self.model.native_dim)) as u64;
        self.mfu_free = start + busy;
        start + busy + self.model.mfu_latency
    }

    fn operands_ready(&self, inst: &Instruction) -> u64 {
        inst.uses()
            .map(|r| self.reg_ready[usize::from(r.0)])
            .max()
            .unwrap_or(0)
    }

    fn recv_len(&self, chan: u32) -> usize {
        let window = self.window.expect("recv requires a window");
        let own = self
            .sent_len
            .get(&chan)
            .copied()
            .unwrap_or(self.model.native_dim);
        own * window.num_machines
    }
}

impl std::fmt::Debug for CycleSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CycleSim")
            .field("pc", &self.pc)
            .field("cycle", &self.cycle)
            .field("done", &self.done)
            .field("sends", &self.sends.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vfpga_isa::assemble;

    fn model(tiles: usize, freq: f64) -> TimingModel {
        TimingModel::for_config(&AcceleratorConfig::new("t", tiles), freq)
    }

    fn time_of(src: &str, tiles: usize, shapes: &[(u16, (usize, usize))]) -> SimTime {
        let p = assemble(src).unwrap();
        let mut sim = CycleSim::new(
            model(tiles, 400.0),
            &p,
            shapes.iter().copied().collect(),
            HashMap::new(),
        );
        sim.run_local()
    }

    #[test]
    fn bigger_matrices_take_longer() {
        let small = time_of(
            "vload v0, 0\nmvmul v1, m0, v0\nhalt\n",
            4,
            &[(0, (128, 128))],
        );
        let large = time_of(
            "vload v0, 0\nmvmul v1, m0, v0\nhalt\n",
            4,
            &[(0, (1024, 1024))],
        );
        assert!(large > small);
    }

    #[test]
    fn more_tiles_are_faster() {
        let src = "vload v0, 0\nmvmul v1, m0, v0\nhalt\n";
        let shapes = [(0u16, (2048usize, 2048usize))];
        let few = time_of(src, 4, &shapes);
        let many = time_of(src, 16, &shapes);
        assert!(many < few);
    }

    #[test]
    fn independent_ops_pipeline_dependent_ops_serialize() {
        // Two independent MVMs overlap; two dependent ones serialize.
        let shapes = [
            (0u16, (1024usize, 1024usize)),
            (1u16, (1024usize, 1024usize)),
        ];
        let independent = time_of(
            "vload v0, 0\nmvmul v1, m0, v0\nmvmul v2, m1, v0\nhalt\n",
            4,
            &shapes,
        );
        let dependent = time_of(
            "vload v0, 0\nmvmul v1, m0, v0\nmvmul v2, m1, v1\nhalt\n",
            4,
            &shapes,
        );
        assert!(dependent > independent);
    }

    #[test]
    fn invocation_overhead_dominates_trivial_programs() {
        let t = time_of("halt\n", 4, &[]);
        // ~4 us overhead.
        assert!(t >= SimTime::from_us(3.0));
    }

    #[test]
    fn missing_instruction_buffer_slows_execution() {
        let p = assemble("vload v0, 0\nsigmoid v1, v0\nsigmoid v2, v1\nhalt\n").unwrap();
        let with = {
            let cfg = AcceleratorConfig::new("t", 4);
            let mut s = CycleSim::new(
                TimingModel::for_config(&cfg, 400.0),
                &p,
                HashMap::new(),
                HashMap::new(),
            );
            s.run_local()
        };
        let without = {
            let cfg = AcceleratorConfig::new("t", 4).without_instruction_buffer();
            let mut s = CycleSim::new(
                TimingModel::for_config(&cfg, 400.0),
                &p,
                HashMap::new(),
                HashMap::new(),
            );
            s.run_local()
        };
        assert!(without > with);
    }

    #[test]
    fn blocked_recv_resumes_after_arrival() {
        let window = RemoteWindow {
            send_base: 1000,
            recv_base: 2000,
            channels: 2,
            machine_index: 0,
            num_machines: 2,
        };
        let p = assemble("vload v0, 0\nvstore v0, 1000\nvload v1, 2000\nhalt\n").unwrap();
        let mut sim = CycleSim::new(model(4, 400.0), &p, HashMap::new(), HashMap::new());
        sim.set_remote_window(Some(window));
        // First poll: blocked on channel 0, message 0.
        match sim.poll(&mut |_, _| None) {
            Poll::Blocked { chan, seq } => {
                assert_eq!((chan, seq), (0, 0));
            }
            other => panic!("expected blocked, got {other:?}"),
        }
        assert_eq!(sim.sends().len(), 1);
        // Arrival very late: completion tracks the arrival.
        let arrival = SimTime::from_us(100.0);
        let done = match sim.poll(&mut |_, _| Some(arrival)) {
            Poll::Done(t) => t,
            other => panic!("expected done, got {other:?}"),
        };
        assert!(done >= arrival);
    }

    #[test]
    fn late_arrival_extends_latency_early_arrival_hides() {
        let window = RemoteWindow {
            send_base: 1000,
            recv_base: 2000,
            channels: 2,
            machine_index: 0,
            num_machines: 2,
        };
        // Receive happens in parallel with a big local MVM: an early
        // arrival is fully hidden behind compute.
        let p = assemble(
            "vload v0, 0\nvstore v0, 1000\nmvmul v2, m0, v0\nvload v1, 2000\nvadd v3, v1, v1\nhalt\n",
        )
        .unwrap();
        let shapes: HashMap<u16, (usize, usize)> =
            [(0u16, (4096usize, 4096usize))].into_iter().collect();
        let run = |arrival: SimTime| {
            let mut sim = CycleSim::new(model(2, 400.0), &p, shapes.clone(), HashMap::new());
            sim.set_remote_window(Some(window));
            match sim.poll(&mut |_, _| Some(arrival)) {
                Poll::Done(t) => t,
                Poll::Blocked { .. } => unreachable!(),
            }
        };
        let hidden = run(SimTime::from_us(1.0));
        let hidden2 = run(SimTime::from_us(2.0));
        // Both early arrivals fully hidden behind the MVM: same finish time.
        assert_eq!(hidden, hidden2);
        // A very late arrival extends the run.
        let late = run(SimTime::from_ms(1.0));
        assert!(late > hidden);
    }
}

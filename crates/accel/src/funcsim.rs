//! Bit-accurate functional simulation of the accelerator.

use std::collections::HashMap;
use std::fmt;

use vfpga_isa::{BfpFormat, Instruction, IsaConfig, MReg, Program, VReg, F16};

use crate::config::AcceleratorConfig;
use crate::matrix::{MatrixMemory, QuantizedMatrix};

/// Errors raised during functional simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A matrix register was used before a matrix was loaded into it.
    UnloadedMatrix(MReg),
    /// A vector register was read before being written.
    UninitializedRegister(VReg),
    /// A DRAM slot was loaded before being stored.
    UninitializedDram(u32),
    /// Element-wise operands have different lengths.
    LengthMismatch {
        /// Instruction index.
        index: usize,
        /// Left operand length.
        a: usize,
        /// Right operand length.
        b: usize,
    },
    /// `step` was called with no program started.
    NoProgram,
    /// A remote receive was attempted outside a scale-out co-simulation.
    RemoteNotConfigured(u32),
    /// The program ran past its end without a `halt`.
    MissingHalt,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnloadedMatrix(m) => write!(f, "matrix register {m} has no matrix loaded"),
            SimError::UninitializedRegister(v) => write!(f, "register {v} read before write"),
            SimError::UninitializedDram(a) => write!(f, "DRAM slot {a} read before write"),
            SimError::LengthMismatch { index, a, b } => {
                write!(f, "instruction {index}: operand lengths {a} and {b} differ")
            }
            SimError::NoProgram => write!(f, "no program started"),
            SimError::RemoteNotConfigured(a) => {
                write!(
                    f,
                    "remote access to slot {a} outside a scale-out simulation"
                )
            }
            SimError::MissingHalt => write!(f, "program ended without halt"),
        }
    }
}

impl std::error::Error for SimError {}

/// The inter-FPGA address window the synchronization template module is
/// configured with (Section 2.3, Fig. 8b): stores into the send window go
/// out on the inter-FPGA network; loads from the receive window block until
/// the peer's data arrives, then *combine* the received entries with this
/// machine's own contribution according to the index register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RemoteWindow {
    /// First DRAM slot of the send window.
    pub send_base: u32,
    /// First DRAM slot of the receive window.
    pub recv_base: u32,
    /// Number of channels (slots) in each window.
    pub channels: u32,
    /// This machine's index among the cooperating accelerators (the
    /// template module's index register).
    pub machine_index: usize,
    /// Total number of cooperating accelerators.
    pub num_machines: usize,
}

impl RemoteWindow {
    /// Classifies an address: `Some(Send(chan))`, `Some(Recv(chan))`, or
    /// `None` for ordinary DRAM.
    pub fn classify(&self, addr: u32) -> Option<RemoteAccess> {
        if addr >= self.send_base && addr < self.send_base + self.channels {
            Some(RemoteAccess::Send(addr - self.send_base))
        } else if addr >= self.recv_base && addr < self.recv_base + self.channels {
            Some(RemoteAccess::Recv(addr - self.recv_base))
        } else {
            None
        }
    }
}

/// A classified remote access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RemoteAccess {
    /// Store intercepted by the template module and sent to peers.
    Send(u32),
    /// Load that blocks for the barrier and combines peer data.
    Recv(u32),
}

/// Outcome of one [`FuncSim::step`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepOutcome {
    /// One instruction executed; the program continues.
    Executed,
    /// A `halt` was reached.
    Halted,
    /// Execution is blocked on a receive: the co-simulator must
    /// [`FuncSim::inject_remote`] data for this channel (from each peer)
    /// and call `step` again.
    NeedsRemote {
        /// The blocked channel.
        chan: u32,
    },
}

/// Execution statistics of one program run, by instruction class. The
/// DRAM counters back the paper's Section 4.4 observation that the
/// instruction buffer (which keeps the whole program on-chip) leaves only
/// data vectors on the shared DRAM interface.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Matrix-vector multiplies executed.
    pub mvm: u64,
    /// Element-wise / activation operations executed.
    pub mfu: u64,
    /// Local DRAM vector reads.
    pub dram_reads: u64,
    /// Local DRAM vector writes.
    pub dram_writes: u64,
    /// Inter-FPGA sends through the template module.
    pub sends: u64,
    /// Inter-FPGA barrier receives.
    pub recvs: u64,
}

/// A bit-accurate functional simulator for one accelerator.
///
/// Matrix-vector multiplies run in block floating point, everything else in
/// f16 — exactly the numerics of [`QuantizedMatrix::mvmul`] and [`F16`].
/// Vector registers hold whole (variable-length) vectors; DRAM is addressed
/// in vector slots.
#[derive(Debug, Clone)]
pub struct FuncSim {
    isa: IsaConfig,
    bfp: BfpFormat,
    matmem: MatrixMemory,
    vregs: Vec<Option<Vec<F16>>>,
    dram: HashMap<u32, Vec<F16>>,
    remote: Option<RemoteWindow>,
    /// Last value sent per channel (the template module's local copy used
    /// by the combine step).
    sent_local: HashMap<u32, Vec<F16>>,
    /// Received-but-unconsumed data per channel, per peer machine index.
    inbox: HashMap<(u32, usize), Vec<Vec<F16>>>,
    /// Outgoing sends not yet collected by the co-simulator.
    outbox: Vec<(u32, Vec<F16>)>,
    program: Option<Program>,
    pc: usize,
    executed: u64,
    stats: ExecStats,
}

impl FuncSim {
    /// Creates a simulator for the given accelerator configuration.
    pub fn new(config: &AcceleratorConfig) -> Self {
        FuncSim {
            isa: config.isa,
            bfp: config.bfp,
            matmem: MatrixMemory::new(),
            vregs: vec![None; usize::from(config.isa.num_vregs)],
            dram: HashMap::new(),
            remote: None,
            sent_local: HashMap::new(),
            inbox: HashMap::new(),
            outbox: Vec::new(),
            program: None,
            pc: 0,
            executed: 0,
            stats: ExecStats::default(),
        }
    }

    /// Configures the scale-out remote window (see [`RemoteWindow`]).
    pub fn set_remote_window(&mut self, window: Option<RemoteWindow>) {
        self.remote = window;
    }

    /// Quantizes and loads a row-major matrix into matrix register `reg`.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn load_matrix(&mut self, reg: MReg, rows: usize, cols: usize, data: &[f32]) {
        self.matmem
            .load(reg, QuantizedMatrix::quantize(self.bfp, rows, cols, data));
    }

    /// The matrix memory (for capacity accounting).
    pub fn matrix_memory(&self) -> &MatrixMemory {
        &self.matmem
    }

    /// Writes a vector into a DRAM slot.
    pub fn write_dram(&mut self, slot: u32, data: &[F16]) {
        self.dram.insert(slot, data.to_vec());
    }

    /// Reads a DRAM slot, if it has been written.
    pub fn read_dram(&self, slot: u32) -> Option<&[F16]> {
        self.dram.get(&slot).map(Vec::as_slice)
    }

    /// Reads a vector register, if initialized.
    pub fn read_vreg(&self, reg: VReg) -> Option<&[F16]> {
        self.vregs
            .get(usize::from(reg.0))
            .and_then(|v| v.as_deref())
    }

    /// Number of instructions executed since the last [`FuncSim::start`].
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Per-class execution statistics since the last [`FuncSim::start`].
    pub fn stats(&self) -> ExecStats {
        self.stats
    }

    /// Begins stepped execution of `program` (validated against the ISA
    /// limits first).
    ///
    /// # Errors
    ///
    /// Returns a validation failure wrapped as [`SimError::NoProgram`]
    /// never; validation errors surface via panic-free `Result`.
    pub fn start(&mut self, program: &Program) -> Result<(), vfpga_isa::IsaError> {
        program.validate(&self.isa)?;
        self.program = Some(program.clone());
        self.pc = 0;
        self.executed = 0;
        self.stats = ExecStats::default();
        Ok(())
    }

    /// Runs a program to completion (no remote blocking allowed).
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on semantic errors, including
    /// [`SimError::RemoteNotConfigured`] if the program performs remote
    /// receives (those require the co-simulator driving [`FuncSim::step`]).
    pub fn run(&mut self, program: &Program) -> Result<u64, Box<dyn std::error::Error>> {
        self.start(program)?;
        loop {
            match self.step()? {
                StepOutcome::Executed => {}
                StepOutcome::Halted => return Ok(self.executed),
                StepOutcome::NeedsRemote { chan } => {
                    return Err(Box::new(SimError::RemoteNotConfigured(chan)))
                }
            }
        }
    }

    /// Delivers one vector from peer `from_machine` on `chan` (FIFO per
    /// channel/peer pair).
    pub fn inject_remote(&mut self, chan: u32, from_machine: usize, data: Vec<F16>) {
        self.inbox
            .entry((chan, from_machine))
            .or_default()
            .push(data);
    }

    /// Drains the outgoing sends produced since the last call.
    pub fn take_sends(&mut self) -> Vec<(u32, Vec<F16>)> {
        std::mem::take(&mut self.outbox)
    }

    /// Executes the next instruction.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on reads of uninitialized state, shape
    /// mismatches, or running past the end of the program.
    pub fn step(&mut self) -> Result<StepOutcome, SimError> {
        let program = self.program.as_ref().ok_or(SimError::NoProgram)?;
        let Some(&inst) = program.instructions().get(self.pc) else {
            return Err(SimError::MissingHalt);
        };

        use Instruction::*;
        match inst {
            Halt => {
                self.executed += 1;
                return Ok(StepOutcome::Halted);
            }
            Nop => {}
            VLoad { dst, addr } => {
                let access = self.remote.and_then(|w| w.classify(addr));
                match access {
                    Some(RemoteAccess::Recv(chan)) => match self.combine_recv(chan) {
                        Some(v) => {
                            self.stats.recvs += 1;
                            self.set_vreg(dst, v);
                        }
                        None => return Ok(StepOutcome::NeedsRemote { chan }),
                    },
                    Some(RemoteAccess::Send(_)) | None => {
                        let v = self
                            .dram
                            .get(&addr)
                            .cloned()
                            .ok_or(SimError::UninitializedDram(addr))?;
                        self.stats.dram_reads += 1;
                        self.set_vreg(dst, v);
                    }
                }
            }
            VStore { src, addr } => {
                let v = self.get_vreg(src)?.to_vec();
                match self.remote.and_then(|w| w.classify(addr)) {
                    Some(RemoteAccess::Send(chan)) => {
                        // The template module forwards the entry to peers,
                        // keeps a local copy for the combine step, and
                        // invalidates the DRAM write (Fig. 8b).
                        self.stats.sends += 1;
                        self.sent_local.insert(chan, v.clone());
                        self.outbox.push((chan, v));
                    }
                    _ => {
                        self.stats.dram_writes += 1;
                        self.dram.insert(addr, v);
                    }
                }
            }
            MvMul { dst, mat, src } => {
                self.stats.mvm += 1;
                let m = self.matmem.get(mat).ok_or(SimError::UnloadedMatrix(mat))?;
                let x = self.get_vreg(src)?;
                if x.len() != m.cols() {
                    return Err(SimError::LengthMismatch {
                        index: self.pc,
                        a: m.cols(),
                        b: x.len(),
                    });
                }
                let y = m.mvmul(x);
                self.set_vreg(dst, y);
            }
            VAdd { dst, a, b } => self.binary(dst, a, b, |x, y| x + y)?,
            VSub { dst, a, b } => self.binary(dst, a, b, |x, y| x - y)?,
            VMul { dst, a, b } => self.binary(dst, a, b, |x, y| x * y)?,
            VMov { dst, src } => {
                let v = self.get_vreg(src)?.to_vec();
                self.set_vreg(dst, v);
            }
            VZero { dst } => {
                let len = self.default_len();
                self.set_vreg(dst, vec![F16::ZERO; len]);
            }
            VOne { dst } => {
                let len = self.default_len();
                self.set_vreg(dst, vec![F16::ONE; len]);
            }
            Sigmoid { dst, src } => self.unary(dst, src, F16::sigmoid)?,
            Tanh { dst, src } => self.unary(dst, src, F16::tanh)?,
            Relu { dst, src } => self.unary(dst, src, F16::relu)?,
        }
        self.pc += 1;
        self.executed += 1;
        Ok(StepOutcome::Executed)
    }

    /// The combine step of the synchronization template module: the k-th
    /// receive on a channel concatenates every machine's k-th contribution
    /// in machine-index order, reading this machine's own part from the
    /// local copy kept at send time.
    fn combine_recv(&mut self, chan: u32) -> Option<Vec<F16>> {
        let window = self.remote.expect("combine_recv requires a remote window");
        // All peers must have delivered before the barrier lifts.
        for m in 0..window.num_machines {
            if m == window.machine_index {
                continue;
            }
            let queue = self.inbox.get(&(chan, m));
            if queue.is_none_or(|q| q.is_empty()) {
                return None;
            }
        }
        let mut combined = Vec::new();
        for m in 0..window.num_machines {
            if m == window.machine_index {
                combined.extend_from_slice(
                    self.sent_local.get(&chan).map(Vec::as_slice).unwrap_or(&[]),
                );
            } else {
                let part = self
                    .inbox
                    .get_mut(&(chan, m))
                    .expect("checked above")
                    .remove(0);
                combined.extend(part);
            }
        }
        Some(combined)
    }

    fn default_len(&self) -> usize {
        // vzero/vone adopt the length of the most recent vector in flight;
        // fall back to 1.
        self.vregs
            .iter()
            .rev()
            .find_map(|v| v.as_ref().map(Vec::len))
            .unwrap_or(1)
    }

    fn get_vreg(&self, reg: VReg) -> Result<&[F16], SimError> {
        self.vregs[usize::from(reg.0)]
            .as_deref()
            .ok_or(SimError::UninitializedRegister(reg))
    }

    fn set_vreg(&mut self, reg: VReg, value: Vec<F16>) {
        self.vregs[usize::from(reg.0)] = Some(value);
    }

    fn unary(&mut self, dst: VReg, src: VReg, f: impl Fn(F16) -> F16) -> Result<(), SimError> {
        self.stats.mfu += 1;
        let v: Vec<F16> = self.get_vreg(src)?.iter().copied().map(f).collect();
        self.set_vreg(dst, v);
        Ok(())
    }

    fn binary(
        &mut self,
        dst: VReg,
        a: VReg,
        b: VReg,
        f: impl Fn(F16, F16) -> F16,
    ) -> Result<(), SimError> {
        self.stats.mfu += 1;
        let va = self.get_vreg(a)?;
        let vb = self.get_vreg(b)?;
        if va.len() != vb.len() {
            return Err(SimError::LengthMismatch {
                index: self.pc,
                a: va.len(),
                b: vb.len(),
            });
        }
        let v: Vec<F16> = va.iter().zip(vb).map(|(&x, &y)| f(x, y)).collect();
        self.set_vreg(dst, v);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vfpga_isa::assemble;

    fn f16v(xs: &[f32]) -> Vec<F16> {
        xs.iter().map(|&x| F16::from_f32(x)).collect()
    }

    fn sim() -> FuncSim {
        FuncSim::new(&AcceleratorConfig::new("t", 2))
    }

    #[test]
    fn end_to_end_mvmul_pipeline() {
        let mut s = sim();
        // W = [[1, 2], [3, 4]] scaled by 1/8 to stay accurate in BFP.
        s.load_matrix(MReg(0), 2, 2, &[0.125, 0.25, 0.375, 0.5]);
        s.write_dram(0, &f16v(&[1.0, 1.0]));
        let p = assemble("vload v0, 0\nmvmul v1, m0, v0\nvadd v2, v1, v1\nvstore v2, 1\nhalt\n")
            .unwrap();
        s.run(&p).unwrap();
        let y = s.read_dram(1).unwrap();
        assert!((y[0].to_f32() - 0.75).abs() < 0.01);
        assert!((y[1].to_f32() - 1.75).abs() < 0.01);
    }

    #[test]
    fn uninitialized_reads_are_errors() {
        let mut s = sim();
        let p = assemble("vstore v0, 0\nhalt\n").unwrap();
        let err = s.run(&p).unwrap_err();
        assert!(err.to_string().contains("read before write"));

        let mut s = sim();
        let p = assemble("vload v0, 9\nhalt\n").unwrap();
        let err = s.run(&p).unwrap_err();
        assert!(err.to_string().contains("DRAM slot 9"));
    }

    #[test]
    fn missing_halt_detected() {
        let mut s = sim();
        s.write_dram(0, &f16v(&[1.0]));
        let p = assemble("vload v0, 0\n").unwrap();
        assert!(s.run(&p).unwrap_err().to_string().contains("without halt"));
    }

    #[test]
    fn activations_match_f16_semantics() {
        let mut s = sim();
        s.write_dram(0, &f16v(&[0.0, 1.0, -1.0]));
        let p = assemble("vload v0, 0\nsigmoid v1, v0\ntanh v2, v0\nrelu v3, v0\nhalt\n").unwrap();
        s.run(&p).unwrap();
        let sig = s.read_vreg(VReg(1)).unwrap();
        assert_eq!(sig[0].to_f32(), 0.5);
        let rel = s.read_vreg(VReg(3)).unwrap();
        assert_eq!(rel[2], F16::ZERO);
    }

    #[test]
    fn remote_send_recv_combines_in_machine_order() {
        let window0 = RemoteWindow {
            send_base: 1000,
            recv_base: 2000,
            channels: 4,
            machine_index: 0,
            num_machines: 2,
        };
        let mut m0 = sim();
        m0.set_remote_window(Some(window0));
        // Machine 0 sends its half, then receives the combined vector.
        let p =
            assemble("vload v0, 0\nvstore v0, 1000\nvload v1, 2000\nvstore v1, 5\nhalt\n").unwrap();
        m0.write_dram(0, &f16v(&[1.0, 2.0]));
        m0.start(&p).unwrap();
        // Step until blocked on the receive.
        assert_eq!(m0.step().unwrap(), StepOutcome::Executed); // vload
        assert_eq!(m0.step().unwrap(), StepOutcome::Executed); // vstore (send)
        let sends = m0.take_sends();
        assert_eq!(sends.len(), 1);
        assert_eq!(sends[0].0, 0); // channel 0
        assert_eq!(m0.step().unwrap(), StepOutcome::NeedsRemote { chan: 0 });
        // Peer (machine 1) delivers its half.
        m0.inject_remote(0, 1, f16v(&[3.0, 4.0]));
        assert_eq!(m0.step().unwrap(), StepOutcome::Executed); // recv now succeeds
        assert_eq!(m0.step().unwrap(), StepOutcome::Executed); // store combined
        let combined = m0.read_dram(5).unwrap();
        let vals: Vec<f32> = combined.iter().map(|h| h.to_f32()).collect();
        // Machine 0's own part first, then machine 1's.
        assert_eq!(vals, [1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn remote_store_does_not_touch_dram() {
        let window = RemoteWindow {
            send_base: 1000,
            recv_base: 2000,
            channels: 1,
            machine_index: 0,
            num_machines: 2,
        };
        let mut s = sim();
        s.set_remote_window(Some(window));
        s.write_dram(0, &f16v(&[7.0]));
        let p = assemble("vload v0, 0\nvstore v0, 1000\nhalt\n").unwrap();
        s.start(&p).unwrap();
        while !matches!(s.step().unwrap(), StepOutcome::Halted) {}
        // The special write is invalidated: slot 1000 holds nothing.
        assert!(s.read_dram(1000).is_none());
    }

    #[test]
    fn remote_without_window_is_plain_dram() {
        let mut s = sim();
        s.write_dram(0, &f16v(&[7.0]));
        let p = assemble("vload v0, 0\nvstore v0, 1000\nvload v1, 1000\nhalt\n").unwrap();
        s.run(&p).unwrap();
        assert_eq!(s.read_vreg(VReg(1)).unwrap()[0].to_f32(), 7.0);
    }

    #[test]
    fn stats_count_instruction_classes() {
        let mut s = sim();
        s.load_matrix(MReg(0), 2, 2, &[0.1, 0.2, 0.3, 0.4]);
        s.write_dram(0, &f16v(&[1.0, 1.0]));
        let p = assemble(
            "vload v0, 0\nmvmul v1, m0, v0\nvadd v2, v1, v1\nsigmoid v3, v2\nvstore v3, 1\nhalt\n",
        )
        .unwrap();
        s.run(&p).unwrap();
        let st = s.stats();
        assert_eq!(st.mvm, 1);
        assert_eq!(st.mfu, 2);
        assert_eq!(st.dram_reads, 1);
        assert_eq!(st.dram_writes, 1);
        assert_eq!(st.sends, 0);
        assert_eq!(st.recvs, 0);
    }

    #[test]
    fn stats_count_remote_traffic() {
        let window = RemoteWindow {
            send_base: 1000,
            recv_base: 2000,
            channels: 1,
            machine_index: 0,
            num_machines: 2,
        };
        let mut s = sim();
        s.set_remote_window(Some(window));
        s.write_dram(0, &f16v(&[1.0]));
        let p = assemble("vload v0, 0\nvstore v0, 1000\nvload v1, 2000\nhalt\n").unwrap();
        s.start(&p).unwrap();
        while !matches!(s.step().unwrap(), StepOutcome::NeedsRemote { .. }) {}
        s.inject_remote(0, 1, f16v(&[2.0]));
        while !matches!(s.step().unwrap(), StepOutcome::Halted) {}
        let st = s.stats();
        assert_eq!(st.sends, 1);
        assert_eq!(st.recvs, 1);
        assert_eq!(st.dram_reads, 1);
        assert_eq!(st.dram_writes, 0); // the send is not a DRAM write
    }

    #[test]
    fn length_mismatch_detected() {
        let mut s = sim();
        s.write_dram(0, &f16v(&[1.0, 2.0]));
        s.write_dram(1, &f16v(&[1.0]));
        let p = assemble("vload v0, 0\nvload v1, 1\nvadd v2, v0, v1\nhalt\n").unwrap();
        let err = s.run(&p).unwrap_err();
        assert!(err.to_string().contains("lengths"));
    }
}

//! # vfpga-hls — a parallel-pattern dataflow frontend
//!
//! The paper chooses to decompose at the RTL level precisely so that the
//! framework stays open to "various high-level programming
//! languages/frameworks, as HLS designs can be converted into RTL designs"
//! (Section 2.2.1). This crate is that upper entry point: a small dataflow
//! DSL in the style of the parallel-pattern languages the paper cites
//! (Lime, Spatial/Plasticine, pattern-based decomposition), lowering
//! straight to [`vfpga_rtl`] structural designs that the decomposing tool
//! consumes.
//!
//! A dataflow graph is built from four operators:
//!
//! * [`Dataflow::stage`] — a sequential kernel (one basic module);
//! * [`Dataflow::map`] — `n` identical parallel workers (data parallelism);
//! * [`Dataflow::reduce`] — a binary combine tree (the Fig. 2c composite);
//! * chaining — consecutive operators form pipelines.
//!
//! ```
//! use vfpga_hls::Dataflow;
//!
//! let mut g = Dataflow::new("imgproc");
//! let input = g.input(256);
//! let pre = g.stage("normalize", input, 256);
//! let conv = g.map("conv_tap", pre, 4, 256);
//! let agg = g.reduce("max_pool", conv, 64);
//! g.output(agg);
//! let design = g.lower()?;
//! assert!(design.module("imgproc_top").is_some());
//! # Ok::<(), vfpga_rtl::RtlError>(())
//! ```
//!
//! The emitted design has the control/data-path split the decomposing tool
//! expects: mark `"<name>_ctrl"` as the control module and the soft-block
//! tree recovers exactly the patterns written in the DSL (the tests
//! demonstrate the round trip).

use vfpga_rtl::{Design, Instance, ModuleDecl, Port, RtlError};

/// A value flowing through the dataflow graph (the output of one
/// operator).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Wire(usize);

#[derive(Debug, Clone)]
enum Op {
    Input {
        width: u32,
    },
    Stage {
        kernel: String,
        from: Wire,
        width: u32,
    },
    Map {
        kernel: String,
        from: Wire,
        n: usize,
        width: u32,
    },
    Reduce {
        kernel: String,
        from: Wire,
        width: u32,
    },
}

/// A dataflow graph under construction.
#[derive(Debug, Clone)]
pub struct Dataflow {
    name: String,
    ops: Vec<Op>,
    output: Option<Wire>,
}

impl Dataflow {
    /// Starts a graph named `name` (module names are prefixed with it).
    pub fn new(name: impl Into<String>) -> Self {
        Dataflow {
            name: name.into(),
            ops: Vec::new(),
            output: None,
        }
    }

    /// Declares the external input of `width` bits.
    pub fn input(&mut self, width: u32) -> Wire {
        self.push(Op::Input { width })
    }

    /// A sequential kernel consuming `from` and producing `width` bits.
    pub fn stage(&mut self, kernel: impl Into<String>, from: Wire, width: u32) -> Wire {
        self.push(Op::Stage {
            kernel: kernel.into(),
            from,
            width,
        })
    }

    /// `n` identical parallel workers over `from`; each produces `width`
    /// bits.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn map(&mut self, kernel: impl Into<String>, from: Wire, n: usize, width: u32) -> Wire {
        assert!(n > 0, "map needs at least one worker");
        self.push(Op::Map {
            kernel: kernel.into(),
            from,
            n,
            width,
        })
    }

    /// A combine kernel reducing `from` to `width` bits.
    pub fn reduce(&mut self, kernel: impl Into<String>, from: Wire, width: u32) -> Wire {
        self.push(Op::Reduce {
            kernel: kernel.into(),
            from,
            width,
        })
    }

    /// Declares the graph's external output.
    pub fn output(&mut self, from: Wire) {
        self.output = Some(from);
    }

    fn push(&mut self, op: Op) -> Wire {
        self.ops.push(op);
        Wire(self.ops.len() - 1)
    }

    fn width_of(&self, w: Wire) -> u32 {
        match &self.ops[w.0] {
            Op::Input { width }
            | Op::Stage { width, .. }
            | Op::Map { width, .. }
            | Op::Reduce { width, .. } => *width,
        }
    }

    /// Lowers the graph to a structural RTL design.
    ///
    /// The emitted hierarchy mirrors the generated accelerators:
    /// `<name>_top` instantiates `<name>_ctrl` (a sequencer leaf) and
    /// `<name>_datapath` holding the operator instances. Kernels become
    /// basic modules tagged with their kernel name as behavior, so the
    /// decomposing tool's equivalence checking sees map workers as
    /// interchangeable.
    ///
    /// # Errors
    ///
    /// Returns an [`RtlError`] if the graph is malformed (no output, or a
    /// kernel name collides with generated module names).
    pub fn lower(&self) -> Result<Design, RtlError> {
        let output = self.output.ok_or(RtlError::Parse {
            line: 0,
            message: "dataflow graph has no output".into(),
        })?;
        let mut d = Design::new();
        let n = &self.name;

        // Control path: one sequencer leaf.
        d.add_module(ModuleDecl::leaf(
            format!("{n}_seq"),
            vec![Port::input("i", 32), Port::output("o", 32)],
            "sequencer",
        ))?;
        {
            let mut ctrl = ModuleDecl::new(
                format!("{n}_ctrl"),
                vec![Port::input("instr", 32), Port::output("go", 32)],
            );
            ctrl.add_instance(Instance::new(
                "u_seq",
                format!("{n}_seq"),
                [("i", "instr"), ("o", "go")],
            ));
            d.add_module(ctrl)?;
        }

        // Kernel leaf modules (deduplicated by kernel name + shape).
        let mut dp = ModuleDecl::new(
            format!("{n}_datapath"),
            vec![
                Port::input("din", self.width_of(Wire(0))),
                Port::input("go", 32),
                Port::output("dout", self.width_of(output)),
            ],
        );
        let mut declared: Vec<String> = Vec::new();
        let declare_kernel = |d: &mut Design,
                              declared: &mut Vec<String>,
                              kernel: &str,
                              in_w: u32,
                              out_w: u32|
         -> Result<String, RtlError> {
            let mod_name = format!("{n}_{kernel}_{in_w}x{out_w}");
            if !declared.contains(&mod_name) {
                d.add_module(ModuleDecl::leaf(
                    &mod_name,
                    vec![Port::input("x", in_w), Port::output("y", out_w)],
                    kernel,
                ))?;
                declared.push(mod_name.clone());
            }
            Ok(mod_name)
        };

        // Net per op output.
        let net_of = |w: Wire| format!("n{}", w.0);
        for (i, op) in self.ops.iter().enumerate() {
            let this = Wire(i);
            // The output op drives `dout` directly; every other operator
            // result gets an internal wire.
            match op {
                Op::Input { .. } => {}
                Op::Stage { width, .. } | Op::Map { width, .. } | Op::Reduce { width, .. } => {
                    if this != output {
                        dp.add_wire(net_of(this), *width);
                    }
                }
            }
        }
        let net_or_port = |w: Wire| -> String {
            if w == output {
                "dout".to_string()
            } else if matches!(self.ops[w.0], Op::Input { .. }) {
                "din".to_string()
            } else {
                net_of(w)
            }
        };

        for (i, op) in self.ops.iter().enumerate() {
            let this = Wire(i);
            match op {
                Op::Input { .. } => {}
                Op::Stage {
                    kernel,
                    from,
                    width,
                } => {
                    let m = declare_kernel(
                        &mut d,
                        &mut declared,
                        kernel,
                        self.width_of(*from),
                        *width,
                    )?;
                    dp.add_instance(Instance::new(
                        format!("u{i}"),
                        m,
                        [("x", net_or_port(*from)), ("y", net_or_port(this))],
                    ));
                }
                Op::Map {
                    kernel,
                    from,
                    n: workers,
                    width,
                } => {
                    let m = declare_kernel(
                        &mut d,
                        &mut declared,
                        kernel,
                        self.width_of(*from),
                        *width,
                    )?;
                    for k in 0..*workers {
                        dp.add_instance(Instance::new(
                            format!("u{i}_{k}"),
                            m.clone(),
                            [("x", net_or_port(*from)), ("y", net_or_port(this))],
                        ));
                    }
                }
                Op::Reduce {
                    kernel,
                    from,
                    width,
                } => {
                    let m = declare_kernel(
                        &mut d,
                        &mut declared,
                        kernel,
                        self.width_of(*from),
                        *width,
                    )?;
                    dp.add_instance(Instance::new(
                        format!("u{i}"),
                        m,
                        [("x", net_or_port(*from)), ("y", net_or_port(this))],
                    ));
                }
            }
        }
        d.add_module(dp)?;

        // Top.
        let mut top = ModuleDecl::new(
            format!("{n}_top"),
            vec![
                Port::input("instr", 32),
                Port::input("din", self.width_of(Wire(0))),
                Port::output("dout", self.width_of(output)),
            ],
        );
        top.add_wire("go", 32);
        top.add_instance(Instance::new(
            "u_ctrl",
            format!("{n}_ctrl"),
            [("instr", "instr"), ("go", "go")],
        ));
        top.add_instance(Instance::new(
            "u_datapath",
            format!("{n}_datapath"),
            [("din", "din"), ("go", "go"), ("dout", "dout")],
        ));
        d.add_module(top)?;
        Ok(d)
    }

    /// The names of the generated top and control modules (inputs to the
    /// decomposing tool).
    pub fn module_names(&self) -> (String, String) {
        (format!("{}_top", self.name), format!("{}_ctrl", self.name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vfpga_core::{decompose, DecomposeOptions, Pattern};
    use vfpga_fabric::ResourceVec;

    fn unit(_: &vfpga_rtl::FlatNode) -> ResourceVec {
        ResourceVec {
            luts: 500,
            ffs: 500,
            bram_kb: 2,
            uram_kb: 0,
            dsps: 2,
        }
    }

    fn sample() -> Dataflow {
        let mut g = Dataflow::new("acc");
        let input = g.input(128);
        let pre = g.stage("pre", input, 128);
        let workers = g.map("work", pre, 5, 128);
        let post = g.stage("post", workers, 64);
        g.output(post);
        g
    }

    #[test]
    fn lowers_to_valid_rtl() {
        let d = sample().lower().unwrap();
        assert!(d.module("acc_top").is_some());
        assert!(d.module("acc_ctrl").is_some());
        // seq + pre + work*5 + post = 8 leaf instances.
        assert_eq!(d.leaf_instance_count("acc_top").unwrap(), 8);
        // Emitted source round-trips through the parser.
        let reparsed = vfpga_rtl::parse(&d.to_source()).unwrap();
        assert_eq!(
            reparsed.canonical_hash("acc_top").unwrap(),
            d.canonical_hash("acc_top").unwrap()
        );
    }

    #[test]
    fn decomposer_recovers_dsl_patterns() {
        let g = sample();
        let d = g.lower().unwrap();
        let (top, ctrl) = g.module_names();
        let opts = DecomposeOptions::new(ctrl);
        let dec = decompose(&d, &top, &opts, &unit).unwrap();
        // pipeline [pre, data(5 x work), post].
        let root = dec.tree.root_block();
        assert_eq!(root.pattern(), Some(Pattern::Pipeline));
        assert_eq!(root.children().len(), 3);
        let mid = dec.tree.block(root.children()[1]);
        assert_eq!(mid.pattern(), Some(Pattern::Data));
        assert_eq!(mid.children().len(), 5);
        assert_eq!(dec.stats.control_leaves, 1);
    }

    #[test]
    fn reduce_and_chained_maps() {
        let mut g = Dataflow::new("r");
        let input = g.input(256);
        let m = g.map("lane", input, 4, 64);
        let red = g.reduce("combine", m, 16);
        g.output(red);
        let d = g.lower().unwrap();
        assert_eq!(d.leaf_instance_count("r_top").unwrap(), 6);
        let (top, ctrl) = g.module_names();
        let dec = decompose(&d, &top, &DecomposeOptions::new(ctrl), &unit).unwrap();
        // The four lanes group in data parallelism feeding the combiner.
        let root = dec.tree.root_block();
        assert_eq!(root.pattern(), Some(Pattern::Pipeline));
        let kinds: Vec<_> = root
            .children()
            .iter()
            .map(|&c| dec.tree.block(c).pattern())
            .collect();
        assert!(kinds.contains(&Some(Pattern::Data)));
    }

    #[test]
    fn kernel_modules_deduplicate() {
        let mut g = Dataflow::new("d");
        let input = g.input(32);
        let a = g.stage("same", input, 32);
        let b = g.stage("same", a, 32);
        g.output(b);
        let d = g.lower().unwrap();
        // One kernel module, two instances.
        assert_eq!(
            d.modules()
                .filter(|m| m.behavior.as_deref() == Some("same"))
                .count(),
            1
        );
        assert_eq!(d.leaf_instance_count("d_top").unwrap(), 3);
    }

    #[test]
    fn graph_without_output_is_rejected() {
        let mut g = Dataflow::new("x");
        let _ = g.input(8);
        assert!(g.lower().is_err());
    }
}

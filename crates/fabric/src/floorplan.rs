//! Clock-region floorplanning.
//!
//! The paper leans on manual floorplanning (Fig. 10) to reach 400 MHz on
//! the XCVU37P: placement quality decides the longest inter-region wire on
//! the critical path, and with it the achievable frequency. This module
//! models that mechanism: a device is a grid of clock regions, components
//! are placed into regions under per-region capacity, and the achievable
//! frequency falls off with the longest span between communicating
//! components.

use crate::DeviceType;

/// A grid of clock regions with uniform per-region capacity (in abstract
/// placement units; one tile engine ~ one unit).
#[derive(Debug, Clone)]
pub struct RegionGrid {
    rows: usize,
    cols: usize,
    capacity_per_region: usize,
}

impl RegionGrid {
    /// The clock-region grid of a device type. UltraScale+ parts span
    /// multiple SLRs stacked vertically; we model the XCVU37P as 3x3
    /// super-regions and the XCKU115 as 2x2.
    pub fn for_device(device: &DeviceType) -> Self {
        if device.name() == "XCVU37P" {
            RegionGrid {
                rows: 3,
                cols: 3,
                capacity_per_region: 3,
            }
        } else {
            RegionGrid {
                rows: 2,
                cols: 2,
                capacity_per_region: 4,
            }
        }
    }

    /// Creates a custom grid.
    ///
    /// # Panics
    ///
    /// Panics if any dimension or the capacity is zero.
    pub fn new(rows: usize, cols: usize, capacity_per_region: usize) -> Self {
        assert!(
            rows > 0 && cols > 0 && capacity_per_region > 0,
            "degenerate grid"
        );
        RegionGrid {
            rows,
            cols,
            capacity_per_region,
        }
    }

    /// Total placement capacity.
    pub fn capacity(&self) -> usize {
        self.rows * self.cols * self.capacity_per_region
    }

    /// Places `units` communicating components (a hub-and-spoke netlist:
    /// every component talks to component 0, the control hub).
    ///
    /// `optimized` mimics manual floorplanning: components pack into
    /// regions closest to the hub (spiral order). Unoptimized placement
    /// scans regions in raster order, as automatic placement without
    /// guidance tends to.
    ///
    /// Returns `None` if the design exceeds the grid's capacity.
    pub fn place(&self, units: usize, optimized: bool) -> Option<Placement> {
        if units > self.capacity() {
            return None;
        }
        // Hub region: center for optimized placement, corner for raster.
        let hub = if optimized {
            (self.rows / 2, self.cols / 2)
        } else {
            (0, 0)
        };
        let mut regions: Vec<(usize, usize)> = (0..self.rows)
            .flat_map(|r| (0..self.cols).map(move |c| (r, c)))
            .collect();
        if optimized {
            // Closest-to-hub first.
            regions.sort_by_key(|&(r, c)| r.abs_diff(hub.0) + c.abs_diff(hub.1));
        }
        let mut assignment = Vec::with_capacity(units);
        'outer: for region in regions {
            for _ in 0..self.capacity_per_region {
                assignment.push(region);
                if assignment.len() == units {
                    break 'outer;
                }
            }
        }
        let max_span = assignment
            .iter()
            .map(|&(r, c)| r.abs_diff(hub.0) + c.abs_diff(hub.1))
            .max()
            .unwrap_or(0);
        Some(Placement {
            assignment,
            max_span,
        })
    }

    /// Frequency retention factor for a placement: each region of span on
    /// the critical path costs ~7% of the clock (inter-region routing
    /// delay), floored at 60%.
    pub fn freq_factor(&self, placement: &Placement) -> f64 {
        (1.0 - 0.07 * placement.max_span as f64).max(0.6)
    }
}

/// A placement of components into clock regions.
#[derive(Debug, Clone)]
pub struct Placement {
    assignment: Vec<(usize, usize)>,
    max_span: usize,
}

impl Placement {
    /// Region of each component, in placement order.
    pub fn assignment(&self) -> &[(usize, usize)] {
        &self.assignment
    }

    /// The longest hub-to-component span, in regions.
    pub fn max_span(&self) -> usize {
        self.max_span
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grids_match_device_scale() {
        let vu = RegionGrid::for_device(&DeviceType::xcvu37p());
        let ku = RegionGrid::for_device(&DeviceType::xcku115());
        assert!(vu.capacity() > ku.capacity() / 2);
        assert_eq!(vu.capacity(), 27);
        assert_eq!(ku.capacity(), 16);
    }

    #[test]
    fn optimized_placement_shortens_span() {
        let grid = RegionGrid::new(3, 3, 3);
        for units in [5usize, 9, 18, 27] {
            let opt = grid.place(units, true).unwrap();
            let raster = grid.place(units, false).unwrap();
            assert!(
                opt.max_span() <= raster.max_span(),
                "units={units}: optimized {} vs raster {}",
                opt.max_span(),
                raster.max_span()
            );
        }
        // At high occupancy the difference is real.
        let opt = grid.place(20, true).unwrap();
        let raster = grid.place(20, false).unwrap();
        assert!(opt.max_span() < raster.max_span());
    }

    #[test]
    fn frequency_falls_with_span() {
        let grid = RegionGrid::new(3, 3, 3);
        let small = grid.place(2, true).unwrap();
        let big = grid.place(27, true).unwrap();
        assert!(grid.freq_factor(&small) >= grid.freq_factor(&big));
        assert!(grid.freq_factor(&big) >= 0.6);
        assert!(grid.freq_factor(&small) <= 1.0);
    }

    #[test]
    fn capacity_overflow_rejected() {
        let grid = RegionGrid::new(2, 2, 1);
        assert!(grid.place(4, true).is_some());
        assert!(grid.place(5, true).is_none());
    }

    #[test]
    fn assignment_covers_all_units() {
        let grid = RegionGrid::new(3, 3, 2);
        let p = grid.place(10, true).unwrap();
        assert_eq!(p.assignment().len(), 10);
    }
}

//! Spatial resource accounting.

use std::fmt;
use std::ops::{Add, AddAssign};

/// A vector of FPGA spatial resources.
///
/// All of the framework's fit/allocate decisions reduce to comparisons of
/// these vectors. Memory resources are tracked in kilobits so both 36 Kb
/// BRAM blocks and 288 Kb URAM blocks are exactly representable.
///
/// ```
/// use vfpga_fabric::ResourceVec;
///
/// let need = ResourceVec { luts: 1000, ffs: 2000, bram_kb: 72, uram_kb: 0, dsps: 8 };
/// let have = ResourceVec { luts: 1500, ffs: 2000, bram_kb: 144, uram_kb: 0, dsps: 10 };
/// assert!(need.fits_in(&have));
/// assert!(!have.fits_in(&need));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct ResourceVec {
    /// Look-up tables.
    pub luts: u64,
    /// Flip-flops (register bits).
    pub ffs: u64,
    /// Block RAM capacity in kilobits (one BRAM36 block = 36 Kb).
    pub bram_kb: u64,
    /// UltraRAM capacity in kilobits (one URAM block = 288 Kb).
    pub uram_kb: u64,
    /// DSP slices.
    pub dsps: u64,
}

impl ResourceVec {
    /// The zero resource vector.
    pub const ZERO: ResourceVec = ResourceVec {
        luts: 0,
        ffs: 0,
        bram_kb: 0,
        uram_kb: 0,
        dsps: 0,
    };

    /// Whether every component of `self` fits within `budget`.
    pub fn fits_in(&self, budget: &ResourceVec) -> bool {
        self.luts <= budget.luts
            && self.ffs <= budget.ffs
            && self.bram_kb <= budget.bram_kb
            && self.uram_kb <= budget.uram_kb
            && self.dsps <= budget.dsps
    }

    /// Component-wise subtraction; `None` if any component underflows.
    pub fn checked_sub(&self, other: &ResourceVec) -> Option<ResourceVec> {
        Some(ResourceVec {
            luts: self.luts.checked_sub(other.luts)?,
            ffs: self.ffs.checked_sub(other.ffs)?,
            bram_kb: self.bram_kb.checked_sub(other.bram_kb)?,
            uram_kb: self.uram_kb.checked_sub(other.uram_kb)?,
            dsps: self.dsps.checked_sub(other.dsps)?,
        })
    }

    /// Component-wise saturating subtraction.
    pub fn saturating_sub(&self, other: &ResourceVec) -> ResourceVec {
        ResourceVec {
            luts: self.luts.saturating_sub(other.luts),
            ffs: self.ffs.saturating_sub(other.ffs),
            bram_kb: self.bram_kb.saturating_sub(other.bram_kb),
            uram_kb: self.uram_kb.saturating_sub(other.uram_kb),
            dsps: self.dsps.saturating_sub(other.dsps),
        }
    }

    /// Multiplies every component by `n`.
    pub fn scaled(&self, n: u64) -> ResourceVec {
        ResourceVec {
            luts: self.luts * n,
            ffs: self.ffs * n,
            bram_kb: self.bram_kb * n,
            uram_kb: self.uram_kb * n,
            dsps: self.dsps * n,
        }
    }

    /// Divides every component by `n`, rounding up.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn div_ceil(&self, n: u64) -> ResourceVec {
        assert!(n > 0, "division by zero");
        ResourceVec {
            luts: self.luts.div_ceil(n),
            ffs: self.ffs.div_ceil(n),
            bram_kb: self.bram_kb.div_ceil(n),
            uram_kb: self.uram_kb.div_ceil(n),
            dsps: self.dsps.div_ceil(n),
        }
    }

    /// The utilization of `self` relative to `capacity`, as the maximum
    /// fraction across components (the binding constraint). Components with
    /// zero capacity are skipped unless the demand is nonzero, in which case
    /// the utilization is infinite.
    pub fn utilization_of(&self, capacity: &ResourceVec) -> f64 {
        fn frac(used: u64, cap: u64) -> f64 {
            if cap == 0 {
                if used == 0 {
                    0.0
                } else {
                    f64::INFINITY
                }
            } else {
                used as f64 / cap as f64
            }
        }
        frac(self.luts, capacity.luts)
            .max(frac(self.ffs, capacity.ffs))
            .max(frac(self.bram_kb, capacity.bram_kb))
            .max(frac(self.uram_kb, capacity.uram_kb))
            .max(frac(self.dsps, capacity.dsps))
    }

    /// BRAM capacity in megabits (convenience for paper-style reporting).
    pub fn bram_mb(&self) -> f64 {
        self.bram_kb as f64 / 1024.0
    }

    /// URAM capacity in megabits.
    pub fn uram_mb(&self) -> f64 {
        self.uram_kb as f64 / 1024.0
    }

    /// Whether every component is zero.
    pub fn is_zero(&self) -> bool {
        *self == ResourceVec::ZERO
    }
}

impl Add for ResourceVec {
    type Output = ResourceVec;

    fn add(self, rhs: ResourceVec) -> ResourceVec {
        ResourceVec {
            luts: self.luts + rhs.luts,
            ffs: self.ffs + rhs.ffs,
            bram_kb: self.bram_kb + rhs.bram_kb,
            uram_kb: self.uram_kb + rhs.uram_kb,
            dsps: self.dsps + rhs.dsps,
        }
    }
}

impl AddAssign for ResourceVec {
    fn add_assign(&mut self, rhs: ResourceVec) {
        *self = *self + rhs;
    }
}

impl std::iter::Sum for ResourceVec {
    fn sum<I: Iterator<Item = ResourceVec>>(iter: I) -> ResourceVec {
        iter.fold(ResourceVec::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for ResourceVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}k LUT / {}k FF / {:.1}Mb BRAM / {:.1}Mb URAM / {} DSP",
            self.luts / 1000,
            self.ffs / 1000,
            self.bram_mb(),
            self.uram_mb(),
            self.dsps
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rv(luts: u64, ffs: u64, bram: u64, uram: u64, dsps: u64) -> ResourceVec {
        ResourceVec {
            luts,
            ffs,
            bram_kb: bram,
            uram_kb: uram,
            dsps,
        }
    }

    #[test]
    fn fits_requires_every_component() {
        let need = rv(10, 10, 10, 0, 10);
        assert!(need.fits_in(&rv(10, 10, 10, 0, 10)));
        assert!(!need.fits_in(&rv(9, 10, 10, 0, 10)));
        assert!(!need.fits_in(&rv(10, 10, 10, 0, 9)));
    }

    #[test]
    fn checked_sub_underflow() {
        let a = rv(10, 10, 10, 10, 10);
        let b = rv(5, 5, 5, 5, 5);
        assert_eq!(a.checked_sub(&b), Some(b));
        assert_eq!(b.checked_sub(&a), None);
        assert_eq!(b.saturating_sub(&a), ResourceVec::ZERO);
    }

    #[test]
    fn utilization_is_binding_constraint() {
        let cap = rv(100, 100, 100, 100, 100);
        let used = rv(10, 20, 90, 5, 50);
        assert_eq!(used.utilization_of(&cap), 0.9);
    }

    #[test]
    fn utilization_of_missing_resource_is_infinite() {
        // KU115 has no URAM: demanding URAM there can never fit.
        let cap = rv(100, 100, 100, 0, 100);
        let used = rv(1, 1, 1, 1, 1);
        assert_eq!(used.utilization_of(&cap), f64::INFINITY);
        assert!(!used.fits_in(&cap));
    }

    #[test]
    fn scaled_and_div_ceil_are_inverses_when_divisible() {
        let a = rv(10, 20, 30, 40, 50);
        assert_eq!(a.scaled(3).div_ceil(3), a);
        // div_ceil rounds up.
        assert_eq!(rv(10, 0, 0, 0, 0).div_ceil(3).luts, 4);
    }

    #[test]
    fn sum_of_vectors() {
        let total: ResourceVec = [rv(1, 2, 3, 4, 5), rv(10, 20, 30, 40, 50)]
            .into_iter()
            .sum();
        assert_eq!(total, rv(11, 22, 33, 44, 55));
    }

    #[test]
    fn display_human_readable() {
        let s = format!("{}", rv(610_000, 659_000, 52_736, 23_040, 7517));
        assert!(s.contains("610k LUT"));
        assert!(s.contains("7517 DSP"));
    }
}

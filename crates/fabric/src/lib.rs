//! # vfpga-fabric — models of heterogeneous FPGA devices and clusters
//!
//! The paper evaluates on a custom-built cluster of three Xilinx Virtex
//! UltraScale+ XCVU37P FPGAs and one Kintex UltraScale XCKU115, attached to a
//! host over PCIe and to each other over a secondary bidirectional ring.
//! This crate models exactly the information the virtualization framework
//! consumes from that hardware:
//!
//! * per-device **resource capacities** (LUTs, flip-flops, BRAM, URAM, DSPs)
//!   and achievable clock frequency ([`DeviceType`], [`ResourceVec`]);
//! * the **virtual-block floorplan** each device is divided into by the
//!   underlying HS abstraction ([`DeviceType::vblock_slots`]);
//! * the **cluster topology**: which devices exist and how they are connected
//!   ([`Cluster`], [`RingTopology`]).
//!
//! Capacities use the devices' published numbers, so "does this soft block
//! fit" decisions match what the real toolchain would conclude.
//!
//! ```
//! use vfpga_fabric::{Cluster, DeviceType};
//!
//! let cluster = Cluster::paper_cluster();
//! assert_eq!(cluster.len(), 4);
//! let big = DeviceType::xcvu37p();
//! let small = DeviceType::xcku115();
//! assert!(big.resources().dsps > small.resources().dsps);
//! assert!(small.resources().uram_kb == 0); // KU115 has no URAM
//! ```

mod cluster;
mod device;
mod floorplan;
mod resources;

pub use cluster::{Cluster, DeviceId, DeviceInstance, RingTopology};
pub use device::{DeviceType, MemoryKind};
pub use floorplan::{Placement, RegionGrid};
pub use resources::ResourceVec;

//! FPGA device types and the catalog used in the paper's evaluation.

use std::fmt;
use std::sync::Arc;

use crate::ResourceVec;

/// The kind of on-chip memory a parameterized memory module binds to.
///
/// The paper's accelerator provides a parameterized memory module so that it
/// can use URAM on devices that have it (XCVU37P) and BRAM elsewhere
/// (XCKU115); the parameter is fixed when mapping onto a specific device
/// type's HS abstraction (Section 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemoryKind {
    /// 36 Kb block RAM (512 x 72 bit words).
    Bram,
    /// 288 Kb UltraRAM (4096 x 72 bit words).
    Uram,
}

impl MemoryKind {
    /// Capacity of one memory block of this kind, in kilobits.
    pub fn block_kb(self) -> u64 {
        match self {
            MemoryKind::Bram => 36,
            MemoryKind::Uram => 288,
        }
    }

    /// Capacity of one block in 72-bit words (512 for BRAM, 4096 for URAM).
    pub fn block_words(self) -> u64 {
        match self {
            MemoryKind::Bram => 512,
            MemoryKind::Uram => 4096,
        }
    }
}

impl fmt::Display for MemoryKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemoryKind::Bram => write!(f, "BRAM"),
            MemoryKind::Uram => write!(f, "URAM"),
        }
    }
}

/// A type of FPGA device (part number), its resource capacities, the clock
/// frequency our designs close timing at, and its virtual-block floorplan.
///
/// `DeviceType` values are cheap to clone (internally reference-counted) and
/// compare equal by name.
#[derive(Debug, Clone)]
pub struct DeviceType {
    inner: Arc<Inner>,
}

#[derive(Debug)]
struct Inner {
    name: String,
    resources: ResourceVec,
    freq_mhz: f64,
    vblock_slots: usize,
}

impl DeviceType {
    /// Creates a custom device type.
    ///
    /// `vblock_slots` is the number of identical virtual-block regions the
    /// underlying HS abstraction divides this device into.
    ///
    /// # Panics
    ///
    /// Panics if `freq_mhz` is not strictly positive or `vblock_slots` is
    /// zero.
    pub fn new(
        name: impl Into<String>,
        resources: ResourceVec,
        freq_mhz: f64,
        vblock_slots: usize,
    ) -> Self {
        assert!(freq_mhz > 0.0, "invalid frequency: {freq_mhz} MHz");
        assert!(vblock_slots > 0, "device must have at least one slot");
        DeviceType {
            inner: Arc::new(Inner {
                name: name.into(),
                resources,
                freq_mhz,
                vblock_slots,
            }),
        }
    }

    /// Xilinx Virtex UltraScale+ XCVU37P (published capacities).
    ///
    /// 1,303,680 LUTs / 2,607,360 FFs / 70.9 Mb BRAM (2016 blocks) /
    /// 270 Mb URAM (960 blocks) / 9024 DSPs. Our BrainWave-like designs close
    /// timing at 400 MHz on this part, matching the paper's Table 2.
    pub fn xcvu37p() -> Self {
        DeviceType::new(
            "XCVU37P",
            ResourceVec {
                luts: 1_303_680,
                ffs: 2_607_360,
                bram_kb: 2016 * 36,
                uram_kb: 960 * 288,
                dsps: 9024,
            },
            400.0,
            16,
        )
    }

    /// Xilinx Kintex UltraScale XCKU115 (published capacities).
    ///
    /// 663,360 LUTs / 1,326,720 FFs / 75.9 Mb BRAM (2160 blocks) / no URAM /
    /// 5520 DSPs. Our designs close timing at 300 MHz, matching Table 2.
    pub fn xcku115() -> Self {
        DeviceType::new(
            "XCKU115",
            ResourceVec {
                luts: 663_360,
                ffs: 1_326_720,
                bram_kb: 2160 * 36,
                uram_kb: 0,
                dsps: 5520,
            },
            300.0,
            10,
        )
    }

    /// Part name, e.g. `"XCVU37P"`.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// Total device resource capacities.
    pub fn resources(&self) -> &ResourceVec {
        &self.inner.resources
    }

    /// Clock frequency (MHz) designs close timing at on this device.
    pub fn freq_mhz(&self) -> f64 {
        self.inner.freq_mhz
    }

    /// Number of identical virtual-block slots the HS abstraction divides
    /// this device into.
    pub fn vblock_slots(&self) -> usize {
        self.inner.vblock_slots
    }

    /// Resource capacity of one virtual-block slot (total divided by slot
    /// count, rounded down component-wise).
    pub fn slot_resources(&self) -> ResourceVec {
        let n = self.inner.vblock_slots as u64;
        let r = &self.inner.resources;
        ResourceVec {
            luts: r.luts / n,
            ffs: r.ffs / n,
            bram_kb: r.bram_kb / n,
            uram_kb: r.uram_kb / n,
            dsps: r.dsps / n,
        }
    }

    /// The preferred on-chip memory kind for weight storage on this device:
    /// URAM when available, BRAM otherwise.
    pub fn preferred_memory(&self) -> MemoryKind {
        if self.inner.resources.uram_kb > 0 {
            MemoryKind::Uram
        } else {
            MemoryKind::Bram
        }
    }
}

impl PartialEq for DeviceType {
    fn eq(&self, other: &Self) -> bool {
        self.inner.name == other.inner.name
    }
}

impl Eq for DeviceType {}

impl std::hash::Hash for DeviceType {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.inner.name.hash(state);
    }
}

impl fmt::Display for DeviceType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.inner.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_capacities_match_published_numbers() {
        let vu = DeviceType::xcvu37p();
        assert_eq!(vu.resources().luts, 1_303_680);
        assert_eq!(vu.resources().dsps, 9024);
        // 70.9 Mb BRAM, 270 Mb URAM.
        assert!((vu.resources().bram_mb() - 70.9).abs() < 0.2);
        assert!((vu.resources().uram_mb() - 270.0).abs() < 0.1);

        let ku = DeviceType::xcku115();
        assert_eq!(ku.resources().luts, 663_360);
        assert_eq!(ku.resources().uram_kb, 0);
        assert!((ku.resources().bram_mb() - 75.9).abs() < 0.1);
    }

    #[test]
    fn preferred_memory_follows_uram_presence() {
        assert_eq!(DeviceType::xcvu37p().preferred_memory(), MemoryKind::Uram);
        assert_eq!(DeviceType::xcku115().preferred_memory(), MemoryKind::Bram);
    }

    #[test]
    fn slot_resources_partition_device() {
        let vu = DeviceType::xcvu37p();
        let slot = vu.slot_resources();
        let total = slot.scaled(vu.vblock_slots() as u64);
        // Rounded-down slots never oversubscribe the device.
        assert!(total.fits_in(vu.resources()));
        assert!(slot.dsps > 0 && slot.luts > 0);
    }

    #[test]
    fn equality_by_name_and_cheap_clone() {
        let a = DeviceType::xcvu37p();
        let b = a.clone();
        let c = DeviceType::xcvu37p();
        assert_eq!(a, b);
        assert_eq!(a, c);
        assert_ne!(a, DeviceType::xcku115());
    }

    #[test]
    fn memory_kind_geometry() {
        assert_eq!(MemoryKind::Bram.block_words(), 512);
        assert_eq!(MemoryKind::Uram.block_words(), 4096);
        assert_eq!(MemoryKind::Bram.block_kb(), 36);
        assert_eq!(MemoryKind::Uram.block_kb(), 288);
    }
}

//! Cluster topology: devices, PCIe attachments, and the inter-FPGA ring.

use std::fmt;

use crate::DeviceType;

/// Identifies one physical FPGA within a [`Cluster`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DeviceId(pub usize);

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fpga{}", self.0)
    }
}

/// One physical FPGA in the cluster.
#[derive(Debug, Clone)]
pub struct DeviceInstance {
    id: DeviceId,
    device_type: DeviceType,
}

impl DeviceInstance {
    /// This device's cluster-unique id.
    pub fn id(&self) -> DeviceId {
        self.id
    }

    /// This device's type (part number, resources, frequency).
    pub fn device_type(&self) -> &DeviceType {
        &self.device_type
    }
}

/// The secondary bidirectional ring network connecting the FPGAs.
///
/// The ring is described by its member count; distances are minimum hop
/// counts in either direction.
#[derive(Debug, Clone, Copy)]
pub struct RingTopology {
    nodes: usize,
}

impl RingTopology {
    /// Creates a ring over `nodes` members.
    ///
    /// # Panics
    ///
    /// Panics if `nodes == 0`.
    pub fn new(nodes: usize) -> Self {
        assert!(nodes > 0, "ring must have at least one node");
        RingTopology { nodes }
    }

    /// Number of nodes on the ring.
    pub fn len(&self) -> usize {
        self.nodes
    }

    /// Whether the ring is trivial (a single node).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Minimum number of hops between two ring positions, taking the shorter
    /// direction of the bidirectional ring.
    ///
    /// # Panics
    ///
    /// Panics if either position is out of range.
    pub fn hops(&self, a: usize, b: usize) -> usize {
        assert!(
            a < self.nodes && b < self.nodes,
            "ring position out of range"
        );
        let d = a.abs_diff(b);
        d.min(self.nodes - d)
    }

    /// Number of ring segments. Segment `i` connects node `i` to
    /// `(i + 1) % nodes`; a single-node ring has none.
    pub fn segments(&self) -> usize {
        if self.nodes > 1 {
            self.nodes
        } else {
            0
        }
    }

    /// Hop count from `a` to `b` when the segments for which `failed`
    /// returns `true` are down: the shorter surviving direction, or `None`
    /// when both directions cross a failed segment (the path is severed).
    ///
    /// # Panics
    ///
    /// Panics if either position is out of range.
    pub fn hops_avoiding(
        &self,
        a: usize,
        b: usize,
        failed: &dyn Fn(usize) -> bool,
    ) -> Option<usize> {
        assert!(
            a < self.nodes && b < self.nodes,
            "ring position out of range"
        );
        if a == b {
            return Some(0);
        }
        // Clockwise from a to b crosses segments a, a+1, ..., b-1 (mod n);
        // counter-clockwise crosses the complement.
        let cw_len = (b + self.nodes - a) % self.nodes;
        let cw_ok = (0..cw_len).all(|i| !failed((a + i) % self.nodes));
        let ccw_len = self.nodes - cw_len;
        let ccw_ok = (0..ccw_len).all(|i| !failed((b + i) % self.nodes));
        match (cw_ok, ccw_ok) {
            (true, true) => Some(cw_len.min(ccw_len)),
            (true, false) => Some(cw_len),
            (false, true) => Some(ccw_len),
            (false, false) => None,
        }
    }
}

/// A heterogeneous FPGA cluster: an ordered set of devices, each attached to
/// the host by PCIe, connected among themselves by a bidirectional ring in
/// index order.
#[derive(Debug, Clone)]
pub struct Cluster {
    devices: Vec<DeviceInstance>,
    ring: RingTopology,
}

impl Cluster {
    /// Builds a cluster from a list of device types; device `i` sits at ring
    /// position `i`.
    ///
    /// # Panics
    ///
    /// Panics if `types` is empty.
    pub fn new(types: Vec<DeviceType>) -> Self {
        assert!(
            !types.is_empty(),
            "cluster must contain at least one device"
        );
        let ring = RingTopology::new(types.len());
        let devices = types
            .into_iter()
            .enumerate()
            .map(|(i, device_type)| DeviceInstance {
                id: DeviceId(i),
                device_type,
            })
            .collect();
        Cluster { devices, ring }
    }

    /// The paper's evaluation cluster: three XCVU37P and one XCKU115.
    pub fn paper_cluster() -> Self {
        Cluster::new(vec![
            DeviceType::xcvu37p(),
            DeviceType::xcvu37p(),
            DeviceType::xcvu37p(),
            DeviceType::xcku115(),
        ])
    }

    /// Number of devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// Whether the cluster has no devices (never true; see [`Cluster::new`]).
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// The device with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn device(&self, id: DeviceId) -> &DeviceInstance {
        &self.devices[id.0]
    }

    /// Iterates over all devices in id order.
    pub fn iter(&self) -> impl Iterator<Item = &DeviceInstance> {
        self.devices.iter()
    }

    /// All device ids in order.
    pub fn device_ids(&self) -> impl Iterator<Item = DeviceId> + '_ {
        (0..self.devices.len()).map(DeviceId)
    }

    /// The ring topology connecting the devices.
    pub fn ring(&self) -> RingTopology {
        self.ring
    }

    /// Ring distance in hops between two devices.
    pub fn ring_hops(&self, a: DeviceId, b: DeviceId) -> usize {
        self.ring.hops(a.0, b.0)
    }

    /// Ring distance between two devices avoiding failed segments
    /// (`failed[i]` marks segment `i` down); `None` when severed.
    pub fn ring_hops_avoiding(&self, a: DeviceId, b: DeviceId, failed: &[bool]) -> Option<usize> {
        self.ring
            .hops_avoiding(a.0, b.0, &|s| failed.get(s).copied().unwrap_or(false))
    }

    /// Distinct device types present, in first-appearance order.
    pub fn device_types(&self) -> Vec<DeviceType> {
        let mut seen: Vec<DeviceType> = Vec::new();
        for d in &self.devices {
            if !seen.contains(d.device_type()) {
                seen.push(d.device_type().clone());
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_cluster_composition() {
        let c = Cluster::paper_cluster();
        assert_eq!(c.len(), 4);
        let types = c.device_types();
        assert_eq!(types.len(), 2);
        let vu_count = c
            .iter()
            .filter(|d| d.device_type().name() == "XCVU37P")
            .count();
        assert_eq!(vu_count, 3);
    }

    #[test]
    fn ring_hops_take_shorter_direction() {
        let ring = RingTopology::new(4);
        assert_eq!(ring.hops(0, 0), 0);
        assert_eq!(ring.hops(0, 1), 1);
        assert_eq!(ring.hops(0, 2), 2);
        assert_eq!(ring.hops(0, 3), 1); // wraps around
        assert_eq!(ring.hops(3, 1), 2);
    }

    #[test]
    fn cluster_ring_distance() {
        let c = Cluster::paper_cluster();
        assert_eq!(c.ring_hops(DeviceId(0), DeviceId(3)), 1);
        assert_eq!(c.ring_hops(DeviceId(1), DeviceId(3)), 2);
    }

    #[test]
    fn device_lookup() {
        let c = Cluster::paper_cluster();
        let d = c.device(DeviceId(3));
        assert_eq!(d.id(), DeviceId(3));
        assert_eq!(d.device_type().name(), "XCKU115");
        assert_eq!(format!("{}", d.id()), "fpga3");
    }

    #[test]
    #[should_panic(expected = "ring position out of range")]
    fn hops_out_of_range_panics() {
        RingTopology::new(2).hops(0, 2);
    }

    #[test]
    fn failover_takes_the_long_way_around() {
        let ring = RingTopology::new(4);
        let none = |_: usize| false;
        assert_eq!(ring.hops_avoiding(0, 1, &none), Some(1));
        // Segment 0 (0-1) down: 0 -> 1 must go 0-3-2-1.
        let seg0 = |s: usize| s == 0;
        assert_eq!(ring.hops_avoiding(0, 1, &seg0), Some(3));
        // The reverse query routes around the same failure.
        assert_eq!(ring.hops_avoiding(1, 0, &seg0), Some(3));
        // An unrelated pair is unaffected.
        assert_eq!(ring.hops_avoiding(2, 3, &seg0), Some(1));
        assert_eq!(ring.hops_avoiding(2, 2, &seg0), Some(0));
    }

    #[test]
    fn two_failures_can_sever_the_ring() {
        let ring = RingTopology::new(4);
        // Segments 0 (0-1) and 3 (3-0) down: node 0 is cut off.
        let cut = |s: usize| s == 0 || s == 3;
        assert_eq!(ring.hops_avoiding(0, 2, &cut), None);
        // 1 and 2 still reach each other directly.
        assert_eq!(ring.hops_avoiding(1, 2, &cut), Some(1));
        // 1 and 3 still connect the long way is direct via segment 1,2.
        assert_eq!(ring.hops_avoiding(1, 3, &cut), Some(2));
    }

    #[test]
    fn cluster_failover_distance() {
        let c = Cluster::paper_cluster();
        assert_eq!(c.ring().segments(), 4);
        let mut failed = vec![false; 4];
        assert_eq!(
            c.ring_hops_avoiding(DeviceId(0), DeviceId(3), &failed),
            Some(1)
        );
        failed[3] = true; // segment 3 connects devices 3 and 0
        assert_eq!(
            c.ring_hops_avoiding(DeviceId(0), DeviceId(3), &failed),
            Some(3)
        );
    }
}

//! Microbenchmarks of the framework's offline tools and runtime hot
//! paths: the costs Section 4.3 argues are negligible or amortizable.
//!
//! Run with `cargo bench -p vfpga-bench --bench tools`.

use vfpga_accel::{generate_rtl, leaf_resource_estimator, AcceleratorConfig};
use vfpga_bench::harness::bench;
use vfpga_bench::Catalog;
use vfpga_core::scaleout::{insert_communication, remote_window, reorder_for_overlap};
use vfpga_core::{decompose, partition, DecomposeOptions};
use vfpga_isa::encode;
use vfpga_runtime::{Policy, SystemController};
use vfpga_workload::{generate_program, RnnKind, RnnTask, SliceSpec};

/// The decomposing tool over growing accelerator sizes (Section 2.2.1).
fn bench_decompose() {
    for tiles in [4usize, 12, 21] {
        let config = AcceleratorConfig::new("bench", tiles);
        let design = generate_rtl(&config);
        let mut opts = DecomposeOptions::new(vfpga_accel::CONTROL_PATH_MODULE);
        opts.move_to_control = vfpga_accel::MOVED_TO_CONTROL
            .iter()
            .map(|s| s.to_string())
            .collect();
        opts.intra_parallelism
            .insert("dpu_array".into(), config.rows_per_cycle);
        let est = leaf_resource_estimator(&config);
        bench(&format!("decompose/{tiles}"), || {
            decompose(&design, vfpga_accel::TOP_MODULE, &opts, &est).unwrap()
        });
    }
}

/// The partitioning tool (Section 2.2.2) at increasing iteration depth.
fn bench_partition() {
    let config = AcceleratorConfig::new("bench", 21);
    let (decomp, _) = Catalog::compile_instance(&config, 1);
    for iters in [1usize, 2, 4] {
        bench(&format!("partition/{iters}"), || {
            partition(&decomp.tree, iters)
        });
    }
}

/// The scale-out instruction tools over a real GRU program.
fn bench_scaleout_tools() {
    let task = RnnTask::new(RnnKind::Gru, 1024, 64);
    let rnn = generate_program(task, SliceSpec::new(0, 2));
    let window = remote_window(&vfpga_isa::IsaConfig::default(), 0, 2).unwrap();
    bench("insert_communication/gru1024_t64", || {
        insert_communication(&rnn.program, &rnn.state_slots, &window).unwrap()
    });
    let with_comm = insert_communication(&rnn.program, &rnn.state_slots, &window).unwrap();
    bench("reorder_for_overlap/gru1024_t64", || {
        reorder_for_overlap(&with_comm, &window).unwrap()
    });
    bench("encode/gru1024_t64", || encode(&with_comm));
}

/// Runtime allocation: a deploy/release cycle through the system
/// controller (the paper argues the greedy policy's overhead is
/// negligible).
fn bench_allocation() {
    let catalog = Catalog::build();
    let mut controller =
        SystemController::new(catalog.cluster.clone(), catalog.db.clone(), Policy::Full);
    bench("deploy_release/bw-s", || {
        let d = controller.try_deploy("bw-s").unwrap().unwrap();
        controller.release(&d).unwrap();
    });
}

fn main() {
    bench_decompose();
    bench_partition();
    bench_scaleout_tools();
    bench_allocation();
}

//! Criterion microbenchmarks of the framework's offline tools and runtime
//! hot paths: the costs Section 4.3 argues are negligible or amortizable.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use vfpga_accel::{generate_rtl, leaf_resource_estimator, AcceleratorConfig};
use vfpga_bench::Catalog;
use vfpga_core::scaleout::{insert_communication, remote_window, reorder_for_overlap};
use vfpga_core::{decompose, partition, DecomposeOptions};
use vfpga_isa::encode;
use vfpga_runtime::{Policy, SystemController};
use vfpga_workload::{generate_program, RnnKind, RnnTask, SliceSpec};

/// The decomposing tool over growing accelerator sizes (Section 2.2.1).
fn bench_decompose(c: &mut Criterion) {
    let mut group = c.benchmark_group("decompose");
    for tiles in [4usize, 12, 21] {
        let config = AcceleratorConfig::new("bench", tiles);
        let design = generate_rtl(&config);
        let mut opts = DecomposeOptions::new(vfpga_accel::CONTROL_PATH_MODULE);
        opts.move_to_control = vfpga_accel::MOVED_TO_CONTROL
            .iter()
            .map(|s| s.to_string())
            .collect();
        opts.intra_parallelism
            .insert("dpu_array".into(), config.rows_per_cycle);
        let est = leaf_resource_estimator(&config);
        group.bench_with_input(BenchmarkId::from_parameter(tiles), &tiles, |b, _| {
            b.iter(|| decompose(&design, vfpga_accel::TOP_MODULE, &opts, &est).unwrap())
        });
    }
    group.finish();
}

/// The partitioning tool (Section 2.2.2) at increasing iteration depth.
fn bench_partition(c: &mut Criterion) {
    let config = AcceleratorConfig::new("bench", 21);
    let (decomp, _) = Catalog::compile_instance(&config, 1);
    let mut group = c.benchmark_group("partition");
    for iters in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(iters), &iters, |b, &i| {
            b.iter(|| partition(&decomp.tree, i))
        });
    }
    group.finish();
}

/// The scale-out instruction tools over a real GRU program.
fn bench_scaleout_tools(c: &mut Criterion) {
    let task = RnnTask::new(RnnKind::Gru, 1024, 64);
    let rnn = generate_program(task, SliceSpec::new(0, 2));
    let window = remote_window(&vfpga_isa::IsaConfig::default(), 0, 2);
    c.bench_function("insert_communication/gru1024_t64", |b| {
        b.iter(|| insert_communication(&rnn.program, &rnn.state_slots, &window).unwrap())
    });
    let with_comm = insert_communication(&rnn.program, &rnn.state_slots, &window).unwrap();
    c.bench_function("reorder_for_overlap/gru1024_t64", |b| {
        b.iter(|| reorder_for_overlap(&with_comm, &window).unwrap())
    });
    c.bench_function("encode/gru1024_t64", |b| b.iter(|| encode(&with_comm)));
}

/// Runtime allocation: a deploy/release cycle through the system
/// controller (the paper argues the greedy policy's overhead is
/// negligible).
fn bench_allocation(c: &mut Criterion) {
    let catalog = Catalog::build();
    let mut controller =
        SystemController::new(catalog.cluster.clone(), catalog.db.clone(), Policy::Full);
    c.bench_function("deploy_release/bw-s", |b| {
        b.iter(|| {
            let d = controller.try_deploy("bw-s").unwrap().unwrap();
            controller.release(&d).unwrap();
        })
    });
}

criterion_group!(
    benches,
    bench_decompose,
    bench_partition,
    bench_scaleout_tools,
    bench_allocation
);
criterion_main!(benches);

//! Criterion benchmarks of the experiment kernels themselves: one bench
//! per table/figure of the evaluation (the `repro` binary prints the
//! results; these track the cost of regenerating them).

use criterion::{criterion_group, criterion_main, Criterion};

use vfpga_bench::{fig11, fig12, tables, Catalog};
use vfpga_runtime::Policy;
use vfpga_sim::SimTime;
use vfpga_workload::{RnnKind, RnnTask};

fn bench_table2(c: &mut Criterion) {
    c.bench_function("table2/implementations", |b| b.iter(tables::table2));
}

fn bench_table3(c: &mut Criterion) {
    c.bench_function("table3/virtual_blocks", |b| b.iter(tables::table3));
}

fn bench_table4(c: &mut Criterion) {
    let catalog = Catalog::build();
    c.bench_function("table4/latency_rows", |b| b.iter(|| tables::table4(&catalog)));
}

fn bench_fig11_point(c: &mut Criterion) {
    let task = RnnTask::new(RnnKind::Lstm, 1024, 8);
    let added = [SimTime::from_ns(500.0)];
    c.bench_function("fig11/one_point_lstm1024", |b| {
        b.iter(|| fig11::sweep(task, 2, &added, true))
    });
}

fn bench_fig12_set(c: &mut Criterion) {
    let catalog = Catalog::build();
    c.bench_function("fig12/one_set_full_policy", |b| {
        b.iter(|| fig12::run_set(&catalog, 7, Policy::Full, 40, 1))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_table2, bench_table3, bench_table4, bench_fig11_point, bench_fig12_set
}
criterion_main!(benches);

//! Benchmarks of the experiment kernels themselves: one bench per
//! table/figure of the evaluation (the `repro` binary prints the results;
//! these track the cost of regenerating them).
//!
//! Run with `cargo bench -p vfpga-bench --bench experiments`.

use vfpga_bench::harness::bench;
use vfpga_bench::{fig11, fig12, tables, Catalog};
use vfpga_runtime::Policy;
use vfpga_sim::SimTime;
use vfpga_workload::{RnnKind, RnnTask};

fn main() {
    bench("table2/implementations", tables::table2);
    bench("table3/virtual_blocks", tables::table3);

    let catalog = Catalog::build();
    bench("table4/latency_rows", || tables::table4(&catalog));

    let task = RnnTask::new(RnnKind::Lstm, 1024, 8);
    let added = [SimTime::from_ns(500.0)];
    bench("fig11/one_point_lstm1024", || {
        fig11::sweep(task, 2, &added, true)
    });

    bench("fig12/one_set_full_policy", || {
        fig12::run_set(&catalog, 7, Policy::Full, 40, 1)
    });
}

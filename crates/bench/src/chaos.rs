//! Chaos scenario: a Fig. 12-style workload served while a seeded
//! [`FaultPlan`] fails and recovers devices under it.
//!
//! The scenario drives the full fault/recovery stack end to end: the
//! fault plan schedules fail/recover waves and flaky partial
//! reconfiguration, the low-level controller evicts allocations on failed
//! devices, and the system controller migrates interrupted deployments to
//! surviving devices (scaling down to deeper partition variants when the
//! original footprint no longer fits). Everything is seeded, so a chaos
//! run is exactly reproducible: same seed, byte-identical report.

use vfpga_runtime::{
    run_cloud_sim_faulted, CloudReport, Policy, RecoveryPolicy, SystemController,
    DEFAULT_TRACE_CAPACITY,
};
use vfpga_sim::{FaultPlan, FaultPlanParams, Json, SimTime};
use vfpga_workload::{generate_workload, Composition};

use crate::catalog::Catalog;

/// Parameters of one chaos run.
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    /// Tasks in the workload set.
    pub tasks: usize,
    /// Seed for both the workload and the fault plan.
    pub seed: u64,
    /// Per-device mean time to failure.
    pub mttf: SimTime,
    /// Per-device mean time to recovery.
    pub mttr: SimTime,
    /// Probability that an otherwise-valid partial reconfiguration fails
    /// transiently.
    pub configure_failure_prob: f64,
    /// Migration retry/backoff policy.
    pub recovery: RecoveryPolicy,
    /// Whether the controller's capacity-epoch feasibility cache is on
    /// (the default). The cache replays capacity rejections, so a run is
    /// byte-identical either way — the A/B determinism suite pins that —
    /// and this knob exists exactly so that suite (and the admission
    /// bench) can measure the uncached path.
    pub feasibility_cache: bool,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            tasks: 120,
            seed: 2024,
            mttf: SimTime::from_ms(1.5),
            mttr: SimTime::from_ms(0.4),
            configure_failure_prob: 0.05,
            recovery: RecoveryPolicy::default(),
            feasibility_cache: true,
        }
    }
}

/// One chaos run: the plan that was injected and the resulting report.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// The seed the run was generated from.
    pub seed: u64,
    /// The injected fault plan.
    pub plan: FaultPlan,
    /// The instrumented simulation report (recovery accounting included).
    pub report: CloudReport,
}

impl ChaosReport {
    /// Whether the run exercised the recovery machinery: at least one
    /// deployment was interrupted and at least one migration completed.
    pub fn exercised_recovery(&self) -> bool {
        self.report.interrupted > 0
            && self
                .report
                .trace
                .iter()
                .any(|e| e.kind.label() == "migration_completed")
    }

    /// Cross-layer invariants every chaos run must satisfy, regardless of
    /// seed. Returns the first violation as an error message.
    pub fn check_invariants(&self) -> Result<(), String> {
        if !self.report.accounts_for_all_arrivals() {
            return Err(format!(
                "accounting broken: {} completed + {} never deployed + {} lost != {}",
                self.report.completed,
                self.report.never_deployed,
                self.report.lost,
                self.report.arrivals
            ));
        }
        if !(0.0..=1.0).contains(&self.report.peak_occupancy) {
            return Err(format!(
                "peak occupancy {} outside [0, 1]",
                self.report.peak_occupancy
            ));
        }
        if self.report.migrated + self.report.lost > self.report.interrupted {
            return Err(format!(
                "{} migrated + {} lost exceed {} interruptions",
                self.report.migrated, self.report.lost, self.report.interrupted
            ));
        }
        Ok(())
    }

    /// Serializes the run: seed, plan, and full report.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("seed", self.seed)
            .with("plan", self.plan.to_json())
            .with("report", self.report.to_json())
    }
}

/// Runs the chaos scenario: workload set 5 (the mixed composition) under
/// the full policy on the paper cluster, with the configured fault plan
/// injected.
pub fn run(catalog: &Catalog, config: &ChaosConfig) -> ChaosReport {
    let composition = Composition::TABLE1[4];
    let arrivals = generate_workload(
        composition,
        config.tasks,
        SimTime::from_us(50.0),
        config.seed,
    );
    // Failures keep arriving for 1.5x the expected workload span so the
    // queue-drain tail is exposed to faults too.
    let horizon = SimTime::from_us(50.0 * config.tasks as f64 * 1.5);
    let plan = FaultPlan::generate(
        FaultPlanParams {
            mttf: config.mttf,
            mttr: config.mttr,
            configure_failure_prob: config.configure_failure_prob,
            horizon,
        },
        catalog.cluster.len(),
        config.seed,
    );
    let mut controller =
        SystemController::new(catalog.cluster.clone(), catalog.db.clone(), Policy::Full);
    controller.set_feasibility_cache(config.feasibility_cache);
    let report = run_cloud_sim_faulted(
        &mut controller,
        &arrivals,
        &|task| catalog.instance_for(task),
        &|task, deployment| catalog.service_time(task, deployment, Policy::Full),
        &plan,
        config.recovery,
        DEFAULT_TRACE_CAPACITY,
    )
    .expect("chaos simulation completes");
    ChaosReport {
        seed: config.seed,
        plan,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_chaos_run_interrupts_and_recovers() {
        let catalog = Catalog::build();
        let chaos = run(&catalog, &ChaosConfig::default());
        chaos.check_invariants().unwrap();
        assert!(chaos.report.device_failures > 0);
        assert!(
            chaos.exercised_recovery(),
            "default config must interrupt and migrate: {} interrupted, {} migrated",
            chaos.report.interrupted,
            chaos.report.migrated
        );
    }

    #[test]
    fn chaos_runs_are_reproducible() {
        let catalog = Catalog::build();
        let cfg = ChaosConfig {
            tasks: 60,
            seed: 7,
            ..ChaosConfig::default()
        };
        let a = run(&catalog, &cfg).to_json().pretty();
        let b = run(&catalog, &cfg).to_json().pretty();
        assert_eq!(a, b);
    }
}

//! Code density: the AS ISA's compactness advantage.
//!
//! The paper motivates application-specific ISAs with the observation that
//! a customized instruction set "reduces the storage/control overhead by
//! generating more compact code" (Section 1). This experiment quantifies
//! it for the benchmark programs: the AS ISA encodes a whole
//! matrix-vector product or vector operation in a handful of bytes, while
//! a general-purpose SIMD ISA must issue one fixed-width instruction per
//! vector-register-sized chunk of work.

use vfpga_isa::{encoded_size, Instruction};
use vfpga_workload::{generate_program, table4_tasks, RnnTask, SliceSpec};

/// The general-purpose comparison ISA: 512-bit vector registers (32 f16
/// lanes) with fixed 16-byte instructions, AVX-512-class.
const GP_LANES: usize = 32;
const GP_INST_BYTES: u64 = 16;

/// Code sizes of one benchmark under both ISAs.
#[derive(Debug, Clone, Copy)]
pub struct DensityRow {
    /// The benchmark layer.
    pub task: RnnTask,
    /// AS ISA program size in bytes (compact encoding).
    pub as_isa_bytes: u64,
    /// Estimated general-purpose SIMD program size in bytes.
    pub gp_bytes: u64,
}

impl DensityRow {
    /// How many times smaller the AS ISA program is.
    pub fn ratio(&self) -> f64 {
        self.gp_bytes as f64 / self.as_isa_bytes as f64
    }
}

/// Estimates the general-purpose instruction count of one AS instruction:
/// the number of vector-register-sized operations a conventional SIMD core
/// needs for the same work (loads/stores per chunk, one FMA per matrix
/// element chunk, scalar activation calls per chunk).
fn gp_instructions(inst: &Instruction, task: &RnnTask) -> u64 {
    let h = task.hidden;
    let chunks = h.div_ceil(GP_LANES) as u64;
    match inst {
        Instruction::MvMul { .. } => {
            // rows x (cols / lanes) FMAs plus a horizontal reduce per row.
            (h as u64) * (chunks + 1)
        }
        Instruction::VLoad { .. } | Instruction::VStore { .. } => chunks,
        Instruction::VAdd { .. }
        | Instruction::VSub { .. }
        | Instruction::VMul { .. }
        | Instruction::VMov { .. }
        | Instruction::VZero { .. }
        | Instruction::VOne { .. } => chunks,
        // Transcendentals: no single-instruction sigmoid/tanh; ~8 ops per
        // chunk for a polynomial approximation.
        Instruction::Sigmoid { .. } | Instruction::Tanh { .. } | Instruction::Relu { .. } => {
            8 * chunks
        }
        Instruction::Nop | Instruction::Halt => 1,
    }
}

/// Runs the density comparison over the Table 4 benchmarks.
pub fn compare() -> Vec<DensityRow> {
    table4_tasks()
        .into_iter()
        .map(|task| {
            let rnn = generate_program(task, SliceSpec::FULL);
            let as_isa_bytes = encoded_size(&rnn.program) as u64;
            let gp_bytes: u64 = rnn
                .program
                .iter()
                .map(|i| gp_instructions(i, &task) * GP_INST_BYTES)
                .sum();
            DensityRow {
                task,
                as_isa_bytes,
                gp_bytes,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn as_isa_is_orders_of_magnitude_denser() {
        let rows = compare();
        assert_eq!(rows.len(), 7);
        for r in &rows {
            assert!(
                r.ratio() > 100.0,
                "{}: ratio {:.0} should be >100x",
                r.task,
                r.ratio()
            );
            // And the absolute AS program must fit an on-chip instruction
            // buffer (the Section 3/4.4 claim): a few hundred KB at most.
            assert!(
                r.as_isa_bytes < 1_500_000,
                "{}: {} bytes",
                r.task,
                r.as_isa_bytes
            );
        }
        // Density grows with model width (more work per instruction).
        let small = rows.iter().find(|r| r.task.hidden == 256).unwrap();
        let large = rows.iter().find(|r| r.task.hidden == 1536).unwrap();
        assert!(large.ratio() > small.ratio());
    }
}

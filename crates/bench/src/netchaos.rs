//! Network-chaos scenario: a Fig. 12-style workload served while a seeded
//! [`FaultPlan`] fails devices *and* ring segments under it.
//!
//! Where the [`chaos`](crate::chaos) scenario drives the device
//! fault/recovery stack, this one adds the interconnect fault model on
//! top: link waves degrade or fail ring segments, degraded segments
//! corrupt in-flight transfers (retransmitted under a bounded backoff
//! budget), failed segments force multi-FPGA deployments to re-route the
//! other way around the bidirectional ring — or, when every path between
//! their units is severed, into the same migration machinery device
//! failures use. Everything is seeded, so a run is exactly reproducible:
//! same seed, byte-identical report.

use vfpga_runtime::{run_cloud_sim_faulted, CloudReport, Policy, RecoveryPolicy, SystemController};
use vfpga_sim::{FaultPlan, FaultPlanParams, Json, LinkFaultParams, SimTime, TraceEventKind};
use vfpga_workload::{generate_workload, Composition};

use crate::catalog::Catalog;

/// Trace-ring capacity for network-chaos runs. Link waves add
/// per-transfer `Retransmit` events on top of the scheduler lifecycle, and
/// the byte-reconciliation gate needs *every* one retained — so the ring
/// is sized well past what the default workload emits.
pub const NETCHAOS_TRACE_CAPACITY: usize = 32_768;

/// Parameters of one network-chaos run.
#[derive(Debug, Clone, Copy)]
pub struct NetChaosConfig {
    /// Tasks in the workload set.
    pub tasks: usize,
    /// Seed for the workload, the device plan, and the link plan.
    pub seed: u64,
    /// Per-device mean time to failure.
    pub mttf: SimTime,
    /// Per-device mean time to recovery.
    pub mttr: SimTime,
    /// Probability that an otherwise-valid partial reconfiguration fails
    /// transiently.
    pub configure_failure_prob: f64,
    /// Per-link mean time to a fault wave.
    pub link_mttf: SimTime,
    /// Per-link mean time to repair.
    pub link_mttr: SimTime,
    /// Fraction of link waves that degrade (vs fail) the segment.
    pub degraded_fraction: f64,
    /// Per-transfer corruption probability while link faults are active.
    pub corruption_prob: f64,
    /// Retransmission budget per corrupted transfer.
    pub max_retransmits: u32,
    /// Migration retry/backoff policy.
    pub recovery: RecoveryPolicy,
}

impl Default for NetChaosConfig {
    fn default() -> Self {
        NetChaosConfig {
            tasks: 120,
            seed: 2024,
            // Device faults stay on, but milder than the device-chaos
            // scenario: the interconnect is the protagonist here.
            mttf: SimTime::from_ms(3.0),
            mttr: SimTime::from_ms(0.4),
            configure_failure_prob: 0.02,
            link_mttf: SimTime::from_ms(1.0),
            link_mttr: SimTime::from_ms(0.35),
            degraded_fraction: 0.5,
            corruption_prob: 0.35,
            max_retransmits: 3,
            recovery: RecoveryPolicy::default(),
        }
    }
}

/// One network-chaos run: the plan that was injected and the resulting
/// report.
#[derive(Debug, Clone)]
pub struct NetChaosReport {
    /// The seed the run was generated from.
    pub seed: u64,
    /// The injected fault plan (device and link schedules).
    pub plan: FaultPlan,
    /// The instrumented simulation report (link accounting included).
    pub report: CloudReport,
}

impl NetChaosReport {
    /// Whether the run exercised the interconnect fault machinery end to
    /// end: segments failed, at least one deployment re-routed around a
    /// dead segment, and at least one transfer was retransmitted.
    pub fn exercised_link_faults(&self) -> bool {
        self.report.link_failures > 0
            && self.report.link_reroutes > 0
            && self.report.link_retransmits > 0
    }

    /// Sum of the bytes carried by the trace's `Retransmit` events.
    pub fn traced_retransmit_bytes(&self) -> u64 {
        self.report
            .trace
            .iter()
            .filter_map(|e| match &e.kind {
                TraceEventKind::Retransmit { bytes, .. } => Some(*bytes),
                _ => None,
            })
            .sum()
    }

    /// Cross-layer invariants every network-chaos run must satisfy,
    /// regardless of seed. Returns the first violation as an error
    /// message.
    pub fn check_invariants(&self) -> Result<(), String> {
        if !self.report.accounts_for_all_arrivals() {
            return Err(format!(
                "accounting broken: {} completed + {} never deployed + {} lost != {}",
                self.report.completed,
                self.report.never_deployed,
                self.report.lost,
                self.report.arrivals
            ));
        }
        if !(0.0..=1.0).contains(&self.report.peak_occupancy) {
            return Err(format!(
                "peak occupancy {} outside [0, 1]",
                self.report.peak_occupancy
            ));
        }
        if self.report.migrated + self.report.lost > self.report.interrupted {
            return Err(format!(
                "{} migrated + {} lost exceed {} interruptions",
                self.report.migrated, self.report.lost, self.report.interrupted
            ));
        }
        if self.report.link_severed > self.report.interrupted {
            return Err(format!(
                "{} link severs exceed {} interruptions",
                self.report.link_severed, self.report.interrupted
            ));
        }
        if self.report.trace.dropped() > 0 {
            return Err(format!(
                "trace ring dropped {} events; the byte reconciliation needs all of them",
                self.report.trace.dropped()
            ));
        }
        let traced = self.traced_retransmit_bytes();
        if traced != self.report.link_retransmit_bytes {
            return Err(format!(
                "retransmit bytes disagree: report says {}, trace events sum to {}",
                self.report.link_retransmit_bytes, traced
            ));
        }
        Ok(())
    }

    /// Serializes the run: seed, plan, and full report.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("seed", self.seed)
            .with("plan", self.plan.to_json())
            .with("report", self.report.to_json())
    }
}

/// Runs the network-chaos scenario: workload set 5 (the mixed composition)
/// under the full policy on the paper cluster, with device and link fault
/// schedules injected.
pub fn run(catalog: &Catalog, config: &NetChaosConfig) -> NetChaosReport {
    let composition = Composition::TABLE1[4];
    let arrivals = generate_workload(
        composition,
        config.tasks,
        SimTime::from_us(50.0),
        config.seed,
    );
    // Faults keep arriving for 1.5x the expected workload span so the
    // queue-drain tail is exposed too.
    let horizon = SimTime::from_us(50.0 * config.tasks as f64 * 1.5);
    let plan = FaultPlan::generate(
        FaultPlanParams {
            mttf: config.mttf,
            mttr: config.mttr,
            configure_failure_prob: config.configure_failure_prob,
            horizon,
        },
        catalog.cluster.len(),
        config.seed,
    )
    .with_link_faults(
        LinkFaultParams {
            mttf: config.link_mttf,
            mttr: config.link_mttr,
            degraded_fraction: config.degraded_fraction,
            bandwidth_factor: 0.25,
            extra_latency: SimTime::from_ns(250.0),
            corruption_prob: config.corruption_prob,
            max_retransmits: config.max_retransmits,
            retransmit_backoff: SimTime::from_ns(200.0),
            horizon,
        },
        catalog.cluster.ring().segments(),
    );
    let mut controller =
        SystemController::new(catalog.cluster.clone(), catalog.db.clone(), Policy::Full);
    let report = run_cloud_sim_faulted(
        &mut controller,
        &arrivals,
        &|task| catalog.instance_for(task),
        &|task, deployment| catalog.service_time(task, deployment, Policy::Full),
        &plan,
        config.recovery,
        NETCHAOS_TRACE_CAPACITY,
    )
    .expect("network-chaos simulation completes");
    NetChaosReport {
        seed: config.seed,
        plan,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_netchaos_run_reroutes_and_retransmits() {
        let catalog = Catalog::build();
        let chaos = run(&catalog, &NetChaosConfig::default());
        chaos.check_invariants().unwrap();
        assert!(chaos.plan.link_failures() > 0, "plan must fail segments");
        assert!(
            chaos.exercised_link_faults(),
            "default config must fail, reroute, and retransmit: {} failures, {} reroutes, {} retransmits",
            chaos.report.link_failures,
            chaos.report.link_reroutes,
            chaos.report.link_retransmits
        );
        assert!(chaos.report.link_degraded_time > SimTime::ZERO);
    }

    #[test]
    fn netchaos_runs_are_reproducible() {
        let catalog = Catalog::build();
        let cfg = NetChaosConfig {
            tasks: 60,
            seed: 7,
            ..NetChaosConfig::default()
        };
        let a = run(&catalog, &cfg).to_json().pretty();
        let b = run(&catalog, &cfg).to_json().pretty();
        assert_eq!(a, b);
    }
}

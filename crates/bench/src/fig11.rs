//! Regeneration of Fig. 11: inference latency versus added inter-FPGA
//! communication latency for two-FPGA deployments.

use vfpga_accel::{AcceleratorConfig, CycleSim, TimingModel};
use vfpga_core::scaleout::{insert_communication, remote_window, reorder_for_overlap};
use vfpga_runtime::co_simulate_timing;
use vfpga_sim::{Json, SimTime};
use vfpga_workload::{generate_program, RnnTask, SliceSpec};

use crate::catalog::{ring_link, storage_bfp};

/// One point of a Fig. 11 curve.
#[derive(Debug, Clone, Copy)]
pub struct Fig11Point {
    /// Latency artificially added to the inter-FPGA link (the paper's
    /// programmable counter+FIFO module).
    pub added_latency: SimTime,
    /// Resulting inference latency.
    pub latency: SimTime,
}

/// One Fig. 11 series: a task deployed on two FPGAs, with or without the
/// overlap optimization.
#[derive(Debug, Clone)]
pub struct Fig11Series {
    /// The benchmark layer.
    pub task: RnnTask,
    /// Whether the instruction-reordering overlap optimization is applied.
    pub optimized: bool,
    /// The swept points.
    pub points: Vec<Fig11Point>,
    /// Single-FPGA reference latency of the same (full-size) accelerator.
    pub single_fpga: SimTime,
}

impl Fig11Series {
    /// The largest added latency (if any) that is fully hidden: the
    /// latency stays within `tolerance` of the zero-added-latency point.
    pub fn hidden_up_to(&self, tolerance: f64) -> Option<SimTime> {
        let base = self.points.first()?.latency.as_secs();
        self.points
            .iter()
            .take_while(|p| p.latency.as_secs() <= base * (1.0 + tolerance))
            .last()
            .map(|p| p.added_latency)
    }

    /// Serializes the series: points as `[added_ns, latency_ms]` pairs.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("task", self.task.to_string())
            .with("optimized", self.optimized)
            .with("single_fpga_ms", self.single_fpga.as_ms())
            .with(
                "hidden_up_to_ns",
                self.hidden_up_to(0.02).map(|t| t.as_ns()),
            )
            .with(
                "points",
                Json::Arr(
                    self.points
                        .iter()
                        .map(|p| {
                            Json::Arr(vec![
                                Json::from(p.added_latency.as_ns()),
                                Json::from(p.latency.as_ms()),
                            ])
                        })
                        .collect(),
                ),
            )
    }
}

/// The scaled-down accelerator configuration used for one machine of a
/// two-FPGA deployment of `task`: half the tiles of the full-size
/// accelerator serving that model.
fn scaled_config(task: &RnnTask, machines: usize) -> AcceleratorConfig {
    // Instances are sized to the model's demand, like the paper's family
    // of accelerator instances: small models get small accelerators (their
    // weights fit easily and latency targets are already met), while the
    // h=2560 GRU needs the full 21-tile design for weight capacity. This
    // is what produces the paper's observation that the large model has
    // *shorter* per-step computation relative to its (longer) transfers.
    let full_tiles = match task.size_class() {
        vfpga_workload::SizeClass::Small => 2,
        vfpga_workload::SizeClass::Medium => 8,
        vfpga_workload::SizeClass::Large => 21,
    };
    AcceleratorConfig::new("fig11", full_tiles)
        .with_bfp(storage_bfp())
        .scaled_down(machines)
}

/// Simulates `task` on `machines` cooperating FPGAs at each added link
/// latency, with or without the overlap optimization (instruction
/// reordering). Both FPGAs are XCVU37P-class (400 MHz), as in the paper's
/// setup.
pub fn sweep(task: RnnTask, machines: usize, added: &[SimTime], optimized: bool) -> Fig11Series {
    let cfg = scaled_config(&task, machines);
    let mut points = Vec::with_capacity(added.len());
    for &added_latency in added {
        let mut sims: Vec<CycleSim> = (0..machines)
            .map(|m| {
                let rnn = generate_program(task, SliceSpec::new(m, machines));
                let window =
                    remote_window(&cfg.isa, m, machines).expect("ISA holds the sync window");
                let mut program = insert_communication(&rnn.program, &rnn.state_slots, &window)
                    .expect("state slots fit channels");
                if optimized {
                    program =
                        reorder_for_overlap(&program, &window).expect("reorder preserves deps");
                }
                let model = TimingModel::for_config(&cfg, 400.0);
                let mut sim = CycleSim::new(model, &program, rnn.mat_shapes, rnn.dram_lens);
                sim.set_remote_window(Some(window));
                sim
            })
            .collect();
        let result = co_simulate_timing(&mut sims, ring_link(), added_latency)
            .expect("co-simulation completes");
        points.push(Fig11Point {
            added_latency,
            latency: result.makespan,
        });
    }

    // Single-FPGA reference: the full-size accelerator, no communication.
    let full =
        AcceleratorConfig::new("fig11-full", scaled_config(&task, 1).tiles).with_bfp(storage_bfp());
    let rnn = generate_program(task, SliceSpec::FULL);
    let mut single = CycleSim::new(
        TimingModel::for_config(&full, 400.0),
        &rnn.program,
        rnn.mat_shapes,
        rnn.dram_lens,
    );
    let single_fpga = single.run_local();

    Fig11Series {
        task,
        optimized,
        points,
        single_fpga,
    }
}

/// The added-latency sweep: 0 to 2 microseconds in 200 ns steps (the
/// paper sweeps to ~1 us; we extend the range so the small GRU's
/// crossover point is visible inside the plot).
pub fn default_sweep_points() -> Vec<SimTime> {
    (0..=10)
        .map(|i| SimTime::from_ns(i as f64 * 200.0))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vfpga_workload::RnnKind;

    fn short(kind: RnnKind, hidden: usize) -> RnnTask {
        RnnTask::new(kind, hidden, 6)
    }

    #[test]
    fn latency_is_monotone_in_added_latency() {
        let added = default_sweep_points();
        let series = sweep(short(RnnKind::Gru, 2560), 2, &added, true);
        for w in series.points.windows(2) {
            assert!(w[1].latency >= w[0].latency);
        }
    }

    #[test]
    fn hiding_order_matches_paper() {
        // Fig 11: the LSTM hides the most added latency, the small GRU
        // hides a bounded amount, the large GRU effectively none.
        let added = default_sweep_points();
        let lstm = sweep(short(RnnKind::Lstm, 1024), 2, &added, true);
        let gru_small = sweep(short(RnnKind::Gru, 1024), 2, &added, true);
        let gru_large = sweep(short(RnnKind::Gru, 2560), 2, &added, true);
        let hidden = |s: &Fig11Series| s.hidden_up_to(0.02).unwrap_or(SimTime::ZERO);
        let (l, gs, gl) = (hidden(&lstm), hidden(&gru_small), hidden(&gru_large));
        assert!(l > gs, "lstm hides {l}, small gru hides {gs}");
        assert!(gs > gl, "small gru hides {gs}, large gru hides {gl}");
        assert!(
            gl <= SimTime::from_ns(200.0),
            "large gru should hide ~none, hides {gl}"
        );
        // The small GRU's crossover sits well inside the sweep (paper:
        // ~0.6 us).
        assert!(gs >= SimTime::from_ns(400.0) && gs <= SimTime::from_ns(1600.0));
    }

    #[test]
    fn reordering_improves_or_matches_latency() {
        let added = [SimTime::from_ns(600.0)];
        for task in [short(RnnKind::Lstm, 1024), short(RnnKind::Gru, 1024)] {
            let opt = sweep(task, 2, &added, true);
            let plain = sweep(task, 2, &added, false);
            assert!(
                opt.points[0].latency <= plain.points[0].latency,
                "{task}: optimized {} vs plain {}",
                opt.points[0].latency,
                plain.points[0].latency
            );
        }
    }
}

//! Regenerates every table and figure of the paper's evaluation section.
//!
//! ```text
//! cargo run --release -p vfpga-bench --bin repro -- [table2|table3|table4|fig11|fig12|overhead|ablations|density|isolation|chaos|trace|bench|elastic|netchaos|monitor|fuzz|all] [--json PATH] [--seed N] [--cases N] [--oracle NAME] [--replay PATH]
//! ```
//!
//! Runs covering Fig. 11, Fig. 12, or the chaos scenario also write a
//! machine-readable metrics artifact (per-run throughput, latency
//! percentiles, occupancy time series, rejection-reason counts, recovery
//! accounting) to `target/repro-metrics.json`, or to the path given with
//! `--json`. The artifact root carries a `schema_version` so downstream
//! consumers can detect layout changes; `--seed` re-seeds the chaos fault
//! plan (default 2024).
//!
//! `trace` (not part of `all`) runs the span-instrumented chaos scenario
//! and writes `target/repro-trace.json`: the critical-path latency
//! decomposition plus a Chrome trace-event array — open the file directly
//! in Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`. A
//! Prometheus text exposition of the run's metrics lands next to it as
//! `.prom`. Both artifacts are byte-identical across same-seed runs.
//!
//! `bench` (not part of `all` either) runs the saturated-admission
//! benchmark — the shipped fast path vs. the cache-and-gating-off
//! baseline over identical 10k-task inputs — writes
//! `target/BENCH_admission.json`, and exits non-zero if outcomes
//! diverge, the probe reduction falls under 3x, or
//! `deploy_attempts_per_admission` exceeds the checked-in ceiling.
//!
//! `elastic` (also opt-in) runs the elastic-reprovisioning A/B — the
//! scheduler with [`vfpga_runtime::ElasticityPolicy::FULL`] vs. the
//! plain scheduler over an identical bursty 10k-task workload — writes
//! `target/BENCH_elastic.json`, and exits non-zero unless p95 latency
//! strictly improves, both levers fire, and every outcome invariant
//! holds in both modes.
//!
//! `netchaos` (also opt-in) runs the network-chaos scenario — the chaos
//! workload under seeded device *and* ring-segment fault waves — writes
//! `target/repro-netchaos.json`, and exits non-zero unless every
//! cross-layer invariant holds (accounting, trace completeness, the
//! report's retransmitted-byte counter reconciling with the trace's
//! `retransmit` events) and the run actually failed segments, re-routed
//! around them, and retransmitted corrupted transfers.
//!
//! `fuzz` (also opt-in) runs the deterministic differential-fuzzing
//! subsystem: `--cases N` structure-aware cases per cross-layer oracle
//! (default 200), all derived from `--seed`, writing a byte-deterministic
//! summary to `target/repro-fuzz.json` and shrunk reproducers for any
//! failures to `target/fuzz-failures/<oracle>-<seed>.json`. `--oracle
//! NAME` restricts the run to one oracle; `--replay PATH` re-runs a
//! saved reproducer through its oracle instead of fuzzing and exits
//! non-zero while the bug it captures still reproduces.
//!
//! `monitor` (also opt-in) runs the SLO-monitoring scenario — a
//! self-calibrating chaos+elastic run with the streaming-telemetry
//! monitor collecting windowed rollups, mergeable latency sketches, and
//! multi-window burn-rate alerts — writes `target/repro-monitor.json`
//! (with a Prometheus rollup exposition next to it as `.prom`), runs the
//! whole scenario twice, and exits non-zero unless every alert fired
//! inside a planned fault window, at least one alert resolved after the
//! waves passed, the sketch quantiles match the exact percentiles within
//! the configured relative error, and the two runs' artifacts are
//! byte-identical.

use vfpga_bench::{
    ablations, admission, catalog::Catalog, chaos, density, elastic, fig11, fig12, isolation,
    monitor, netchaos, overhead, tables,
};
use vfpga_sim::{chrome_trace_events, prometheus_text, Json, SimTime, SpanTracer};
use vfpga_workload::fig11_tasks;

/// Default location of the metrics artifact.
const DEFAULT_ARTIFACT: &str = "target/repro-metrics.json";

/// Default location of the trace artifact (the `trace` experiment).
const DEFAULT_TRACE_ARTIFACT: &str = "target/repro-trace.json";

/// Default location of the admission-bench artifact (the `bench`
/// experiment).
const DEFAULT_BENCH_ARTIFACT: &str = "target/BENCH_admission.json";

/// Default location of the elastic-reprovisioning artifact (the
/// `elastic` experiment).
const DEFAULT_ELASTIC_ARTIFACT: &str = "target/BENCH_elastic.json";

/// Default location of the network-chaos artifact (the `netchaos`
/// experiment).
const DEFAULT_NETCHAOS_ARTIFACT: &str = "target/repro-netchaos.json";

/// Default location of the SLO-monitoring artifact (the `monitor`
/// experiment).
const DEFAULT_MONITOR_ARTIFACT: &str = "target/repro-monitor.json";

/// Default location of the fuzzing summary artifact (the `fuzz`
/// experiment).
const DEFAULT_FUZZ_ARTIFACT: &str = "target/repro-fuzz.json";

/// Where the `fuzz` experiment writes shrunk reproducers.
const FUZZ_FAILURE_DIR: &str = "target/fuzz-failures";

/// Default fuzzing budget per oracle.
const DEFAULT_FUZZ_CASES: usize = 200;

/// Regression ceiling on the bench's `deploy_attempts_per_admission`
/// (worst scenario, shipped configuration). The current fast path lands
/// well under this; `repro bench` (and CI's bench job) fails when a
/// change pushes the admission hot loop back above it.
const ATTEMPTS_PER_ADMISSION_CEILING: f64 = 8.0;

/// Version of the metrics-artifact layout. Bump when the artifact's shape
/// changes incompatibly (v1 was the unversioned PR-1 layout; v2 added this
/// field and the chaos/recovery sections; v3 added span counts, the
/// critical-path section, and the `trace` experiment's artifact; v4 split
/// the report's `rejections` into attempt/distinct-task views, added the
/// `requeue_wait_s` and recovery `redeployments` fields, and added the
/// `bench` experiment's `BENCH_admission.json`; v5 added the elasticity
/// block to the report serialization — `promotions`, `preemptions`,
/// `units_gained`, `units_lost`, the saved/added service summaries — and
/// the `elastic` experiment's `BENCH_elastic.json`; v6 added the report's
/// conditional `links` block — failures/degradations/recoveries,
/// retransmit and reroute counts, bytes retransmitted, severed paths,
/// degraded time — the fault plan's `link_*` section, and the `netchaos`
/// experiment's `repro-netchaos.json`; v7 added the report's optional
/// `monitor` section — windowed rollups with mergeable quantile
/// sketches, SLO specs/outcomes, and burn-rate alerts — the
/// `points_kept`/`points_folded` fields the occupancy and queue-depth
/// series gain when the time-series cap folds them, and the `monitor`
/// experiment's `repro-monitor.json`; v8 added the `fuzz` experiment's
/// `repro-fuzz.json` summary, the `fuzz_reproducer` documents under
/// `target/fuzz-failures/`, and their shared `fuzz_summary`/
/// `fuzz_reproducer` layouts).
const ARTIFACT_SCHEMA_VERSION: u64 = 8;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut which = "all".to_string();
    let mut json_path: Option<String> = None;
    let mut seed: u64 = 2024;
    let mut fuzz_cases: usize = DEFAULT_FUZZ_CASES;
    let mut fuzz_oracle: Option<String> = None;
    let mut fuzz_replay: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--cases" {
            match args.get(i + 1).and_then(|s| s.parse().ok()) {
                Some(n) => fuzz_cases = n,
                None => {
                    eprintln!("--cases requires an integer");
                    std::process::exit(2);
                }
            }
            i += 2;
        } else if args[i] == "--oracle" {
            match args.get(i + 1) {
                Some(name) => fuzz_oracle = Some(name.clone()),
                None => {
                    eprintln!("--oracle requires a name");
                    std::process::exit(2);
                }
            }
            i += 2;
        } else if args[i] == "--replay" {
            match args.get(i + 1) {
                Some(p) => fuzz_replay = Some(p.clone()),
                None => {
                    eprintln!("--replay requires a path");
                    std::process::exit(2);
                }
            }
            i += 2;
        } else if args[i] == "--json" {
            match args.get(i + 1) {
                Some(p) => json_path = Some(p.clone()),
                None => {
                    eprintln!("--json requires a path");
                    std::process::exit(2);
                }
            }
            i += 2;
        } else if args[i] == "--seed" {
            match args.get(i + 1).and_then(|s| s.parse().ok()) {
                Some(s) => seed = s,
                None => {
                    eprintln!("--seed requires an integer");
                    std::process::exit(2);
                }
            }
            i += 2;
        } else {
            which = args[i].clone();
            i += 1;
        }
    }
    let all = which == "all";
    let mut artifact: Vec<(&str, Json)> = Vec::new();
    if all || which == "table2" {
        print_table2();
    }
    if all || which == "table3" {
        print_table3();
    }
    if all || which == "table4" {
        print_table4();
    }
    if all || which == "fig11" {
        artifact.push(("fig11", print_fig11()));
    }
    if all || which == "fig12" {
        artifact.push(("fig12", print_fig12()));
    }
    if all || which == "overhead" {
        print_overhead();
    }
    if all || which == "ablations" {
        print_ablations();
    }
    if all || which == "density" {
        print_density();
    }
    if all || which == "isolation" {
        print_isolation();
    }
    if all || which == "chaos" {
        artifact.push(("chaos", print_chaos(seed)));
    }
    if which == "trace" {
        // The trace experiment writes its own artifact (a loadable Chrome
        // trace, not a metrics document) and is opt-in, not part of `all`.
        let path = json_path
            .clone()
            .unwrap_or_else(|| DEFAULT_TRACE_ARTIFACT.to_string());
        print_trace(seed, &path);
    }
    if which == "bench" {
        // The admission bench is opt-in (not part of `all`): it runs the
        // 10k-task saturated scenario four times and its artifact is a
        // perf document, not a metrics one.
        let path = json_path
            .clone()
            .unwrap_or_else(|| DEFAULT_BENCH_ARTIFACT.to_string());
        print_bench(seed, &path);
    }
    if which == "elastic" {
        // The elastic A/B is opt-in (not part of `all`): it runs the 10k
        // bursty scenario twice and its artifact is a perf document.
        let path = json_path
            .clone()
            .unwrap_or_else(|| DEFAULT_ELASTIC_ARTIFACT.to_string());
        print_elastic(seed, &path);
    }
    if which == "netchaos" {
        // The network-chaos scenario is opt-in (not part of `all`): it
        // layers link waves on the chaos scenario and its artifact is a
        // fault-injection document.
        let path = json_path
            .clone()
            .unwrap_or_else(|| DEFAULT_NETCHAOS_ARTIFACT.to_string());
        print_netchaos(seed, &path);
    }
    if which == "monitor" {
        // The SLO-monitoring scenario is opt-in (not part of `all`): it
        // runs the monitored chaos scenario twice (the second run is the
        // byte-determinism gate) and its artifact is a telemetry document.
        let path = json_path
            .clone()
            .unwrap_or_else(|| DEFAULT_MONITOR_ARTIFACT.to_string());
        print_monitor(seed, &path);
    }
    if which == "fuzz" {
        // The differential fuzzer is opt-in (not part of `all`): its
        // artifact is a fuzzing summary, not a metrics document.
        let path = json_path
            .clone()
            .unwrap_or_else(|| DEFAULT_FUZZ_ARTIFACT.to_string());
        match &fuzz_replay {
            Some(replay_path) => print_fuzz_replay(replay_path),
            None => print_fuzz(seed, fuzz_cases, fuzz_oracle.clone(), &path),
        }
    }
    if !all
        && ![
            "table2",
            "table3",
            "table4",
            "fig11",
            "fig12",
            "overhead",
            "ablations",
            "density",
            "isolation",
            "chaos",
            "trace",
            "bench",
            "elastic",
            "netchaos",
            "monitor",
            "fuzz",
        ]
        .contains(&which.as_str())
    {
        eprintln!("unknown experiment `{which}`");
        eprintln!("usage: repro [table2|table3|table4|fig11|fig12|overhead|ablations|density|isolation|chaos|trace|bench|elastic|netchaos|monitor|fuzz|all] [--json PATH] [--seed N] [--cases N] [--oracle NAME] [--replay PATH]");
        std::process::exit(2);
    }
    if !artifact.is_empty() {
        let json_path = json_path.unwrap_or_else(|| DEFAULT_ARTIFACT.to_string());
        let mut root = Json::obj()
            .with("schema_version", ARTIFACT_SCHEMA_VERSION)
            .with("experiment", which.as_str());
        for (key, value) in artifact {
            root = root.with(key, value);
        }
        write_artifact(&json_path, &root.pretty(), "metrics");
    }
}

/// Writes an artifact, creating parent directories; exits on failure.
fn write_artifact(path: &str, text: &str, what: &str) {
    if let Some(parent) = std::path::Path::new(path).parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    match std::fs::write(path, text) {
        Ok(()) => eprintln!("wrote {what} artifact to {path}"),
        Err(e) => {
            eprintln!("failed to write {what} artifact {path}: {e}");
            std::process::exit(1);
        }
    }
}

fn print_ablations() {
    println!("== Ablations (DESIGN.md D1/D3/D4) ==");
    let catalog = Catalog::build();
    let d1 = ablations::partitioner(&catalog);
    println!(
        "D1 partitioner: pattern-aware overhead {} vs pattern-oblivious {}",
        pct(d1.aware_overhead),
        pct(d1.oblivious_overhead)
    );
    let d3 = ablations::reordering();
    println!(
        "D3 reordering (2 FPGAs, +800ns link): {:.3} ms optimized vs {:.3} ms plain",
        d3.optimized.as_ms(),
        d3.plain.as_ms()
    );
    let d4 = ablations::instruction_buffer();
    println!(
        "D4 instruction buffer: {:.3} ms with vs {:.3} ms fetching from DRAM",
        d4.with_buffer.as_ms(),
        d4.without_buffer.as_ms()
    );
    println!();
}

fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

fn print_table2() {
    println!("== Table 2: baseline accelerator implementations ==");
    println!(
        "{:<8} {:<9} {:>6} {:>12} {:>12} {:>12} {:>12} {:>10} {:>7} {:>7}",
        "name", "device", "tiles", "LUTs", "DFFs", "BRAM", "URAM", "DSPs", "MHz", "TFLOPS"
    );
    for r in tables::table2() {
        let (ul, uf, ub, uu, ud) = r.utilization;
        println!(
            "{:<8} {:<9} {:>6} {:>5}k ({:>5}) {:>5}k ({:>5}) {:>5.1}Mb ({:>5}) {:>5.1}Mb ({:>5}) {:>4} ({:>5}) {:>7.0} {:>7.1}",
            r.name,
            r.device.name(),
            r.tiles,
            r.resources.luts / 1000,
            pct(ul),
            r.resources.ffs / 1000,
            pct(uf),
            r.resources.bram_mb(),
            pct(ub),
            r.resources.uram_mb(),
            pct(uu),
            r.resources.dsps,
            pct(ud),
            r.freq_mhz,
            r.peak_tflops
        );
    }
    println!();
}

fn print_table3() {
    println!("== Table 3: one virtual block of the decomposed accelerator ==");
    println!(
        "{:<9} {:>8} {:>14} {:>14} {:>14} {:>12} {:>7} {:>7}",
        "device", "blocks", "LUTs", "DFFs", "BRAM", "DSPs", "MHz", "TFLOPS"
    );
    for r in tables::table3() {
        let (ul, uf, ub, _uu, ud) = r.utilization;
        println!(
            "{:<9} {:>8} {:>6.1}k ({:>5}) {:>6.1}k ({:>5}) {:>5.1}Mb ({:>5}) {:>4} ({:>5}) {:>7.0} {:>7.2}",
            r.device.name(),
            r.blocks,
            r.per_block.luts as f64 / 1000.0,
            pct(ul),
            r.per_block.ffs as f64 / 1000.0,
            pct(uf),
            r.per_block.bram_mb(),
            pct(ub),
            r.per_block.dsps,
            pct(ud),
            r.freq_mhz,
            r.peak_tflops
        );
    }
    println!();
}

fn print_table4() {
    println!("== Table 4: LSTM/GRU inference latency (batch 1) ==");
    let catalog = Catalog::build();
    println!(
        "{:<22} {:<9} {:>14} {:>14} {:>9}",
        "benchmark", "device", "baseline (ms)", "this work (ms)", "overhead"
    );
    for r in tables::table4(&catalog) {
        match (r.baseline, r.this_work, r.overhead) {
            (Some(b), Some(v), Some(o)) => println!(
                "{:<22} {:<9} {:>14.4} {:>14.4} {:>9}",
                r.task.to_string(),
                r.device,
                b.as_ms(),
                v.as_ms(),
                pct(o)
            ),
            _ => println!(
                "{:<22} {:<9} {:>14} {:>14} {:>9}",
                r.task.to_string(),
                r.device,
                "-",
                "-",
                "-"
            ),
        }
    }
    println!();
}

fn print_fig11() -> Json {
    println!("== Fig 11: impact of inter-FPGA communication latency (2 FPGAs) ==");
    let added = fig11::default_sweep_points();
    let mut series_json = Vec::new();
    for task in fig11_tasks() {
        for optimized in [true, false] {
            let series = fig11::sweep(task, 2, &added, optimized);
            let label = if optimized { "overlap" } else { "no-overlap" };
            print!("{task:<20} [{label:>10}] latency(ms):");
            for p in &series.points {
                print!(" {:.4}", p.latency.as_ms());
            }
            println!();
            if optimized {
                let hidden = series
                    .hidden_up_to(0.02)
                    .map(|t| format!("{:.1} ns", t.as_ns()))
                    .unwrap_or_else(|| "none".to_string());
                println!(
                    "{:<20}  added latency hidden up to: {hidden}; single-FPGA ref: {:.4} ms",
                    "",
                    series.single_fpga.as_ms()
                );
            }
            series_json.push(series.to_json());
        }
    }
    println!();
    Json::obj().with("series", Json::Arr(series_json))
}

fn print_fig12() -> Json {
    println!("== Fig 12: aggregated system throughput (tasks/s) ==");
    let catalog = Catalog::build();
    let reports = fig12::run_all_sets_detailed(&catalog, 120, 2024);
    let rows: Vec<fig12::Fig12Row> = reports.iter().map(fig12::Fig12SetReport::row).collect();
    println!(
        "{:>4} {:>12} {:>12} {:>12} {:>9}",
        "set", "baseline", "restricted", "this work", "speedup"
    );
    for r in &rows {
        println!(
            "{:>4} {:>12.1} {:>12.1} {:>12.1} {:>8.2}x",
            r.set,
            r.baseline,
            r.restricted,
            r.full,
            r.speedup()
        );
    }
    println!(
        "mean speedup over baseline: {:.2}x (paper: 2.54x)",
        fig12::mean_speedup(&rows)
    );
    let restricted_gain: f64 = rows
        .iter()
        .map(|r| r.full / r.restricted.max(1e-9))
        .product::<f64>()
        .powf(1.0 / rows.len() as f64);
    println!(
        "full vs restricted policy: {:.1}% (paper: 16%)",
        100.0 * (restricted_gain - 1.0)
    );
    println!();
    fig12::to_json(&reports)
}

fn print_chaos(seed: u64) -> Json {
    println!("== Chaos: workload set 5 under injected device failures (seed {seed}) ==");
    let catalog = Catalog::build();
    let config = chaos::ChaosConfig {
        seed,
        ..chaos::ChaosConfig::default()
    };
    let run = chaos::run(&catalog, &config);
    let r = &run.report;
    println!(
        "fault plan: {} failures (max {} concurrent), transient configure p={}",
        run.plan.failures(),
        run.plan.max_concurrent_failures(),
        config.configure_failure_prob
    );
    println!(
        "arrivals {} | completed {} | never deployed {} | lost {}",
        r.arrivals, r.completed, r.never_deployed, r.lost
    );
    println!(
        "interrupted {} | migrated {} (scale-down {}) | requeued {}",
        r.interrupted, r.migrated, r.scale_down_redeployments, r.requeued
    );
    println!(
        "mean time-to-recovery: {} | degraded {:.3} ms at {:.1}% occupancy",
        r.mean_time_to_recovery_s()
            .map(|s| format!("{:.1} us", s * 1e6))
            .unwrap_or_else(|| "n/a".to_string()),
        r.degraded_time.as_ms(),
        100.0 * r.degraded_mean_occupancy
    );
    if let Err(violation) = run.check_invariants() {
        eprintln!("chaos invariant violated: {violation}");
        std::process::exit(1);
    }
    if !run.exercised_recovery() {
        eprintln!("chaos run did not exercise recovery (seed {seed}): no interruption migrated");
        std::process::exit(1);
    }
    warn_on_dropped_trace_events(&run.report);
    println!();
    run.to_json()
}

/// Surfaces trace-ring evictions: a dropped event means the ring was too
/// small for the run and the retained window is partial.
fn warn_on_dropped_trace_events(report: &vfpga_runtime::CloudReport) {
    let dropped = report.trace.dropped();
    if dropped > 0 {
        eprintln!(
            "warning: scheduler trace ring dropped {dropped} events (retained {}); \
             rerun with a larger trace capacity for a complete window",
            report.trace.len()
        );
    }
}

fn print_trace(seed: u64, json_path: &str) {
    println!("== Trace: span-instrumented chaos run (seed {seed}) ==");
    let mut compile_spans = SpanTracer::new();
    let catalog = Catalog::build_traced(&mut compile_spans);
    let config = chaos::ChaosConfig {
        seed,
        ..chaos::ChaosConfig::default()
    };
    let run = chaos::run(&catalog, &config);
    if let Err(violation) = run.check_invariants() {
        eprintln!("chaos invariant violated: {violation}");
        std::process::exit(1);
    }
    warn_on_dropped_trace_events(&run.report);
    let r = &run.report;
    let cp = &r.critical_path;
    println!(
        "spans: {} compile-flow + {} runtime ({} completed tasks)",
        compile_spans.len(),
        r.spans.len(),
        cp.tasks.len()
    );
    for (label, q) in [("p50", 0.5), ("p95", 0.95), ("p99", 0.99)] {
        if let Some(task) = cp.quantile_task(q) {
            let (phase, d) = task.dominant();
            println!(
                "{label} task {}: {:.3} ms end-to-end, dominated by {phase} ({:.3} ms)",
                task.trace.0,
                task.total.as_ms(),
                d.as_ms()
            );
        }
    }
    let events = chrome_trace_events(&[&compile_spans, &r.spans]);
    let root = Json::obj()
        .with("schema_version", ARTIFACT_SCHEMA_VERSION)
        .with("experiment", "trace")
        .with("seed", seed)
        .with("trace_dropped", r.trace.dropped())
        .with("spans", (compile_spans.len() + r.spans.len()) as u64)
        .with("critical_path", cp.to_json())
        .with("displayTimeUnit", "ms")
        .with("traceEvents", events);
    let text = root.pretty();
    // Self-validate before writing: the artifact must round-trip through
    // the parser (CI re-checks this on the written file).
    if let Err(e) = Json::parse(&text) {
        eprintln!("trace artifact failed self-validation: {e:?}");
        std::process::exit(1);
    }
    write_artifact(json_path, &text, "trace");
    let prom_path = format!("{}.prom", json_path.trim_end_matches(".json"));
    write_artifact(&prom_path, &prometheus_text(&r.metrics), "prometheus");
    println!();
}

fn print_bench(seed: u64, json_path: &str) {
    println!(
        "== Bench: saturated admission, fast path vs pre-optimization baseline (seed {seed}) =="
    );
    let catalog = Catalog::build();
    let config = admission::BenchConfig {
        seed,
        ..admission::BenchConfig::default()
    };
    let bench = admission::run(&catalog, &config);
    for s in &bench.scenarios {
        println!(
            "{:<7} current:  {:>8} probes ({:>9} cache hits), {:>6.2} per admission, {:>9.1} ms wall",
            s.name,
            s.current.probes,
            s.current.cache_hits,
            s.current.attempts_per_admission(),
            s.current.wall_ms
        );
        println!(
            "{:<7} baseline: {:>8} probes ({:>9} cache hits), {:>6.2} per admission, {:>9.1} ms wall",
            "",
            s.baseline.probes,
            s.baseline.cache_hits,
            s.baseline.attempts_per_admission(),
            s.baseline.wall_ms
        );
        println!(
            "{:<7} ratio: {:.1}x fewer probes, {:.1}x wall-clock; outcomes match: {}",
            "",
            s.probe_ratio(),
            s.wall_ratio(),
            s.outcomes_match
        );
    }
    // The bench is also the regression gate: fail loudly rather than
    // writing an artifact that records a regression as if it were fine.
    if !bench.outcomes_match() {
        eprintln!("bench FAILED: fast path changed admission outcomes");
        std::process::exit(1);
    }
    if bench.min_probe_ratio() < 3.0 {
        eprintln!(
            "bench FAILED: probe reduction {:.2}x is below the required 3x",
            bench.min_probe_ratio()
        );
        std::process::exit(1);
    }
    let per_admission = bench.attempts_per_admission();
    if per_admission > ATTEMPTS_PER_ADMISSION_CEILING {
        eprintln!(
            "bench FAILED: {per_admission:.2} deploy attempts per admission exceeds the ceiling {ATTEMPTS_PER_ADMISSION_CEILING}"
        );
        std::process::exit(1);
    }
    let root = Json::obj()
        .with("schema_version", ARTIFACT_SCHEMA_VERSION)
        .with("experiment", "bench")
        .with(
            "attempts_per_admission_ceiling",
            ATTEMPTS_PER_ADMISSION_CEILING,
        )
        .with("bench", bench.to_json());
    let text = root.pretty();
    if let Err(e) = Json::parse(&text) {
        eprintln!("bench artifact failed self-validation: {e:?}");
        std::process::exit(1);
    }
    write_artifact(json_path, &text, "bench");
    println!();
}

fn print_elastic(seed: u64, json_path: &str) {
    println!("== Bench: elastic reprovisioning on vs off, bursty workload (seed {seed}) ==");
    let catalog = Catalog::build();
    let config = elastic::ElasticConfig {
        seed,
        ..elastic::ElasticConfig::default()
    };
    let bench = elastic::run(&catalog, &config);
    for (label, run) in [("on", &bench.on), ("off", &bench.off)] {
        println!(
            "elasticity {label:<3} p50 {:>8.3} ms, p95 {:>8.3} ms, p99 {:>8.3} ms, qwait {:>7.3} ms, {:>9.1} ms wall",
            run.p50 * 1e3,
            run.p95 * 1e3,
            run.p99 * 1e3,
            run.mean_queue_wait * 1e3,
            run.wall_ms
        );
    }
    println!(
        "reprovisioner: {} promotions (+{} units, {:.3} ms saved each), {} preemptions (-{} units)",
        bench.on.promotions,
        bench.on.units_gained,
        bench.on.promotion_saved_mean * 1e3,
        bench.on.preemptions,
        bench.on.units_lost
    );
    println!(
        "p95: {:.3} ms -> {:.3} ms ({:.2}x, {:.3} ms shorter)",
        bench.off.p95 * 1e3,
        bench.on.p95 * 1e3,
        bench.p95_ratio(),
        bench.p95_delta() * 1e3
    );
    // The bench is also the regression gate: fail loudly rather than
    // writing an artifact that records a regression as if it were fine.
    if !bench.passes() {
        for failure in bench.failures() {
            eprintln!("elastic FAILED: {failure}");
        }
        std::process::exit(1);
    }
    let root = Json::obj()
        .with("schema_version", ARTIFACT_SCHEMA_VERSION)
        .with("experiment", "elastic")
        .with("bench", bench.to_json());
    let text = root.pretty();
    if let Err(e) = Json::parse(&text) {
        eprintln!("elastic artifact failed self-validation: {e:?}");
        std::process::exit(1);
    }
    write_artifact(json_path, &text, "elastic");
    println!();
}

fn print_netchaos(seed: u64, json_path: &str) {
    println!("== NetChaos: workload set 5 under device and link fault waves (seed {seed}) ==");
    let catalog = Catalog::build();
    let config = netchaos::NetChaosConfig {
        seed,
        ..netchaos::NetChaosConfig::default()
    };
    let run = netchaos::run(&catalog, &config);
    let r = &run.report;
    println!(
        "fault plan: {} device failures, {} link events ({} segment failures), corruption p={}",
        run.plan.failures(),
        run.plan.link_events().len(),
        run.plan.link_failures(),
        config.corruption_prob
    );
    println!(
        "arrivals {} | completed {} | never deployed {} | lost {}",
        r.arrivals, r.completed, r.never_deployed, r.lost
    );
    println!(
        "links: {} failed / {} degraded / {} recovered | degraded {:.3} ms",
        r.link_failures,
        r.link_degradations,
        r.link_recoveries,
        r.link_degraded_time.as_ms()
    );
    println!(
        "transfers: {} retransmits ({} bytes) | {} reroutes | {} severed -> migration",
        r.link_retransmits, r.link_retransmit_bytes, r.link_reroutes, r.link_severed
    );
    // The scenario is also the regression gate: fail loudly rather than
    // writing an artifact that records a broken run as if it were fine.
    if let Err(violation) = run.check_invariants() {
        eprintln!("netchaos invariant violated: {violation}");
        std::process::exit(1);
    }
    if !run.exercised_link_faults() {
        eprintln!(
            "netchaos run did not exercise the link fault machinery (seed {seed}): \
             {} failures, {} reroutes, {} retransmits",
            r.link_failures, r.link_reroutes, r.link_retransmits
        );
        std::process::exit(1);
    }
    let root = Json::obj()
        .with("schema_version", ARTIFACT_SCHEMA_VERSION)
        .with("experiment", "netchaos")
        .with("netchaos", run.to_json());
    let text = root.pretty();
    if let Err(e) = Json::parse(&text) {
        eprintln!("netchaos artifact failed self-validation: {e:?}");
        std::process::exit(1);
    }
    write_artifact(json_path, &text, "netchaos");
    println!();
}

fn print_monitor(seed: u64, json_path: &str) {
    println!("== Monitor: SLO burn-rate alerting under chaos+elastic (seed {seed}) ==");
    let catalog = Catalog::build();
    let config = monitor::MonitorBenchConfig {
        seed,
        ..monitor::MonitorBenchConfig::default()
    };
    let bench = monitor::run(&catalog, &config);
    let m = bench.report.monitor.as_ref().expect("monitored run");
    println!(
        "calibration: worst healthy window p95 {:.1} us -> target {:.1} us (x{})",
        bench.baseline_worst_p95 * 1e6,
        bench.target.as_us(),
        config.target_margin
    );
    println!(
        "fault plan: {} device failures, {} link events | {} disturbed intervals",
        bench.plan.failures(),
        bench.plan.link_events().len(),
        bench.disturbed.len()
    );
    println!(
        "arrivals {} | completed {} | never deployed {} | lost {}",
        bench.report.arrivals,
        bench.report.completed,
        bench.report.never_deployed,
        bench.report.lost
    );
    println!(
        "monitor: {} alerts fired / {} resolved | max burn {:.2} | min health {:.3} | {} truncated windows",
        m.alerts_fired(),
        m.alerts_resolved(),
        m.max_burn(),
        m.min_health(),
        m.truncated_windows
    );
    for alert in bench.alerts() {
        match alert.resolved_at {
            Some(resolved) => println!(
                "  alert `{}` on `{}`: fired {:.0} us, resolved {:.0} us (peak burn {:.2})",
                alert.slo,
                alert.key,
                alert.fired_at.as_us(),
                resolved.as_us(),
                alert.peak_burn
            ),
            None => println!(
                "  alert `{}` on `{}`: fired {:.0} us, still firing (peak burn {:.2})",
                alert.slo,
                alert.key,
                alert.fired_at.as_us(),
                alert.peak_burn
            ),
        }
    }
    // The scenario is also the regression gate: fail loudly rather than
    // writing an artifact that records a broken run as if it were fine.
    if let Err(violation) = bench.check_invariants() {
        eprintln!("monitor invariant violated: {violation}");
        std::process::exit(1);
    }
    let root = Json::obj()
        .with("schema_version", ARTIFACT_SCHEMA_VERSION)
        .with("experiment", "monitor")
        .with("monitor", bench.to_json());
    let text = root.pretty();
    if let Err(e) = Json::parse(&text) {
        eprintln!("monitor artifact failed self-validation: {e:?}");
        std::process::exit(1);
    }
    // Determinism gate: the whole scenario again, from scratch — the
    // artifact must come out byte-identical.
    let rerun = monitor::run(&catalog, &config);
    let rerun_text = Json::obj()
        .with("schema_version", ARTIFACT_SCHEMA_VERSION)
        .with("experiment", "monitor")
        .with("monitor", rerun.to_json())
        .pretty();
    if text != rerun_text {
        eprintln!("monitor runs diverged: same seed {seed}, different artifact bytes");
        std::process::exit(1);
    }
    write_artifact(json_path, &text, "monitor");
    let prom_path = json_path.replace(".json", ".prom");
    write_artifact(&prom_path, &m.prometheus_text(), "monitor exposition");
    println!();
}

fn print_overhead() {
    println!("== Section 4.3: compilation overhead ==");
    let r = overhead::report();
    println!(
        "decompose+partition tool time:      {:.3} s per instance",
        r.tool_seconds
    );
    println!(
        "baseline compile time ({} instances): {:.0} s",
        r.instances, r.baseline_seconds
    );
    println!(
        "tool time fraction:                 {} (paper: <1%)",
        pct(r.tool_fraction)
    );
    println!(
        "scaled-down compiles ({} distinct):  {:.0} s",
        r.distinct_scaledowns, r.scaledown_seconds
    );
    println!(
        "total overhead (amortized):         {} (paper: 24.6%)",
        pct(r.total_overhead_fraction)
    );
    let _ = SimTime::ZERO; // keep the sim import for the shared prelude
    println!();
}

fn print_density() {
    println!("== Code density: AS ISA vs general-purpose SIMD ==");
    println!(
        "{:<22} {:>14} {:>16} {:>9}",
        "benchmark", "AS ISA (bytes)", "GP SIMD (bytes)", "ratio"
    );
    for r in density::compare() {
        println!(
            "{:<22} {:>14} {:>16} {:>8.0}x",
            r.task.to_string(),
            r.as_isa_bytes,
            r.gp_bytes,
            r.ratio()
        );
    }
    println!();
}

fn print_isolation() {
    println!("== Section 4.4: performance isolation under spatial sharing ==");
    let task = vfpga_workload::RnnTask::new(vfpga_workload::RnnKind::Lstm, 512, 25);
    for r in isolation::measure(task, 3.0) {
        println!(
            "{:<26} alone {:.4} ms | shared {:.4} ms | slowdown {}",
            if r.instruction_buffer {
                "with instruction buffer"
            } else {
                "without instruction buffer"
            },
            r.alone.as_ms(),
            r.shared.as_ms(),
            pct(r.slowdown())
        );
    }
    println!();
}

fn print_fuzz(seed: u64, cases: usize, oracle: Option<String>, path: &str) {
    println!("== Differential fuzzing: {cases} cases/oracle, seed {seed} ==");
    let mut config = vfpga_fuzz::FuzzConfig::new(seed, cases);
    config.oracle = oracle;
    config.failure_dir = Some(std::path::PathBuf::from(FUZZ_FAILURE_DIR));
    let summary = match vfpga_fuzz::run_fuzz(&config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    for o in &summary.oracles {
        match &o.first_failure {
            None => println!("{:<24} {:>6} cases  ok", o.name, o.cases),
            Some(f) => println!(
                "{:<24} {:>6} cases  {} FAILED (first at case {}, shrunk {} -> {}, {})",
                o.name,
                o.cases,
                o.failures,
                f.case_index,
                f.original_size,
                f.shrunk_size,
                f.reproducer.as_deref().unwrap_or("reproducer not written"),
            ),
        }
    }
    println!();
    assert_eq!(
        vfpga_fuzz::FUZZ_SCHEMA_VERSION,
        ARTIFACT_SCHEMA_VERSION,
        "fuzz and repro artifact schemas must move together"
    );
    write_artifact(path, &(summary.to_json().pretty() + "\n"), "fuzz");
    if !summary.passed() {
        eprintln!(
            "{} of {} cases violated an oracle; reproducers in {}",
            summary.total_failures(),
            summary.total_cases(),
            FUZZ_FAILURE_DIR
        );
        std::process::exit(1);
    }
}

fn print_fuzz_replay(path: &str) {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read reproducer {path}: {e}");
            std::process::exit(2);
        }
    };
    let doc = match Json::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("reproducer {path} is not JSON: {e}");
            std::process::exit(2);
        }
    };
    match vfpga_fuzz::replay(&doc) {
        Ok((oracle, vfpga_fuzz::Verdict::Pass)) => {
            println!("replay {path}: oracle `{oracle}` passes (bug no longer reproduces)");
        }
        Ok((oracle, vfpga_fuzz::Verdict::Fail(error))) => {
            eprintln!("replay {path}: oracle `{oracle}` still fails: {error}");
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("replay {path}: {e}");
            std::process::exit(2);
        }
    }
}

//! Regeneration of Fig. 12: aggregated system throughput over the ten
//! synthetic workload sets, under the three runtime systems.

use vfpga_runtime::{run_cloud_sim, CloudReport, Policy, SystemController};
use vfpga_sim::{Json, SimTime};
use vfpga_workload::{generate_workload, Composition};

use crate::catalog::Catalog;

/// One bar group of Fig. 12.
#[derive(Debug, Clone, Copy)]
pub struct Fig12Row {
    /// Workload set index (1-based, Table 1).
    pub set: usize,
    /// Baseline system throughput (tasks/s).
    pub baseline: f64,
    /// Restricted-policy system throughput.
    pub restricted: f64,
    /// This work's throughput.
    pub full: f64,
}

impl Fig12Row {
    /// Speedup of the full system over the baseline.
    pub fn speedup(&self) -> f64 {
        if self.baseline == 0.0 {
            f64::INFINITY
        } else {
            self.full / self.baseline
        }
    }
}

/// The full observability reports of one workload set under all three
/// systems — everything [`Fig12Row`] summarizes, plus time series,
/// rejection breakdowns, and the scheduler trace per policy.
#[derive(Debug, Clone)]
pub struct Fig12SetReport {
    /// Workload set index (1-based, Table 1).
    pub set: usize,
    /// Baseline system report.
    pub baseline: CloudReport,
    /// Restricted-policy system report.
    pub restricted: CloudReport,
    /// This work's report.
    pub full: CloudReport,
}

impl Fig12SetReport {
    /// The throughput summary row (the bar heights of Fig. 12).
    pub fn row(&self) -> Fig12Row {
        Fig12Row {
            set: self.set,
            baseline: self.baseline.throughput_per_s,
            restricted: self.restricted.throughput_per_s,
            full: self.full.throughput_per_s,
        }
    }

    /// Serializes the three per-policy reports.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("set", self.set)
            .with("baseline", self.baseline.to_json())
            .with("restricted", self.restricted.to_json())
            .with("full", self.full.to_json())
    }
}

/// Runs one workload set under one policy, returning the full report
/// (throughput, latency percentiles, occupancy/queue-depth series,
/// rejection reasons, scheduler trace).
pub fn run_set_report(
    catalog: &Catalog,
    set_index: usize,
    policy: Policy,
    tasks: usize,
    seed: u64,
) -> CloudReport {
    let composition = Composition::TABLE1[set_index - 1];
    let arrivals = generate_workload(
        composition,
        tasks,
        SimTime::from_us(50.0),
        seed + set_index as u64,
    );
    let mut controller = SystemController::new(catalog.cluster.clone(), catalog.db.clone(), policy);
    if policy == Policy::Baseline {
        controller = controller.with_provisioning(catalog.baseline_provisioning());
    }
    run_cloud_sim(
        &mut controller,
        &arrivals,
        &|task| catalog.instance_for(task),
        &|task, deployment| catalog.service_time(task, deployment, policy),
    )
    .expect("cloud simulation completes")
}

/// Runs one workload set under one policy and returns tasks/second.
pub fn run_set(
    catalog: &Catalog,
    set_index: usize,
    policy: Policy,
    tasks: usize,
    seed: u64,
) -> f64 {
    run_set_report(catalog, set_index, policy, tasks, seed).throughput_per_s
}

/// Runs all ten workload sets under all three systems, keeping the full
/// per-policy reports.
pub fn run_all_sets_detailed(catalog: &Catalog, tasks: usize, seed: u64) -> Vec<Fig12SetReport> {
    (1..=Composition::TABLE1.len())
        .map(|set| Fig12SetReport {
            set,
            baseline: run_set_report(catalog, set, Policy::Baseline, tasks, seed),
            restricted: run_set_report(catalog, set, Policy::Restricted, tasks, seed),
            full: run_set_report(catalog, set, Policy::Full, tasks, seed),
        })
        .collect()
}

/// Runs all ten workload sets under all three systems.
pub fn run_all_sets(catalog: &Catalog, tasks: usize, seed: u64) -> Vec<Fig12Row> {
    run_all_sets_detailed(catalog, tasks, seed)
        .iter()
        .map(Fig12SetReport::row)
        .collect()
}

/// Serializes the whole experiment: per-set reports plus the aggregate
/// speedup the paper reports.
pub fn to_json(reports: &[Fig12SetReport]) -> Json {
    let rows: Vec<Fig12Row> = reports.iter().map(Fig12SetReport::row).collect();
    Json::obj().with("mean_speedup", mean_speedup(&rows)).with(
        "sets",
        Json::Arr(reports.iter().map(Fig12SetReport::to_json).collect()),
    )
}

/// Geometric-mean speedup of the full system over the baseline across
/// rows (the paper reports 2.54x average).
pub fn mean_speedup(rows: &[Fig12Row]) -> f64 {
    let product: f64 = rows.iter().map(Fig12Row::speedup).product();
    product.powf(1.0 / rows.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_beats_baseline_on_an_all_small_set() {
        let catalog = Catalog::build();
        // Set 1 (100% small tasks) is where spatial sharing pays the most.
        let baseline = run_set(&catalog, 1, Policy::Baseline, 80, 42);
        let full = run_set(&catalog, 1, Policy::Full, 80, 42);
        assert!(
            full > baseline * 1.2,
            "full {full} should clearly beat baseline {baseline}"
        );
    }

    #[test]
    fn heterogeneous_deployment_beats_restricted_on_large_tasks() {
        // Set 3 is 100% large tasks: the restricted (same-device-type)
        // policy cannot span the VU37P/KU115 pair, which is exactly where
        // the full policy's heterogeneous multi-FPGA support pays off.
        let catalog = Catalog::build();
        let restricted = run_set(&catalog, 3, Policy::Restricted, 60, 7);
        let full = run_set(&catalog, 3, Policy::Full, 60, 7);
        assert!(
            full > restricted * 1.1,
            "full {full} should clearly beat restricted {restricted} on all-large sets"
        );
    }
}

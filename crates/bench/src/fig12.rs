//! Regeneration of Fig. 12: aggregated system throughput over the ten
//! synthetic workload sets, under the three runtime systems.

use vfpga_runtime::{run_cloud_sim, Policy, SystemController};
use vfpga_sim::SimTime;
use vfpga_workload::{generate_workload, Composition};

use crate::catalog::Catalog;

/// One bar group of Fig. 12.
#[derive(Debug, Clone, Copy)]
pub struct Fig12Row {
    /// Workload set index (1-based, Table 1).
    pub set: usize,
    /// Baseline system throughput (tasks/s).
    pub baseline: f64,
    /// Restricted-policy system throughput.
    pub restricted: f64,
    /// This work's throughput.
    pub full: f64,
}

impl Fig12Row {
    /// Speedup of the full system over the baseline.
    pub fn speedup(&self) -> f64 {
        if self.baseline == 0.0 {
            f64::INFINITY
        } else {
            self.full / self.baseline
        }
    }
}

/// Runs one workload set under one policy and returns tasks/second.
pub fn run_set(catalog: &Catalog, set_index: usize, policy: Policy, tasks: usize, seed: u64) -> f64 {
    let composition = Composition::TABLE1[set_index - 1];
    let arrivals = generate_workload(
        composition,
        tasks,
        SimTime::from_us(50.0),
        seed + set_index as u64,
    );
    let mut controller =
        SystemController::new(catalog.cluster.clone(), catalog.db.clone(), policy);
    if policy == Policy::Baseline {
        controller = controller.with_provisioning(catalog.baseline_provisioning());
    }
    let report = run_cloud_sim(
        &mut controller,
        &arrivals,
        &|task| catalog.instance_for(task),
        &|task, deployment| catalog.service_time(task, deployment, policy),
    )
    .expect("cloud simulation completes");
    report.throughput_per_s
}

/// Runs all ten workload sets under all three systems.
pub fn run_all_sets(catalog: &Catalog, tasks: usize, seed: u64) -> Vec<Fig12Row> {
    (1..=Composition::TABLE1.len())
        .map(|set| Fig12Row {
            set,
            baseline: run_set(catalog, set, Policy::Baseline, tasks, seed),
            restricted: run_set(catalog, set, Policy::Restricted, tasks, seed),
            full: run_set(catalog, set, Policy::Full, tasks, seed),
        })
        .collect()
}

/// Geometric-mean speedup of the full system over the baseline across
/// rows (the paper reports 2.54x average).
pub fn mean_speedup(rows: &[Fig12Row]) -> f64 {
    let product: f64 = rows.iter().map(Fig12Row::speedup).product();
    product.powf(1.0 / rows.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_beats_baseline_on_an_all_small_set() {
        let catalog = Catalog::build();
        // Set 1 (100% small tasks) is where spatial sharing pays the most.
        let baseline = run_set(&catalog, 1, Policy::Baseline, 80, 42);
        let full = run_set(&catalog, 1, Policy::Full, 80, 42);
        assert!(
            full > baseline * 1.2,
            "full {full} should clearly beat baseline {baseline}"
        );
    }

    #[test]
    fn heterogeneous_deployment_beats_restricted_on_large_tasks() {
        // Set 3 is 100% large tasks: the restricted (same-device-type)
        // policy cannot span the VU37P/KU115 pair, which is exactly where
        // the full policy's heterogeneous multi-FPGA support pays off.
        let catalog = Catalog::build();
        let restricted = run_set(&catalog, 3, Policy::Restricted, 60, 7);
        let full = run_set(&catalog, 3, Policy::Full, 60, 7);
        assert!(
            full > restricted * 1.1,
            "full {full} should clearly beat restricted {restricted} on all-large sets"
        );
    }
}

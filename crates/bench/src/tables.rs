//! Regeneration of the paper's Tables 2, 3, and 4.

use vfpga_accel::Implementation;
use vfpga_fabric::{DeviceType, ResourceVec};
use vfpga_sim::SimTime;
use vfpga_workload::{table4_tasks, RnnTask};

use crate::catalog::{baseline_configs, Catalog};

/// One row of Table 2: a baseline accelerator implementation.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Instance name (BW-V37 / BW-K115).
    pub name: String,
    /// Target device.
    pub device: DeviceType,
    /// MVM tile count.
    pub tiles: usize,
    /// Resource usage.
    pub resources: ResourceVec,
    /// Utilization fractions: (LUTs, FFs, BRAM, URAM, DSPs).
    pub utilization: (f64, f64, f64, f64, f64),
    /// Clock frequency (MHz).
    pub freq_mhz: f64,
    /// Peak TFLOPS.
    pub peak_tflops: f64,
}

/// Regenerates Table 2.
pub fn table2() -> Vec<Table2Row> {
    baseline_configs()
        .into_iter()
        .map(|(config, device)| {
            let imp = Implementation::implement(&config, &device, true)
                .expect("baseline fits its device");
            Table2Row {
                name: config.name.clone(),
                tiles: config.tiles,
                utilization: imp.utilization(),
                resources: imp.resources,
                freq_mhz: imp.freq_mhz,
                peak_tflops: imp.peak_tflops,
                device,
            }
        })
        .collect()
}

/// One row of Table 3: one virtual block of the decomposed accelerator on
/// ViTAL.
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// Target device.
    pub device: DeviceType,
    /// Resources in one virtual block.
    pub per_block: ResourceVec,
    /// Utilization of the virtual-block region: (LUTs, FFs, BRAM, URAM,
    /// DSPs).
    pub utilization: (f64, f64, f64, f64, f64),
    /// Number of virtual blocks the accelerator occupies.
    pub blocks: usize,
    /// Clock frequency (MHz).
    pub freq_mhz: f64,
    /// Peak TFLOPS contributed per virtual block.
    pub peak_tflops: f64,
}

/// Regenerates Table 3: maps each baseline accelerator onto its device's
/// virtual blocks and reports the per-block usage.
pub fn table3() -> Vec<Table3Row> {
    let compiler = vfpga_hsabs::HsCompiler::default();
    baseline_configs()
        .into_iter()
        .map(|(config, device)| {
            let (decomp, _) = Catalog::compile_instance(&config, 1);
            let total = decomp.total_resources();
            let image = compiler
                .compile(&config.name, &total, &device)
                .expect("decomposed baseline fits its device");
            let blocks = image.blocks();
            let per_block = total.div_ceil(blocks as u64);
            let slot = device.slot_resources();
            let frac = |used: u64, cap: u64| {
                if cap == 0 {
                    0.0
                } else {
                    used as f64 / cap as f64
                }
            };
            let utilization = (
                frac(per_block.luts, slot.luts),
                frac(per_block.ffs, slot.ffs),
                frac(per_block.bram_kb, slot.bram_kb),
                frac(per_block.uram_kb, slot.uram_kb),
                frac(per_block.dsps, slot.dsps),
            );
            let peak_tflops = config.peak_tflops(device.freq_mhz()) / blocks as f64;
            Table3Row {
                per_block,
                utilization,
                blocks,
                freq_mhz: device.freq_mhz(),
                peak_tflops,
                device,
            }
        })
        .collect()
}

/// One row of Table 4: batch-1 inference latency, baseline vs this work.
#[derive(Debug, Clone)]
pub struct Table4Row {
    /// The benchmark layer.
    pub task: RnnTask,
    /// Device name.
    pub device: String,
    /// Latency of the unvirtualized baseline; `None` when the model does
    /// not fit the device (the paper's "-").
    pub baseline: Option<SimTime>,
    /// Latency under the framework.
    pub this_work: Option<SimTime>,
    /// Relative overhead.
    pub overhead: Option<f64>,
}

/// Regenerates Table 4 using the catalog's timing model: the baseline runs
/// with zero interface crossings, this work with the pattern-aware
/// partitioner's crossing count.
pub fn table4(catalog: &Catalog) -> Vec<Table4Row> {
    let mut rows = Vec::new();
    for task in table4_tasks() {
        for (config, device) in baseline_configs() {
            let needed: u64 = task
                .matrix_shapes()
                .iter()
                .map(|&(r, c)| config.matrix_storage_kb(r, c))
                .sum();
            if needed > config.weight_memory_kb {
                rows.push(Table4Row {
                    task,
                    device: device.name().to_string(),
                    baseline: None,
                    this_work: None,
                    overhead: None,
                });
                continue;
            }
            let name = catalog.baseline_instance_name(device.name());
            let base = catalog.task_latency(&task, &name, device.freq_mhz(), 0);
            let virt = catalog.task_latency(
                &task,
                &name,
                device.freq_mhz(),
                vfpga_core::PATTERN_AWARE_CROSSINGS,
            );
            let overhead = (virt.as_secs() - base.as_secs()) / base.as_secs();
            rows.push(Table4Row {
                task,
                device: device.name().to_string(),
                baseline: Some(base),
                this_work: Some(virt),
                overhead: Some(overhead),
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_reproduces_tile_counts_and_tflops() {
        let rows = table2();
        assert_eq!(rows.len(), 2);
        let v37 = &rows[0];
        assert_eq!(v37.tiles, 21);
        assert_eq!(v37.freq_mhz, 400.0);
        assert!(
            (30.0..40.0).contains(&v37.peak_tflops),
            "{}",
            v37.peak_tflops
        );
        let k115 = &rows[1];
        assert_eq!(k115.tiles, 13);
        assert_eq!(k115.freq_mhz, 300.0);
        assert!((14.0..19.0).contains(&k115.peak_tflops));
        // DSP utilization is the binding constraint, high on both.
        assert!(v37.utilization.4 > 0.75);
        assert!(k115.utilization.4 > 0.80);
    }

    #[test]
    fn table3_blocks_and_throughput_divide() {
        let rows = table3();
        for r in &rows {
            assert!(r.blocks > 1);
            assert!(r.peak_tflops > 0.5 && r.peak_tflops < 10.0);
            // Per-block DSP utilization is high (dense mapping).
            assert!(r.utilization.4 > 0.5, "dsp util {}", r.utilization.4);
        }
    }

    #[test]
    fn table4_has_marginal_overhead_and_ku115_gap() {
        let catalog = Catalog::build();
        let rows = table4(&catalog);
        assert_eq!(rows.len(), 14);
        // LSTM h=1536 must not fit the KU115 (the paper's "-").
        let lstm1536_ku = rows
            .iter()
            .find(|r| {
                r.task.hidden == 1536
                    && r.task.kind == vfpga_workload::RnnKind::Lstm
                    && r.device == "XCKU115"
            })
            .unwrap();
        assert!(lstm1536_ku.baseline.is_none());
        // Every fitting row shows single-digit-percent overhead and the
        // VU37P is faster than the KU115 on the same task.
        for r in &rows {
            if let Some(overhead) = r.overhead {
                assert!((0.0..0.15).contains(&overhead), "{}: {overhead}", r.task);
            }
        }
        for task in vfpga_workload::table4_tasks() {
            let of = |dev: &str| {
                rows.iter()
                    .find(|r| r.task == task && r.device == dev)
                    .and_then(|r| r.baseline)
            };
            if let (Some(vu), Some(ku)) = (of("XCVU37P"), of("XCKU115")) {
                assert!(vu < ku, "{task}: VU37P should be faster");
            }
        }
    }
}

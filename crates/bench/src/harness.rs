//! A small wall-clock microbenchmark harness.
//!
//! The workspace builds in offline containers with no access to criterion,
//! so the `benches/` targets use this dependency-free harness instead:
//! warm up, pick an iteration count targeting a fixed measurement window,
//! run several samples, and report the median time per iteration.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Samples collected per benchmark.
const SAMPLES: usize = 7;
/// Target wall-clock duration of one sample.
const TARGET_SAMPLE: Duration = Duration::from_millis(50);

/// Runs `f` repeatedly and prints `name: <median> per iter (n=...)`.
///
/// The closure's return value is passed through [`black_box`] so the
/// optimizer cannot delete the measured work.
pub fn bench<T>(name: &str, mut f: impl FnMut() -> T) {
    // Warm-up and calibration: time one call, derive an iteration count
    // that fills the target sample window.
    let start = Instant::now();
    black_box(f());
    let once = start.elapsed().max(Duration::from_nanos(1));
    let iters = (TARGET_SAMPLE.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as usize;

    let mut samples: Vec<Duration> = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        samples.push(start.elapsed() / iters as u32);
    }
    samples.sort();
    let median = samples[SAMPLES / 2];
    println!(
        "{name:<44} {:>12} per iter  (iters/sample: {iters})",
        fmt_duration(median)
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_formats() {
        // Smoke: must not panic and must format all magnitudes.
        bench("noop", || 1 + 1);
        assert_eq!(fmt_duration(Duration::from_nanos(5)), "5 ns");
        assert_eq!(fmt_duration(Duration::from_micros(5)), "5.000 us");
        assert_eq!(fmt_duration(Duration::from_millis(5)), "5.000 ms");
        assert_eq!(fmt_duration(Duration::from_secs(5)), "5.000 s");
    }
}

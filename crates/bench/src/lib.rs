//! # vfpga-bench — the evaluation harness
//!
//! Builds the paper's evaluated system (the accelerator instance catalog,
//! compiled mapping database, and cluster) and regenerates every table and
//! figure of the evaluation section:
//!
//! | artifact | harness | regenerate with |
//! |---|---|---|
//! | Table 2 | [`tables::table2`] | `cargo run -p vfpga-bench --bin repro -- table2` |
//! | Table 3 | [`tables::table3`] | `repro -- table3` |
//! | Table 4 | [`tables::table4`] | `repro -- table4` |
//! | Fig. 11 | [`fig11::sweep`] | `repro -- fig11` |
//! | Fig. 12 | [`fig12::run_all_sets`] | `repro -- fig12` |
//! | §4.3 overhead | [`overhead::report`] | `repro -- overhead` |
//!
//! Wall-clock benches over the framework's tools (decompose, partition,
//! allocation, reorder) live in `benches/`, built on the dependency-free
//! [`harness`] module.

pub mod ablations;
pub mod admission;
pub mod catalog;
pub mod chaos;
pub mod density;
pub mod elastic;
pub mod fig11;
pub mod fig12;
pub mod harness;
pub mod isolation;
pub mod monitor;
pub mod netchaos;
pub mod overhead;
pub mod tables;

pub use catalog::Catalog;

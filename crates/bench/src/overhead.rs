//! Regeneration of the Section 4.3 compilation-overhead analysis.

use std::time::Instant;

use vfpga_accel::AcceleratorConfig;
use vfpga_fabric::MemoryKind;
use vfpga_hsabs::HsCompiler;

use crate::catalog::{storage_bfp, Catalog};

/// The compilation-overhead breakdown of Section 4.3.
#[derive(Debug, Clone)]
pub struct OverheadReport {
    /// Wall-clock seconds our decompose+partition tools took for the
    /// largest instance.
    pub tool_seconds: f64,
    /// Estimated baseline compile time (one full-device run per instance
    /// per feasible device type), seconds.
    pub baseline_seconds: f64,
    /// Tool time as a fraction of the baseline compile time (the paper
    /// reports < 1%).
    pub tool_fraction: f64,
    /// Estimated extra compile time for the scaled-down accelerators,
    /// after sharing them across the instance family, seconds.
    pub scaledown_seconds: f64,
    /// Total overhead fraction versus the baseline flow (the paper reports
    /// 24.6% amortized over 10 instances).
    pub total_overhead_fraction: f64,
    /// Number of instances the scaled-down compilations amortize over.
    pub instances: usize,
    /// Number of distinct scaled-down configurations compiled.
    pub distinct_scaledowns: usize,
}

/// Reproduces the Section 4.3 accounting: ten accelerator instances with
/// different tile counts, each offered with 2-FPGA and 4-FPGA scale-down
/// variants; scaled-down accelerators are shared across instances where
/// tile counts coincide.
pub fn report() -> OverheadReport {
    let compiler = HsCompiler::default();
    let tile_family: [usize; 10] = [4, 6, 8, 10, 12, 14, 16, 18, 20, 21];

    // Tool time: run the real decompose+partition on the largest instance.
    let big = AcceleratorConfig::new("overhead-probe", 21)
        .with_memory_kind(MemoryKind::Uram)
        .with_bfp(storage_bfp());
    let start = Instant::now();
    let (_decomp, _plan) = Catalog::compile_instance(&big, 2);
    let tool_seconds = start.elapsed().as_secs_f64();

    // Baseline: one full compile per instance per device type (the larger
    // instances only fit the XCVU37P).
    let mut baseline_seconds = 0.0;
    for &tiles in &tile_family {
        let cfg = AcceleratorConfig::new("fam", tiles)
            .with_memory_kind(MemoryKind::Uram)
            .with_bfp(storage_bfp());
        let demand = vfpga_accel::estimate_resources(&cfg);
        let device_types = if tiles <= 13 { 2.0 } else { 1.0 };
        baseline_seconds += device_types * compiler.compile_seconds(&demand);
    }

    // Scale-down: each instance offers 1-of-2 and 1-of-4 variants; shared
    // across the family by (scaled) tile count.
    let mut distinct: std::collections::BTreeSet<usize> = std::collections::BTreeSet::new();
    for &tiles in &tile_family {
        for parts in [2usize, 4] {
            distinct.insert((tiles / parts).max(1));
        }
    }
    let mut scaledown_seconds = 0.0;
    for &tiles in &distinct {
        let cfg = AcceleratorConfig::new("scaled", tiles)
            .with_memory_kind(MemoryKind::Uram)
            .with_bfp(storage_bfp());
        let demand = vfpga_accel::estimate_resources(&cfg);
        // Small scaled-down units fit both device types.
        scaledown_seconds += 2.0 * compiler.compile_seconds(&demand);
    }

    let tool_fraction = (tile_family.len() as f64 * tool_seconds) / baseline_seconds;
    let total_overhead_fraction =
        (tile_family.len() as f64 * tool_seconds + scaledown_seconds) / baseline_seconds;
    OverheadReport {
        tool_seconds,
        baseline_seconds,
        tool_fraction,
        scaledown_seconds,
        total_overhead_fraction,
        instances: tile_family.len(),
        distinct_scaledowns: distinct.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tool_time_is_negligible_and_total_overhead_modest() {
        let r = report();
        // The paper: decompose+partition < 1% of compile time.
        assert!(r.tool_fraction < 0.01, "tool fraction {}", r.tool_fraction);
        // The paper reports 24.6% with amortization; our compile-cost model
        // (large fixed base per run) lands higher, but the shape — a
        // sub-2x, amortizable overhead rather than a multiplicative
        // blowup — must hold. EXPERIMENTS.md discusses the gap.
        assert!(
            r.total_overhead_fraction > 0.02 && r.total_overhead_fraction < 0.95,
            "total overhead {}",
            r.total_overhead_fraction
        );
        assert!(r.distinct_scaledowns < r.instances * 2);
    }
}

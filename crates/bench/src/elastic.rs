//! Elastic-reprovisioning benchmark: the cloud scheduler with and without
//! the dynamic elasticity engine (`repro elastic`, writes
//! `BENCH_elastic.json`).
//!
//! The scenario drives the paper cluster with a *bursty* workload set —
//! tight bursts separated by lulls — which is exactly the regime the
//! reprovisioner targets:
//!
//! * during a lull the cluster idles and large tasks that stream weights
//!   on their greedy single-unit placement get **promoted** to a
//!   co-located multi-unit variant (aggregate weight memory stops the
//!   streaming, so the same task finishes sooner);
//! * when the next burst piles up behind those grown tenants, the
//!   reprovisioner **preemptively scales the cheapest victim down**,
//!   handing its units to the queue.
//!
//! Both modes run over byte-identical arrivals: **on** enables
//! [`ElasticityPolicy::FULL`], **off** runs the plain scheduler. The
//! artifact self-fails unless elasticity improves tail latency (p95) and
//! both runs keep the accounting invariant — a reprovisioner that loses
//! tasks or slows the tail is a regression, not a feature.

use std::time::Instant;

use vfpga_runtime::{
    run_cloud_sim_tuned, AdmissionTuning, CloudReport, ElasticityPolicy, Policy, RecoveryPolicy,
    SystemController,
};
use vfpga_sim::{FaultPlan, Json, Rng, SimTime};
use vfpga_workload::{deepbench_tasks, RnnTask, SizeClass, TaskArrival};

use crate::catalog::Catalog;

/// Parameters of one elastic-bench run.
#[derive(Debug, Clone, Copy)]
pub struct ElasticConfig {
    /// Tasks in the workload set.
    pub tasks: usize,
    /// Workload seed.
    pub seed: u64,
    /// Tasks per burst.
    pub burst: usize,
    /// Mean gap between tasks inside a burst.
    pub intra_gap: SimTime,
    /// Mean lull between bursts — long enough for the cluster to drain
    /// and the promotion pass to find idle capacity.
    pub lull: SimTime,
}

impl Default for ElasticConfig {
    fn default() -> Self {
        ElasticConfig {
            tasks: 10_000,
            seed: 2024,
            burst: 25,
            intra_gap: SimTime::from_us(2.0),
            lull: SimTime::from_ms(5.0),
        }
    }
}

/// Synthesizes the bursty workload: bursts of `burst` tasks with tight
/// exponential intra-burst gaps, separated by exponential lulls. The mix
/// leans on large tasks (30%) because they are the ones whose single-unit
/// placement streams weights — the promotion lever.
pub fn bursty_workload(config: &ElasticConfig) -> Vec<TaskArrival> {
    let pool = deepbench_tasks();
    let class = |c: SizeClass| -> Vec<RnnTask> {
        pool.iter()
            .copied()
            .filter(|t| t.size_class() == c)
            .collect()
    };
    let (small, medium, large) = (
        class(SizeClass::Small),
        class(SizeClass::Medium),
        class(SizeClass::Large),
    );
    let mut rng = Rng::seed_from_u64(config.seed);
    let mut now = SimTime::ZERO;
    let mut out = Vec::with_capacity(config.tasks);
    while out.len() < config.tasks {
        for _ in 0..config.burst.min(config.tasks - out.len()) {
            let u = rng.next_f64();
            let pool = if u < 0.5 {
                &small
            } else if u < 0.7 {
                &medium
            } else {
                &large
            };
            let task = pool[rng.below(pool.len())];
            now += SimTime::from_secs(rng.exp(config.intra_gap.as_secs()));
            out.push(TaskArrival { at: now, task });
        }
        now += SimTime::from_secs(rng.exp(config.lull.as_secs()));
    }
    out
}

/// Measurements from one mode of the scenario.
#[derive(Debug, Clone, Copy)]
pub struct ElasticRun {
    /// Wall-clock the simulation took, in milliseconds.
    pub wall_ms: f64,
    /// Tasks completed.
    pub completed: u64,
    /// Tasks never deployed (stranded at drain).
    pub never_deployed: u64,
    /// Tasks lost.
    pub lost: u64,
    /// Final sim time.
    pub elapsed: SimTime,
    /// End-to-end latency percentiles, seconds.
    pub p50: f64,
    /// 95th percentile — the headline gate.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Mean end-to-end latency, seconds.
    pub mean_latency: f64,
    /// Mean first-admission queue wait, seconds.
    pub mean_queue_wait: f64,
    /// Reprovisioner actions (0 with elasticity off).
    pub promotions: u64,
    /// Preemptive scale-downs (0 with elasticity off).
    pub preemptions: u64,
    /// Units gained across promotions.
    pub units_gained: u64,
    /// Units lost across preemptions.
    pub units_lost: u64,
    /// Mean remaining-service seconds saved per promotion.
    pub promotion_saved_mean: f64,
    /// Mean remaining-service seconds added per preemption.
    pub preemption_added_mean: f64,
    /// `completed + never_deployed + lost == arrivals` held.
    pub accounted: bool,
}

impl ElasticRun {
    fn from_report(report: &CloudReport, wall_ms: f64) -> Self {
        ElasticRun {
            wall_ms,
            completed: report.completed,
            never_deployed: report.never_deployed,
            lost: report.lost,
            elapsed: report.elapsed,
            p50: report.latency_p50.unwrap_or(0.0),
            p95: report.latency_p95.unwrap_or(0.0),
            p99: report.latency_p99.unwrap_or(0.0),
            mean_latency: report.latency.mean(),
            mean_queue_wait: report.queue_wait.mean(),
            promotions: report.promotions,
            preemptions: report.preemptions,
            units_gained: report.units_gained,
            units_lost: report.units_lost,
            promotion_saved_mean: report.promotion_saved.mean(),
            preemption_added_mean: report.preemption_added.mean(),
            accounted: report.accounts_for_all_arrivals(),
        }
    }

    fn to_json(self) -> Json {
        Json::obj()
            .with("wall_ms", self.wall_ms)
            .with("completed", self.completed)
            .with("never_deployed", self.never_deployed)
            .with("lost", self.lost)
            .with("elapsed_s", self.elapsed.as_secs())
            .with("latency_p50_s", self.p50)
            .with("latency_p95_s", self.p95)
            .with("latency_p99_s", self.p99)
            .with("latency_mean_s", self.mean_latency)
            .with("queue_wait_mean_s", self.mean_queue_wait)
            .with("promotions", self.promotions)
            .with("preemptions", self.preemptions)
            .with("units_gained", self.units_gained)
            .with("units_lost", self.units_lost)
            .with("promotion_saved_mean_s", self.promotion_saved_mean)
            .with("preemption_added_mean_s", self.preemption_added_mean)
            .with("accounted", self.accounted)
    }
}

/// The full A/B result plus the gates CI (and `repro elastic` itself)
/// checks.
#[derive(Debug, Clone)]
pub struct ElasticBench {
    /// The seed everything was generated from.
    pub seed: u64,
    /// Tasks in the workload.
    pub tasks: usize,
    /// Elasticity on ([`ElasticityPolicy::FULL`]).
    pub on: ElasticRun,
    /// Elasticity off — the plain scheduler over identical arrivals.
    pub off: ElasticRun,
}

impl ElasticBench {
    /// How many times shorter the p95 latency is with elasticity on.
    pub fn p95_ratio(&self) -> f64 {
        self.off.p95 / self.on.p95.max(1e-12)
    }

    /// Absolute p95 improvement, seconds (positive = elasticity wins).
    pub fn p95_delta(&self) -> f64 {
        self.off.p95 - self.on.p95
    }

    /// The outcome gates: both runs keep the accounting invariant and
    /// complete every task, the off run never reprovisions, the on run
    /// actually exercises both levers, and p95 strictly improves.
    pub fn passes(&self) -> bool {
        self.failures().is_empty()
    }

    /// Every violated gate, as static labels for the failure message.
    pub fn failures(&self) -> Vec<&'static str> {
        let mut f = Vec::new();
        if !self.on.accounted || !self.off.accounted {
            f.push("accounting invariant broken");
        }
        if self.on.completed != self.tasks as u64 || self.off.completed != self.tasks as u64 {
            f.push("not every task completed");
        }
        if self.on.lost != 0 || self.off.lost != 0 {
            f.push("tasks lost");
        }
        if self.off.promotions != 0 || self.off.preemptions != 0 {
            f.push("elasticity-off run reprovisioned");
        }
        if self.on.promotions == 0 {
            f.push("no promotions fired");
        }
        if self.on.preemptions == 0 {
            f.push("no preemptions fired");
        }
        if self.on.p95 >= self.off.p95 {
            f.push("p95 did not improve");
        }
        f
    }

    /// Serializes the artifact body (the caller adds `schema_version`).
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("seed", self.seed)
            .with("tasks", self.tasks as u64)
            .with("elasticity_on", self.on.to_json())
            .with("elasticity_off", self.off.to_json())
            .with("p95_ratio", self.p95_ratio())
            .with("p95_delta_s", self.p95_delta())
            .with("passes", self.passes())
    }
}

/// One timed run of the scenario in the given elasticity mode.
fn timed_run(
    catalog: &Catalog,
    arrivals: &[TaskArrival],
    elasticity: ElasticityPolicy,
) -> ElasticRun {
    let mut controller =
        SystemController::new(catalog.cluster.clone(), catalog.db.clone(), Policy::Full);
    let tuning = AdmissionTuning {
        wave_gating: true,
        // Spans off at bench scale (see the admission bench); the span
        // plumbing of the reprovisioner is covered by the unit suite.
        trace_spans: false,
        elasticity,
        ..AdmissionTuning::default()
    };
    let start = Instant::now();
    let report = run_cloud_sim_tuned(
        &mut controller,
        arrivals,
        &|task| catalog.instance_for(task),
        &|task, deployment| catalog.service_time(task, deployment, Policy::Full),
        &FaultPlan::none(),
        RecoveryPolicy::default(),
        1024,
        tuning,
    )
    .expect("bench simulation completes");
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    ElasticRun::from_report(&report, wall_ms)
}

/// Runs the A/B comparison over one bursty workload.
pub fn run(catalog: &Catalog, config: &ElasticConfig) -> ElasticBench {
    let arrivals = bursty_workload(config);
    let on = timed_run(catalog, &arrivals, ElasticityPolicy::FULL);
    let off = timed_run(catalog, &arrivals, ElasticityPolicy::DISABLED);
    ElasticBench {
        seed: config.seed,
        tasks: config.tasks,
        on,
        off,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scaled-down config so the test suite stays fast; the real 10k
    /// bench runs via `repro elastic` (and in CI's elastic job).
    fn small() -> ElasticConfig {
        ElasticConfig {
            tasks: 500,
            seed: 7,
            ..ElasticConfig::default()
        }
    }

    #[test]
    fn large_pool_tasks_stream_on_one_unit_but_not_two() {
        // The promotion lever: every large-class task in the pool must
        // exceed bw-l's per-unit weight memory (so its greedy single-unit
        // placement streams) yet fit the two-unit aggregate.
        let catalog = Catalog::build();
        let per_unit = catalog.instances["bw-l"].config.weight_memory_kb;
        for task in deepbench_tasks()
            .into_iter()
            .filter(|t| t.size_class() == SizeClass::Large)
        {
            let kb = catalog.task_weight_kb(&task, "bw-l");
            assert!(kb > per_unit, "{task}: {kb} KB fits one unit, no lever");
            assert!(
                kb <= 2 * per_unit,
                "{task}: {kb} KB streams even at 2 units"
            );
        }
    }

    #[test]
    fn elasticity_improves_tail_latency_on_bursty_load() {
        let catalog = Catalog::build();
        let bench = run(&catalog, &small());
        assert!(
            bench.passes(),
            "gates violated: {:?} (p95 on {:.6}s vs off {:.6}s)",
            bench.failures(),
            bench.on.p95,
            bench.off.p95
        );
        assert!(bench.on.units_gained >= bench.on.promotions);
    }

    #[test]
    fn artifact_json_carries_the_gated_fields() {
        let catalog = Catalog::build();
        let bench = run(&catalog, &small());
        let text = bench.to_json().pretty();
        for key in [
            "\"elasticity_on\"",
            "\"elasticity_off\"",
            "\"p95_ratio\"",
            "\"p95_delta_s\"",
            "\"promotions\"",
            "\"preemptions\"",
            "\"passes\"",
        ] {
            assert!(text.contains(key), "missing {key} in {text}");
        }
        assert!(Json::parse(&text).is_ok());
    }
}

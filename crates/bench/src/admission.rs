//! Admission-path benchmark: the saturated scheduler with and without the
//! fast path (`repro bench`, writes `BENCH_admission.json`).
//!
//! The scenario floods the paper cluster with a 10k-task workload set
//! arriving far above service capacity, so the admission queue saturates
//! and the scheduler's cost is dominated by re-probing queued tasks. Each
//! scenario runs twice over identical inputs:
//!
//! * **current** — the shipped configuration: `Arc`-shared catalog
//!   entries, the capacity-epoch feasibility cache, and wave gating.
//! * **baseline** — cache off, gating off: the pre-optimization admission
//!   loop that re-ran a full placement probe for every queued task after
//!   every event (O(events × window)). The counter values recorded in
//!   this block are what the `probe_ratio` is measured against.
//!
//! The headline numbers are `deploy_attempts` (full placement probes, the
//! expensive operation), `deploy_attempts_per_admission`, and wall-clock.
//! Outcomes must agree between the two runs — the fast path changes how
//! much work admission does, never what it admits — and the bench fails
//! loudly if they diverge (the byte-level version of that guarantee lives
//! in the A/B determinism suite, `tests/ab_admission.rs`).

use std::time::Instant;

use vfpga_runtime::{
    run_cloud_sim_tuned, AdmissionTuning, CloudReport, ElasticityPolicy, Policy, RecoveryPolicy,
    SystemController,
};
use vfpga_sim::{FaultPlan, FaultPlanParams, Json, SimTime};
use vfpga_workload::{generate_workload, Composition};

use crate::catalog::Catalog;

/// Parameters of one admission-bench run.
#[derive(Debug, Clone, Copy)]
pub struct BenchConfig {
    /// Tasks in the workload set.
    pub tasks: usize,
    /// Workload / fault-plan seed.
    pub seed: u64,
    /// Mean interarrival time. The default saturates the paper cluster by
    /// a wide margin, which is the regime the fast path exists for.
    pub mean_interarrival: SimTime,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            tasks: 10_000,
            seed: 2024,
            mean_interarrival: SimTime::from_us(20.0),
        }
    }
}

/// Counters from one timed run of the scenario.
#[derive(Debug, Clone, Copy)]
pub struct RunCost {
    /// Wall-clock the simulation took, in milliseconds.
    pub wall_ms: f64,
    /// Full placement probes (database lookup + option scan + device
    /// scan) — the expensive admission operation.
    pub probes: u64,
    /// Attempts answered by the feasibility cache (0 with the cache off).
    pub cache_hits: u64,
    /// Successful controller deploys (admissions + redeployments).
    pub admissions: u64,
    /// Tasks completed.
    pub completed: u64,
    /// Tasks never deployed (stranded at drain).
    pub never_deployed: u64,
    /// Tasks lost.
    pub lost: u64,
    /// Final sim time.
    pub elapsed: SimTime,
}

impl RunCost {
    /// Full probes per successful admission — the artifact's regression
    /// ceiling watches this.
    pub fn attempts_per_admission(&self) -> f64 {
        self.probes as f64 / (self.admissions.max(1)) as f64
    }

    fn to_json(self) -> Json {
        Json::obj()
            .with("wall_ms", self.wall_ms)
            .with("deploy_attempts", self.probes)
            .with("cache_hits", self.cache_hits)
            .with("admissions", self.admissions)
            .with(
                "deploy_attempts_per_admission",
                self.attempts_per_admission(),
            )
            .with("completed", self.completed)
            .with("never_deployed", self.never_deployed)
            .with("lost", self.lost)
            .with("elapsed_s", self.elapsed.as_secs())
    }
}

/// One scenario measured in both modes.
#[derive(Debug, Clone)]
pub struct ScenarioResult {
    /// `"steady"` or `"chaos"`.
    pub name: &'static str,
    /// The shipped fast path.
    pub current: RunCost,
    /// Cache and gating disabled (pre-optimization behavior).
    pub baseline: RunCost,
    /// Whether both runs admitted/completed identically (they must).
    pub outcomes_match: bool,
}

impl ScenarioResult {
    /// How many times fewer full probes the fast path ran.
    pub fn probe_ratio(&self) -> f64 {
        self.baseline.probes as f64 / (self.current.probes.max(1)) as f64
    }

    /// Wall-clock speedup of the fast path.
    pub fn wall_ratio(&self) -> f64 {
        self.baseline.wall_ms / self.current.wall_ms.max(1e-9)
    }

    /// Serializes the scenario block.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("name", self.name)
            .with("current", self.current.to_json())
            .with("baseline", self.baseline.to_json())
            .with("probe_ratio", self.probe_ratio())
            .with("wall_ratio", self.wall_ratio())
            .with("outcomes_match", self.outcomes_match)
    }
}

/// The full bench result: both scenarios plus the headline aggregates CI
/// greps and gates on.
#[derive(Debug, Clone)]
pub struct AdmissionBench {
    /// The seed everything was generated from.
    pub seed: u64,
    /// Tasks per scenario.
    pub tasks: usize,
    /// Saturated steady-state (no faults) and chaos scenarios.
    pub scenarios: Vec<ScenarioResult>,
}

impl AdmissionBench {
    /// The worst (largest) probes-per-admission across scenarios in the
    /// shipped configuration — the value the CI ceiling checks.
    pub fn attempts_per_admission(&self) -> f64 {
        self.scenarios
            .iter()
            .map(|s| s.current.attempts_per_admission())
            .fold(0.0, f64::max)
    }

    /// The smallest probe-reduction factor across scenarios.
    pub fn min_probe_ratio(&self) -> f64 {
        self.scenarios
            .iter()
            .map(ScenarioResult::probe_ratio)
            .fold(f64::INFINITY, f64::min)
    }

    /// Whether every scenario's two runs agreed on outcomes.
    pub fn outcomes_match(&self) -> bool {
        self.scenarios.iter().all(|s| s.outcomes_match)
    }

    /// Serializes the artifact body (the caller adds `schema_version`).
    pub fn to_json(&self) -> Json {
        let scenarios: Vec<Json> = self.scenarios.iter().map(ScenarioResult::to_json).collect();
        Json::obj()
            .with("seed", self.seed)
            .with("tasks", self.tasks as u64)
            .with("scenarios", Json::Arr(scenarios))
            .with(
                "deploy_attempts_per_admission",
                self.attempts_per_admission(),
            )
            .with("min_probe_ratio", self.min_probe_ratio())
            .with("outcomes_match", self.outcomes_match())
    }
}

/// A chaos plan sized for the bench horizon: failures keep arriving over
/// the whole (saturated) workload span.
fn bench_fault_plan(config: &BenchConfig, devices: usize) -> FaultPlan {
    let horizon = SimTime::from_us(config.mean_interarrival.as_us() * config.tasks as f64 * 1.5);
    FaultPlan::generate(
        FaultPlanParams {
            mttf: SimTime::from_ms(5.0),
            mttr: SimTime::from_ms(1.0),
            configure_failure_prob: 0.0,
            horizon,
        },
        devices,
        config.seed,
    )
}

/// One timed run. `fast` selects the shipped configuration; `false` turns
/// the feasibility cache *and* wave gating off, reproducing the
/// pre-optimization admission loop.
fn timed_run(
    catalog: &Catalog,
    arrivals: &[vfpga_workload::TaskArrival],
    faults: &FaultPlan,
    fast: bool,
) -> (RunCost, CloudReport) {
    let mut controller =
        SystemController::new(catalog.cluster.clone(), catalog.db.clone(), Policy::Full);
    controller.set_feasibility_cache(fast);
    let tuning = AdmissionTuning {
        wave_gating: fast,
        // Spans are off in both modes: at bench scale the forest would
        // dominate wall-clock and memory, and the comparison must time
        // the scheduler, not the tracer.
        trace_spans: false,
        elasticity: ElasticityPolicy::DISABLED,
        ..AdmissionTuning::default()
    };
    let start = Instant::now();
    let report = run_cloud_sim_tuned(
        &mut controller,
        arrivals,
        &|task| catalog.instance_for(task),
        &|task, deployment| catalog.service_time(task, deployment, Policy::Full),
        faults,
        RecoveryPolicy::default(),
        // The ring only keeps a window; a small one avoids measuring it.
        1024,
        tuning,
    )
    .expect("bench simulation completes");
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let stats = controller.stats();
    let cost = RunCost {
        wall_ms,
        probes: stats.probes,
        cache_hits: stats.cache_hits,
        admissions: stats.deploys,
        completed: report.completed,
        never_deployed: report.never_deployed,
        lost: report.lost,
        elapsed: report.elapsed,
    };
    (cost, report)
}

/// Outcome agreement between the two modes: identical admissions at
/// identical sim-times (summarized by the fields that pin them).
fn outcomes_match(a: &CloudReport, b: &CloudReport) -> bool {
    a.completed == b.completed
        && a.never_deployed == b.never_deployed
        && a.lost == b.lost
        && a.elapsed == b.elapsed
        && a.latency_p99 == b.latency_p99
        && a.rejected_tasks == b.rejected_tasks
        && a.migrated == b.migrated
        && a.redeployments == b.redeployments
}

/// Runs one scenario (fast path first, then the baseline) over identical
/// inputs.
fn run_scenario(
    catalog: &Catalog,
    config: &BenchConfig,
    name: &'static str,
    faults: &FaultPlan,
) -> ScenarioResult {
    let arrivals = generate_workload(
        Composition::TABLE1[4],
        config.tasks,
        config.mean_interarrival,
        config.seed,
    );
    let (current, current_report) = timed_run(catalog, &arrivals, faults, true);
    let (baseline, baseline_report) = timed_run(catalog, &arrivals, faults, false);
    ScenarioResult {
        name,
        current,
        baseline,
        outcomes_match: outcomes_match(&current_report, &baseline_report),
    }
}

/// Runs the full admission bench: the saturated steady-state scenario and
/// the same workload under a chaos plan.
pub fn run(catalog: &Catalog, config: &BenchConfig) -> AdmissionBench {
    let steady = run_scenario(catalog, config, "steady", &FaultPlan::none());
    let plan = bench_fault_plan(config, catalog.cluster.len());
    let chaos = run_scenario(catalog, config, "chaos", &plan);
    AdmissionBench {
        seed: config.seed,
        tasks: config.tasks,
        scenarios: vec![steady, chaos],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scaled-down config so the test suite stays fast; the real 10k
    /// bench runs via `repro bench` (and in CI's bench job).
    fn small() -> BenchConfig {
        BenchConfig {
            tasks: 400,
            seed: 7,
            ..BenchConfig::default()
        }
    }

    #[test]
    fn fast_path_cuts_probes_without_changing_outcomes() {
        let catalog = Catalog::build();
        let bench = run(&catalog, &small());
        assert_eq!(bench.scenarios.len(), 2);
        assert!(bench.outcomes_match(), "fast path changed admissions");
        for s in &bench.scenarios {
            assert!(
                s.probe_ratio() >= 3.0,
                "{}: probe ratio {:.2} below the 3x bar ({} vs {})",
                s.name,
                s.probe_ratio(),
                s.baseline.probes,
                s.current.probes
            );
            assert!(s.current.admissions > 0);
        }
    }

    #[test]
    fn artifact_json_carries_the_gated_fields() {
        let catalog = Catalog::build();
        let bench = run(&catalog, &small());
        let text = bench.to_json().pretty();
        for key in [
            "\"deploy_attempts_per_admission\"",
            "\"min_probe_ratio\"",
            "\"outcomes_match\"",
            "\"baseline\"",
            "\"current\"",
            "\"wall_ms\"",
        ] {
            assert!(text.contains(key), "missing {key} in {text}");
        }
        assert!(Json::parse(&text).is_ok());
    }
}

//! The Section 4.4 performance-isolation observation: with the
//! instruction buffer, an inference's latency in a resource-sharing
//! environment is comparable to a non-sharing environment.
//!
//! Spatial sharing puts several tenants behind one DRAM controller. An
//! accelerator without the instruction buffer fetches every instruction
//! through that shared interface and suffers from co-tenant contention;
//! with the buffer, the whole program sits on-chip (the code-density
//! experiment shows it fits) and only the small data-vector traffic
//! remains exposed.

use vfpga_accel::{AcceleratorConfig, CycleSim, TimingModel};
use vfpga_sim::SimTime;
use vfpga_workload::{generate_program, RnnTask, SliceSpec};

use crate::catalog::storage_bfp;

/// Latency of one task alone and with co-tenant DRAM contention, for one
/// buffer configuration.
#[derive(Debug, Clone, Copy)]
pub struct IsolationRow {
    /// Whether the instruction buffer is present.
    pub instruction_buffer: bool,
    /// Latency as the device's sole tenant.
    pub alone: SimTime,
    /// Latency sharing the DRAM interface with co-tenants.
    pub shared: SimTime,
}

impl IsolationRow {
    /// Relative slowdown caused by sharing.
    pub fn slowdown(&self) -> f64 {
        self.shared.as_secs() / self.alone.as_secs() - 1.0
    }
}

/// Measures isolation for `task` under a given co-tenant contention factor
/// (e.g. 3.0 = the DRAM interface is three times slower under sharing).
pub fn measure(task: RnnTask, contention: f64) -> Vec<IsolationRow> {
    let rnn = generate_program(task, SliceSpec::FULL);
    let run = |buffered: bool, contention: f64| {
        let config = if buffered {
            AcceleratorConfig::new("iso", 8).with_bfp(storage_bfp())
        } else {
            AcceleratorConfig::new("iso", 8)
                .with_bfp(storage_bfp())
                .without_instruction_buffer()
        };
        let mut model = TimingModel::for_config(&config, 400.0);
        model.dram_contention = contention;
        let mut sim = CycleSim::new(
            model,
            &rnn.program,
            rnn.mat_shapes.clone(),
            rnn.dram_lens.clone(),
        );
        sim.set_scratch_slots(crate::catalog::scratch_slots());
        sim.run_local()
    };
    [true, false]
        .into_iter()
        .map(|instruction_buffer| IsolationRow {
            instruction_buffer,
            alone: run(instruction_buffer, 1.0),
            shared: run(instruction_buffer, contention),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vfpga_workload::RnnKind;

    #[test]
    fn buffer_preserves_isolation() {
        let task = RnnTask::new(RnnKind::Lstm, 512, 25);
        let rows = measure(task, 3.0);
        let with = rows.iter().find(|r| r.instruction_buffer).unwrap();
        let without = rows.iter().find(|r| !r.instruction_buffer).unwrap();
        // With the buffer, only the per-step input vectors contend: the
        // slowdown stays around ten percent even at 3x DRAM contention.
        assert!(
            with.slowdown() < 0.12,
            "buffered slowdown {}",
            with.slowdown()
        );
        // Without it, every instruction fetch contends too: a clearly
        // larger slowdown.
        assert!(
            without.slowdown() > with.slowdown() + 0.10,
            "unbuffered slowdown {} vs buffered {}",
            without.slowdown(),
            with.slowdown()
        );
    }

    #[test]
    fn contention_is_monotone() {
        let task = RnnTask::new(RnnKind::Gru, 512, 8);
        let light = measure(task, 2.0);
        let heavy = measure(task, 6.0);
        for (l, h) in light.iter().zip(&heavy) {
            assert!(h.shared >= l.shared);
        }
    }
}
